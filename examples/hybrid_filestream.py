"""The hybrid design, exactly as Section 3.3 demonstrates it.

Runs the paper's T-SQL sequence verbatim: create the FILESTREAM table,
bulk-import a FASTQ file with ``OPENROWSET(BULK ..., SINGLE_BLOB)``,
inspect the metadata (``PathName()``, ``DATALENGTH``), query the blob
relationally through the ``ListShortReads`` TVF — and then show the
hybrid design's punchline: an *external tool* (here, the MAQ-style
command-line pipeline) reading the same bytes through the file system
path the database handed out.

Run:  python examples/hybrid_filestream.py
"""

import tempfile
from pathlib import Path

from repro.baselines import MaqTool
from repro.core import register_extensions
from repro.core.schemas import create_filestream_schema
from repro.engine import Database
from repro.genomics import (
    generate_reference,
    simulate_dge_lane,
    annotate_genes,
    write_fasta,
    write_fastq,
)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hybrid-demo-"))

    # fake the sequencer's output: a FASTQ file on disk
    reference = generate_reference(2, 20_000, seed=51)
    genes = annotate_genes(reference, n_genes=30, gene_length=(300, 700), seed=52)
    reads = list(simulate_dge_lane(reference, genes, 5_000, seed=53))
    fastq_path = workdir / "855_s_1.fastq"
    write_fastq(reads, fastq_path)
    print(f"sequencer produced {fastq_path} ({fastq_path.stat().st_size:,} bytes)")

    db = Database(data_dir=workdir / "db")
    register_extensions(db)
    create_filestream_schema(db)

    # --- the paper's T-SQL, verbatim ----------------------------------
    db.execute(
        f"""
        /* Bulk-Import new FileStream row */
        INSERT INTO ShortReadFiles (guid, sample, lane, reads)
         SELECT NEWID(), 855, 1, *
         FROM OPENROWSET(BULK '{fastq_path}', SINGLE_BLOB);
        """
    )
    print("\n/* check meta-data of the filestream table content */")
    for guid, sample, lane, path, length in db.query(
        "SELECT guid, sample, lane, reads.PathName(), DATALENGTH(reads) "
        "FROM ShortReadFiles"
    ):
        print(f"  {guid}  sample={sample} lane={lane}")
        print(f"  PathName() = {path}")
        print(f"  DATALENGTH = {length:,} bytes")
        managed_path = Path(path)

    print("\n/* check content of one FileStream column using a TVF */")
    rows = db.query("SELECT TOP 3 * FROM ListShortReads(855, 1, 'FastQ')")
    for name, seq, quals in rows:
        print(f"  @{name}\n   {seq}\n   {quals}")
    total = db.scalar("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")
    print(f"  ... {total:,} reads total")

    # --- the hybrid punchline: external tools keep working ------------
    print("\nexternal MAQ-style tool, reading the DB-managed file directly:")
    ref_path = workdir / "ref.fasta"
    write_fasta(reference, ref_path)
    tool = MaqTool(workdir / "maq")
    artifacts = tool.pipeline(managed_path, ref_path)
    for name, path in artifacts.items():
        print(f"  {name:<8} {path.stat().st_size:>10,} bytes  {path.name}")

    # the database still controls the storage: consistency check passes
    problems = db.checkdb()
    print(f"\nDBCC-style consistency check: {problems or 'clean'}")
    db.close()


if __name__ == "__main__":
    main()
