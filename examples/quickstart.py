"""Quickstart: a genomics warehouse in ~40 lines.

Simulates a small lane, loads it through the hybrid FILESTREAM design,
and runs the paper's Query 1 (unique-read binning) declaratively.

Run:  python examples/quickstart.py
"""

from repro.core import GenomicsWarehouse, queries
from repro.genomics import annotate_genes, generate_reference, simulate_dge_lane


def main() -> None:
    # a synthetic reference genome + gene annotation (no real data needed)
    reference = generate_reference(
        n_chromosomes=2, chromosome_length=30_000, seed=7
    )
    genes = annotate_genes(reference, n_genes=40, gene_length=(300, 800), seed=8)
    reads = list(simulate_dge_lane(reference, genes, n_reads=10_000, seed=9))

    with GenomicsWarehouse() as warehouse:
        warehouse.load_reference(reference)
        warehouse.load_genes(genes)

        # provenance: experiment -> sample group -> sample
        warehouse.register_experiment(1, "quickstart", "dge")
        warehouse.register_sample_group(1, 1, "demo group")
        warehouse.register_sample(1, 1, 1, "demo sample")

        # hybrid import: the FASTQ bytes live as a FILESTREAM blob,
        # rows are loaded through the ListShortReads TVF
        warehouse.import_lane_hybrid(sample=1, lane=1, records=reads)
        loaded = warehouse.load_reads_from_filestream(
            1, 1, 1, sample=1, lane=1
        )
        print(f"loaded {loaded} reads through the ListShortReads TVF")

        # the paper's Query 1: frequency-ranked unique tags
        print("\nQuery 1 — top 10 unique tags:")
        print(queries.query1_binning_sql(1, 1, 1))
        for rank, frequency, seq in queries.execute_query1(
            warehouse.db, 1, 1, 1
        )[:10]:
            print(f"  #{rank:<3} x{frequency:<6} {seq}")

        # and its physical plan (Figure 9's shape)
        print("\nthe optimizer's plan:")
        print(
            warehouse.db.explain(queries.query1_binning_sql(1, 1, 1, maxdop=4))
        )


if __name__ == "__main__":
    main()
