"""The paper's future-work section (§6.1), implemented.

Four things the paper asks for and this reproduction builds:

1. **alignment inside the DBMS** — ``EXEC usp_align_sample`` /
   ``SELECT ... FROM AlignShortReads(...)``;
2. **indexing for sequence search** — the q-gram-backed
   ``SearchShortReads`` TVF;
3. **probabilistic sequence data** — quality-aware UDFs and the
   probability-weighted Query 1;
4. **data provenance** — PROV-style lineage from a consensus back to
   the lane it came from.

Run:  python examples/future_work.py
"""

from repro.core import (
    GenomicsWarehouse,
    ProvenanceTracker,
    register_alignment_extensions,
    register_probabilistic_extensions,
)
from repro.core.probabilistic import execute_probabilistic_query1
from repro.genomics import annotate_genes, generate_reference, simulate_dge_lane


def main() -> None:
    reference = generate_reference(2, 30_000, seed=61)
    genes = annotate_genes(reference, 40, gene_length=(300, 800), seed=62)
    reads = list(simulate_dge_lane(reference, genes, 8_000, seed=63))

    with GenomicsWarehouse() as warehouse:
        warehouse.load_reference(reference)
        warehouse.load_genes(genes)
        warehouse.register_experiment(1, "future work demo", "dge")
        warehouse.register_sample_group(1, 1, "grp")
        warehouse.register_sample(1, 1, 1, "smp")
        warehouse.import_lane_relational(1, 1, 1, reads)

        register_alignment_extensions(warehouse.db)
        register_probabilistic_extensions(warehouse.db)
        tracker = ProvenanceTracker(warehouse.db)

        # --- 1. alignment as a stored procedure -----------------------
        lane_ent = tracker.new_entity("fastq-lane", "demo lane 1")
        ref_ent = tracker.new_entity("reference", "synthetic v1")
        aligned = warehouse.db.call_procedure("usp_align_sample", 1, 1, 1, 2)
        aln_ent = tracker.new_entity("alignment-set", "sample 1/1/1")
        tracker.record_activity(
            "usp_align_sample",
            {"max_mismatches": 2, "aligner": "seed-hash"},
            used=[lane_ent, ref_ent],
            generated=[aln_ent],
        )
        print(f"1. in-database alignment: {aligned:,} Alignment rows, "
              "zero intermediate files")

        # --- 2. indexed sequence search --------------------------------
        pattern = reads[0].sequence[8:24]
        hits = warehouse.db.query(
            f"SELECT COUNT(*) FROM SearchShortReads('{pattern}', 1)"
        )[0][0]
        print(f"2. q-gram search: pattern {pattern} found in {hits:,} reads "
              "(<= 1 mismatch), via an index instead of a scan")

        # --- 3. probability-aware analysis ------------------------------
        rows = execute_probabilistic_query1(warehouse.db, 1, 1, 1)
        print("3. probabilistic Query 1 — raw count vs expected true count:")
        for seq, frequency, expected in rows[:5]:
            print(f"   {seq[:24]}...  raw {frequency:>5}  expected {expected:8.1f}")

        # --- 4. provenance ------------------------------------------------
        expr_ent = tracker.new_entity("expression-table", "GeneExpression 1/1/1")
        warehouse.bin_unique_tags(1, 1, 1)
        warehouse.align_tags(1, 1, 1)
        warehouse.compute_gene_expression(1, 1, 1)
        tracker.record_activity(
            "query2-gene-expression", {}, used=[aln_ent], generated=[expr_ent]
        )
        print("\n4. lineage of the expression table:")
        print(tracker.render_lineage(expr_ent))


if __name__ == "__main__":
    main()
