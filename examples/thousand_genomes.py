"""Example 1 of the paper: a 1000-Genomes-style re-sequencing workflow.

An individual's sample is sequenced at high coverage, aligned against
the reference genome, and reduced to a per-chromosome consensus with the
sliding-window UDA (Query 3). The consensus is then compared back to
the genome it was sampled from — the accuracy check a re-sequencing
pipeline lives or dies by.

Run:  python examples/thousand_genomes.py
"""

from repro.core import GenomicsWarehouse, SequencingWorkflow, queries
from repro.genomics import (
    generate_reference,
    mutate_reference,
    score_calls,
    simulate_resequencing_lane,
)


def main() -> None:
    reference = generate_reference(
        n_chromosomes=2, chromosome_length=40_000, seed=41
    )
    # the *individual* being sequenced carries ~1 SNP per kb vs the reference
    individual, truth_snps = mutate_reference(
        reference, mutation_rate=0.001, seed=43
    )
    # ~9x coverage: 2 chromosomes x 40 kb x 9 / 36 bp = 20k reads
    reads = list(
        simulate_resequencing_lane(individual, n_reads=20_000, seed=42)
    )

    with GenomicsWarehouse(alignment_clustering="position") as warehouse:
        warehouse.load_reference(reference)
        warehouse.register_experiment(1, "1000 genomes pilot", "resequencing")
        warehouse.register_sample_group(1, 1, "individuals")
        warehouse.register_sample(1, 1, 1, "NA12878")

        workflow = SequencingWorkflow(warehouse)
        counts = workflow.run_all(1, 1, 1, reads, kind="resequencing")
        print(
            f"pipeline: {counts['reads']} reads, "
            f"{counts['alignments']} alignments "
            f"({counts['alignments'] / counts['reads']:.0%} aligned), "
            f"{counts['tertiary']} chromosome consensi"
        )

        # the optimiser's plan for the consensus query (Figure 10 shape)
        print("\nQuery 3 plan (sliding-window UDA, no sort):")
        print(warehouse.db.explain(queries.query3_sliding_window_sql(1, 1, 1)))

        # compare the called consensus against the individual's genome
        print("\nconsensus accuracy (vs the individual's true genome):")
        id_to_name = {v: k for k, v in warehouse.reference_names.items()}
        genome_by_name = {r.name: r.sequence for r in individual}
        for rs_id, start, seq in warehouse.db.query(
            "SELECT c_rs_id, c_start, c_seq FROM Consensus"
        ):
            name = id_to_name[rs_id]
            truth = genome_by_name[name][start : start + len(seq)]
            called = [(a, b) for a, b in zip(seq, truth) if a != "N"]
            agree = sum(1 for a, b in called if a == b)
            print(
                f"  {name}: {len(seq):,} bp consensus, "
                f"{len(called):,} called, "
                f"{agree / len(called):.2%} agree with the genome"
            )

        # SNP calling: variations between this individual and the reference
        called_snps = warehouse.call_variants(1, 1, 1, min_quality=30)
        score = score_calls(called_snps, truth_snps)
        print(
            f"\nSNP calling: {len(called_snps)} called vs "
            f"{len(truth_snps)} planted — precision "
            f"{score['precision']:.2%}, recall {score['recall']:.2%}"
        )
        for rs_id, pos, ref_base, alt_base, qual in warehouse.db.query(
            """
            SELECT TOP 5 v_rs_id, v_pos, ref_base, alt_base, v_qual
              FROM Variant ORDER BY v_qual DESC
            """
        ):
            print(
                f"  {id_to_name[rs_id]}:{pos} {ref_base}>{alt_base} (q{qual})"
            )

        # depth / quality bookkeeping straight from SQL
        print("\nalignment quality profile:")
        for mapq_band, count in warehouse.db.query(
            """
            SELECT CASE WHEN a_mapq >= 40 THEN 'unique (mapq>=40)'
                        WHEN a_mapq > 0 THEN 'confident'
                        ELSE 'ambiguous (repeats)' END AS band,
                   COUNT(*)
              FROM Alignment
             GROUP BY CASE WHEN a_mapq >= 40 THEN 'unique (mapq>=40)'
                           WHEN a_mapq > 0 THEN 'confident'
                           ELSE 'ambiguous (repeats)' END
             ORDER BY band
            """
        ):
            print(f"  {mapq_band:<22} {count:>8,}")


if __name__ == "__main__":
    main()
