"""Example 2 of the paper: a digital gene expression study, end to end.

Two samples (think healthy vs cancer cells) are sequenced, processed
through all workflow phases inside the warehouse, and compared with a
differential-expression query — the tertiary analysis of Section 2.1.2,
expressed entirely in SQL over the normalized schema.

Run:  python examples/gene_expression_study.py
"""

from repro.core import GenomicsWarehouse, SequencingWorkflow
from repro.genomics import annotate_genes, generate_reference, simulate_dge_lane


def main() -> None:
    reference = generate_reference(
        n_chromosomes=3, chromosome_length=50_000, seed=21
    )
    genes = annotate_genes(reference, n_genes=80, seed=22)

    # two samples with *different* expression profiles (different seeds
    # shuffle which genes sit at the head of the Zipf distribution)
    healthy = list(
        simulate_dge_lane(reference, genes, n_reads=20_000, lane=1, seed=31)
    )
    disease = list(
        simulate_dge_lane(reference, genes, n_reads=20_000, lane=2, seed=77)
    )

    with GenomicsWarehouse() as warehouse:
        warehouse.load_reference(reference)
        warehouse.load_genes(genes)
        warehouse.register_experiment(
            1, "digital gene expression study", "dge"
        )
        warehouse.register_sample_group(1, 1, "conditions")
        warehouse.register_sample(1, 1, 1, "healthy cells")
        warehouse.register_sample(1, 1, 2, "disease cells")
        warehouse.register_flowcell(1, "Illumina GA")
        warehouse.register_lane(1, 1, 1, 1, 1)
        warehouse.register_lane(1, 2, 1, 1, 2)

        workflow = SequencingWorkflow(warehouse)
        for s_id, reads, label in ((1, healthy, "healthy"), (2, disease, "disease")):
            counts = workflow.run_all(1, 1, s_id, reads, kind="dge", lane=s_id)
            print(
                f"{label}: {counts['reads']} reads -> "
                f"{counts['alignments']} tag alignments -> "
                f"{counts['tertiary']} expressed genes"
            )

        # differential expression: one self-join over GeneExpression
        print("\nTop differentially expressed genes (healthy vs disease):")
        rows = warehouse.db.query(
            """
            SELECT TOP 10 name,
                   h.total_freq AS healthy_freq,
                   d.total_freq AS disease_freq,
                   h.total_freq - d.total_freq AS delta
              FROM (SELECT ge_g_id AS hg, total_freq
                      FROM GeneExpression WHERE ge_s_id = 1) AS h
              JOIN (SELECT ge_g_id AS dg, total_freq
                      FROM GeneExpression WHERE ge_s_id = 2) AS d
                ON (hg = dg)
              JOIN Gene ON (g_id = hg)
             ORDER BY ABS(h.total_freq - d.total_freq) DESC
            """
        )
        print(f"{'gene':<12}{'healthy':>10}{'disease':>10}{'delta':>10}")
        for name, healthy_freq, disease_freq, delta in rows:
            print(f"{name:<12}{healthy_freq:>10}{disease_freq:>10}{delta:>10}")

        # the statistical test behind the ranking ("this is based on
        # statistical analysis") — significance via a two-proportion test
        from repro.core import differential_expression

        print("\nStatistically significant differences (p < 0.05):")
        for result in differential_expression(warehouse.db, 1, 1, 1, 2)[:8]:
            marker = "*" if result.significant else " "
            print(
                f" {marker} {result.gene_name:<12} "
                f"log2FC {result.log2_fold_change:+6.2f}  "
                f"p = {result.p_value:.2e}"
            )

        # the provenance trail the paper's future-work section asks for
        print("\nProvenance of sample 1:")
        for phase, tool, params, rows_out in workflow.provenance(1, 1, 1):
            print(f"  phase {phase}: {tool:<40} -> {rows_out} rows  {params}")


if __name__ == "__main__":
    main()
