-- Lint-clean demonstration workload for `repro-genomics lint`.
--
-- Exercises the schema shapes the paper's Queries 1-3 rely on: a
-- clustered read table, a secondary index, a join on tag text, and a
-- grouped aggregate. The plan-time analyzer (sql_lint) runs over every
-- statement; this script is expected to produce no warnings or errors.

CREATE TABLE Read (
    r_id BIGINT PRIMARY KEY,
    r_sample INT,
    r_lane INT,
    r_tile INT,
    short_read_seq VARCHAR(100),
    quals VARCHAR(100)
);

CREATE TABLE Tag (
    t_id INT PRIMARY KEY,
    t_seq VARCHAR(100),
    t_frequency INT
);

INSERT INTO Read VALUES
    (1, 1, 1, 1, 'ACGTACGTACGT', 'IIIIIIIIIIII'),
    (2, 1, 1, 1, 'TTGACCAATTGA', 'IIIIIIIIHHHH'),
    (3, 1, 1, 2, 'ACGTACGTACGT', 'IIIIIIIIIIII'),
    (4, 1, 2, 2, 'GGGGACGTACGT', 'HHHHIIIIIIII'),
    (5, 1, 2, 3, 'ACGTACGTACGT', 'GGGGIIIIIIII');

INSERT INTO Tag VALUES
    (1, 'ACGTACGTACGT', 3),
    (2, 'TTGACCAATTGA', 1),
    (3, 'GGGGACGTACGT', 1);

CREATE INDEX ix_tag_seq ON Tag (t_seq);

-- point lookup through the clustered key (SARGable: bare column)
SELECT short_read_seq FROM Read WHERE r_id = 3;

-- the Query-1 shape: bin identical reads, frequency-ranked
SELECT short_read_seq, COUNT(*) AS freq
FROM Read
GROUP BY short_read_seq
ORDER BY freq DESC;

-- equi-join against the tag dictionary (no cartesian product)
SELECT r.r_id, t.t_id, t.t_frequency
FROM Read AS r
JOIN Tag AS t ON (r.short_read_seq = t.t_seq)
WHERE t.t_frequency > 1;
