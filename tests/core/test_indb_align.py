"""In-database alignment TVF / procedure and q-gram search TVF."""

import pytest

from repro.core import GenomicsWarehouse, register_alignment_extensions
from repro.engine.errors import UdfError


@pytest.fixture(scope="module")
def warehouse(reference, genes, dge_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "x", "dge")
    wh.register_sample_group(1, 1, "g")
    wh.register_sample(1, 1, 1, "s")
    wh.import_lane_relational(1, 1, 1, dge_reads[:600])
    register_alignment_extensions(wh.db)
    yield wh
    wh.close()


class TestAlignTvf:
    def test_select_from_tvf(self, warehouse):
        rows = warehouse.db.query(
            "SELECT r_id, rs_id, pos, strand FROM AlignShortReads(1, 1, 1, 2)"
        )
        assert len(rows) > 500
        rs_ids = set(warehouse.reference_names.values())
        assert {r[1] for r in rows} <= rs_ids

    def test_matches_python_aligner(self, warehouse, dge_reads):
        from repro.genomics.fastq import FastqRecord

        tvf_hits = {
            r_id: (rs_id, pos, strand)
            for r_id, rs_id, pos, strand, _mm, _mapq in warehouse.db.query(
                "SELECT * FROM AlignShortReads(1, 1, 1, 2)"
            )
        }
        names = warehouse.reference_names
        for r_id, record in list(enumerate(dge_reads[:600], start=1))[:50]:
            direct = warehouse.aligner.align(
                FastqRecord(f"r_{r_id}", record.sequence, record.quality)
            )
            if direct is None:
                assert r_id not in tvf_hits
            else:
                assert tvf_hits[r_id] == (
                    names[direct.reference],
                    direct.position,
                    direct.strand,
                )

    def test_aggregation_over_tvf(self, warehouse):
        rows = warehouse.db.query(
            """
            SELECT rs_id, COUNT(*) FROM AlignShortReads(1, 1, 1, 2)
            GROUP BY rs_id ORDER BY rs_id
            """
        )
        assert sum(count for _rs, count in rows) > 500

    def test_empty_sample_yields_nothing(self, warehouse):
        assert warehouse.db.query(
            "SELECT * FROM AlignShortReads(9, 9, 9, 2)"
        ) == []


class TestAlignProcedure:
    def test_usp_align_sample_populates_alignment(self, warehouse):
        count = warehouse.db.call_procedure("usp_align_sample", 1, 1, 1, 2)
        assert count > 500
        assert warehouse.db.scalar("SELECT COUNT(*) FROM Alignment") == count
        # rows landed in clustered order: ordered_scan keys ascend
        keys = [
            (row[6], row[8])
            for row in warehouse.db.table("Alignment").ordered_scan()
        ]
        assert keys == sorted(keys)

    def test_insert_select_from_tvf(self, warehouse):
        warehouse.db.execute("TRUNCATE TABLE Alignment")
        inserted = warehouse.db.execute(
            """
            INSERT INTO Alignment
                (a_e_id, a_sg_id, a_s_id, a_id, a_r_id, a_rs_id,
                 a_pos, a_strand, a_mismatches, a_mapq)
            SELECT 1, 1, 1, r_id, r_id, rs_id, pos, strand, mismatches, mapq
              FROM AlignShortReads(1, 1, 1, 2)
            """
        )
        assert inserted > 500


class TestSearchTvf:
    def test_exact_pattern(self, warehouse, dge_reads):
        pattern = dge_reads[0].sequence[:12]
        rows = warehouse.db.query(
            f"SELECT r_id, match_pos, mismatches "
            f"FROM SearchShortReads('{pattern}', 0)"
        )
        assert rows
        assert all(mm == 0 for _r, _p, mm in rows)
        # read 1 contains its own prefix at position 0
        assert any(r_id == 1 and pos == 0 for r_id, pos, _mm in rows)

    def test_approximate_superset_of_exact(self, warehouse, dge_reads):
        pattern = dge_reads[0].sequence[:12]
        exact = set(
            warehouse.db.query(
                f"SELECT r_id, match_pos FROM SearchShortReads('{pattern}', 0)"
            )
        )
        approx = set(
            warehouse.db.query(
                f"SELECT r_id, match_pos FROM SearchShortReads('{pattern}', 1)"
            )
        )
        assert exact <= approx

    def test_join_search_results_with_reads(self, warehouse, dge_reads):
        pattern = dge_reads[0].sequence[:12]
        rows = warehouse.db.query(
            f"""
            SELECT hits.r_id, lane
              FROM SearchShortReads('{pattern}', 0) AS hits
              JOIN [Read] ON (hits.r_id = [Read].r_id)
            """
        )
        assert rows

    def test_empty_pattern_rejected(self, warehouse):
        with pytest.raises(UdfError):
            warehouse.db.query("SELECT * FROM SearchShortReads('', 0)")
