"""The five §5.2 file-scanning variants must agree on the count."""

import uuid

import pytest

from repro.core.filewrap import (
    build_interpreted_count_procedure,
    count_records_chunked,
    count_records_command_line,
    count_records_interpreted,
    count_records_streamreader,
    count_records_tvf,
)
from repro.core.schemas import create_filestream_schema
from repro.core.wrappers import register_extensions
from repro.engine import Database
from repro.genomics.fasta import FastaRecord, write_fasta

N_RECORDS = 400


@pytest.fixture(scope="module")
def scan_setup(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("filewrap")
    records = [
        FastaRecord(f"read_{i}", "ACGTACGTACGTACGTACGTACGTACGTACGT")
        for i in range(N_RECORDS)
    ]
    fasta_path = tmp / "lane.fasta"
    write_fasta(records, fasta_path)
    db = Database(data_dir=tmp / "db")
    register_extensions(db)
    create_filestream_schema(db)
    guid = uuid.uuid4()
    db.bulk_insert_filestream(
        "ShortReadFiles",
        {"guid": guid, "sample": 855, "lane": 1, "fmt": "FastA"},
        "reads",
        fasta_path,
    )
    blob_guid = db.query("SELECT reads FROM ShortReadFiles")[0][0]
    yield db, fasta_path, blob_guid
    db.close()


class TestVariantsAgree:
    def test_command_line(self, scan_setup):
        _db, path, _guid = scan_setup
        assert count_records_command_line(path) == N_RECORDS

    def test_command_line_small_chunks(self, scan_setup):
        _db, path, _guid = scan_setup
        assert count_records_command_line(path, chunk_size=64) == N_RECORDS

    def test_interpreted_procedure(self, scan_setup):
        db, _path, guid = scan_setup
        assert count_records_interpreted(db, guid) == N_RECORDS

    def test_streamreader(self, scan_setup):
        db, _path, guid = scan_setup
        assert count_records_streamreader(db, guid) == N_RECORDS

    def test_chunked(self, scan_setup):
        db, _path, guid = scan_setup
        assert count_records_chunked(db, guid) == N_RECORDS

    def test_chunked_tiny_chunks(self, scan_setup):
        db, _path, guid = scan_setup
        assert count_records_chunked(db, guid, chunk_size=300) == N_RECORDS

    def test_tvf(self, scan_setup):
        db, _path, _guid = scan_setup
        assert count_records_tvf(db, 855, 1, "FastA") == N_RECORDS


class TestFastqVariant:
    def test_fastq_markers(self, tmp_path):
        from repro.genomics.fastq import FastqRecord, write_fastq

        path = tmp_path / "x.fastq"
        write_fastq(
            [FastqRecord(f"r{i}", "ACGT", "IIII") for i in range(25)], path
        )
        assert count_records_command_line(path, fmt="fastq") == 25

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("data")
        with pytest.raises(ValueError):
            count_records_command_line(path, fmt="sff")


class TestInterpretedProcedureShape:
    def test_procedure_builds_for_both_formats(self):
        fasta = build_interpreted_count_procedure("fasta")
        fastq = build_interpreted_count_procedure("fastq")
        assert fasta.name != fastq.name
        assert fasta.params == ("@guid",)

    def test_interpreted_is_slower_than_chunked(self, scan_setup):
        """The architectural claim of §5.2: statement-at-a-time
        interpretation loses badly to compiled chunked scans."""
        import time

        db, _path, guid = scan_setup
        start = time.perf_counter()
        count_records_interpreted(db, guid)
        interpreted = time.perf_counter() - start
        start = time.perf_counter()
        count_records_chunked(db, guid)
        chunked = time.perf_counter() - start
        assert interpreted > chunked
