"""SequencingWorkflow: phases and provenance."""

import json

import pytest

from repro.core import GenomicsWarehouse, SequencingWorkflow


@pytest.fixture
def dge_setup(reference, genes):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "dge run", "dge")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    workflow = SequencingWorkflow(wh)
    yield wh, workflow
    wh.close()


@pytest.fixture
def reseq_setup(reference):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.register_experiment(2, "reseq run", "resequencing")
    wh.register_sample_group(2, 1, "grp")
    wh.register_sample(2, 1, 1, "smp")
    workflow = SequencingWorkflow(wh)
    yield wh, workflow
    wh.close()


class TestDgeWorkflow:
    def test_all_phases(self, dge_setup, dge_reads):
        wh, workflow = dge_setup
        counts = workflow.run_all(1, 1, 1, dge_reads, kind="dge")
        assert counts["reads"] == len(dge_reads)
        assert counts["alignments"] > 0
        assert counts["tertiary"] > 0
        assert wh.db.scalar("SELECT COUNT(*) FROM GeneExpression") == counts[
            "tertiary"
        ]

    def test_provenance_records_every_phase(self, dge_setup, dge_reads):
        _wh, workflow = dge_setup
        workflow.run_all(1, 1, 1, dge_reads, kind="dge")
        events = workflow.provenance(1, 1, 1)
        phases = [phase for phase, _tool, _params, _rows in events]
        assert phases == [1, 2, 2, 3]  # import, binning, align, expression

    def test_provenance_params_are_json(self, dge_setup, dge_reads):
        _wh, workflow = dge_setup
        workflow.run_all(1, 1, 1, dge_reads, kind="dge", hybrid=True)
        events = workflow.provenance(1, 1, 1)
        params = json.loads(events[0][2])
        assert params["hybrid"] is True

    def test_non_hybrid_path(self, dge_setup, dge_reads):
        wh, workflow = dge_setup
        workflow.run_primary(1, 1, 1, dge_reads[:60], hybrid=False)
        assert wh.db.scalar("SELECT COUNT(*) FROM ShortReadFiles") == 0
        assert wh.db.scalar("SELECT COUNT(*) FROM [Read]") == 60


class TestReseqWorkflow:
    def test_all_phases_with_consensus(self, reseq_setup, reseq_reads):
        wh, workflow = reseq_setup
        counts = workflow.run_all(
            2, 1, 1, reseq_reads[:500], kind="resequencing"
        )
        assert counts["reads"] == 500
        assert counts["tertiary"] >= 1
        assert wh.db.scalar("SELECT COUNT(*) FROM Consensus") >= 1

    def test_pivot_method_option(self, reseq_setup, reseq_reads):
        wh, workflow = reseq_setup
        workflow.run_primary(2, 1, 1, reseq_reads[:300], hybrid=False)
        workflow.run_secondary(2, 1, 1, "resequencing")
        count = workflow.run_tertiary(
            2, 1, 1, "resequencing", consensus_method="pivot"
        )
        assert count >= 1

    def test_unknown_kind_rejected(self, reseq_setup):
        from repro.engine.errors import EngineError

        _wh, workflow = reseq_setup
        with pytest.raises(EngineError):
            workflow.run_secondary(2, 1, 1, "metagenomics")


class TestEventAccounting:
    def test_durations_recorded(self, dge_setup, dge_reads):
        _wh, workflow = dge_setup
        workflow.run_all(1, 1, 1, dge_reads[:100], kind="dge")
        assert all(event.duration >= 0 for event in workflow.events)

    def test_events_isolated_per_sample(self, dge_setup, dge_reads):
        wh, workflow = dge_setup
        wh.register_sample(1, 1, 2, "second")
        workflow.run_primary(1, 1, 1, dge_reads[:30], hybrid=False)
        workflow.run_primary(1, 1, 2, dge_reads[30:60], lane=2, hybrid=False)
        assert len(workflow.provenance(1, 1, 1)) == 1
        assert len(workflow.provenance(1, 1, 2)) == 1
