"""Storage-efficiency harness: the Tables 1/2 invariants."""

from collections import Counter

import pytest

from repro.core.storage_report import (
    ARTIFACT_LABELS,
    DESIGNS,
    ScenarioData,
    format_table,
    measure_storage,
)


def bin_tags(reads):
    counts = Counter(r.sequence for r in reads if "N" not in r.sequence)
    return [
        (rank, count, seq)
        for rank, (seq, count) in enumerate(
            sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])), start=1
        )
    ]


@pytest.fixture(scope="module")
def dge_table(reference, genes, dge_reads, aligner, tmp_path_factory):
    hits = [a for _r, a in aligner.align_all(dge_reads[:400]) if a]
    scenario = ScenarioData(
        kind="dge",
        reads=dge_reads,
        alignments=hits,
        ranked_tags=bin_tags(dge_reads),
        expression=[(f"GENE{i:05d}", i * 3, i) for i in range(1, 15)],
    )
    return measure_storage(
        scenario, workdir=tmp_path_factory.mktemp("dge-storage")
    )


@pytest.fixture(scope="module")
def reseq_table(reference, reseq_reads, aligner, tmp_path_factory):
    hits = [a for _r, a in aligner.align_all(reseq_reads[:400]) if a]
    scenario = ScenarioData(
        kind="resequencing", reads=reseq_reads, alignments=hits
    )
    return measure_storage(
        scenario, workdir=tmp_path_factory.mktemp("reseq-storage")
    )


class TestTable1Shapes:
    """The claims of Section 5.1.1 (digital gene expression)."""

    def test_filestream_equals_files(self, dge_table):
        reads = dge_table["short_reads"]
        assert reads["filestream"] == reads["files"]

    def test_one_to_one_no_smaller_than_files(self, dge_table):
        reads = dge_table["short_reads"]
        assert reads["one_to_one"] >= reads["files"]

    def test_row_compression_brings_normalized_to_files_level(self, dge_table):
        reads = dge_table["short_reads"]
        assert reads["norm_row"] <= reads["files"] * 1.1

    def test_page_compression_effective_on_repetitive_tags(self, dge_table):
        reads = dge_table["short_reads"]
        assert reads["norm_page"] < reads["norm_row"]

    def test_normalized_beats_one_to_one_on_linked_data(self, dge_table):
        alignments = dge_table["alignments"]
        assert alignments["normalized"] < alignments["one_to_one"]

    def test_every_artifact_measured(self, dge_table):
        assert set(dge_table) == {
            "short_reads",
            "unique_tags",
            "alignments",
            "expression",
        }


class TestTable2Shapes:
    """The claims of Section 5.1.2 (1000 Genomes re-sequencing)."""

    def test_filestream_equals_files(self, reseq_table):
        reads = reseq_table["short_reads"]
        assert reads["filestream"] == reads["files"]

    def test_normalized_alignments_save_large_fraction(self, reseq_table):
        """'for the alignments, we can save 40% space this way'"""
        alignments = reseq_table["alignments"]
        assert alignments["normalized"] < alignments["files"] * 0.6

    def test_page_compression_weak_on_unique_reads(self, reseq_table):
        """Unique sequences defeat prefix/dictionary compression: the
        PAGE gain over ROW must be small on this workload."""
        reads = reseq_table["short_reads"]
        row_size, page_size = reads["norm_row"], reads["norm_page"]
        assert page_size >= row_size * 0.9

    def test_udt_shrinks_sequence_payload(self, reseq_table):
        reads = reseq_table["short_reads"]
        assert reads["norm_udt"] < reads["normalized"]

    def test_no_tags_artifact_for_resequencing(self, reseq_table):
        assert "unique_tags" not in reseq_table


class TestFormatting:
    def test_render_includes_all_designs(self, dge_table):
        text = format_table(dge_table, "Table 1")
        for design in DESIGNS:
            if any(design in row for row in dge_table.values()):
                assert design == "files" or True  # labels checked below
        for label in ("Files", "FileStream", "Normalized"):
            assert label in text

    def test_render_shows_ratios(self, dge_table):
        text = format_table(dge_table, "Table 1")
        assert "1.00x" in text  # files vs itself

    def test_render_includes_artifact_labels(self, dge_table):
        text = format_table(dge_table, "Table 1")
        for key in dge_table:
            assert ARTIFACT_LABELS[key] in text
