"""Probabilistic sequence extension (future-work feature)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.probabilistic import (
    PROB_SEQUENCE_UDT,
    ProbabilisticSequence,
    execute_probabilistic_query1,
    register_probabilistic_extensions,
)
from repro.engine import Database
from repro.engine.errors import UdfError
from repro.genomics.quality import encode_phred


def seq_with_quality(bases, scores):
    return ProbabilisticSequence(bases, encode_phred(scores))


class TestModel:
    def test_length_mismatch_rejected(self):
        with pytest.raises(UdfError):
            ProbabilisticSequence("ACGT", "II")

    def test_error_probabilities(self):
        prob_seq = seq_with_quality("AC", [10, 20])
        assert prob_seq.error_probabilities == pytest.approx([0.1, 0.01])

    def test_reliability(self):
        prob_seq = seq_with_quality("AC", [10, 10])
        assert prob_seq.reliability() == pytest.approx(0.81)

    def test_expected_mismatches(self):
        prob_seq = seq_with_quality("ACGT", [10] * 4)
        assert prob_seq.expected_mismatches() == pytest.approx(0.4)

    def test_match_probability_exact(self):
        prob_seq = seq_with_quality("AC", [20, 20])
        assert prob_seq.match_probability("AC") == pytest.approx(0.99**2)

    def test_match_probability_one_substitution(self):
        prob_seq = seq_with_quality("AC", [20, 20])
        expected = 0.99 * (0.01 / 3)
        assert prob_seq.match_probability("AG") == pytest.approx(expected)

    def test_match_probability_length_mismatch_zero(self):
        assert seq_with_quality("AC", [20, 20]).match_probability("A") == 0.0

    def test_high_quality_read_more_reliable(self):
        low = seq_with_quality("ACGT", [5] * 4)
        high = seq_with_quality("ACGT", [40] * 4)
        assert high.reliability() > low.reliability()

    @given(
        st.text(alphabet="ACGTN", min_size=1, max_size=40),
        st.lists(st.integers(2, 60), min_size=1, max_size=40),
    )
    def test_udt_round_trip_property(self, bases, scores):
        scores = (scores * 40)[: len(bases)]
        prob_seq = seq_with_quality(bases, scores)
        raw = PROB_SEQUENCE_UDT.serialize(prob_seq)
        assert PROB_SEQUENCE_UDT.deserialize(raw) == prob_seq

    def test_udt_accepts_tuple(self):
        raw = PROB_SEQUENCE_UDT.serialize(("ACGT", "IIII"))
        assert PROB_SEQUENCE_UDT.deserialize(raw).bases == "ACGT"


class TestSqlIntegration:
    @pytest.fixture
    def db(self):
        with Database() as database:
            register_probabilistic_extensions(database)
            database.execute(
                """
                CREATE TABLE reads (
                    id INT PRIMARY KEY,
                    seq VARCHAR(50),
                    quals VARCHAR(50)
                )
                """
            )
            database.execute(
                "INSERT INTO reads VALUES "
                "(1, 'ACGT', 'IIII'), (2, 'ACGT', '!!!!'), (3, 'TTTT', 'IIII')"
            )
            yield database

    def test_sequence_reliability_udf(self, db):
        rows = db.query(
            "SELECT id, SequenceReliability(quals) FROM reads ORDER BY id"
        )
        assert rows[0][1] > 0.99  # all-I (q40)
        assert rows[1][1] == pytest.approx(0.0, abs=1e-9)  # all-! (q0)

    def test_expected_mismatches_udf(self, db):
        value = db.scalar(
            "SELECT ExpectedMismatches(quals) FROM reads WHERE id = 2"
        )
        assert value == pytest.approx(4.0)

    def test_base_error_probability_udf(self, db):
        value = db.scalar(
            "SELECT BaseErrorProbability(quals, 1) FROM reads WHERE id = 1"
        )
        assert value == pytest.approx(1e-4)
        assert db.scalar(
            "SELECT BaseErrorProbability(quals, 99) FROM reads WHERE id = 1"
        ) is None

    def test_prob_match_udf_in_where(self, db):
        rows = db.query(
            """
            SELECT id FROM reads
            WHERE ProbMatch(seq, quals, 'ACGT') > 0.5
            """
        )
        assert rows == [(1,)]

    def test_prob_sequence_column(self, db):
        db.execute("CREATE TABLE p (id INT PRIMARY KEY, ps ProbSequence)")
        db.table("p").insert((1, ProbabilisticSequence("ACGTN", "IIII!")))
        value = db.query("SELECT ps FROM p")[0][0]
        assert value.bases == "ACGTN"
        assert value.quality == "IIII!"


class TestProbabilisticQuery1:
    def test_expected_counts_discount_shaky_reads(self, reference, genes):
        from repro.core import GenomicsWarehouse
        from repro.genomics import simulate_dge_lane

        wh = GenomicsWarehouse()
        try:
            wh.load_reference(reference)
            wh.load_genes(genes)
            wh.register_experiment(1, "x", "dge")
            wh.register_sample_group(1, 1, "g")
            wh.register_sample(1, 1, 1, "s")
            reads = list(simulate_dge_lane(reference, genes, 1500, seed=5))
            wh.import_lane_relational(1, 1, 1, reads)
            register_probabilistic_extensions(wh.db)
            rows = execute_probabilistic_query1(wh.db, 1, 1, 1)
            assert rows
            for _seq, frequency, expected in rows:
                assert 0.0 <= expected <= frequency
            # ordering is by expected count, descending
            expected_counts = [e for _s, _f, e in rows]
            assert expected_counts == sorted(expected_counts, reverse=True)
        finally:
            wh.close()
