"""GenomicsWarehouse: imports, alignment, physical design options."""

import pytest

from repro.core import GenomicsWarehouse
from repro.engine.errors import BindError, EngineError


@pytest.fixture
def empty_warehouse():
    wh = GenomicsWarehouse()
    yield wh
    wh.close()


@pytest.fixture
def loaded(empty_warehouse, reference, genes):
    wh = empty_warehouse
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "exp", "dge")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    return wh


class TestProvenanceTables:
    def test_experiment_rows(self, loaded):
        rows = loaded.db.query("SELECT e_id, name, kind FROM Experiment")
        assert rows == [(1, "exp", "dge")]

    def test_fk_chain_enforced(self, loaded):
        from repro.engine.errors import ConstraintViolation

        with pytest.raises(ConstraintViolation):
            loaded.register_sample_group(99, 1, "orphan")

    def test_flowcell_and_lane(self, loaded):
        loaded.register_flowcell(7, "Illumina GA II")
        loaded.register_lane(7, 1, 1, 1, 1, is_control=True)
        rows = loaded.db.query(
            "SELECT l_fc_id, l_lane, is_control FROM Lane"
        )
        assert rows == [(7, 1, 1)]

    def test_navigational_join(self, loaded):
        """The paper's pitch: explore experiment context with one query."""
        rows = loaded.db.query(
            """
            SELECT Experiment.name, Sample.name FROM Experiment
            JOIN SampleGroup ON (e_id = sg_e_id)
            JOIN Sample ON (sg_e_id = s_e_id AND sg_id = s_sg_id)
            """
        )
        assert rows == [("exp", "smp")]


class TestReferenceLoading:
    def test_reference_rows(self, loaded, reference):
        rows = loaded.db.query(
            "SELECT rs_id, name, length FROM ReferenceSequence ORDER BY rs_id"
        )
        assert [r[1] for r in rows] == [r.name for r in reference]

    def test_gene_rows_link_chromosomes(self, loaded, genes):
        count = loaded.db.scalar("SELECT COUNT(*) FROM Gene")
        assert count == len(genes)

    def test_gene_at_lookup(self, loaded, genes):
        gene = genes[0]
        middle = (gene.start + gene.end) // 2
        assert loaded.gene_at(gene.chromosome, middle) == gene.gene_id
        assert loaded.gene_at(gene.chromosome, gene.end + 1) != gene.gene_id

    def test_gene_with_unknown_chromosome_rejected(self, loaded):
        from repro.genomics.simulate import GeneAnnotation

        with pytest.raises(BindError):
            loaded.load_genes(
                [GeneAnnotation(999, "X", "chr99", 0, 10, "+")]
            )

    def test_aligner_requires_reference(self, empty_warehouse):
        with pytest.raises(EngineError):
            _ = empty_warehouse.aligner


class TestImports:
    def test_relational_import(self, loaded, dge_reads):
        count = loaded.import_lane_relational(1, 1, 1, dge_reads[:100])
        assert count == 100
        assert loaded.db.scalar("SELECT COUNT(*) FROM [Read]") == 100

    def test_read_rows_decompose_illumina_names(self, loaded, dge_reads):
        loaded.import_lane_relational(1, 1, 1, dge_reads[:10])
        rows = loaded.db.query("SELECT lane, tile, x, y FROM [Read]")
        assert all(tile >= 1 for _lane, tile, _x, _y in rows)

    def test_hybrid_import_and_etl(self, loaded, dge_reads):
        loaded.import_lane_hybrid(sample=855, lane=1, records=dge_reads[:50])
        assert loaded.db.scalar("SELECT COUNT(*) FROM ShortReadFiles") == 1
        count = loaded.load_reads_from_filestream(1, 1, 1, sample=855, lane=1)
        assert count == 50
        # payload survives byte-for-byte through the TVF path
        rows = loaded.db.query("SELECT short_read_seq FROM [Read]")
        assert {r[0] for r in rows} == {r.sequence for r in dge_reads[:50]}

    def test_hybrid_blob_matches_fastq_bytes(self, loaded, dge_reads):
        from repro.genomics.fastq import fastq_bytes

        guid = loaded.import_lane_hybrid(855, 2, dge_reads[:20])
        assert loaded.db.filestream.read_all(guid) == fastq_bytes(
            dge_reads[:20]
        )


class TestSecondaryAnalysis:
    @pytest.fixture
    def with_reads(self, loaded, dge_reads):
        loaded.import_lane_relational(1, 1, 1, dge_reads)
        return loaded

    def test_binning_populates_tag(self, with_reads):
        count = with_reads.bin_unique_tags(1, 1, 1)
        assert count == with_reads.db.scalar("SELECT COUNT(*) FROM Tag")
        total = with_reads.db.scalar("SELECT SUM(t_frequency) FROM Tag")
        clean = with_reads.db.scalar(
            "SELECT COUNT(*) FROM [Read] WHERE CHARINDEX('N', short_read_seq) = 0"
        )
        assert total == clean

    def test_align_tags_links_tags_and_genes(self, with_reads):
        with_reads.bin_unique_tags(1, 1, 1)
        aligned = with_reads.align_tags(1, 1, 1)
        assert aligned > 0
        rows = with_reads.db.query(
            "SELECT a_t_id, a_r_id, a_g_id FROM Alignment"
        )
        assert all(t is not None and r is None for t, r, _g in rows)
        assert sum(1 for _t, _r, g in rows if g is not None) > len(rows) * 0.8

    def test_alignment_ids_unique(self, with_reads):
        with_reads.bin_unique_tags(1, 1, 1)
        with_reads.align_tags(1, 1, 1)
        ids = [row[3] for row in with_reads.db.table("Alignment").scan()]
        assert len(ids) == len(set(ids))


class TestPhysicalDesignOptions:
    def test_read_clustering_enables_merge_join(self, reference, reseq_reads):
        wh = GenomicsWarehouse(alignment_clustering="read")
        try:
            wh.load_reference(reference)
            wh.register_experiment(1, "x", "resequencing")
            wh.register_sample_group(1, 1, "g")
            wh.register_sample(1, 1, 1, "s")
            wh.import_lane_relational(1, 1, 1, reseq_reads[:300])
            wh.align_reads(1, 1, 1)
            plan = wh.db.explain(
                """
                SELECT a_id, short_read_seq FROM Alignment
                JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                                AND a_s_id = r_s_id AND a_r_id = r_id)
                WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
                """
            )
            assert "Merge Join" in plan
        finally:
            wh.close()

    def test_position_clustering_uses_hash_join(self, reference, reseq_reads):
        wh = GenomicsWarehouse(alignment_clustering="position")
        try:
            wh.load_reference(reference)
            wh.register_experiment(1, "x", "resequencing")
            wh.register_sample_group(1, 1, "g")
            wh.register_sample(1, 1, 1, "s")
            wh.import_lane_relational(1, 1, 1, reseq_reads[:300])
            wh.align_reads(1, 1, 1)
            plan = wh.db.explain(
                """
                SELECT a_id, short_read_seq FROM Alignment
                JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                                AND a_s_id = r_s_id AND a_r_id = r_id)
                WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
                """
            )
            assert "Hash Match (Inner Join)" in plan
        finally:
            wh.close()

    def test_both_clusterings_same_join_result(self, reference, reseq_reads):
        results = {}
        for clustering in ("read", "position"):
            wh = GenomicsWarehouse(alignment_clustering=clustering)
            try:
                wh.load_reference(reference)
                wh.register_experiment(1, "x", "resequencing")
                wh.register_sample_group(1, 1, "g")
                wh.register_sample(1, 1, 1, "s")
                wh.import_lane_relational(1, 1, 1, reseq_reads[:200])
                wh.align_reads(1, 1, 1)
                rows = wh.db.query(
                    """
                    SELECT a_r_id, a_rs_id, a_pos FROM Alignment
                    JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                                    AND a_s_id = r_s_id AND a_r_id = r_id)
                    """
                )
                results[clustering] = sorted(rows)
            finally:
                wh.close()
        assert results["read"] == results["position"]

    def test_compression_option_applies(self, reference):
        wh = GenomicsWarehouse(compression="PAGE")
        try:
            assert wh.db.table("Read").schema.compression == "PAGE"
        finally:
            wh.close()

    def test_bad_clustering_rejected(self):
        with pytest.raises(ValueError):
            GenomicsWarehouse(alignment_clustering="bogus")
