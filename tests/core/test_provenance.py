"""PROV-style provenance tracking (future-work feature)."""

import pytest

from repro.core.provenance import ProvenanceTracker
from repro.engine import Database
from repro.engine.errors import BindError, ConstraintViolation


@pytest.fixture
def tracker():
    with Database() as db:
        yield ProvenanceTracker(db)


@pytest.fixture
def pipeline(tracker):
    """lane + reference -> align -> alignments -> consensus."""
    lane = tracker.new_entity("fastq-lane", "855_s_1.fastq")
    reference = tracker.new_entity("reference", "GRCh-synthetic v1")
    alignments = tracker.new_entity("alignment-set", "sample 1")
    tracker.record_activity(
        "maq-align",
        {"version": "0.7.1", "max_mismatches": 2},
        used=[lane, reference],
        generated=[alignments],
    )
    consensus = tracker.new_entity("consensus", "sample 1 consensus")
    tracker.record_activity(
        "consensus-call",
        {"method": "sliding"},
        used=[alignments],
        generated=[consensus],
    )
    return {
        "lane": lane,
        "reference": reference,
        "alignments": alignments,
        "consensus": consensus,
    }


class TestRecording:
    def test_entities_get_distinct_ids(self, tracker):
        a = tracker.new_entity("x", "one")
        b = tracker.new_entity("x", "two")
        assert a != b

    def test_edges_enforce_fk(self, tracker):
        with pytest.raises(ConstraintViolation):
            tracker.record_activity("bad", used=[9999])

    def test_tables_created_once(self, tracker):
        # constructing a second tracker on the same db must not fail
        ProvenanceTracker(tracker.db)


class TestLineage:
    def test_full_chain(self, tracker, pipeline):
        steps = tracker.lineage(pipeline["consensus"])
        kinds = [step.entity[1] for step in steps]
        assert kinds[0] == "consensus"
        assert set(kinds) == {
            "consensus",
            "alignment-set",
            "fastq-lane",
            "reference",
        }

    def test_activity_params_preserved(self, tracker, pipeline):
        steps = tracker.lineage(pipeline["consensus"])
        align_step = next(
            s for s in steps if s.entity[1] == "alignment-set"
        )
        assert "0.7.1" in align_step.activity[2]

    def test_derived_from(self, tracker, pipeline):
        assert tracker.derived_from(pipeline["consensus"], pipeline["lane"])
        assert tracker.derived_from(
            pipeline["consensus"], pipeline["reference"]
        )
        assert not tracker.derived_from(
            pipeline["lane"], pipeline["consensus"]
        )

    def test_source_entities_terminate_chain(self, tracker, pipeline):
        steps = tracker.lineage(pipeline["lane"])
        assert len(steps) == 1
        assert steps[0].activity is None

    def test_unknown_entity_rejected(self, tracker):
        with pytest.raises(BindError):
            tracker.lineage(424242)

    def test_render(self, tracker, pipeline):
        text = tracker.render_lineage(pipeline["consensus"])
        assert "consensus-call" in text
        assert "855_s_1.fastq" in text
        assert "(source data)" in text

    def test_diamond_lineage_visited_once(self, tracker):
        source = tracker.new_entity("src", "s")
        left = tracker.new_entity("mid", "l")
        right = tracker.new_entity("mid", "r")
        sink = tracker.new_entity("out", "o")
        tracker.record_activity("split-l", used=[source], generated=[left])
        tracker.record_activity("split-r", used=[source], generated=[right])
        tracker.record_activity(
            "merge", used=[left, right], generated=[sink]
        )
        steps = tracker.lineage(sink)
        ids = [step.entity[0] for step in steps]
        assert len(ids) == len(set(ids)) == 4
