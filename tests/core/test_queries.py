"""The paper's Queries 1-3 against reference implementations."""

from collections import Counter

import pytest

from repro.core import GenomicsWarehouse, queries
from repro.genomics.consensus import Pileup


@pytest.fixture(scope="module")
def dge_warehouse(reference, genes, dge_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "dge", "dge")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, dge_reads)
    wh.bin_unique_tags(1, 1, 1)
    wh.align_tags(1, 1, 1)
    yield wh
    wh.close()


@pytest.fixture(scope="module")
def reseq_warehouse(reference, reseq_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.register_experiment(1, "1000g", "resequencing")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, reseq_reads)
    wh.align_reads(1, 1, 1)
    yield wh
    wh.close()


class TestQuery1:
    def reference_binning(self, reads):
        counts = Counter(
            r.sequence for r in reads if "N" not in r.sequence
        )
        return counts

    def test_matches_reference_counter(self, dge_warehouse, dge_reads):
        expected = self.reference_binning(dge_reads)
        rows = queries.execute_query1(dge_warehouse.db, 1, 1, 1)
        got = {seq: freq for _rank, freq, seq in rows}
        assert got == dict(expected)

    def test_ranks_are_dense_and_frequency_ordered(
        self, dge_warehouse, dge_reads
    ):
        rows = queries.execute_query1(dge_warehouse.db, 1, 1, 1)
        ranks = [rank for rank, _f, _s in rows]
        assert sorted(ranks) == list(range(1, len(rows) + 1))
        by_rank = sorted(rows)
        freqs = [f for _r, f, _s in by_rank]
        assert freqs == sorted(freqs, reverse=True)

    def test_filters_uncertain_reads(self, dge_warehouse):
        rows = queries.execute_query1(dge_warehouse.db, 1, 1, 1)
        assert all("N" not in seq for _r, _f, seq in rows)

    def test_wrong_sample_is_empty(self, dge_warehouse):
        assert queries.execute_query1(dge_warehouse.db, 9, 9, 9) == []

    def test_maxdop_hint_respected(self, dge_warehouse):
        serial = queries.execute_query1(dge_warehouse.db, 1, 1, 1, maxdop=1)
        parallel = queries.execute_query1(dge_warehouse.db, 1, 1, 1, maxdop=4)
        # frequency-per-tag must be identical; rank assignment may break
        # frequency ties differently between the serial and parallel plans
        assert {s: f for _r, f, s in serial} == {
            s: f for _r, f, s in parallel
        }
        assert sorted(r for r, _f, _s in parallel) == list(
            range(1, len(parallel) + 1)
        )


class TestQuery2:
    def test_populates_gene_expression(self, dge_warehouse):
        written = dge_warehouse.compute_gene_expression(1, 1, 1)
        assert written > 0
        rows = dge_warehouse.db.query(
            "SELECT ge_g_id, total_freq, tag_count FROM GeneExpression"
        )
        assert len(rows) == written
        assert all(total >= count for _g, total, count in rows)

    def test_matches_manual_join(self, dge_warehouse):
        db = dge_warehouse.db
        tags = {
            t_id: freq
            for (_e, _sg, _s, t_id, _seq, freq) in db.table("Tag").scan()
        }
        expected = {}
        for row in db.table("Alignment").scan():
            g_id, t_id = row[7], row[5]
            if g_id is None or t_id is None:
                continue
            total, count = expected.get(g_id, (0, 0))
            expected[g_id] = (total + tags[t_id], count + 1)
        got = {
            g: (total, count)
            for g, total, count in db.query(
                "SELECT ge_g_id, total_freq, tag_count FROM GeneExpression"
            )
        }
        assert got == expected

    def test_expressed_genes_rank_plausibly(self, dge_warehouse):
        rows = dge_warehouse.db.query(
            """
            SELECT TOP 3 ge_g_id, total_freq FROM GeneExpression
            ORDER BY total_freq DESC
            """
        )
        # the Zipf head should be clearly above the tail
        totals = [t for _g, t in rows]
        assert totals[0] >= totals[-1]


class TestQuery3:
    def test_sliding_matches_pivot(self, reseq_warehouse):
        sliding = dict(queries.execute_query3_sliding(reseq_warehouse.db, 1, 1, 1))
        pivot = dict(queries.execute_query3_pivot(reseq_warehouse.db, 1, 1, 1))
        assert set(sliding) == set(pivot)
        for rs_id in sliding:
            assert sliding[rs_id].start == pivot[rs_id].start
            assert sliding[rs_id].sequence == pivot[rs_id].sequence

    def test_matches_direct_pileup(self, reseq_warehouse):
        """The SQL pipeline must equal a hand-built pileup over the same
        alignments + reads."""
        db = reseq_warehouse.db
        reads = {
            row[3]: (row[8], row[9]) for row in db.table("Read").scan()
        }
        lengths = reseq_warehouse.chromosome_lengths()
        pileups = {
            rs_id: Pileup(str(rs_id), length)
            for rs_id, length in lengths.items()
        }
        from repro.genomics.sequences import reverse_complement

        for row in db.table("Alignment").scan():
            r_id, rs_id, pos, strand = row[4], row[6], row[8], row[9]
            seq, quals = reads[r_id]
            if strand == "-":
                seq = reverse_complement(seq)
                quals = quals[::-1]
            pileups[rs_id].add_alignment(
                pos, seq, [ord(c) - 33 for c in quals]
            )
        sql_result = dict(
            queries.execute_query3_sliding(db, 1, 1, 1)
        )
        for rs_id, pileup in pileups.items():
            if pileup.observation_count() == 0:
                continue
            expected = pileup.call()
            piece = sql_result[rs_id]
            fragment = expected.sequence[
                piece.start : piece.start + len(piece.sequence)
            ]
            assert piece.sequence == fragment

    def test_consensus_close_to_reference(self, reseq_warehouse, reference):
        """High-coverage clean reads: the consensus should mostly agree
        with the genome it was sampled from."""
        results = reseq_warehouse.call_consensus(1, 1, 1)
        names = {v: k for k, v in reseq_warehouse.reference_names.items()}
        by_name = {r.name: r.sequence for r in reference}
        for rs_id, piece in results:
            genome = by_name[names[rs_id]]
            span = genome[piece.start : piece.start + len(piece.sequence)]
            called = [
                (a, b)
                for a, b in zip(piece.sequence, span)
                if a != "N"
            ]
            agree = sum(1 for a, b in called if a == b)
            assert agree / len(called) > 0.97

    def test_consensus_rows_stored(self, reseq_warehouse):
        reseq_warehouse.call_consensus(1, 1, 1)
        rows = reseq_warehouse.db.query(
            "SELECT c_rs_id, c_start FROM Consensus WHERE c_e_id = 1"
        )
        assert len(rows) >= 1

    def test_plan_uses_stream_aggregate_without_sort(self, reseq_warehouse):
        plan = reseq_warehouse.db.explain(
            queries.query3_sliding_window_sql(1, 1, 1)
        )
        assert "Stream Aggregate" in plan
        assert "Sort" not in plan
        assert "Clustered Index Seek [Alignment]" in plan
