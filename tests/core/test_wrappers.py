"""File-wrapper TVFs, chunked reading, UDAs, and the DNA UDT."""

import io

import pytest

from repro.core.wrappers import (
    AssembleConsensusUda,
    AssembleSequenceUda,
    CallBaseUda,
    ChunkedBlobReader,
    ConsensusPiece,
    DNA_SEQUENCE_UDT,
    ListShortReadsTvf,
    PivotAlignmentTvf,
    parse_fasta_entry,
    parse_fastq_entry,
    register_extensions,
)
from repro.core.schemas import create_filestream_schema
from repro.engine import Database
from repro.engine.errors import UdfError
from repro.genomics.fastq import FastqRecord, fastq_bytes
from repro.genomics.sequences import PackedDna


@pytest.fixture
def db():
    with Database() as database:
        register_extensions(database)
        create_filestream_schema(database)
        yield database


def sample_records(n=50):
    return [
        FastqRecord(
            f"IL4_855:1:{i}:10:{i * 3}",
            "ACGTACGTACGTACGTACGTACGTACGTACGTACGT"[: 20 + (i % 16)],
            "I" * (20 + (i % 16)),
        )
        for i in range(n)
    ]


def import_lane(db, records, sample=855, lane=1):
    import uuid

    payload = fastq_bytes(records)
    db.table("ShortReadFiles").insert(
        (uuid.uuid4(), sample, lane, "FastQ", payload)
    )


class TestChunkedBlobReader:
    @pytest.mark.parametrize("chunk_size", [256, 300, 1024, 65536])
    def test_fastq_parse_equals_reference(self, db, chunk_size):
        """The paging algorithm must be invisible: any chunk size yields
        exactly the records a whole-file parse yields."""
        records = sample_records(80)
        guid = db.filestream.create(fastq_bytes(records))
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=chunk_size)
        parsed = [
            (name.decode(), seq.decode(), qual.decode())
            for name, seq, qual in reader.entries(parse_fastq_entry)
        ]
        assert parsed == [
            (r.name, r.sequence, r.quality) for r in records
        ]

    def test_chunk_boundary_inside_entry(self, db):
        """Choose a chunk size guaranteed to split records."""
        records = sample_records(10)
        payload = fastq_bytes(records)
        guid = db.filestream.create(payload)
        # prime-sized chunks never align with the 4-line records
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=257)
        assert sum(1 for _ in reader.entries(parse_fastq_entry)) == 10

    def test_fasta_entries(self, db):
        text = ">r1\nACGT\nACGT\n>r2\nGGGG\n"
        guid = db.filestream.create(text.encode())
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=256)
        entries = [
            (n.decode(), s.decode())
            for n, s in reader.entries(parse_fasta_entry)
        ]
        assert entries == [("r1", "ACGTACGT"), ("r2", "GGGG")]

    def test_missing_final_newline_tolerated(self, db):
        guid = db.filestream.create(b"@r\nAC\n+\nII")  # no trailing newline
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=256)
        entries = list(reader.entries(parse_fastq_entry))
        assert len(entries) == 1
        assert entries[0][2] == b"II"

    def test_malformed_entry_raises(self, db):
        guid = db.filestream.create(b"not fastq at all\njunk\njunk\njunk\n")
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=256)
        with pytest.raises(UdfError):
            list(reader.entries(parse_fastq_entry))

    def test_tiny_chunk_rejected(self, db):
        guid = db.filestream.create(b"x")
        with pytest.raises(UdfError):
            ChunkedBlobReader(db.filestream, guid, chunk_size=16)

    def test_chunks_counted(self, db):
        guid = db.filestream.create(fastq_bytes(sample_records(100)))
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=512)
        list(reader.entries(parse_fastq_entry))
        assert reader.chunks_read > 2


class TestListShortReadsTvf:
    def test_via_sql(self, db):
        records = sample_records(30)
        import_lane(db, records)
        rows = db.query("SELECT * FROM ListShortReads(855, 1, 'FastQ')")
        assert len(rows) == 30
        assert rows[0] == (
            records[0].name,
            records[0].sequence,
            records[0].quality,
        )

    def test_count_star(self, db):
        import_lane(db, sample_records(25))
        assert (
            db.scalar("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")
            == 25
        )

    def test_missing_lane_raises(self, db):
        import_lane(db, sample_records(5))
        with pytest.raises(UdfError):
            db.query("SELECT * FROM ListShortReads(855, 9, 'FastQ')")

    def test_unsupported_format(self, db):
        import_lane(db, sample_records(5))
        with pytest.raises(UdfError):
            db.query("SELECT * FROM ListShortReads(855, 1, 'SFF')")

    def test_where_over_tvf(self, db):
        import_lane(db, sample_records(40))
        rows = db.query(
            """
            SELECT short_read_seq FROM ListShortReads(855, 1, 'FastQ')
            WHERE CHARINDEX('N', short_read_seq) = 0
            """
        )
        assert len(rows) == 40  # no Ns in the synthetic records


class TestPivotAlignment:
    def test_pivots_positions(self):
        tvf = PivotAlignmentTvf()
        rows = [tvf.fill_row(obj) for obj in tvf.create(100, "ACG", "!#%")]
        assert rows == [
            (100, "A", 0),
            (101, "C", 2),
            (102, "G", 4),
        ]

    def test_null_sequence_yields_nothing(self):
        tvf = PivotAlignmentTvf()
        assert list(tvf.create(5, None, None)) == []

    def test_missing_quality_padded_zero(self):
        tvf = PivotAlignmentTvf()
        rows = list(tvf.create(0, "AC", ""))
        assert [r[2] for r in rows] == [0, 0]


class TestUdas:
    def test_call_base_lifecycle(self):
        uda = CallBaseUda()
        uda.init()
        for base, qual in [("A", 30), ("C", 10), ("A", 5)]:
            uda.accumulate(base, qual)
        assert uda.terminate() == "A"

    def test_call_base_merge(self):
        left, right = CallBaseUda(), CallBaseUda()
        left.init()
        right.init()
        left.accumulate("A", 10)
        right.accumulate("C", 30)
        left.merge(right)
        assert left.terminate() == "C"

    def test_call_base_ignores_n(self):
        uda = CallBaseUda()
        uda.init()
        uda.accumulate("N", 99)
        assert uda.terminate() == "N"  # no evidence at all

    def test_assemble_sequence_sorts_and_fills_gaps(self):
        uda = AssembleSequenceUda()
        uda.init()
        for pos, base in [(7, "T"), (3, "A"), (5, "G")]:
            uda.accumulate(pos, base)
        piece = uda.terminate()
        assert piece == ConsensusPiece(3, "ANGNT")

    def test_assemble_sequence_empty(self):
        uda = AssembleSequenceUda()
        uda.init()
        assert uda.terminate() == ConsensusPiece(0, "")

    def test_assemble_consensus_streams(self):
        uda = AssembleConsensusUda()
        uda.init()
        uda.accumulate(10, "ACGT", "IIII")
        uda.accumulate(12, "GTTT", "IIII")
        piece = uda.terminate()
        assert piece.start == 10
        assert piece.sequence == "ACGTTT"

    def test_assemble_consensus_refuses_merge(self):
        a, b = AssembleConsensusUda(), AssembleConsensusUda()
        a.init()
        b.init()
        with pytest.raises(UdfError):
            a.merge(b)

    def test_assemble_consensus_flags(self):
        assert AssembleConsensusUda.requires_ordered_input
        assert not AssembleConsensusUda.parallel_safe
        assert AssembleSequenceUda.parallel_safe


class TestDnaUdt:
    def test_codec_round_trip(self):
        raw = DNA_SEQUENCE_UDT.serialize("ACGTN")
        assert DNA_SEQUENCE_UDT.deserialize(raw) == PackedDna("ACGTN")

    def test_accepts_packed(self):
        packed = PackedDna("ACGT")
        assert DNA_SEQUENCE_UDT.deserialize(
            DNA_SEQUENCE_UDT.serialize(packed)
        ) == packed

    def test_rejects_other_types(self):
        with pytest.raises(UdfError):
            DNA_SEQUENCE_UDT.serialize(1234)

    def test_usable_as_column_type(self, db):
        db.execute(
            "CREATE TABLE seqs (id INT PRIMARY KEY, seq DnaSequence)"
        )
        db.table("seqs").insert((1, "ACGTACGT"))
        row = db.query("SELECT seq FROM seqs")[0]
        assert str(row[0]) == "ACGTACGT"

    def test_udt_column_is_smaller_than_varchar(self, db):
        db.execute("CREATE TABLE a (id INT PRIMARY KEY, seq VARCHAR(100))")
        db.execute("CREATE TABLE b (id INT PRIMARY KEY, seq DnaSequence)")
        for i in range(100):
            db.table("a").insert((i, "ACGT" * 16))
            db.table("b").insert((i, "ACGT" * 16))
        db.table("a").finish_bulk_load()
        db.table("b").finish_bulk_load()
        assert db.table("b").stored_bytes() < db.table("a").stored_bytes() * 0.55


class TestSrfFormat:
    def test_srf_blob_via_tvf(self, db):
        """Section 5.3.1: SRF containers wrap as FileStreams too."""
        import io
        import uuid

        from repro.genomics.srf import SrfRecord, write_srf

        records = [
            SrfRecord(f"r{i}", "ACGTACGT", "IIIIIIII", 100.0 + i, 12.5)
            for i in range(20)
        ]
        buffer = io.BytesIO()
        write_srf(records, buffer)
        db.table("ShortReadFiles").insert(
            (uuid.uuid4(), 900, 1, "SRF", buffer.getvalue())
        )
        rows = db.query("SELECT * FROM ListShortReads(900, 1, 'SRF')")
        assert rows == [(r.name, r.sequence, r.quality) for r in records]

    def test_srf_count_star(self, db):
        import io
        import uuid

        from repro.genomics.srf import SrfRecord, write_srf

        buffer = io.BytesIO()
        write_srf(
            [SrfRecord(f"x{i}", "AC", "II") for i in range(7)], buffer
        )
        db.table("ShortReadFiles").insert(
            (uuid.uuid4(), 901, 2, "SRF", buffer.getvalue())
        )
        assert (
            db.scalar("SELECT COUNT(*) FROM ListShortReads(901, 2, 'SRF')")
            == 7
        )


class TestChunkBoundaryEdges:
    def test_entry_larger_than_buffer_raises(self, db):
        big_seq = "A" * 2000
        payload = f"@huge\n{big_seq}\n+\n{'I' * 2000}\n".encode()
        guid = db.filestream.create(payload)
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=512)
        with pytest.raises(UdfError):
            list(reader.entries(parse_fastq_entry))

    def test_fasta_entry_spanning_many_chunks(self, db):
        # one record larger than a chunk is an error; several records
        # each smaller than the chunk but crossing boundaries are fine
        text = "".join(
            f">r{i}\n{'ACGT' * 30}\n" for i in range(50)
        )
        guid = db.filestream.create(text.encode())
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=256)
        entries = list(reader.entries(parse_fasta_entry))
        assert len(entries) == 50
        assert all(seq == b"ACGT" * 30 for _n, seq in entries)

    def test_empty_blob_yields_nothing(self, db):
        guid = db.filestream.create(b"")
        reader = ChunkedBlobReader(db.filestream, guid, chunk_size=256)
        assert list(reader.entries(parse_fastq_entry)) == []
