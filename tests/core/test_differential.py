"""Differential expression analysis."""

import math

import pytest

from repro.core import GenomicsWarehouse
from repro.core.differential import (
    DifferentialResult,
    differential_expression,
    log2_fold_change,
    two_proportion_p_value,
)
from repro.engine.errors import EngineError
from repro.genomics import simulate_dge_lane


class TestStatistics:
    def test_equal_proportions_not_significant(self):
        assert two_proportion_p_value(50, 1000, 50, 1000) == pytest.approx(1.0)

    def test_large_difference_significant(self):
        assert two_proportion_p_value(200, 1000, 20, 1000) < 1e-6

    def test_symmetry(self):
        p1 = two_proportion_p_value(30, 500, 80, 500)
        p2 = two_proportion_p_value(80, 500, 30, 500)
        assert p1 == pytest.approx(p2)

    def test_small_counts_not_significant(self):
        assert two_proportion_p_value(1, 1000, 0, 1000) > 0.05

    def test_degenerate_inputs(self):
        assert two_proportion_p_value(0, 0, 5, 100) == 1.0
        assert two_proportion_p_value(0, 100, 0, 100) == 1.0

    def test_matches_scipy_chi2(self):
        """Cross-check against scipy's chi-squared test (z^2 == chi2
        with 1 dof for the 2x2 table, without continuity correction)."""
        from scipy.stats import chi2_contingency

        count_a, total_a, count_b, total_b = 40, 800, 70, 900
        table = [
            [count_a, total_a - count_a],
            [count_b, total_b - count_b],
        ]
        chi2, scipy_p, _dof, _exp = chi2_contingency(table, correction=False)
        ours = two_proportion_p_value(count_a, total_a, count_b, total_b)
        assert ours == pytest.approx(scipy_p, rel=1e-9)

    def test_log2_fold_change_direction(self):
        assert log2_fold_change(100, 1000, 25, 1000) > 0
        assert log2_fold_change(25, 1000, 100, 1000) < 0

    def test_log2_fold_change_zero_counts_finite(self):
        value = log2_fold_change(0, 1000, 50, 1000)
        assert math.isfinite(value) and value < 0


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def warehouse(self, reference, genes):
        wh = GenomicsWarehouse()
        wh.load_reference(reference)
        wh.load_genes(genes)
        wh.register_experiment(1, "diff", "dge")
        wh.register_sample_group(1, 1, "conditions")
        wh.register_sample(1, 1, 1, "healthy")
        wh.register_sample(1, 1, 2, "disease")
        # different seeds shuffle the Zipf head -> different profiles
        for s_id, seed in ((1, 31), (2, 99)):
            reads = list(
                simulate_dge_lane(reference, genes, 4000, seed=seed)
            )
            wh.import_lane_relational(1, 1, s_id, reads, lane=s_id)
            wh.bin_unique_tags(1, 1, s_id)
            wh.align_tags(1, 1, s_id)
            wh.compute_gene_expression(1, 1, s_id)
        yield wh
        wh.close()

    def test_results_sorted_by_significance(self, warehouse):
        results = differential_expression(warehouse.db, 1, 1, 1, 2)
        assert results
        p_values = [r.p_value for r in results]
        assert p_values == sorted(p_values)

    def test_different_profiles_yield_significant_genes(self, warehouse):
        results = differential_expression(warehouse.db, 1, 1, 1, 2)
        assert any(r.significant for r in results)

    def test_fold_change_sign_matches_counts(self, warehouse):
        for result in differential_expression(warehouse.db, 1, 1, 1, 2):
            if result.count_a > result.count_b * 2:
                assert result.log2_fold_change > 0
            elif result.count_b > result.count_a * 2:
                assert result.log2_fold_change < 0

    def test_self_comparison_not_significant(self, warehouse):
        results = differential_expression(warehouse.db, 1, 1, 1, 1)
        assert all(r.p_value == pytest.approx(1.0) for r in results)

    def test_min_total_filters(self, warehouse):
        loose = differential_expression(warehouse.db, 1, 1, 1, 2, min_total=1)
        strict = differential_expression(
            warehouse.db, 1, 1, 1, 2, min_total=100
        )
        assert len(strict) <= len(loose)

    def test_missing_samples_rejected(self, warehouse):
        with pytest.raises(EngineError):
            differential_expression(warehouse.db, 9, 9, 1, 2)
