"""Schema DDL for the physical designs."""

import pytest

from repro.core.schemas import (
    create_filestream_schema,
    create_normalized_schema,
    create_one_to_one_schema,
    create_reference_tables,
    create_workflow_tables,
)
from repro.core.wrappers import register_extensions
from repro.engine import Database


@pytest.fixture
def db():
    with Database() as database:
        yield database


class TestNormalizedSchema:
    def test_all_tables_created(self, db):
        create_normalized_schema(db)
        for table in ("Read", "Tag", "Alignment", "GeneExpression", "Consensus"):
            assert db.catalog.has_table(table)

    def test_position_clustering_key(self, db):
        create_normalized_schema(db, alignment_clustering="position")
        pk = db.table("Alignment").schema.primary_key
        assert pk == ("a_e_id", "a_sg_id", "a_s_id", "a_rs_id", "a_pos", "a_id")

    def test_read_clustering_key(self, db):
        create_normalized_schema(db, alignment_clustering="read")
        pk = db.table("Alignment").schema.primary_key
        assert pk == ("a_e_id", "a_sg_id", "a_s_id", "a_r_id", "a_id")

    def test_bad_clustering_rejected(self, db):
        with pytest.raises(ValueError):
            create_normalized_schema(db, alignment_clustering="hash")

    def test_compression_applied(self, db):
        create_normalized_schema(db, compression="ROW")
        assert db.table("Read").schema.compression == "ROW"
        assert db.table("Alignment").schema.compression == "ROW"

    def test_udt_sequence_type(self, db):
        register_extensions(db)
        create_normalized_schema(db, sequence_type="DnaSequence")
        column = db.table("Read").schema.column("short_read_seq")
        assert column.sql_type.kind == "UDT"


class TestOtherSchemas:
    def test_one_to_one(self, db):
        create_one_to_one_schema(db)
        for table in ("ReadsFlat", "TagsFlat", "AlignmentsFlat", "GeneExpressionFlat"):
            assert db.catalog.has_table(table)

    def test_workflow_tables_with_fk_chain(self, db):
        create_workflow_tables(db)
        schema = db.table("Sample").schema
        assert schema.foreign_keys[0].parent_table == "SampleGroup"

    def test_reference_tables(self, db):
        create_reference_tables(db)
        assert db.catalog.has_table("ReferenceSequence")
        assert db.catalog.has_table("Gene")

    def test_filestream_schema(self, db):
        create_filestream_schema(db)
        schema = db.table("ShortReadFiles").schema
        assert schema.column("reads").sql_type.filestream
        assert schema.column("guid").rowguidcol
