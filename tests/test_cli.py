"""The repro-genomics command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def dataset(tmp_path_factory):
    out = tmp_path_factory.mktemp("cli-data")
    assert (
        main(
            [
                "simulate",
                "--kind",
                "dge",
                "--out-dir",
                str(out),
                "--reads",
                "3000",
                "--chromosomes",
                "2",
                "--chromosome-length",
                "25000",
                "--genes",
                "25",
                "--seed",
                "3",
            ]
        )
        == 0
    )
    return out


class TestSimulate:
    def test_files_created(self, dataset):
        assert (dataset / "reference.fasta").exists()
        assert (dataset / "genes.tsv").exists()
        assert (dataset / "lane.fastq").exists()

    def test_fastq_has_requested_reads(self, dataset):
        from repro.genomics.fastq import count_records

        assert count_records(dataset / "lane.fastq") == 3000

    def test_genes_tsv_parses(self, dataset):
        from repro.cli import _read_genes

        genes = _read_genes(dataset / "genes.tsv")
        assert len(genes) == 25
        assert genes[0].chromosome.startswith("chr")

    def test_resequencing_kind(self, tmp_path):
        assert (
            main(
                [
                    "simulate",
                    "--kind",
                    "resequencing",
                    "--out-dir",
                    str(tmp_path),
                    "--reads",
                    "500",
                    "--chromosome-length",
                    "20000",
                    "--genes",
                    "10",
                ]
            )
            == 0
        )
        from repro.genomics.fastq import count_records

        assert count_records(tmp_path / "lane.fastq") == 500


class TestPipeline:
    def test_dge_pipeline(self, dataset, tmp_path, capsys):
        code = main(
            [
                "pipeline",
                "--kind",
                "dge",
                "--fastq",
                str(dataset / "lane.fastq"),
                "--reference",
                str(dataset / "reference.fasta"),
                "--genes",
                str(dataset / "genes.tsv"),
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "tags.txt").exists()
        assert (tmp_path / "expression.txt").exists()
        assert (tmp_path / "provenance.txt").exists()
        out = capsys.readouterr().out
        assert "3000 reads" in out

    def test_dge_requires_genes(self, dataset, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "pipeline",
                    "--kind",
                    "dge",
                    "--fastq",
                    str(dataset / "lane.fastq"),
                    "--reference",
                    str(dataset / "reference.fasta"),
                    "--out-dir",
                    str(tmp_path),
                ]
            )

    def test_resequencing_pipeline_writes_consensus(
        self, tmp_path_factory
    ):
        data = tmp_path_factory.mktemp("reseq-data")
        main(
            [
                "simulate",
                "--kind",
                "resequencing",
                "--out-dir",
                str(data),
                "--reads",
                "2000",
                "--chromosomes",
                "1",
                "--chromosome-length",
                "15000",
                "--genes",
                "5",
            ]
        )
        out = tmp_path_factory.mktemp("reseq-out")
        code = main(
            [
                "pipeline",
                "--kind",
                "resequencing",
                "--fastq",
                str(data / "lane.fastq"),
                "--reference",
                str(data / "reference.fasta"),
                "--out-dir",
                str(out),
                "--no-hybrid",
            ]
        )
        assert code == 0
        from repro.genomics.fasta import read_fasta

        consensus = list(read_fasta(out / "consensus.fasta"))
        assert consensus and len(consensus[0].sequence) > 10_000


class TestSearch:
    def test_search_finds_pattern(self, dataset, capsys):
        from repro.genomics.fastq import read_fastq

        first = next(read_fastq(dataset / "lane.fastq"))
        code = main(
            [
                "search",
                "--fastq",
                str(dataset / "lane.fastq"),
                "--pattern",
                first.sequence[:14],
                "--mismatches",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "0 matches" not in out


class TestStorageReport:
    def test_report_prints_table(self, dataset, capsys):
        code = main(
            [
                "storage-report",
                "--fastq",
                str(dataset / "lane.fastq"),
                "--reference",
                str(dataset / "reference.fasta"),
                "--kind",
                "dge",
                "--no-udt",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "FileStream" in out
        assert "Normalized" in out


class TestTrace:
    def test_demo_writes_valid_chrome_trace(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out), "--dop", "2"]) == 0
        stdout = capsys.readouterr().out
        assert "sys_dm_os_wait_stats" in stdout
        assert "sys_dm_query_store_runtime_stats" in stdout
        payload = json.loads(out.read_text())
        events = payload["traceEvents"]
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "M" for e in events)

    def test_custom_sql_last_only(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        code = main(
            [
                "trace",
                "--sql",
                "CREATE TABLE t (a INT PRIMARY KEY)",
                "--sql",
                "INSERT INTO t VALUES (1), (2), (3)",
                "--sql",
                "SELECT COUNT(*) FROM t",
                "--out",
                str(out),
                "--last-only",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        names = [e.get("name", "") for e in payload["traceEvents"]]
        assert any("COUNT" in n for n in names)
        assert not any("INSERT" in n for n in names)  # last trace only
