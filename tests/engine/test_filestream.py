"""FileStream BLOB store."""

import uuid

import pytest

from repro.engine.errors import FileStreamError
from repro.engine.filestream import FileStreamStore


@pytest.fixture
def store(tmp_path):
    return FileStreamStore(tmp_path / "fs")


class TestLifecycle:
    def test_create_and_read(self, store):
        guid = store.create(b"hello world")
        assert store.read_all(guid) == b"hello world"
        assert store.data_length(guid) == 11

    def test_explicit_guid(self, store):
        guid = uuid.uuid4()
        assert store.create(b"x", guid) == guid

    def test_duplicate_guid_rejected(self, store):
        guid = store.create(b"x")
        with pytest.raises(FileStreamError):
            store.create(b"y", guid)

    def test_delete(self, store):
        guid = store.create(b"x")
        store.delete(guid)
        assert not store.exists(guid)
        with pytest.raises(FileStreamError):
            store.read_all(guid)

    def test_create_from_file(self, store, tmp_path):
        source = tmp_path / "input.fastq"
        source.write_bytes(b"@r1\nACGT\n+\nIIII\n")
        guid = store.create_from_file(source)
        assert store.read_all(guid) == source.read_bytes()

    def test_pathname_points_to_real_file(self, store):
        guid = store.create(b"payload")
        from pathlib import Path

        assert Path(store.path_name(guid)).read_bytes() == b"payload"

    def test_recovery_reattaches_blobs(self, tmp_path):
        first = FileStreamStore(tmp_path / "fs")
        guid = first.create(b"persistent")
        second = FileStreamStore(tmp_path / "fs")
        assert second.exists(guid)
        assert second.read_all(guid) == b"persistent"

    def test_external_write_path(self, store):
        guid, handle = store.open_for_write()
        handle.write(b"tool output")
        handle.close()
        assert store.refresh_length(guid) == 11
        assert store.read_all(guid) == b"tool output"

    def test_total_bytes(self, store):
        store.create(b"abc")
        store.create(b"defgh")
        assert store.total_bytes() == 8
        assert len(store) == 2


class TestGetBytes:
    def test_reads_at_offset(self, store):
        guid = store.create(bytes(range(256)))
        buffer = bytearray(10)
        read = store.get_bytes(guid, 100, buffer, 0, 10)
        assert read == 10
        assert bytes(buffer) == bytes(range(100, 110))

    def test_buffer_offset_respected(self, store):
        guid = store.create(b"ABCDEFGH")
        buffer = bytearray(b"........")
        read = store.get_bytes(guid, 0, buffer, 3, 4)
        assert read == 4
        assert bytes(buffer) == b"...ABCD."

    def test_past_end_returns_zero(self, store):
        guid = store.create(b"short")
        buffer = bytearray(10)
        assert store.get_bytes(guid, 100, buffer, 0, 10) == 0

    def test_truncated_read_at_end(self, store):
        guid = store.create(b"0123456789")
        buffer = bytearray(10)
        read = store.get_bytes(guid, 7, buffer, 0, 10)
        assert read == 3
        assert bytes(buffer[:3]) == b"789"

    def test_sequential_matches_random(self, store):
        payload = bytes(i % 251 for i in range(100_000))
        guid = store.create(payload)
        sequential = bytearray(1000)
        random_access = bytearray(1000)
        for offset in (0, 999, 50_000, 99_000):
            store.get_bytes(guid, offset, sequential, 0, 1000, sequential=True)
            store.get_bytes(guid, offset, random_access, 0, 1000, sequential=False)
            assert sequential == random_access

    def test_sequential_scan_covers_whole_blob(self, store):
        payload = bytes(i % 7 for i in range(70_000))
        guid = store.create(payload)
        out = bytearray()
        buffer = bytearray(8192)
        offset = 0
        while True:
            read = store.get_bytes(
                guid, offset, buffer, 0, 8192, sequential=True, prefetch=16384
            )
            if read == 0:
                break
            out += buffer[:read]
            offset += read
        assert bytes(out) == payload

    def test_negative_offset_rejected(self, store):
        guid = store.create(b"x")
        with pytest.raises(FileStreamError):
            store.get_bytes(guid, -1, bytearray(1), 0, 1)


class TestConsistency:
    def test_clean_store_passes(self, store):
        store.create(b"a")
        store.create(b"b")
        assert store.consistency_check() == []

    def test_detects_missing_file(self, store):
        guid = store.create(b"a")
        from pathlib import Path

        Path(store.path_name(guid)).unlink()
        problems = store.consistency_check()
        assert any("missing" in p for p in problems)

    def test_detects_length_mismatch(self, store):
        guid = store.create(b"abc")
        from pathlib import Path

        Path(store.path_name(guid)).write_bytes(b"abcdef")
        problems = store.consistency_check()
        assert any("length mismatch" in p for p in problems)

    def test_detects_orphan(self, store):
        (store.directory / f"{uuid.uuid4()}.blob").write_bytes(b"orphan")
        problems = store.consistency_check()
        assert any("orphan" in p for p in problems)
