"""Cross-process structured tracing: statement traces, worker span
grafting, wait-stats rollup, and Chrome trace-event export."""

import json

import pytest

from repro.engine import Database
from repro.engine.tracing import (
    StatementTrace,
    Tracer,
    WaitStats,
    chrome_trace_payload,
    current_trace,
    graft_worker_spans,
    span,
    trace_chrome_events,
)


@pytest.fixture
def db(tmp_path):
    with Database(data_dir=tmp_path / "db") as database:
        yield database


@pytest.fixture
def grouped(db):
    db.execute("CREATE TABLE grouped (k INT PRIMARY KEY, g INT, v INT)")
    values = ", ".join(
        f"({i}, {i % 5}, {i * 7 % 83})" for i in range(1, 301)
    )
    db.execute(f"INSERT INTO grouped VALUES {values}")
    return db


class TestStatementTrace:
    def test_root_span_wraps_statement(self):
        trace = StatementTrace(1, "SELECT 1", "SELECT")
        trace.finish()
        root = trace.spans[0]
        assert root.parent_id is None
        assert root.category == "statement"
        assert "SELECT 1" in root.name
        assert root.end >= root.start

    def test_nested_spans_record_parents(self):
        trace = StatementTrace(1, "q", "SELECT")
        with trace.span("outer"):
            with trace.span("inner"):
                pass
        trace.finish()
        outer = trace.find("outer")[0]
        inner = trace.find("inner")[0]
        assert inner.parent_id == outer.span_id
        assert outer.parent_id == trace.spans[0].span_id
        assert trace.spans[0] in trace.ancestors(inner)

    def test_module_span_is_noop_without_active_trace(self):
        assert current_trace() is None
        with span("orphan"):  # must not raise, must not record
            pass
        assert current_trace() is None

    def test_wait_rollup_groups_by_type(self):
        trace = StatementTrace(1, "q", "SELECT")
        trace.add_raw("a", 0.0, 1.0, wait_type="IO")
        trace.add_raw("b", 1.0, 1.5, wait_type="IO")
        trace.add_raw("c", 1.5, 1.6, wait_type="DECODE")
        trace.finish()
        rollup = trace.wait_rollup()
        count, total, worst = rollup["IO"]
        assert count == 2
        assert total == pytest.approx(1.5)
        assert worst == pytest.approx(1.0)
        assert "DECODE" in rollup

    def test_graft_worker_spans_builds_subtree(self):
        trace = StatementTrace(1, "q", "SELECT")
        raw = [
            ("queue wait", "WORKER_QUEUE", 10.0, 10.2),
            ("work", None, 10.2, 10.9),
        ]
        graft_worker_spans(trace, "task 0 (worker 1)", 1, 4242, raw)
        trace.finish()
        container = trace.find("task 0")[0]
        assert container.pid == 4242
        assert container.start == pytest.approx(10.0)
        assert container.end == pytest.approx(10.9)
        children = trace.children_of(container.span_id)
        assert [c.name for c in children] == ["queue wait", "work"]
        assert children[0].wait_type == "WORKER_QUEUE"


class TestWaitStats:
    def test_record_and_rows(self):
        waits = WaitStats()
        waits.record("IO", 0.010)
        waits.record("IO", 0.030)
        waits.record("DECODE", 0.002)
        rows = waits.rows()
        by_type = {r[0]: r for r in rows}
        assert by_type["IO"][1] == 2
        assert by_type["IO"][2] == pytest.approx(40.0, rel=1e-6)
        assert by_type["IO"][3] == pytest.approx(30.0, rel=1e-6)

    def test_absorb_from_trace(self):
        trace = StatementTrace(1, "q", "SELECT")
        trace.add_raw("a", 0.0, 0.5, wait_type="TRANSPORT")
        trace.finish()
        waits = WaitStats()
        waits.absorb(trace)
        assert waits.rows()[0][0] == "TRANSPORT"

    def test_clear(self):
        waits = WaitStats()
        waits.record("IO", 1.0)
        waits.clear()
        assert waits.rows() == []


class TestTracer:
    def test_statement_context_restores_stack(self):
        tracer = Tracer()
        with tracer.statement("SELECT 1", "SELECT") as trace:
            assert current_trace() is trace
        assert current_trace() is None
        assert tracer.last is trace

    def test_disabled_tracer_yields_none(self):
        tracer = Tracer()
        tracer.enabled = False
        with tracer.statement("SELECT 1", "SELECT") as trace:
            assert trace is None
            assert current_trace() is None
        assert tracer.traces == []

    def test_retention_bound(self):
        tracer = Tracer(retain=3)
        for i in range(5):
            with tracer.statement(f"q{i}", "SELECT"):
                pass
        assert len(tracer.traces) == 3
        assert "q4" in tracer.traces[-1].text


class TestDatabaseTracing:
    DOP_QUERY = (
        "SELECT g, COUNT(*), SUM(v) FROM grouped "
        "GROUP BY g OPTION (MAXDOP 2)"
    )

    def test_dop2_worker_spans_nest_under_statement(self, grouped):
        grouped.query(self.DOP_QUERY)
        trace = grouped.last_trace()
        root = trace.spans[0]
        assert root.category == "statement"
        exchange = trace.find("parallel execute")
        assert exchange, "exchange span missing from dop-2 trace"
        workers = [s for s in trace.spans if s.name.startswith("task ")]
        assert workers, "no per-worker container spans grafted"
        for container in workers:
            assert root in trace.ancestors(container)
            assert exchange[0] in trace.ancestors(container)
            phases = trace.children_of(container.span_id)
            names = {p.name for p in phases}
            assert "queue wait" in names
            assert "unpickle task" in names
            # every worker phase fits inside the statement wall
            for phase in phases:
                assert phase.start >= root.start - 1e-6
                assert phase.end <= root.end + 1e-6

    def test_wait_totals_bounded_by_statement_wall(self, grouped):
        grouped.tracer.wait_stats.clear()
        grouped.query(self.DOP_QUERY)
        trace = grouped.last_trace()
        wall = trace.spans[0].duration
        for wait_type, (count, total, worst) in trace.wait_rollup().items():
            assert worst <= total + 1e-9
            # waits of one type run on at most dop workers concurrently
            assert total <= wall * 2 + 1e-6, wait_type
        dmv = {
            r[0]: r
            for r in grouped.query("SELECT * FROM sys_dm_os_wait_stats")
        }
        assert "WORKER_QUEUE" in dmv
        assert dmv["WORKER_QUEUE"][1] >= 1

    def test_explain_analyze_grafts_operator_spans(self, grouped):
        plan = grouped.execute("EXPLAIN ANALYZE " + self.DOP_QUERY)
        assert isinstance(plan, str)
        trace = grouped.last_trace()
        labels = [s.name for s in trace.spans]
        assert any("Hash Match" in label or "Gather" in label
                   for label in labels), labels
        assert any(s.category == "operator" for s in trace.spans)

    def test_serial_statement_traces_without_workers(self, grouped):
        grouped.query("SELECT COUNT(*) FROM grouped OPTION (MAXDOP 1)")
        trace = grouped.last_trace()
        assert trace.spans[0].category == "statement"
        assert not [s for s in trace.spans if s.name.startswith("task ")]

    def test_disabled_tracer_keeps_engine_working(self, grouped):
        grouped.tracer.enabled = False
        rows = grouped.query(self.DOP_QUERY)
        assert len(rows) == 5
        grouped.tracer.enabled = True

    def test_span_rows_dmv(self, grouped):
        grouped.query("SELECT COUNT(*) FROM grouped")
        rows = grouped.query(
            "SELECT * FROM sys_dm_exec_trace_spans"
        )
        assert rows
        # (trace_id, span_id, parent_span_id, name, category,
        #  wait_type, start_ms, duration_ms, pid, worker)
        assert all(len(r) == 10 for r in rows)


class TestChromeExport:
    def test_payload_shape(self, grouped):
        grouped.query(self.dop_query())
        payload = grouped.trace_payload(last_only=True)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        kinds = {e["ph"] for e in events}
        assert "X" in kinds and "M" in kinds
        for event in events:
            if event["ph"] != "X":
                continue
            assert event["dur"] >= 0
            assert isinstance(event["ts"], (int, float))

    def test_worker_pid_gets_own_process(self, grouped):
        grouped.query(self.dop_query())
        payload = grouped.trace_payload(last_only=True)
        pids = {e["pid"] for e in payload["traceEvents"]}
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == pids

    def test_write_trace_round_trips(self, grouped, tmp_path):
        grouped.query("SELECT COUNT(*) FROM grouped")
        out = tmp_path / "trace.json"
        grouped.write_trace(out, last_only=True)
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]

    def test_trace_chrome_events_standalone(self):
        trace = StatementTrace(1, "q", "SELECT")
        with trace.span("step"):
            pass
        trace.finish()
        events = trace_chrome_events(trace)
        assert all(e["ts"] >= 0 for e in events if e["ph"] == "X")
        payload = chrome_trace_payload([trace])
        json.dumps(payload)  # must be serialisable

    @staticmethod
    def dop_query():
        return (
            "SELECT g, COUNT(*), SUM(v) FROM grouped "
            "GROUP BY g OPTION (MAXDOP 2)"
        )
