"""SQL lexer."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PUNCT,
    STRING,
    tokenize,
)


def types_of(sql):
    return [t.type for t in tokenize(sql)[:-1]]


def values_of(sql):
    return [t.value for t in tokenize(sql)[:-1]]


class TestTokens:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type == KEYWORD for t in tokens[:-1])

    def test_identifiers_keep_case(self):
        assert values_of("ShortReadFiles") == ["ShortReadFiles"]
        assert types_of("ShortReadFiles") == [IDENT]

    def test_bracketed_identifier(self):
        tokens = tokenize("[Read]")
        assert tokens[0].type == IDENT and tokens[0].value == "Read"

    def test_bracketed_can_contain_keywords_and_spaces(self):
        assert values_of("[My Select Table]") == ["My Select Table"]

    def test_unterminated_bracket(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("[oops")

    def test_string_literal(self):
        tokens = tokenize("'hello'")
        assert tokens[0].type == STRING and tokens[0].value == "hello"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'unclosed")

    def test_numbers(self):
        assert values_of("1 2.5 1e6 3.14e-2") == ["1", "2.5", "1e6", "3.14e-2"]
        assert types_of("1 2.5") == [NUMBER, NUMBER]

    def test_operators(self):
        assert values_of("= <> != <= >= < > + - * / %") == [
            "=", "<>", "<>", "<=", ">=", "<", ">", "+", "-", "*", "/", "%",
        ]

    def test_punctuation(self):
        assert types_of("( ) , . ;") == [PUNCT] * 5

    def test_at_variables(self):
        assert values_of("@count") == ["@count"]

    def test_eof_token(self):
        assert tokenize("")[0].type == EOF

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT ~")


class TestComments:
    def test_line_comment(self):
        assert values_of("SELECT -- a comment\n1") == ["SELECT", "1"]

    def test_block_comment(self):
        assert values_of("SELECT /* skip\nme */ 1") == ["SELECT", "1"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT /* oops")


class TestPositions:
    def test_line_and_column_tracked(self):
        tokens = tokenize("SELECT\n  name")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_error_carries_position(self):
        try:
            tokenize("SELECT\n  'oops")
        except SqlSyntaxError as exc:
            assert exc.line == 2
        else:  # pragma: no cover
            pytest.fail("expected SqlSyntaxError")
