"""Columnstore access-method tests: encodings, zone maps, pruning,
tombstones, the delta-store tail, encoded aggregation, and the SQL
surface (`WITH (STORAGE = 'COLUMN')`).

The byte-identity of full query results across heap and column engines
is covered twice: the parametrized differential suite in
``test_vectorized.py`` (row vs batch per engine) and the cross-engine
differential here (heap vs column, same query, same bytes).
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.errors import StorageError
from repro.engine.schema import Column, TableSchema
from repro.engine.storage.columnstore import (
    ENC_BITPACK,
    ENC_DICT,
    ENC_PLAIN,
    ENC_RLE,
    ColumnSegment,
    ColumnStore,
    PushedPredicate,
)
from repro.engine.types import float_type, int_type, varchar_type


def _schema(*cols):
    return TableSchema("t", [Column(n, t) for n, t in cols])


def _store(schema, segment_rows=4):
    return ColumnStore(schema, segment_rows=segment_rows)


# ---------------------------------------------------------------------------
# encoding round-trips
# ---------------------------------------------------------------------------


class TestEncodings:
    def roundtrip(self, values, sql_type=None):
        segment = ColumnSegment(values, sql_type)
        assert segment.decode() == list(values)
        return segment

    def test_rle_on_runs(self):
        seg = self.roundtrip(["a"] * 50 + ["b"] * 50, varchar_type(10))
        assert seg.encoding == ENC_RLE

    def test_dict_on_low_cardinality_interleaved(self):
        values = ["chr1", "chr2", "chrX"] * 40
        seg = self.roundtrip(values, varchar_type(10))
        assert seg.encoding == ENC_DICT

    def test_bitpack_on_small_ints(self):
        seg = self.roundtrip(list(range(100)), int_type())
        assert seg.encoding == ENC_BITPACK

    def test_plain_on_high_cardinality_strings(self):
        values = [f"read_{i:06d}" for i in range(100)]
        seg = self.roundtrip(values, varchar_type(20))
        assert seg.encoding == ENC_PLAIN

    def test_all_null_segment(self):
        seg = self.roundtrip([None] * 64, int_type())
        assert seg.null_count == 64
        assert not seg.has_zone
        assert seg.ndv == 0

    def test_single_value_segment(self):
        seg = self.roundtrip([7] * 64, int_type())
        assert seg.encoding == ENC_RLE
        assert (seg.min_value, seg.max_value) == (7, 7)
        assert seg.ndv == 1

    def test_nulls_interleaved_roundtrip(self):
        values = [i if i % 3 else None for i in range(90)]
        seg = self.roundtrip(values, int_type())
        assert seg.null_count == 30

    def test_negative_zero_preserved(self):
        # -0.0 == 0.0 but repr differs; encodings must not conflate them
        values = [0.0, -0.0] * 32
        seg = self.roundtrip(values, float_type())
        assert repr(seg.decode()) == repr(values)

    def test_high_cardinality_ndv(self):
        seg = self.roundtrip(list(range(1000)), int_type())
        assert seg.ndv == 1000

    def test_empty_segment(self):
        seg = self.roundtrip([], int_type())
        assert seg.rows == 0 and seg.ndv == 0


# ---------------------------------------------------------------------------
# zone maps and segment-level selection
# ---------------------------------------------------------------------------


class TestZoneMaps:
    def seal_range(self, n=100, segment_rows=10):
        store = _store(_schema(("id", int_type())), segment_rows)
        for i in range(n):
            store.insert((i,))
        return store

    def test_point_predicate_prunes_all_but_one(self):
        store = self.seal_range()
        read, skipped = store.prune_estimate(
            [PushedPredicate(0, "=", 42)]
        )
        assert (read, skipped) == (1, 9)

    def test_range_straddling_segment_boundary(self):
        # 8..12 spans segments [0..9] and [10..19]: both admit, rest skip
        store = self.seal_range()
        read, skipped = store.prune_estimate(
            [PushedPredicate(0, "between", (8, 12))]
        )
        assert (read, skipped) == (2, 8)

    def test_out_of_range_prunes_everything(self):
        store = self.seal_range()
        read, skipped = store.prune_estimate(
            [PushedPredicate(0, ">", 1000)]
        )
        assert (read, skipped) == (0, 10)

    def test_isnull_pruned_by_null_counts(self):
        # the per-segment NULL count is zone metadata too: segments
        # without NULLs can never satisfy IS NULL
        store = self.seal_range()
        read, skipped = store.prune_estimate(
            [PushedPredicate(0, "isnull", None)]
        )
        assert (read, skipped) == (0, 10)
        with_nulls = ColumnSegment([1, None, 3, None], int_type())
        assert with_nulls.zone_admits(PushedPredicate(0, "isnull", None))
        assert with_nulls.zone_admits(PushedPredicate(0, "notnull", None))

    def test_mixed_type_zone_is_conservative(self):
        seg = ColumnSegment([1, 2, 3, 4], int_type())
        assert seg.zone_admits(PushedPredicate(0, ">", "zzz"))

    def test_tail_always_read(self):
        # rows 90..94 live in the open tail, which has no zone map: every
        # sealed segment skips but the tail still counts as one read
        store = self.seal_range(n=95, segment_rows=10)
        read, skipped = store.prune_estimate(
            [PushedPredicate(0, "=", 93)]
        )
        assert (read, skipped) == (1, 9)

    def test_selection_on_encoded_vector(self):
        store = self.seal_range()
        segment = store.segments[4]  # rows 40..49
        sel = segment.selection([PushedPredicate(0, ">=", 48)])
        assert sel == [8, 9]

    def test_selection_chains_conjuncts(self):
        store = self.seal_range()
        segment = store.segments[0]
        sel = segment.selection(
            [PushedPredicate(0, ">", 2), PushedPredicate(0, "<", 6)]
        )
        assert sel == [3, 4, 5]


# ---------------------------------------------------------------------------
# store mechanics: rids, tombstones, the delta-store tail
# ---------------------------------------------------------------------------


class TestStoreMechanics:
    def test_fetch_by_rid_across_segments_and_tail(self):
        store = _store(_schema(("id", int_type())), segment_rows=4)
        rids = [store.insert((i,)) for i in range(10)]
        assert rids[0] == (0, 0)
        assert rids[5] == (1, 1)
        assert rids[9] == (2, 1)  # open tail addressed past the segments
        for rid, i in zip(rids, range(10)):
            assert store.fetch(rid) == (i,)

    def test_delete_tombstones_and_scan_skips(self):
        store = _store(_schema(("id", int_type())), segment_rows=4)
        rids = [store.insert((i,)) for i in range(8)]
        store.delete(rids[2])
        store.delete(rids[5])
        assert [row for _rid, row in store.scan()] == [
            (i,) for i in range(8) if i not in (2, 5)
        ]
        with pytest.raises(StorageError):
            store.fetch(rids[2])

    def test_seal_all_not_forced_keeps_small_tail(self):
        store = _store(_schema(("id", int_type())), segment_rows=100)
        for i in range(7):
            store.insert((i,))
            store.seal_all(force=False)  # per-statement boundary
        assert store.segments == [] and len(store.tail) == 7

    def test_seal_all_forced_seals_tail(self):
        store = _store(_schema(("id", int_type())), segment_rows=100)
        for i in range(7):
            store.insert((i,))
        store.seal_all()
        assert len(store.segments) == 1 and store.tail == []

    def test_row_at_a_time_sql_inserts_fill_segments(self):
        db = Database()
        db.execute(
            "CREATE TABLE t (id INT) "
            "WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 8)"
        )
        for i in range(20):
            db.execute(f"INSERT INTO t VALUES ({i})")
        store = db.table("t").store
        # delta-store semantics: full 8-row segments, 4-row open tail —
        # not twenty one-row segments
        assert [s.rows for s in store.segments] == [8, 8]
        assert len(store.tail) == 4

    def test_compression_counters_namespaced_per_engine(self):
        store = _store(_schema(("id", int_type())), segment_rows=4)
        for i in range(8):
            store.insert((i % 2,))
        assert store.io["segment_bytes_in"] > 0
        assert store.io["segment_bytes_out"] > 0
        # the heap's PAGE-compression counters must stay untouched so
        # sys_dm_io_stats sums stay per-engine (regression: both engines
        # once shared compression_bytes_in/out)
        assert store.io["compression_bytes_in"] == 0
        assert store.io["compression_bytes_out"] == 0


# ---------------------------------------------------------------------------
# SQL surface and cross-engine differential
# ---------------------------------------------------------------------------


QUERIES = [
    "SELECT id, g, v FROM {t} WHERE id BETWEEN 20 AND 40 ORDER BY id",
    "SELECT g, COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) "
    "FROM {t} GROUP BY g",
    "SELECT g, COUNT(*) FROM {t} WHERE id < 50 GROUP BY g",
    "SELECT g, SUM(v) FROM {t} WHERE g IN ('a', 'c') GROUP BY g",
    "SELECT COUNT(*) FROM {t} WHERE v IS NULL",
    "SELECT id FROM {t} WHERE v IS NOT NULL AND v > 12 ORDER BY id",
    "SELECT g, f, COUNT(*) FROM {t} GROUP BY g, f",
    "SELECT COUNT(*) FROM {t} WHERE g <> 'a'",
]


class TestSqlSurface:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        for name, options in (
            ("h", ""),
            ("c", " WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 16)"),
        ):
            database.execute(
                f"CREATE TABLE {name} (id INT, g VARCHAR(4), "
                f"v INT, f FLOAT){options}"
            )
            for i in range(120):
                g = "abcd"[i % 4]
                v = "NULL" if i % 9 == 0 else str((i * 5) % 23)
                f = "NULL" if i % 13 == 0 else repr((i % 7) * 1.5)
                database.execute(
                    f"INSERT INTO {name} VALUES ({i}, '{g}', {v}, {f})"
                )
        yield database
        database.close()

    def test_heap_is_default_engine(self, db):
        assert db.table("h").store.engine_name == "heap"

    def test_column_engine_selected_by_with_clause(self, db):
        assert db.table("c").store.engine_name == "column"

    @pytest.mark.parametrize("query", QUERIES)
    def test_cross_engine_byte_identical(self, db, query):
        heap_rows = db.query(query.format(t="h"))
        column_rows = db.query(query.format(t="c"))
        assert repr(column_rows) == repr(heap_rows)
        assert heap_rows  # non-vacuous

    def test_update_and_delete_differential(self, db):
        for t in ("h", "c"):
            db.execute(f"UPDATE {t} SET v = 99 WHERE id BETWEEN 10 AND 15")
            db.execute(f"DELETE FROM {t} WHERE id BETWEEN 30 AND 35")
        query = "SELECT id, v FROM {t} ORDER BY id"
        assert repr(db.query(query.format(t="c"))) == repr(
            db.query(query.format(t="h"))
        )

    def test_explain_labels_columnstore_scan(self, db):
        plan = db.explain("SELECT g, COUNT(*) FROM c WHERE id < 40 GROUP BY g")
        assert "Columnstore Index Scan [c]" in plan
        assert "storage=column" in plan
        assert "pushed: (id < 40)" in plan
        assert "Columnstore Aggregate" in plan

    def test_explain_analyze_reports_segment_pruning(self, db):
        plan = db.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM c WHERE id BETWEEN 100 AND 110"
        )
        assert "segments=" in plan and "skipped=" in plan
        # zone maps must actually skip segments on this narrow range
        skipped = int(plan.split("skipped=")[1].split(",")[0].split()[0])
        assert skipped > 0

    def test_null_inequality_not_pushed(self, db):
        # col <> NULL matches nothing under three-valued logic; a pushed
        # two-valued matcher would wrongly return every non-null row
        assert db.query("SELECT id FROM c WHERE v <> NULL") == []

    def test_segment_stats_dmv(self, db):
        rows = db.query(
            "SELECT column_name, encoding, row_count "
            "FROM sys_dm_db_segment_stats WHERE table_name = 'c'"
        )
        assert rows
        assert {r[0] for r in rows} == {"id", "g", "v", "f"}

    def test_harvested_statistics_without_analyze(self, db):
        stats = db.table("c").statistics
        assert stats is not None
        assert stats.column("g").n_distinct == 4

    def test_encoded_aggregate_on_rle_runs(self):
        # a sorted low-cardinality group column RLE-encodes; grouped
        # aggregation then runs at run granularity, not row granularity
        db = Database()
        db.execute(
            "CREATE TABLE runs_t (g VARCHAR(2), v INT) "
            "WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 32)"
        )
        values = ", ".join(
            f"('{'ab'[i // 64]}', {i % 10})" for i in range(128)
        )
        db.execute(f"INSERT INTO runs_t VALUES {values}")
        plan = db.explain("SELECT g, COUNT(*), SUM(v) FROM runs_t GROUP BY g")
        assert "Columnstore Aggregate" in plan
        rows = db.query("SELECT g, COUNT(*), SUM(v) FROM runs_t GROUP BY g")
        assert rows == [("a", 64, 64 * 4.5), ("b", 64, 64 * 4.5)] or rows == [
            ("a", 64, sum(i % 10 for i in range(64))),
            ("b", 64, sum(i % 10 for i in range(64, 128))),
        ]
        db.close()
