"""The observability layer: counters, spans, the metrics registry, the
DMV-style system views, and SET STATISTICS TIME/IO."""

import pytest

from repro.engine import Database
from repro.engine.errors import BindError
from repro.engine.metrics import (
    Counters,
    MetricsRegistry,
    Span,
    SpanTimeline,
    normalize_query_text,
)


class TestCounters:
    def test_missing_key_reads_zero(self):
        counters = Counters()
        assert counters["anything"] == 0
        assert "anything" not in counters  # reading must not materialise

    def test_incr(self):
        counters = Counters()
        counters.incr("pages_read")
        counters.incr("pages_read", 4)
        assert counters["pages_read"] == 5

    def test_merge_with_prefix(self):
        counters = Counters({"pages_read": 2})
        counters.merge({"seeks": 3, "node_visits": 7}, prefix="index_")
        assert counters["index_seeks"] == 3
        assert counters["index_node_visits"] == 7
        assert counters["pages_read"] == 2

    def test_snapshot_is_independent(self):
        counters = Counters({"a": 1})
        snap = counters.snapshot()
        counters.incr("a")
        assert snap["a"] == 1

    def test_delta_drops_zero_entries(self):
        before = Counters({"a": 1, "b": 5})
        after = Counters({"a": 3, "b": 5, "c": 2})
        delta = Counters.delta(after, before)
        assert delta == {"a": 2, "c": 2}


class TestSpans:
    def test_span_duration(self):
        assert Span("x", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_timeline_normalises_origin(self):
        timeline = SpanTimeline("t")
        timeline.add_span("a", 10.0, 11.0)
        timeline.add_span("b", 11.0, 13.0)
        assert timeline.spans[0].start == pytest.approx(0.0)
        assert timeline.spans[1].end == pytest.approx(3.0)
        assert timeline.total_time == pytest.approx(3.0)

    def test_span_context_manager(self):
        timeline = SpanTimeline("t")
        with timeline.span("work", detail="x"):
            pass
        (span,) = timeline.spans
        assert span.name == "work"
        assert span.attrs["detail"] == "x"
        assert span.duration >= 0.0


class TestRegistry:
    def test_normalize_collapses_whitespace_and_masks_literals(self):
        # normalize_query_text delegates to the query store's
        # lexer-based normalization: whitespace collapses AND literals
        # mask to '?', so parameterized repetitions share one stats row
        assert normalize_query_text("SELECT  x\n  FROM   t") == (
            "SELECT x FROM t"
        )
        assert normalize_query_text("SELECT x FROM t WHERE id = 3") == (
            normalize_query_text("SELECT x FROM t WHERE id = 99")
        )

    def test_repeat_executions_aggregate(self):
        registry = MetricsRegistry()
        registry.record_statement("SELECT 1", "SELECT", 0.5, 1, {})
        registry.record_statement("SELECT  1", "SELECT", 0.25, 1, {})
        (stats,) = registry.queries()
        assert stats.execution_count == 2
        assert stats.total_elapsed == pytest.approx(0.75)

    def test_parameterized_repetitions_share_a_row(self):
        registry = MetricsRegistry()
        registry.record_statement("SELECT a FROM t WHERE id = 1", "SELECT", 0.5, 1, {})
        registry.record_statement("SELECT a FROM t WHERE id = 2", "SELECT", 0.25, 1, {})
        (stats,) = registry.queries()
        assert stats.execution_count == 2

    def test_retention_evicts_oldest(self):
        registry = MetricsRegistry(retain=2)
        registry.record_statement("SELECT a", "SELECT", 0.1, 1, {})
        registry.record_statement("SELECT b", "SELECT", 0.1, 1, {})
        registry.record_statement("SELECT c", "SELECT", 0.1, 1, {})
        texts = [q.query_text for q in registry.queries()]
        assert "SELECT a" not in texts
        assert texts == ["SELECT b", "SELECT c"]


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            """
            CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(5));
            INSERT INTO t VALUES (1, 'a'), (2, 'a'), (3, 'b');
            """
        )
        yield database


class TestSystemViews:
    def test_query_stats_view(self, db):
        db.query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        rows = db.query(
            "SELECT query_text, statement_kind, execution_count, total_rows"
            " FROM sys_dm_exec_query_stats"
        )
        by_text = {r[0]: r for r in rows}
        stats = by_text[
            normalize_query_text("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        ]
        assert stats[1] == "SELECT"
        assert stats[2] == 1
        assert stats[3] == 2
        # the INSERT from the fixture is retained too
        assert any(kind == "INSERT" for _q, kind, _n, _r in rows)

    def test_index_stats_view(self, db):
        db.query("SELECT id FROM t WHERE id = 2")
        rows = db.query(
            "SELECT table_name, index_name, index_type, entry_count, seeks"
            " FROM sys_dm_db_index_stats"
        )
        (row,) = [r for r in rows if r[0] == "t"]
        assert row[1] == "PK_t"
        assert row[2] == "CLUSTERED"
        assert row[3] == 3
        assert row[4] >= 1  # at least the point lookup

    def test_io_stats_view(self, db):
        list(db.table("t").scan())
        io = dict(db.query("SELECT counter, value FROM sys_dm_io_stats"))
        assert io["rows_inserted"] == 3
        assert io["pages_written"] >= 1
        assert io["scans"] >= 1

    def test_io_stats_mixed_engines_no_counter_collision(self, db):
        # regression: heap PAGE compression and columnstore encoding once
        # shared compression_bytes_in/out, so a mixed-engine database
        # summed two unrelated ratios into one sys_dm_io_stats row
        db.execute(
            "CREATE TABLE ct (id INT, v INT) "
            "WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 4)"
        )
        db.execute(
            "INSERT INTO ct VALUES (1, 1), (2, 1), (3, 2), (4, 2), (5, 3)"
        )
        db.query("SELECT COUNT(*) FROM ct WHERE id > 2")
        io = dict(db.query("SELECT counter, value FROM sys_dm_io_stats"))
        # columnstore counters live in their own namespace...
        assert io["segments_written"] >= 1
        assert io["segment_bytes_in"] > 0
        assert io["segment_bytes_out"] > 0
        assert io["segments_read"] >= 1
        # ...and never leak into the heap's page/compression counters
        assert io.get("compression_bytes_in", 0) == 0
        heap_io = db.table("t").io_report()
        column_io = db.table("ct").io_report()
        assert "segments_written" not in heap_io
        assert "pages_written" not in column_io

    def test_query_stats_view_reports_segment_pruning(self, db):
        db.execute(
            "CREATE TABLE cq (id INT) "
            "WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 4)"
        )
        db.execute(
            "INSERT INTO cq VALUES (1), (2), (3), (4), (5), (6), (7), (8)"
        )
        db.query("SELECT COUNT(*) FROM cq WHERE id > 6")
        rows = db.query(
            "SELECT query_text, total_segments_read, total_segments_skipped "
            "FROM sys_dm_exec_query_stats WHERE total_segments_skipped > 0"
        )
        assert rows
        assert rows[0][0] == normalize_query_text(
            "SELECT COUNT(*) FROM cq WHERE id > 6"
        )

    def test_views_are_read_only(self, db):
        with pytest.raises(BindError):
            db.execute("INSERT INTO sys_dm_io_stats VALUES ('x', 1)")
        with pytest.raises(BindError):
            db.execute("DELETE FROM sys_dm_exec_query_stats")

    def test_views_hidden_from_table_listing(self, db):
        assert "sys_dm_io_stats" not in db.catalog.table_names()
        assert db.catalog.has_table("sys_dm_io_stats")

    def test_source_sql_split_and_normalized_per_statement(self, db):
        db.execute(
            "SELECT COUNT(*) FROM t; SELECT grp FROM t WHERE id = 1"
        )
        texts = [
            q.query_text for q in db.metrics.queries()
        ]
        assert normalize_query_text("SELECT COUNT(*) FROM t") in texts
        assert normalize_query_text("SELECT grp FROM t WHERE id = 1") in texts


class TestSetStatistics:
    def test_statistics_io_messages(self, db):
        db.execute("SET STATISTICS IO ON")
        db.query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        assert any(
            m.startswith("Table 't'. Scan count 1, logical reads ")
            for m in db.messages
        )
        db.execute("SET STATISTICS IO OFF")
        db.query("SELECT COUNT(*) FROM t")
        assert db.messages == []

    def test_statistics_time_messages(self, db):
        db.execute("SET STATISTICS TIME ON")
        db.query("SELECT COUNT(*) FROM t")
        assert any(
            m.startswith("Execution Times: elapsed time = ")
            for m in db.messages
        )

    def test_set_statistics_rejects_unknown_option(self, db):
        from repro.engine.errors import SqlSyntaxError

        with pytest.raises(SqlSyntaxError):
            db.execute("SET STATISTICS PROFILE ON")


class TestExplainAnalyze:
    def test_reports_time_and_loops(self, db):
        text = db.explain(
            "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM t GROUP BY grp"
        )
        assert "actual rows=2" in text
        assert "time=" in text
        assert "loops=1" in text

    def test_plain_explain_has_no_actuals(self, db):
        text = db.explain("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        assert "actual rows" not in text
        assert "time=" not in text

    def test_loops_counted_on_rescanned_inner(self, db):
        db.execute(
            """
            CREATE TABLE u (uid INT PRIMARY KEY, grp VARCHAR(5));
            INSERT INTO u VALUES (10, 'a'), (11, 'b'), (12, 'b');
            """
        )
        op = db.plan(
            "SELECT id, uid FROM t JOIN u ON (t.grp = u.grp)"
        )
        op.enable_timing()
        rows = list(op)
        assert len(rows) == 4  # a:2*1 + b:1*2
        text = op.explain(analyze=True)
        assert "actual rows=" in text
        # every node accounts for exactly the rows it emitted, summed
        # across loops
        def walk(node):
            yield node
            for child in node.children():
                yield from walk(child)

        for node in walk(op):
            assert node.rows_out == sum(node.loop_rows)
            assert node.loops == len(node.loop_rows)

    def test_untimed_execution_stays_cold(self, db):
        op = db.plan("SELECT COUNT(*) FROM t")
        list(op)
        assert op.rows_out == 1
        assert op.elapsed == 0.0  # the timed path is opt-in


class TestPrometheus:
    def test_exposition_text(self, db):
        db.query("SELECT COUNT(*) FROM t")
        text = db.metrics_prometheus()
        assert "# TYPE repro_engine_query_executions_total counter" in text
        label = normalize_query_text("SELECT COUNT(*) FROM t")
        assert (
            f'repro_engine_query_executions_total{{query="{label}"}} 1'
            in text
        )
        assert 'repro_engine_io_total{counter="rows_inserted"} 3' in text
        assert 'repro_engine_plan_cache_total{event="misses"} 1' in text
