"""Row serialisation: plain and ROW-compressed formats."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.schema import Column, TableSchema
from repro.engine.storage.serializer import (
    RowSerializer,
    encode_varint,
    pack_int_minimal,
    read_varint,
    unpack_int_minimal,
    write_varint,
)
from repro.engine.types import (
    MAX,
    bigint_type,
    char_type,
    float_type,
    int_type,
    varbinary_type,
    varchar_type,
)


def make_schema():
    return TableSchema(
        "t",
        [
            Column("id", int_type(), nullable=False),
            Column("big", bigint_type()),
            Column("name", varchar_type(50)),
            Column("fixed", char_type(8)),
            Column("score", float_type()),
            Column("blob", varbinary_type(MAX)),
        ],
        primary_key=["id"],
    )


ROWS = [
    (1, 2**40, "alpha", "abc     ", 1.5, b"\x00\xff"),
    (2, None, None, None, None, None),
    (3, -5, "", "        ", -0.0, b""),
    (2**31 - 1, -(2**63), "x" * 50, "12345678", 1e300, bytes(range(256))),
]


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**60])
    def test_round_trip(self, value):
        buf = bytearray()
        write_varint(value, buf)
        decoded, pos = read_varint(bytes(buf), 0)
        assert decoded == value
        assert pos == len(buf)

    def test_encode_varint_matches_write(self):
        buf = bytearray()
        write_varint(777, buf)
        assert encode_varint(777) == bytes(buf)

    def test_negative_rejected(self):
        from repro.engine.errors import StorageError

        with pytest.raises(StorageError):
            write_varint(-1, bytearray())

    @given(st.integers(min_value=0, max_value=2**64))
    def test_round_trip_property(self, value):
        decoded, _ = read_varint(encode_varint(value), 0)
        assert decoded == value


class TestMinimalInts:
    @pytest.mark.parametrize(
        "value", [0, 1, -1, 127, 128, -128, -129, 2**31, -(2**63)]
    )
    def test_round_trip(self, value):
        assert unpack_int_minimal(pack_int_minimal(value)) == value

    def test_zero_is_empty(self):
        assert pack_int_minimal(0) == b""

    def test_small_values_are_one_byte(self):
        assert len(pack_int_minimal(5)) == 1
        assert len(pack_int_minimal(-5)) == 1

    @given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    def test_round_trip_property(self, value):
        assert unpack_int_minimal(pack_int_minimal(value)) == value


class TestPlainFormat:
    @pytest.mark.parametrize("row", ROWS)
    def test_round_trip(self, row):
        serializer = RowSerializer(make_schema(), row_compression=False)
        assert serializer.deserialize(serializer.serialize(row)) == row

    def test_nulls_encoded_in_bitmap_only(self):
        serializer = RowSerializer(make_schema())
        all_null = (1, None, None, None, None, None)
        some = (1, 5, "abc", "x       ", 1.0, b"zz")
        assert len(serializer.serialize(all_null)) < len(
            serializer.serialize(some)
        )


class TestRowCompressedFormat:
    @pytest.mark.parametrize("row", ROWS)
    def test_round_trip(self, row):
        serializer = RowSerializer(make_schema(), row_compression=True)
        assert serializer.deserialize(serializer.serialize(row)) == row

    def test_compression_shrinks_small_ints(self):
        plain = RowSerializer(make_schema(), row_compression=False)
        compressed = RowSerializer(make_schema(), row_compression=True)
        row = (1, 2, "ab", "ab      ", 1.0, b"x")
        assert len(compressed.serialize(row)) < len(plain.serialize(row))

    def test_char_trailing_spaces_trimmed_and_restored(self):
        serializer = RowSerializer(make_schema(), row_compression=True)
        row = (1, None, None, "ab      ", None, None)
        record = serializer.serialize(row)
        assert serializer.deserialize(record)[3] == "ab      "
        # trimmed on disk: much shorter than the 8 declared chars
        assert len(record) < 8 + 2

    def test_split_join_round_trip(self):
        serializer = RowSerializer(make_schema(), row_compression=True)
        for row in ROWS:
            record = serializer.serialize(row)
            nulls, fields = serializer.split_compressed(record)
            assert serializer.join_compressed(nulls, fields) == record

    def test_uncompressed_size_reported(self):
        serializer = RowSerializer(make_schema(), row_compression=True)
        row = ROWS[0]
        plain = RowSerializer(make_schema(), row_compression=False)
        assert serializer.uncompressed_size(row) == len(plain.serialize(row))


@st.composite
def random_rows(draw):
    return (
        draw(st.integers(min_value=-(2**31), max_value=2**31 - 1)),
        draw(st.one_of(st.none(), st.integers(-(2**63), 2**63 - 1))),
        draw(st.one_of(st.none(), st.text(max_size=50))),
        draw(
            st.one_of(
                st.none(),
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    min_size=8,
                    max_size=8,
                ),
            )
        ),
        draw(st.one_of(st.none(), st.floats(allow_nan=False))),
        draw(st.one_of(st.none(), st.binary(max_size=64))),
    )


class TestPropertyRoundTrips:
    @given(random_rows())
    def test_plain(self, row):
        serializer = RowSerializer(make_schema())
        assert serializer.deserialize(serializer.serialize(row)) == row

    @given(random_rows())
    def test_compressed(self, row):
        serializer = RowSerializer(make_schema(), row_compression=True)
        assert serializer.deserialize(serializer.serialize(row)) == row
