"""UPDATE statement semantics."""

import pytest

from repro.engine import Database
from repro.engine.errors import BindError, DuplicateKeyError


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            """
            CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(10), n INT);
            INSERT INTO t VALUES
                (1, 'a', 10), (2, 'a', 20), (3, 'b', 30), (4, 'b', 40);
            """
        )
        yield database


class TestUpdate:
    def test_single_column(self, db):
        assert db.execute("UPDATE t SET n = 99 WHERE id = 2") == 1
        assert db.scalar("SELECT n FROM t WHERE id = 2") == 99

    def test_multi_column(self, db):
        db.execute("UPDATE t SET grp = 'z', n = 0 WHERE id = 1")
        assert db.query("SELECT grp, n FROM t WHERE id = 1") == [("z", 0)]

    def test_expression_rhs_sees_old_row(self, db):
        db.execute("UPDATE t SET n = n + 1")
        assert sorted(db.query("SELECT n FROM t")) == [
            (11,), (21,), (31,), (41,)
        ]

    def test_no_where_updates_all(self, db):
        assert db.execute("UPDATE t SET grp = 'all'") == 4

    def test_no_match_updates_nothing(self, db):
        assert db.execute("UPDATE t SET n = 0 WHERE id = 99") == 0

    def test_swap_within_updated_set(self, db):
        """Key changes inside the updated set must not self-collide."""
        db.execute("UPDATE t SET id = id + 10 WHERE grp = 'a'")
        ids = sorted(row[0] for row in db.query("SELECT id FROM t"))
        assert ids == [3, 4, 11, 12]
        # pk index consistent after the shuffle
        assert db.query("SELECT n FROM t WHERE id = 11") == [(10,)]

    def test_pk_collision_with_untouched_row_rolls_back(self, db):
        with pytest.raises(DuplicateKeyError):
            db.execute("UPDATE t SET id = 3 WHERE id = 1")
        # the table is unchanged
        assert sorted(db.query("SELECT id, n FROM t")) == [
            (1, 10), (2, 20), (3, 30), (4, 40)
        ]

    def test_case_expression_in_set(self, db):
        db.execute(
            "UPDATE t SET n = CASE WHEN n > 25 THEN 1 ELSE 0 END"
        )
        assert sorted(db.query("SELECT id, n FROM t")) == [
            (1, 0), (2, 0), (3, 1), (4, 1)
        ]

    def test_unknown_column_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("UPDATE t SET nope = 1")

    def test_filestream_table_rejected(self, db):
        db.execute(
            """
            CREATE TABLE f (
                guid uniqueidentifier ROWGUIDCOL PRIMARY KEY,
                payload VARBINARY(MAX) FILESTREAM
            )
            """
        )
        import uuid

        db.table("f").insert((uuid.uuid4(), b"blob"))
        with pytest.raises(BindError):
            db.execute("UPDATE f SET guid = NEWID()")

    def test_update_respects_type_validation(self, db):
        from repro.engine.errors import TypeMismatchError

        with pytest.raises(TypeMismatchError):
            db.execute("UPDATE t SET n = 'not a number' WHERE id = 1")
        # rollback left data intact
        assert db.scalar("SELECT n FROM t WHERE id = 1") == 10
