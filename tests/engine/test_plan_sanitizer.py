"""Plan sanitizer + fork-safety analyzer tests.

Three layers, mirroring the verifier's contract:

1. **Golden corpus** — every shipped plan shape (Figure 9/10 + the
   differential-suite queries, heap/column × row/batch × dop 1/2/4)
   must produce zero diagnostics.
2. **Hand-broken fixtures** — a real plan is corrupted in exactly one
   way and must trip exactly its intended ``PLAN-*`` rule; inline
   sources must trip exactly their ``FORK-*`` rule.
3. **Surfacing** — ``SET PLAN_VERIFY ON`` / ``REPRO_PLAN_VERIFY``,
   EXPLAIN ``note:`` lines, the ``sys_dm_verify_results`` source
   column, and ``-- lint: ignore`` suppression pragmas.
"""

import pytest

from repro.engine.database import Database
from repro.engine.executor.aggregates import AggregateSpec
from repro.engine.verify.parallel_safety import (
    RULES as FORK_RULES,
    analyze_fork_safety,
    analyze_source,
)
from repro.engine.verify.plan_corpus import _build_sales_db, sanitize_corpus
from repro.engine.verify.plan_sanitizer import (
    RULES as PLAN_RULES,
    sanitize_plan,
    walk_plan,
)
from repro.engine.verify.sql_lint import parse_suppressions
from repro.engine.verify.udx_verifier import Diagnostic

from .test_vectorized import (
    DIFFERENTIAL_QUERIES,
    PARALLEL_DIFFERENTIAL_QUERIES,
)


@pytest.fixture(scope="module")
def heap_db():
    with Database() as db:
        _build_sales_db(db, "heap")
        yield db


@pytest.fixture(scope="module")
def column_db():
    with Database() as db:
        _build_sales_db(db, "column")
        yield db


def _find(plan, type_name):
    for _path, node in walk_plan(plan):
        if type(node).__name__ == type_name:
            return node
    raise AssertionError(
        f"no {type_name} in plan: "
        f"{[type(n).__name__ for _p, n in walk_plan(plan)]}"
    )


def _rules(findings):
    return {d.rule for d in findings}


# ---------------------------------------------------------------------------
# the golden corpus: shipped plans prove every invariant
# ---------------------------------------------------------------------------

class TestGoldenCorpus:
    def test_corpus_zero_diagnostics(self):
        failures = sanitize_corpus()
        assert failures == [], "\n".join(
            f"{desc}: {finding}" for desc, finding in failures
        )

    @pytest.mark.parametrize("storage", ["heap", "column"])
    @pytest.mark.parametrize("mode", ["auto", "row"])
    def test_differential_suite_plans_clean(self, storage, mode):
        """Every differential-suite query (serial and parallel, both
        storage engines, both execution modes) sanitizes clean."""
        with Database() as db:
            db.execution_mode = mode
            _build_sales_db(db, storage)
            failures = []
            for sql in DIFFERENTIAL_QUERIES:
                for d in sanitize_plan(db.plan(sql), db):
                    failures.append((sql, d))
            for sql in PARALLEL_DIFFERENTIAL_QUERIES:
                for dop in (1, 2, 4):
                    hinted = f"{sql} OPTION (MAXDOP {dop})"
                    for d in sanitize_plan(db.plan(hinted), db):
                        failures.append((hinted, d))
            assert failures == []

    def test_engine_fork_safety_clean(self):
        assert analyze_fork_safety() == []

    def test_operator_paths_are_single_line(self, heap_db):
        plan = heap_db.plan(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        for path, _node in walk_plan(plan):
            assert "\n" not in path
            assert path  # never empty


# ---------------------------------------------------------------------------
# hand-broken plans: each fixture trips exactly its intended rule
# ---------------------------------------------------------------------------

class TestBrokenPlans:
    def test_arity_projection_descriptor_mismatch(self, heap_db):
        plan = heap_db.plan("SELECT id, amount * 2 FROM sales")
        project = _find(plan, "Project")
        project.fns = project.fns[:-1]
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-ARITY"}

    def test_schema_passthrough_reshapes_row(self, heap_db):
        plan = heap_db.plan("SELECT DISTINCT region FROM sales")
        distinct = _find(plan, "Distinct")
        distinct.columns = list(distinct.columns) + ["phantom"]
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-SCHEMA"}

    def test_mode_batch_on_row_only_operator(self, heap_db):
        plan = heap_db.plan("SELECT id FROM sales WHERE amount > 25")
        scan = _find(plan, "TableScan")
        scan.batch_capable = False  # instance override: row-only now
        scan.execution_mode = "batch"
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-MODE"}

    def test_mode_unknown_tag(self, heap_db):
        plan = heap_db.plan("SELECT id FROM sales WHERE amount > 25")
        _find(plan, "TableScan").execution_mode = "vector"
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-MODE"}

    def test_fusion_without_batch_predicate(self, heap_db):
        plan = heap_db.plan(
            "SELECT id, amount FROM sales "
            "WHERE amount > 25 AND region = 'north'"
        )
        fused = _find(plan, "FusedFilterProject")
        fused.batch_predicate = None
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-FUSION"}

    def test_fusion_under_forced_row_session(self):
        with Database() as db:
            _build_sales_db(db, "heap")
            plan = db.plan(
                "SELECT id, amount FROM sales "
                "WHERE amount > 25 AND region = 'north'"
            )
            _find(plan, "FusedFilterProject")  # planner did fuse
            db.execution_mode = "row"
            assert "PLAN-FUSION" in _rules(sanitize_plan(plan, db))

    def test_key_range_hash_join(self, heap_db):
        plan = heap_db.plan(
            "SELECT s.id, r.zone FROM sales AS s JOIN regions AS r "
            "ON s.region = r.name WHERE s.amount > 45"
        )
        join = _find(plan, "HashJoin")
        join.left_key_indexes = (99,)
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-KEY-RANGE"}

    def test_key_range_group_index(self, heap_db):
        plan = heap_db.plan(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        agg = _find(plan, "ParallelHashAggregate")
        agg.group_indexes = (99,)
        assert _rules(sanitize_plan(plan, heap_db)) == {"PLAN-KEY-RANGE"}

    def test_exchange_merge_unsafe_uda(self, heap_db):
        class _UnverifiedMergeUda:
            name = "busted"
            parallel_safe = True
            _merge_verified = False  # verifier found no merge()

        plan = heap_db.plan(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        agg = _find(plan, "ParallelHashAggregate")
        agg.aggregates[0] = AggregateSpec(
            "busted",
            [lambda row: row[1]],
            uda_class=_UnverifiedMergeUda,
            arg_index=1,
        )
        # the fallback itself is noted, so only the merge rule fires
        plan.plan_notes = ["exchange will simulate DOP — fixture"]
        assert _rules(sanitize_plan(plan, heap_db)) == {
            "PLAN-EXCHANGE-MERGE"
        }

    def test_exchange_invalid_dop(self, heap_db):
        plan = heap_db.plan(
            "SELECT region, COUNT(*) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        _find(plan, "ParallelHashAggregate").dop = 0
        assert _rules(sanitize_plan(plan, heap_db)) == {
            "PLAN-EXCHANGE-DOP"
        }

    def test_exchange_float_sum_gate_defeated(self, heap_db, monkeypatch):
        """If the runtime offload gate wrongly admits a float SUM to the
        range-partitioned scan tier, the sanitizer's independent by-name
        type resolution catches it."""
        import repro.engine.executor.exchange as exchange

        monkeypatch.setattr(
            exchange, "scan_offload_blocker", lambda *args: None
        )
        plan = heap_db.plan(
            "SELECT region, SUM(price) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        findings = sanitize_plan(plan, heap_db)
        assert _rules(findings) == {"PLAN-EXCHANGE-FLOAT-SUM"}
        assert "price" in findings[0].message

    def test_exchange_silent_fallback(self, heap_db):
        plan = heap_db.plan(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        agg = _find(plan, "ParallelHashAggregate")
        agg.aggregates[0].arg_index = None  # descriptor cannot ship
        plan.plan_notes = []  # ...and nobody said so
        findings = sanitize_plan(plan, heap_db)
        assert _rules(findings) == {"PLAN-EXCHANGE-SILENT"}
        assert findings[0].severity == "warning"

    def test_exchange_noted_fallback_stays_silent_rule_free(self, heap_db):
        """The same broken offload with the planner's note present is
        not a finding — the rule polices silence, not fallback."""
        plan = heap_db.plan(
            "SELECT region, SUM(amount) FROM sales GROUP BY region "
            "OPTION (MAXDOP 2)"
        )
        agg = _find(plan, "ParallelHashAggregate")
        agg.aggregates[0].arg_index = None
        plan.plan_notes = ["exchange will simulate DOP — fixture"]
        assert sanitize_plan(plan, heap_db) == []

    def test_pushdown_unsupported_op(self, column_db):
        plan = column_db.plan("SELECT id FROM sales WHERE amount > 10")
        scan = _find(plan, "ColumnStoreScan")
        assert scan.predicates, "pushdown did not engage"
        scan.predicates[0].op = "regex"
        assert _rules(sanitize_plan(plan, column_db)) == {
            "PLAN-PUSHDOWN-OP"
        }

    def test_pushdown_position_out_of_range(self, column_db):
        plan = column_db.plan("SELECT id FROM sales WHERE amount > 10")
        scan = _find(plan, "ColumnStoreScan")
        scan.predicates[0].col_index = 99
        assert _rules(sanitize_plan(plan, column_db)) == {
            "PLAN-PUSHDOWN-RANGE"
        }

    def test_pushdown_between_without_pair(self, column_db):
        plan = column_db.plan(
            "SELECT id FROM sales WHERE amount BETWEEN 5 AND 15"
        )
        scan = _find(plan, "ColumnStoreScan")
        between = [p for p in scan.predicates if p.op == "between"]
        assert between
        between[0].value = 7
        assert _rules(sanitize_plan(plan, column_db)) == {
            "PLAN-PUSHDOWN-SHAPE"
        }

    def test_pushdown_undecodable_encoding(self, column_db):
        plan = column_db.plan("SELECT id FROM sales WHERE amount > 10")
        scan = _find(plan, "ColumnStoreScan")
        col_index = scan.predicates[0].col_index
        segment = scan.table.store.segments[0]
        original = segment.columns[col_index].encoding
        segment.columns[col_index].encoding = "zstd"
        try:
            assert _rules(sanitize_plan(plan, column_db)) == {
                "PLAN-PUSHDOWN-ENC"
            }
        finally:
            segment.columns[col_index].encoding = original

    def test_sanitizer_never_raises_on_garbage(self):
        """A verifier that crashes on the input it exists to reject is
        useless: a plan of nonsense still returns diagnostics."""

        class _Garbage:
            columns = None
            execution_mode = 17

            def children(self):
                return ()

        findings = sanitize_plan(_Garbage())
        assert any(d.rule == "PLAN-MODE" for d in findings)


# ---------------------------------------------------------------------------
# fork-safety fixtures: inline sources tripping each FORK-* rule
# ---------------------------------------------------------------------------

class TestForkSafety:
    def test_handler_not_toplevel(self):
        findings = analyze_source(
            "def _ok(payload):\n"
            "    return payload\n"
            "_TASK_KINDS = {'ok': _ok, 'bad': _missing,"
            " 'worse': lambda p: p}\n",
            "fixture.py",
        )
        assert _rules(findings) == {"FORK-HANDLER-TOPLEVEL"}
        assert len(findings) == 2  # the dangling name AND the lambda

    def test_closure_in_payload_builder(self):
        findings = analyze_source(
            "def build_scan_tasks(rows):\n"
            "    def slicer(row):\n"
            "        return row\n"
            "    return [('k', {'fn': lambda x: slicer(x)})]\n",
            "fixture.py",
        )
        assert _rules(findings) == {"FORK-PICKLE-CLOSURE"}
        assert len(findings) == 2  # nested def AND lambda

    def test_closure_outside_builder_is_fine(self):
        findings = analyze_source(
            "def render(rows):\n"
            "    return sorted(rows, key=lambda r: r[0])\n",
            "fixture.py",
        )
        assert findings == []

    def test_undeclared_shared_state(self):
        source = (
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n"
        )
        findings = analyze_source(source, "fixture.py")
        assert _rules(findings) == {"FORK-SHARED-STATE"}

    def test_declared_worker_local_state_is_exempt(self):
        source = (
            "WORKER_LOCAL_STATE = frozenset({'_CACHE'})\n"
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE[key] = value\n"
        )
        assert analyze_source(source, "fixture.py") == []

    def test_local_shadowing_is_not_shared_state(self):
        source = (
            "_CACHE = {}\n"
            "def remember(key, value):\n"
            "    _CACHE = {}\n"
            "    _CACHE[key] = value\n"
            "    return _CACHE\n"
        )
        assert analyze_source(source, "fixture.py") == []

    def test_wall_clock_in_timing(self):
        findings = analyze_source(
            "import time\n"
            "def span():\n"
            "    return time.time()\n",
            "fixture.py",
        )
        assert _rules(findings) == {"FORK-CLOCK"}

    def test_perf_counter_is_fine(self):
        assert (
            analyze_source(
                "import time\n"
                "def span():\n"
                "    return time.perf_counter()\n",
                "fixture.py",
            )
            == []
        )

    def test_unparsable_source(self):
        findings = analyze_source("def broken(:\n", "fixture.py")
        assert _rules(findings) == {"FORK-PARSE"}

    def test_rule_catalogs_cover_every_emitted_rule(self):
        assert set(FORK_RULES) >= {
            "FORK-HANDLER-TOPLEVEL",
            "FORK-PICKLE-CLOSURE",
            "FORK-SHARED-STATE",
            "FORK-CLOCK",
            "FORK-PARSE",
        }
        assert all(
            severity in ("error", "warning", "info")
            for severity, _summary in PLAN_RULES.values()
        )


# ---------------------------------------------------------------------------
# surfacing: the knob, EXPLAIN notes, the DMV source column, pragmas
# ---------------------------------------------------------------------------

def _fixed_finding(*_args, **_kwargs):
    return [
        Diagnostic(
            "PLAN-MODE", "error", "Fixture/Node", "injected fixture finding"
        )
    ]


class TestSurfacing:
    def test_set_plan_verify_toggles_knob(self):
        with Database() as db:
            assert db.plan_verify is False
            db.execute("SET PLAN_VERIFY ON")
            assert db.plan_verify is True
            db.execute("SET PLAN_VERIFY OFF")
            assert db.plan_verify is False

    def test_env_var_arms_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_PLAN_VERIFY", "1")
        with Database() as db:
            assert db.plan_verify is True

    def test_findings_reach_explain_and_dmv_with_source(self, monkeypatch):
        import repro.engine.verify.plan_sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "sanitize_plan", _fixed_finding)
        with Database() as db:
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            db.execute("SET PLAN_VERIFY ON")
            text = db.execute("EXPLAIN SELECT id FROM t")
            assert "note: error [PLAN-MODE] Fixture/Node" in text
            rows = db.query(
                "SELECT object_type, object_name, rule, severity, "
                "message, source FROM sys_dm_verify_results "
                "WHERE rule = 'PLAN-MODE'"
            )
            assert rows
            assert rows[0][0] == "plan"
            # the source column carries the originating statement
            assert "SELECT id FROM t" in rows[0][5]

    def test_knob_off_skips_sanitizer(self, monkeypatch):
        import repro.engine.verify.plan_sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "sanitize_plan", _fixed_finding)
        with Database() as db:
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            text = db.execute("EXPLAIN SELECT id FROM t")
            assert "PLAN-MODE" not in text

    def test_check_force_arms_sanitizer(self, monkeypatch):
        import repro.engine.verify.plan_sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "sanitize_plan", _fixed_finding)
        with Database() as db:
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            assert db.plan_verify is False
            db.check("SELECT id FROM t")
            assert db.plan_verify is False  # restored afterwards
            assert any(
                rule == "PLAN-MODE"
                for (_o, _n, rule, _s, _m, _src) in db.lint_rows()
            )

    def test_suppression_pragma_silences_rule(self, monkeypatch):
        import repro.engine.verify.plan_sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "sanitize_plan", _fixed_finding)
        with Database() as db:
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            db.execute("SET PLAN_VERIFY ON")
            text = db.execute(
                "EXPLAIN SELECT id FROM t -- lint: ignore PLAN-MODE"
            )
            assert "PLAN-MODE" not in text
            assert db.lint_rows() == []

    def test_udx_and_plan_rows_distinguishable_by_source(self):
        class BrokenSum:
            name = "brokensum"
            parallel_safe = True  # but no merge(): verifier warns

            def init(self):
                self.total = 0

            def accumulate(self, value):
                self.total += value

            def terminate(self):
                return self.total

        with Database() as db:
            db.execute("CREATE TABLE t (id INT PRIMARY KEY)")
            db.register_uda(BrokenSum)
            db.check("SELECT id FROM t WHERE id = 'x'")  # LINT-TYPE row
            rows = db.query(
                "SELECT object_type, rule, source FROM sys_dm_verify_results"
            )
            udx = [r for r in rows if r[0] == "UDA"]
            plan = [r for r in rows if r[0] == "plan"]
            assert udx and all(src.startswith("UDA:") for _t, _r, src in udx)
            assert plan and all(
                src.startswith("SELECT") for _t, _r, src in plan
            )


class TestSuppressionParsing:
    def test_single_rule(self):
        assert parse_suppressions("-- lint: ignore LINT-SARG") == {
            "LINT-SARG"
        }

    def test_comma_list_and_case(self):
        got = parse_suppressions(
            "SELECT 1 -- LINT: Ignore plan-mode, FORK-CLOCK"
        )
        assert got == {"PLAN-MODE", "FORK-CLOCK"}

    def test_no_pragma(self):
        assert parse_suppressions("SELECT 1 -- just a comment") == frozenset()
        assert parse_suppressions("") == frozenset()
