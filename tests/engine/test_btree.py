"""B+tree: ordering, range scans, uniqueness, NULL handling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.errors import DuplicateKeyError
from repro.engine.index.btree import BPlusTree


class TestBasics:
    def test_insert_get(self):
        tree = BPlusTree()
        tree.insert((5,), "five")
        assert tree.get((5,)) == "five"

    def test_missing_key_raises(self):
        tree = BPlusTree()
        with pytest.raises(KeyError):
            tree.get((1,))

    def test_duplicate_rejected_when_unique(self):
        tree = BPlusTree(unique=True)
        tree.insert((1,), "a")
        with pytest.raises(DuplicateKeyError):
            tree.insert((1,), "b")

    def test_non_unique_accumulates(self):
        tree = BPlusTree(unique=False)
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert sorted(tree.get((1,))) == ["a", "b"]
        assert len(tree) == 2

    def test_len_counts_pairs(self):
        tree = BPlusTree()
        for i in range(1000):
            tree.insert((i,), i)
        assert len(tree) == 1000

    def test_contains(self):
        tree = BPlusTree()
        tree.insert((1, "a"), None)
        assert tree.contains((1, "a"))
        assert not tree.contains((1, "b"))


class TestOrdering:
    def test_items_sorted_after_random_inserts(self):
        tree = BPlusTree(order=8)
        keys = list(range(2000))
        random.Random(5).shuffle(keys)
        for key in keys:
            tree.insert((key,), key * 10)
        result = [key[0] for key, _payload in tree.items()]
        assert result == sorted(result)
        assert len(result) == 2000

    def test_composite_keys_sorted_lexicographically(self):
        tree = BPlusTree()
        keys = [(2, 1), (1, 9), (1, 1), (2, 0), (1, 5)]
        for key in keys:
            tree.insert(key, None)
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_nulls_sort_first(self):
        tree = BPlusTree()
        tree.insert((5,), "five")
        tree.insert((None,), "null")
        tree.insert((1,), "one")
        assert [k for k, _ in tree.items()] == [(None,), (1,), (5,)]

    def test_depth_grows_logarithmically(self):
        tree = BPlusTree(order=8)
        for i in range(5000):
            tree.insert((i,), i)
        assert tree.depth() <= 6


class TestRange:
    def make_tree(self):
        tree = BPlusTree(order=8)
        for i in range(100):
            tree.insert((i,), i)
        return tree

    def test_closed_range(self):
        tree = self.make_tree()
        result = [k[0] for k, _ in tree.range((10,), (20,))]
        assert result == list(range(10, 21))

    def test_open_ended_ranges(self):
        tree = self.make_tree()
        assert [k[0] for k, _ in tree.range(None, (5,))] == list(range(6))
        assert [k[0] for k, _ in tree.range((95,), None)] == list(range(95, 100))
        assert len(list(tree.range(None, None))) == 100

    def test_exclusive_bounds(self):
        tree = self.make_tree()
        result = [
            k[0]
            for k, _ in tree.range((10,), (20,), lo_inclusive=False, hi_inclusive=False)
        ]
        assert result == list(range(11, 20))

    def test_prefix_range_on_composite_key(self):
        tree = BPlusTree()
        for a in range(5):
            for b in range(5):
                tree.insert((a, b), (a, b))
        result = [k for k, _ in tree.range((2,), (2,))]
        assert result == [(2, b) for b in range(5)]

    def test_empty_range(self):
        tree = self.make_tree()
        assert list(tree.range((200,), (300,))) == []


class TestDelete:
    def test_delete_unique(self):
        tree = BPlusTree()
        tree.insert((1,), "a")
        assert tree.delete((1,))
        assert not tree.contains((1,))
        assert len(tree) == 0

    def test_delete_missing_returns_false(self):
        tree = BPlusTree()
        assert not tree.delete((1,))

    def test_delete_specific_payload_non_unique(self):
        tree = BPlusTree(unique=False)
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert tree.delete((1,), payload="a")
        assert tree.get((1,)) == ["b"]

    def test_delete_whole_key_non_unique(self):
        tree = BPlusTree(unique=False)
        tree.insert((1,), "a")
        tree.insert((1,), "b")
        assert tree.delete((1,))
        assert not tree.contains((1,))

    def test_lookups_stay_correct_after_many_deletes(self):
        tree = BPlusTree(order=8)
        for i in range(500):
            tree.insert((i,), i)
        for i in range(0, 500, 2):
            assert tree.delete((i,))
        survivors = [k[0] for k, _ in tree.items()]
        assert survivors == list(range(1, 500, 2))


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(-1000, 1000), unique=True, max_size=200))
    def test_matches_sorted_reference(self, keys):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert((key,), key)
        assert [k[0] for k, _ in tree.items()] == sorted(keys)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(0, 100), unique=True, min_size=1, max_size=100),
        st.integers(0, 100),
        st.integers(0, 100),
    )
    def test_range_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert((key,), key)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert [k[0] for k, _ in tree.range((lo,), (hi,))] == expected

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.text(max_size=8), unique=True, max_size=100))
    def test_string_keys(self, keys):
        tree = BPlusTree(order=4)
        for key in keys:
            tree.insert((key,), key)
        assert [k[0] for k, _ in tree.items()] == sorted(keys)
