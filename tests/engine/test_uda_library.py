"""Statistical/string UDAs, incl. their parallel merge behaviour."""

import math
import statistics

import pytest
from hypothesis import given, strategies as st

from repro.engine import Database
from repro.engine.uda_library import (
    GeoMeanUda,
    MedianUda,
    StdevUda,
    StringAggUda,
    VarUda,
    register_statistics,
)


def test_legacy_statistics_shim_removed():
    """repro.engine.statistics was a deprecation alias for this module;
    the name now belongs exclusively to the optimizer's table statistics
    (repro.engine.optimizer.statistics)."""
    import importlib

    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.engine.statistics")


@pytest.fixture
def db():
    with Database() as database:
        register_statistics(database)
        database.execute(
            """
            CREATE TABLE m (id INT PRIMARY KEY, grp VARCHAR(5), v FLOAT);
            INSERT INTO m VALUES
                (1, 'a', 2.0), (2, 'a', 4.0), (3, 'a', 6.0),
                (4, 'b', 10.0), (5, 'b', NULL);
            """
        )
        yield database


class TestSql:
    def test_stdev(self, db):
        rows = dict(db.query("SELECT grp, STDEV(v) FROM m GROUP BY grp"))
        assert rows["a"] == pytest.approx(statistics.stdev([2, 4, 6]))
        assert rows["b"] is None  # a single value has no sample stdev

    def test_var(self, db):
        value = db.scalar("SELECT VAR(v) FROM m WHERE grp = 'a'")
        assert value == pytest.approx(statistics.variance([2, 4, 6]))

    def test_median(self, db):
        assert db.scalar("SELECT MEDIAN(v) FROM m") == pytest.approx(5.0)

    def test_string_agg_ordered(self, db):
        value = db.scalar(
            "SELECT STRING_AGG(grp) FROM m WHERE v IS NOT NULL"
        )
        assert value == "a,a,a,b"

    def test_geomean(self, db):
        value = db.scalar("SELECT GEOMEAN(v) FROM m WHERE grp = 'a'")
        assert value == pytest.approx((2 * 4 * 6) ** (1 / 3))

    def test_empty_group_semantics(self, db):
        assert db.scalar("SELECT MEDIAN(v) FROM m WHERE id > 99") is None
        assert db.scalar("SELECT STDEV(v) FROM m WHERE id > 99") is None


class TestMerge:
    """Partial-state merging must equal single-pass evaluation."""

    @staticmethod
    def run_split(uda_class, values, split):
        left, right = uda_class(), uda_class()
        left.init()
        right.init()
        for value in values[:split]:
            left.accumulate(value)
        for value in values[split:]:
            right.accumulate(value)
        left.merge(right)
        return left.terminate()

    @staticmethod
    def run_single(uda_class, values):
        uda = uda_class()
        uda.init()
        for value in values:
            uda.accumulate(value)
        return uda.terminate()

    @given(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=60
        ),
        st.integers(0, 60),
    )
    def test_var_merge_property(self, values, split_raw):
        split = split_raw % (len(values) + 1)
        merged = self.run_split(VarUda, values, split)
        single = self.run_single(VarUda, values)
        assert merged == pytest.approx(single, rel=1e-6, abs=1e-6)

    @given(
        st.lists(st.floats(0.001, 1e4), min_size=1, max_size=40),
        st.integers(0, 40),
    )
    def test_geomean_merge_property(self, values, split_raw):
        split = split_raw % (len(values) + 1)
        merged = self.run_split(GeoMeanUda, values, split)
        single = self.run_single(GeoMeanUda, values)
        assert merged == pytest.approx(single, rel=1e-9)

    def test_median_merge(self):
        assert self.run_split(MedianUda, [5, 1, 9, 3], 2) == 4.0

    def test_stdev_merge_with_empty_side(self):
        assert self.run_split(StdevUda, [1.0, 2.0, 3.0], 0) == (
            pytest.approx(1.0)
        )

    def test_geomean_rejects_nonpositive(self):
        uda = GeoMeanUda()
        uda.init()
        with pytest.raises(ValueError):
            uda.accumulate(-1.0)


class TestParallelPlanIntegration:
    def test_stdev_parallelises(self, db):
        # an explicit MAXDOP hint opts into the parallel plan regardless
        # of the cost model's cardinality estimate
        plan = db.explain(
            "SELECT grp, STDEV(v) FROM m GROUP BY grp OPTION (MAXDOP 4)"
        )
        assert "Repartition Streams" in plan
        rows = dict(
            db.query(
                "SELECT grp, STDEV(v) FROM m GROUP BY grp OPTION (MAXDOP 4)"
            )
        )
        assert rows["a"] == pytest.approx(statistics.stdev([2, 4, 6]))

    def test_string_agg_never_parallelises(self, db):
        plan = db.explain(
            "SELECT grp, STRING_AGG(v) FROM m GROUP BY grp OPTION (MAXDOP 4)"
        )
        assert "Repartition Streams" not in plan
        assert "Stream Aggregate" in plan
