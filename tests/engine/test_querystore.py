"""The Query Store: statement normalisation, plan interning, runtime
stats intervals, persistence, the DMVs, and the slow-query log."""

import json

import pytest

from repro.engine import Database
from repro.engine.errors import EngineError
from repro.engine.metrics import MetricsRegistry
from repro.engine.querystore import (
    QueryStore,
    normalize_statement,
    plan_signature,
)


@pytest.fixture
def db(tmp_path):
    with Database(data_dir=tmp_path / "db") as database:
        yield database


@pytest.fixture(params=["heap", "column"])
def events(request, db):
    suffix = (
        " WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 64)"
        if request.param == "column"
        else ""
    )
    db.execute(
        "CREATE TABLE events (e_id INT PRIMARY KEY, g INT, v INT)" + suffix
    )
    values = ", ".join(f"({i}, {i % 4}, {i * 3 % 51})" for i in range(1, 201))
    db.execute(f"INSERT INTO events VALUES {values}")
    return db


class TestNormalization:
    def test_literals_become_placeholders(self):
        assert normalize_statement(
            "select v from t where g = 42 and name = 'ada'"
        ) == "SELECT v FROM t WHERE g = ? AND name = ?"

    def test_equivalent_statements_share_text(self):
        a = normalize_statement("SELECT v FROM t WHERE g = 1")
        b = normalize_statement("select   v from t\nwhere g = 999")
        assert a == b

    def test_unlexable_text_falls_back_to_whitespace_collapse(self):
        assert normalize_statement("not ~~ sql \x01 at all") != ""

    def test_keywords_uppercased_identifiers_untouched(self):
        text = normalize_statement("select MyCol from MyTable")
        assert text.startswith("SELECT")
        assert "MyCol" in text and "MyTable" in text


class TestQueryStore:
    def test_same_shape_different_literals_intern_once(self):
        store = QueryStore()
        store.record("SELECT v FROM t WHERE g = 1", "SELECT", 0.001, 1)
        store.record("SELECT v FROM t WHERE g = 2", "SELECT", 0.002, 1)
        assert len(store.queries()) == 1
        query = store.queries()[0]
        assert query.execution_count == 2

    def test_runtime_stats_accumulate(self):
        store = QueryStore()
        for elapsed, rows in [(0.010, 5), (0.020, 7)]:
            store.record(
                "SELECT v FROM t", "SELECT", elapsed, rows, now=1000.0
            )
        query = store.queries()[0]
        (stats,) = store.runtime_for(query.query_id)
        assert stats.executions == 2
        assert stats.total_rows == 12
        assert stats.last_rows == 7
        assert stats.total_elapsed == pytest.approx(0.030)

    def test_interval_bucketing(self):
        store = QueryStore(interval_seconds=60.0)
        store.record("SELECT v FROM t", "SELECT", 0.001, 1, now=30.0)
        store.record("SELECT v FROM t", "SELECT", 0.001, 1, now=90.0)
        query = store.queries()[0]
        intervals = store.runtime_for(query.query_id)
        assert len(intervals) == 2
        assert {s.executions for s in intervals} == {1}

    def test_eviction_cascades(self):
        store = QueryStore(retain=2)
        store.record("SELECT 1", "SELECT", 0.001, 1)
        store.record("SELECT a FROM t", "SELECT", 0.001, 1)
        store.record("SELECT b FROM u", "SELECT", 0.001, 1)
        assert len(store.queries()) == 2
        texts = {q.query_text for q in store.queries()}
        assert "SELECT ?" not in texts  # oldest evicted
        surviving = {q.query_id for q in store.queries()}
        for row in store.runtime_rows():
            assert row[0] in surviving

    def test_disabled_store_records_nothing(self):
        store = QueryStore()
        store.enabled = False
        store.record("SELECT 1", "SELECT", 0.001, 1)
        assert store.queries() == []

    def test_save_load_round_trip(self, tmp_path):
        store = QueryStore()
        store.record("SELECT v FROM t WHERE g = 7", "SELECT", 0.004, 3)
        store.record("SELECT v FROM t WHERE g = 8", "SELECT", 0.006, 2)
        path = tmp_path / "qs.json"
        store.save(path)
        loaded = QueryStore()
        loaded.load(path)
        assert loaded.to_dict() == store.to_dict()
        assert loaded.queries()[0].execution_count == 2
        # the on-disk form is plain JSON
        json.loads(path.read_text())

    def test_clear(self):
        store = QueryStore()
        store.record("SELECT 1", "SELECT", 0.001, 1)
        store.clear()
        assert store.queries() == []
        assert store.runtime_rows() == []


class TestDatabaseIntegration:
    def test_repeated_executions_accumulate_on_any_storage(self, events):
        for bound in (10, 20, 30):
            events.query(
                f"SELECT g, COUNT(*) FROM events WHERE v < {bound} GROUP BY g"
            )
        query = events.query_store.find_query(
            "SELECT g, COUNT(*) FROM events WHERE v < 10 GROUP BY g"
        )
        assert query is not None
        assert query.execution_count == 3
        stats = events.query_store.runtime_for(query.query_id)
        assert sum(s.executions for s in stats) == 3

    def test_runtime_stats_dmv_reports_est_vs_actual(self, events):
        sql = "SELECT g, COUNT(*) FROM events GROUP BY g"
        events.query(sql)
        events.query(sql)
        rows = events.query(
            "SELECT * FROM sys_dm_query_store_runtime_stats"
        )
        query = events.query_store.find_query(sql)
        mine = [r for r in rows if r[0] == query.query_id]
        assert mine
        row = mine[0]
        executions, last_est, last_actual = row[4], row[9], row[10]
        assert executions >= 2
        assert last_actual == 4  # four groups
        assert last_est >= 1  # planner produced an estimate

    def test_plan_dmv_lists_rendered_plan(self, events):
        events.query("SELECT COUNT(*) FROM events")
        rows = events.query("SELECT * FROM sys_dm_query_store_plan")
        assert rows
        plan_texts = [r[2] for r in rows]
        assert any("Scan" in text for text in plan_texts)

    def test_dop_recorded(self, events):
        events.query(
            "SELECT g, COUNT(*) FROM events GROUP BY g OPTION (MAXDOP 2)"
        )
        query = events.query_store.find_query(
            "SELECT g, COUNT(*) FROM events GROUP BY g OPTION (MAXDOP 2)"
        )
        (stats,) = events.query_store.runtime_for(query.query_id)
        assert stats.last_dop == 2

    def test_query_store_persists_across_reopen(self, tmp_path):
        data_dir = tmp_path / "persist"
        with Database(data_dir=data_dir) as db:
            db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
            db.execute("INSERT INTO t VALUES (1), (2)")
            db.query("SELECT a FROM t WHERE a > 0")
        assert (data_dir / "querystore.json").exists()
        with Database(data_dir=data_dir) as db:
            query = db.query_store.find_query("SELECT a FROM t WHERE a > 5")
            assert query is not None
            assert query.execution_count == 1

    def test_in_memory_database_does_not_write_store(self):
        with Database() as db:
            db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
            path = db._querystore_path
        assert not path.exists()


class TestPlanSignature:
    def test_same_plan_same_signature(self, db):
        db.execute("CREATE TABLE sig (a INT PRIMARY KEY, b INT)")
        db.execute("INSERT INTO sig VALUES (1, 2), (3, 4)")
        db.query("SELECT b FROM sig WHERE a = 1")
        db.query("SELECT b FROM sig WHERE a = 3")
        query = db.query_store.find_query("SELECT b FROM sig WHERE a = 1")
        assert len(db.query_store.plans_for(query.query_id)) == 1

    def test_signature_is_hashable_tree_shape(self, db):
        db.execute("CREATE TABLE shape (a INT PRIMARY KEY, b INT)")
        db.execute("INSERT INTO shape VALUES (1, 2)")
        result = db.execute("SELECT b FROM shape")
        op = db._last_select_plan
        assert op is not None
        sig = plan_signature(op)
        assert sig == plan_signature(op)
        hash(sig)
        assert result.rows == [(2,)]


class TestSlowQueryLog:
    def test_threshold_zero_logs_everything(self, events):
        events.execute("SET SLOW_QUERY_THRESHOLD 0")
        events.query("SELECT COUNT(*) FROM events")
        rows = events.query("SELECT * FROM sys_dm_exec_slow_queries")
        assert rows
        text, kind, elapsed_ms, threshold = rows[-1][:4]
        assert kind == "SELECT"
        assert elapsed_ms >= 0
        assert threshold == 0

    def test_high_threshold_logs_nothing(self, events):
        events.execute("SET SLOW_QUERY_THRESHOLD 60000")
        events.query("SELECT COUNT(*) FROM events")
        assert events.query("SELECT * FROM sys_dm_exec_slow_queries") == []

    def test_negative_threshold_rejected(self, db):
        with pytest.raises(EngineError):
            db.execute("SET SLOW_QUERY_THRESHOLD -1")


class TestQueryStatsSnapshotGuard:
    def test_record_statement_returns_immutable_snapshot(self):
        registry = MetricsRegistry()
        first = registry.record_statement("SELECT 1", "SELECT", 0.010, 1, {})
        registry.record_statement("SELECT 1", "SELECT", 0.020, 1, {})
        assert first.execution_count == 1  # later executions must not mutate it
        latest = registry.queries()[0]
        assert latest.execution_count == 2

    def test_queries_rows_are_snapshots(self):
        registry = MetricsRegistry()
        registry.record_statement("SELECT 1", "SELECT", 0.010, 1, {})
        held = registry.queries()[0]
        registry.record_statement("SELECT 1", "SELECT", 0.020, 1, {})
        assert held.execution_count == 1
