"""Physical operators, exercised directly (no SQL front end)."""

import random

import pytest

from repro.engine.executor import (
    AggregateSpec,
    CrossApply,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    MaterializedResult,
    MergeJoin,
    NestedLoopJoin,
    Project,
    RowNumberWindow,
    Sort,
    StreamAggregate,
    Top,
    TvfScan,
)
from repro.engine.schema import Column
from repro.engine.types import int_type, varchar_type
from repro.engine.udf import SimpleTvf


def rows_op(columns, rows):
    return MaterializedResult(columns, rows)


def c(i):
    return lambda row: row[i]


class TestScanFilterProject:
    def test_filter_keeps_only_true(self):
        op = Filter(
            rows_op(["x"], [(1,), (None,), (3,)]),
            lambda row: None if row[0] is None else row[0] > 1,
        )
        assert list(op) == [(3,)]

    def test_project(self):
        op = Project(rows_op(["x"], [(2,), (3,)]), [lambda r: r[0] * 10], ["y"])
        assert list(op) == [(20,), (30,)]
        assert op.columns == ["y"]

    def test_rows_out_counted(self):
        op = Filter(rows_op(["x"], [(i,) for i in range(10)]), lambda r: r[0] % 2 == 0)
        list(op)
        assert op.rows_out == 5

    def test_top(self):
        op = Top(rows_op(["x"], [(i,) for i in range(100)]), 3)
        assert list(op) == [(0,), (1,), (2,)]

    def test_distinct(self):
        op = Distinct(rows_op(["x"], [(1,), (2,), (1,), (2,), (3,)]))
        assert sorted(list(op)) == [(1,), (2,), (3,)]


class TestSort:
    def test_multi_key_sort(self):
        rows = [(2, "b"), (1, "b"), (2, "a"), (1, "a")]
        op = Sort(rows_op(["x", "y"], rows), [c(0), c(1)], [False, True])
        assert list(op) == [(1, "b"), (1, "a"), (2, "b"), (2, "a")]

    def test_nulls_sort_first(self):
        op = Sort(rows_op(["x"], [(2,), (None,), (1,)]), [c(0)], [False])
        assert list(op) == [(None,), (1,), (2,)]


class TestJoins:
    LEFT = [(1, "a"), (2, "b"), (2, "bb"), (3, "c"), (None, "n")]
    RIGHT = [(2, "X"), (2, "Y"), (3, "Z"), (4, "W"), (None, "NN")]

    def expected_inner(self):
        out = []
        for l in self.LEFT:
            for r in self.RIGHT:
                if l[0] is not None and l[0] == r[0]:
                    out.append(l + r)
        return sorted(out, key=lambda t: (t[0], t[1], t[3]))

    def test_hash_join_matches_reference(self):
        op = HashJoin(
            rows_op(["lk", "lv"], self.LEFT),
            rows_op(["rk", "rv"], self.RIGHT),
            [c(0)],
            [c(0)],
        )
        assert sorted(list(op), key=lambda t: (t[0], t[1], t[3])) == self.expected_inner()

    def test_merge_join_matches_reference(self):
        left_sorted = sorted(
            [r for r in self.LEFT if r[0] is not None], key=lambda t: t[0]
        )
        right_sorted = sorted(
            [r for r in self.RIGHT if r[0] is not None], key=lambda t: t[0]
        )
        op = MergeJoin(
            rows_op(["lk", "lv"], left_sorted),
            rows_op(["rk", "rv"], right_sorted),
            [c(0)],
            [c(0)],
        )
        assert sorted(list(op), key=lambda t: (t[0], t[1], t[3])) == self.expected_inner()

    def test_merge_join_handles_duplicates_both_sides(self):
        left = [(1, "l1"), (1, "l2"), (2, "l3")]
        right = [(1, "r1"), (1, "r2"), (2, "r3")]
        op = MergeJoin(
            rows_op(["lk", "lv"], left),
            rows_op(["rk", "rv"], right),
            [c(0)],
            [c(0)],
        )
        assert len(list(op)) == 5  # 2*2 + 1

    def test_nested_loop_with_predicate(self):
        op = NestedLoopJoin(
            rows_op(["x"], [(1,), (5,)]),
            rows_op(["y"], [(2,), (6,)]),
            predicate=lambda row: row[0] < row[1],
        )
        assert sorted(list(op)) == [(1, 2), (1, 6), (5, 6)]

    def test_hash_vs_merge_random_equivalence(self):
        rng = random.Random(11)
        left = sorted(
            ((rng.randint(0, 30), i) for i in range(200)), key=lambda t: t[0]
        )
        right = sorted(
            ((rng.randint(0, 30), i) for i in range(150)), key=lambda t: t[0]
        )
        hash_result = sorted(
            HashJoin(
                rows_op(["lk", "li"], left),
                rows_op(["rk", "ri"], right),
                [c(0)],
                [c(0)],
            )
        )
        merge_result = sorted(
            MergeJoin(
                rows_op(["lk", "li"], left),
                rows_op(["rk", "ri"], right),
                [c(0)],
                [c(0)],
            )
        )
        assert hash_result == merge_result and hash_result

    def test_residual_predicate(self):
        op = HashJoin(
            rows_op(["lk", "lv"], [(1, 10), (1, 20)]),
            rows_op(["rk", "rv"], [(1, 15)]),
            [c(0)],
            [c(0)],
            residual=lambda row: row[1] > row[3],
        )
        assert list(op) == [(1, 20, 1, 15)]


class TestAggregation:
    DATA = [("a", 1), ("b", 2), ("a", 3), ("b", None), ("a", 5), ("c", None)]

    def specs(self):
        return (
            [
                AggregateSpec("count", [], star=True),
                AggregateSpec("count", [c(1)]),
                AggregateSpec("sum", [c(1)]),
                AggregateSpec("min", [c(1)]),
                AggregateSpec("max", [c(1)]),
                AggregateSpec("avg", [c(1)]),
            ],
            ["n", "nv", "s", "mn", "mx", "av"],
        )

    def expected(self):
        return {
            ("a",): (3, 3, 9, 1, 5, 3.0),
            ("b",): (2, 1, 2, 2, 2, 2.0),
            ("c",): (1, 0, None, None, None, None),
        }

    def test_hash_aggregate(self):
        specs, names = self.specs()
        op = HashAggregate(
            rows_op(["g", "v"], self.DATA), [c(0)], ["g"], specs, names
        )
        result = {(row[0],): row[1:] for row in op}
        assert result == self.expected()

    def test_stream_aggregate_on_sorted_input(self):
        specs, names = self.specs()
        data = sorted(self.DATA, key=lambda t: t[0])
        op = StreamAggregate(
            rows_op(["g", "v"], data), [c(0)], ["g"], specs, names
        )
        result = {(row[0],): row[1:] for row in op}
        assert result == self.expected()

    def test_scalar_aggregate_no_group(self):
        op = StreamAggregate(
            rows_op(["g", "v"], self.DATA),
            [],
            [],
            [AggregateSpec("count", [], star=True)],
            ["n"],
        )
        assert list(op) == [(6,)]

    def test_scalar_aggregate_empty_input(self):
        op = StreamAggregate(
            rows_op(["v"], []),
            [],
            [],
            [AggregateSpec("sum", [c(0)])],
            ["s"],
        )
        assert list(op) == [(None,)]

    def test_count_distinct(self):
        op = HashAggregate(
            rows_op(["g", "v"], [("a", 1), ("a", 1), ("a", 2)]),
            [c(0)],
            ["g"],
            [AggregateSpec("count", [c(1)], distinct=True)],
            ["d"],
        )
        assert list(op) == [("a", 2)]

    def test_unknown_aggregate_rejected(self):
        from repro.engine.errors import BindError

        with pytest.raises(BindError):
            AggregateSpec("median", [c(0)])


class TestWindow:
    def test_row_number_orders_and_numbers(self):
        op = RowNumberWindow(
            rows_op(["v"], [(30,), (10,), (20,)]), [c(0)], [True]
        )
        assert list(op) == [(30, 1), (20, 2), (10, 3)]
        assert op.columns == ["v", "row_number"]


class TestTvfExecution:
    def make_tvf(self):
        return SimpleTvf(
            name="Numbers",
            columns=(Column("n", int_type()), Column("sq", int_type())),
            factory=lambda count: ((i, i * i) for i in range(count)),
        )

    def test_tvf_scan(self):
        op = TvfScan(self.make_tvf(), [4])
        assert list(op) == [(0, 0), (1, 1), (2, 4), (3, 9)]
        assert op.columns == ["Numbers.n", "Numbers.sq"]

    def test_cross_apply_fans_out(self):
        outer = rows_op(["k"], [(2,), (3,)])
        op = CrossApply(outer, self.make_tvf(), [c(0)])
        result = list(op)
        assert (2, 0, 0) in result and (3, 2, 4) in result
        assert len(result) == 5

    def test_cross_apply_empty_inner(self):
        outer = rows_op(["k"], [(0,), (1,)])
        op = CrossApply(outer, self.make_tvf(), [c(0)])
        assert list(op) == [(1, 0, 0)]

    def test_fill_row_invoked(self):
        calls = []

        class CountingTvf(SimpleTvf):
            def fill_row(self, obj):
                calls.append(obj)
                return tuple(obj)

        tvf = CountingTvf(
            name="N",
            columns=(Column("n", int_type()),),
            factory=lambda k: ((i,) for i in range(k)),
        )
        list(TvfScan(tvf, [3]))
        assert len(calls) == 3


class TestExplain:
    def test_tree_rendering(self):
        inner = Filter(rows_op(["x"], [(1,)]), lambda r: True, label="pred")
        op = Top(inner, 1)
        text = op.explain()
        assert "Top" in text and "Filter" in text
        assert text.index("Top") < text.index("Filter")
