"""Cost-based optimizer: logical IR, rewrites, statistics, and EXPLAIN
ANALYZE.

Covers the two-phase planner: AST → logical plan (+ rewrite rules) →
costed physical plan; ``UPDATE STATISTICS`` / ``ANALYZE`` collection;
histogram / MCV estimation quality on skewed data; and the golden plan
shapes of the paper's Figures 9 and 10 (which must survive the
optimizer rewrite).
"""

import re

import pytest

from repro.engine import Database
from repro.engine.optimizer import (
    CostModel,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    apply_rewrites,
    lower_select,
    render_logical,
)
from repro.engine.sql.parser import parse_sql


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            """
            CREATE TABLE orders (
                region INT, store INT, order_id INT, amount INT,
                PRIMARY KEY (region, store, order_id)
            );
            CREATE TABLE stores (
                st_region INT, st_store INT, st_name VARCHAR(20),
                PRIMARY KEY (st_region, st_store)
            );
            """
        )
        for region in range(2):
            for store in range(3):
                database.execute(
                    f"INSERT INTO stores VALUES ({region}, {store}, 's{region}{store}')"
                )
                for order in range(5):
                    database.execute(
                        f"INSERT INTO orders VALUES ({region}, {store}, {order}, {order * 10})"
                    )
        yield database


def _select(db, sql):
    (stmt,) = parse_sql(sql)
    return stmt


def _find(node, node_type):
    found = []
    if isinstance(node, node_type):
        found.append(node)
    for child in node.children():
        found.extend(_find(child, node_type))
    return found


# -- logical plan IR -----------------------------------------------------------


class TestLogicalPlan:
    def test_lower_select_builds_spine(self, db):
        stmt = _select(
            db,
            "SELECT region, COUNT(*) FROM orders "
            "WHERE amount > 5 GROUP BY region ORDER BY region",
        )
        plan = lower_select(stmt, db.catalog)
        text = render_logical(plan)
        order = [
            text.index("Project"),
            text.index("Sort"),
            text.index("Aggregate"),
            text.index("Filter<WHERE>"),
            text.index("Get [orders]"),
        ]
        # the spine renders top-down: Project above Sort above Aggregate
        # above Filter above Get
        assert order == sorted(order)

    def test_pushdown_moves_where_below_join(self, db):
        stmt = _select(
            db,
            "SELECT st_name FROM orders "
            "JOIN stores ON (region = st_region AND store = st_store) "
            "WHERE region = 1 AND st_name = 's11'",
        )
        plan = lower_select(stmt, db.catalog)
        apply_rewrites(plan, db.catalog)
        # no WHERE filter survives above the join; each conjunct sits on
        # its own source
        assert not [
            f
            for f in _find(plan.root, LogicalFilter)
            if f.kind == "WHERE"
        ]
        pushed = [
            f
            for f in _find(plan.root, LogicalFilter)
            if f.kind == "PUSHED"
        ]
        assert len(pushed) == 2
        targets = {f.child.binding for f in pushed}
        assert targets == {"orders", "stores"}

    def test_pruning_records_required_columns(self, db):
        stmt = _select(
            db, "SELECT amount FROM orders WHERE region = 1"
        )
        plan = lower_select(stmt, db.catalog)
        apply_rewrites(plan, db.catalog)
        (get,) = _find(plan.root, LogicalGet)
        assert get.required == ("region", "amount")

    def test_select_star_disables_pruning(self, db):
        stmt = _select(db, "SELECT * FROM orders WHERE region = 1")
        plan = lower_select(stmt, db.catalog)
        apply_rewrites(plan, db.catalog)
        (get,) = _find(plan.root, LogicalGet)
        assert get.required is None

    def test_join_reorder_puts_smallest_unit_first(self, db):
        db.execute(
            """
            CREATE TABLE big (b_k INT, b_pad INT, PRIMARY KEY (b_k, b_pad));
            CREATE TABLE mid (m_k INT PRIMARY KEY);
            CREATE TABLE tiny (t_k INT PRIMARY KEY);
            """
        )
        for i in range(40):
            db.execute(f"INSERT INTO big VALUES ({i % 4}, {i})")
        for i in range(12):
            db.execute(f"INSERT INTO mid VALUES ({i})")
        for i in range(3):
            db.execute(f"INSERT INTO tiny VALUES ({i})")
        stmt = _select(
            db,
            "SELECT b_pad FROM big "
            "JOIN mid ON (b_k = m_k) JOIN tiny ON (m_k = t_k)",
        )
        plan = lower_select(stmt, db.catalog)
        apply_rewrites(plan, db.catalog, CostModel())
        joins = _find(plan.root, LogicalJoin)
        # tiny (3 rows) is chosen as the first (deepest-left) unit
        deepest_left = joins[-1].left
        assert isinstance(deepest_left, LogicalGet)
        assert deepest_left.binding == "tiny"
        # reordering must not change the result
        rows = db.query(
            "SELECT b_pad FROM big "
            "JOIN mid ON (b_k = m_k) JOIN tiny ON (m_k = t_k)"
        )
        assert sorted(r[0] for r in rows) == sorted(
            i for i in range(40) if i % 4 < 3
        )

    def test_two_way_join_keeps_written_order(self, db):
        stmt = _select(
            db,
            "SELECT st_name FROM orders "
            "JOIN stores ON (region = st_region AND store = st_store)",
        )
        plan = lower_select(stmt, db.catalog)
        apply_rewrites(plan, db.catalog)
        (join,) = _find(plan.root, LogicalJoin)
        left = join.left
        while not isinstance(left, LogicalGet):
            left = left.children()[0]
        assert left.binding == "orders"


# -- projection pruning, physical level ---------------------------------------


class TestProjectionPruning:
    def test_scan_narrowed_to_referenced_columns(self, db):
        plan = db.explain("SELECT amount FROM orders WHERE store = 1")
        assert "Table Scan [orders] (storage=heap; cols: store, amount)" in plan

    def test_pruned_results_correct(self, db):
        rows = db.query("SELECT amount FROM orders WHERE store = 1")
        assert sorted(r[0] for r in rows) == sorted(
            [o * 10 for o in range(5)] * 2
        )

    def test_star_keeps_full_scan(self, db):
        plan = db.explain("SELECT * FROM orders WHERE store = 1")
        assert "(cols:" not in plan

    def test_pruned_group_by_still_streams(self, db):
        # region is the leading clustered-key column: the pruned scan
        # must still upgrade to an ordered scan and stream the aggregate
        plan = db.explain(
            "SELECT region, COUNT(*) FROM orders GROUP BY region"
        )
        assert "Stream Aggregate" in plan
        assert "Sort" not in plan
        rows = db.query(
            "SELECT region, COUNT(*) FROM orders GROUP BY region"
        )
        assert sorted(rows) == [(0, 15), (1, 15)]


# -- statistics collection -----------------------------------------------------


class TestUpdateStatistics:
    def test_update_statistics_statement(self, db):
        assert db.table("orders").statistics is None
        result = db.execute("UPDATE STATISTICS orders")
        assert result == 0
        stats = db.table("orders").statistics
        assert stats is not None
        assert stats.row_count == 30
        assert stats.n_distinct("region") == 2
        assert stats.n_distinct("amount") == 5
        col = stats.column("amount")
        assert (col.min_value, col.max_value) == (0, 40)

    def test_analyze_statement_form(self, db):
        db.execute("ANALYZE stores")
        assert db.table("stores").statistics.row_count == 6

    def test_reanalyze_bumps_version(self, db):
        db.execute("UPDATE STATISTICS orders")
        assert db.table("orders").statistics.version == 1
        db.execute("INSERT INTO orders VALUES (9, 9, 9, 999)")
        db.execute("UPDATE STATISTICS orders")
        stats = db.table("orders").statistics
        assert stats.version == 2
        assert stats.row_count == 31

    def test_histogram_within_2x_on_skewed_data(self, db):
        db.execute("CREATE TABLE skew (id INT PRIMARY KEY, v INT)")
        # heavy skew: v=1 owns 200 rows (one hot chromosome), the rest
        # spread over 2..61
        rows = [1] * 200 + [2 + (i % 60) for i in range(300)]
        for i, v in enumerate(rows):
            db.execute(f"INSERT INTO skew VALUES ({i}, {v})")
        db.execute("UPDATE STATISTICS skew")
        col = db.table("skew").statistics.column("v")

        # equality on the hot value is exact via the MCV list
        actual_hot = sum(1 for v in rows if v == 1)
        est_hot = col.eq_selectivity(1) * len(rows)
        assert actual_hot / 2 <= est_hot <= actual_hot * 2

        # range estimates from the equi-depth histogram stay within 2x
        for hi in (10, 30, 50):
            actual = sum(1 for v in rows if 2 <= v <= hi)
            est = col.range_selectivity(lo=2, hi=hi) * len(rows)
            assert actual / 2 <= est <= actual * 2, (hi, est, actual)


# -- selectivity regressions ---------------------------------------------------


def _first_est(plan_text, label):
    """est. rows on the first plan line containing ``label``."""
    for line in plan_text.splitlines():
        if label in line:
            match = re.search(r"est\. rows=(\d+)", line)
            assert match, f"no estimate on line: {line}"
            return int(match.group(1))
    raise AssertionError(f"no line containing {label!r} in:\n{plan_text}")


class TestSelectivityRegression:
    def test_full_clustered_key_equality_estimates_one_row(self, db):
        plan = db.explain(
            "SELECT * FROM orders "
            "WHERE region = 1 AND store = 1 AND order_id = 1"
        )
        assert _first_est(plan, "Clustered Index Seek") == 1

    def test_non_key_equality_uses_distinct_counts(self, db):
        db.execute("UPDATE STATISTICS orders")
        # amount has 5 distinct values uniformly over 30 rows -> 6
        plan = db.explain("SELECT * FROM orders WHERE amount = 10")
        assert _first_est(plan, "Filter") == 6

    def test_non_key_equality_default_without_statistics(self, db):
        # without statistics the default 10% equality selectivity applies
        plan = db.explain("SELECT * FROM orders WHERE amount = 10")
        assert _first_est(plan, "Filter") == 3

    def test_statistics_change_join_input_order_estimates(self, db):
        db.execute("UPDATE STATISTICS orders")
        db.execute("UPDATE STATISTICS stores")
        plan = db.explain(
            "SELECT st_name, amount FROM orders "
            "JOIN stores ON (region = st_region AND store = st_store)"
        )
        # |orders| * |stores| / (ndv(region) * ndv(store)) = 30*6/(2*3)
        assert _first_est(plan, "Merge Join") == 30


# -- cost-based decisions ------------------------------------------------------


class TestCostBasedDecisions:
    def test_parallel_crossover_is_derived_from_cost_constants(self):
        cost = CostModel()
        # the crossover falls out of the constants (per-row transport of
        # pickled rows across the worker-process boundary included):
        # startup / (agg_row * (1 - 1/dop) - repartition_row - transport_row)
        # = 32500 / (1.2 * 0.75 - 0.25 - 0.05) = 54166.67
        assert not cost.parallel_agg_wins(54_166, dop=4)
        assert cost.parallel_agg_wins(54_167, dop=4)
        assert not cost.parallel_agg_wins(10**9, dop=1)

    def test_lower_startup_cost_moves_the_crossover(self, db):
        plan = db.explain(
            "SELECT store, COUNT(*) FROM orders GROUP BY store"
        )
        assert "Repartition Streams" not in plan
        db._planner.cost = CostModel(exchange_startup_cost=1.0)
        plan = db.explain(
            "SELECT store, COUNT(*) FROM orders GROUP BY store"
        )
        assert "Repartition Streams" in plan

    def test_unselective_seek_prices_out_to_scan(self, db):
        db.execute("CREATE TABLE events (ev_id INT PRIMARY KEY, kind VARCHAR(10))")
        db.execute("CREATE INDEX ix_kind ON events (kind)")
        for i in range(100):
            kind = "hot" if i < 90 else f"cold{i % 5}"
            db.execute(f"INSERT INTO events VALUES ({i}, '{kind}')")
        db.execute("UPDATE STATISTICS events")
        # 90/100 rows match: bookmark lookups cost more than the scan
        hot = db.explain("SELECT * FROM events WHERE kind = 'hot'")
        assert "Index Seek" not in hot
        assert "Table Scan" in hot
        # 2/100 rows match: the seek wins
        cold = db.explain("SELECT * FROM events WHERE kind = 'cold0'")
        assert "Index Seek [events.ix_kind]" in cold
        assert db.query(
            "SELECT COUNT(*) FROM events WHERE kind = 'cold0'"
        ) == [(2,)]

    def test_maxdop_hint_still_forces_parallel(self, db):
        plan = db.explain(
            "SELECT store, COUNT(*) FROM orders GROUP BY store "
            "OPTION (MAXDOP 4)"
        )
        assert "Repartition Streams" in plan


# -- EXPLAIN annotations and EXPLAIN ANALYZE ----------------------------------


class TestExplainAnnotations:
    def test_every_node_carries_estimates(self, db):
        plan = db.explain(
            "SELECT st_name, amount FROM orders "
            "JOIN stores ON (region = st_region AND store = st_store) "
            "WHERE region = 1"
        )
        for line in plan.splitlines():
            if line.lstrip().startswith("->"):
                assert "est. rows=" in line and "cost=" in line, line

    def test_explain_analyze_reports_actual_rows(self, db):
        plan = db.execute(
            "EXPLAIN ANALYZE SELECT * FROM orders WHERE region = 1"
        )
        assert "actual rows=15" in plan
        assert "est. rows=" in plan

    def test_explain_analyze_via_explain_api(self, db):
        plan = db.explain(
            "EXPLAIN ANALYZE SELECT amount FROM orders "
            "WHERE region = 1 AND store = 1 AND order_id = 1"
        )
        seek_line = next(
            line
            for line in plan.splitlines()
            if "Clustered Index Seek" in line
        )
        assert "est. rows=1" in seek_line
        assert "actual rows=1" in seek_line

    def test_plain_explain_has_no_actuals(self, db):
        plan = db.explain("SELECT * FROM orders WHERE region = 1")
        assert "actual rows=" not in plan

    def test_estimates_match_actuals_after_analyze(self, db):
        db.execute("UPDATE STATISTICS orders")
        plan = db.execute(
            "EXPLAIN ANALYZE SELECT * FROM orders WHERE amount = 10"
        )
        filter_line = next(
            line for line in plan.splitlines() if "Filter" in line
        )
        est = int(re.search(r"est\. rows=(\d+)", filter_line).group(1))
        actual = int(
            re.search(r"actual rows=(\d+)", filter_line).group(1)
        )
        assert actual == 6
        assert est == actual


# -- golden plan shapes (Figures 9 and 10) ------------------------------------


class TestGoldenPlanShapes:
    """The paper's plan shapes, reduced to engine-level fixtures; the
    full-warehouse versions live in benchmarks/bench_queryplans.py."""

    @pytest.fixture
    def genomics_db(self):
        with Database() as database:
            database.execute(
                """
                CREATE TABLE [Read] (
                    r_e_id INT, r_sg_id INT, r_s_id INT, r_id INT,
                    short_read_seq VARCHAR(20),
                    PRIMARY KEY (r_e_id, r_sg_id, r_s_id, r_id)
                );
                CREATE TABLE Alignment (
                    a_e_id INT, a_sg_id INT, a_s_id INT, a_id INT,
                    a_pos INT,
                    PRIMARY KEY (a_e_id, a_sg_id, a_s_id, a_id)
                );
                """
            )
            for i in range(12):
                database.execute(
                    f"INSERT INTO [Read] VALUES (1, 1, 1, {i}, 'ACGT{i % 3}')"
                )
                database.execute(
                    f"INSERT INTO Alignment VALUES (1, 1, 1, {i}, {i * 7})"
                )
            yield database

    def test_figure9_parallel_aggregation_shape(self, genomics_db):
        plan = genomics_db.explain(
            """
            SELECT short_read_seq, COUNT(*) AS frequency FROM [Read]
            WHERE r_e_id = 1 AND r_sg_id = 1 AND r_s_id = 1
            GROUP BY short_read_seq
            OPTION (MAXDOP 4)
            """
        )
        assert "Parallelism (Gather Streams)" in plan
        assert "Repartition Streams" in plan
        assert "Clustered Index Seek [Read]" in plan

    def test_figure10_merge_join_shape(self, genomics_db):
        plan = genomics_db.explain(
            """
            SELECT a_id, short_read_seq FROM Alignment
            JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                            AND a_s_id = r_s_id AND a_id = r_id)
            WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
            """
        )
        assert "Merge Join" in plan
        assert "Clustered Index Seek [Alignment]" in plan
        assert "Sort" not in plan
