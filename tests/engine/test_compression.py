"""PAGE compression: prefix + dictionary encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.schema import Column, TableSchema
from repro.engine.storage.compression import PageCompressor, _choose_anchor
from repro.engine.storage.serializer import RowSerializer
from repro.engine.types import int_type, varchar_type


def make_serializer():
    schema = TableSchema(
        "t",
        [
            Column("id", int_type(), nullable=False),
            Column("name", varchar_type(100)),
            Column("payload", varchar_type(200)),
        ],
        primary_key=["id"],
    )
    return RowSerializer(schema, row_compression=True)


def split_rows(serializer, rows):
    return [
        serializer.split_compressed(serializer.serialize(row)) for row in rows
    ]


class TestAnchorChoice:
    def test_shared_prefix_found(self):
        values = [b"chromosome_1", b"chromosome_2", b"chromosome_12"]
        anchor = _choose_anchor(values)
        assert anchor.startswith(b"chromosome_")

    def test_no_anchor_for_disjoint_values(self):
        assert _choose_anchor([b"aaa", b"zzz"]) in (b"", b"aaa", b"zzz")

    def test_empty_for_single_value(self):
        assert _choose_anchor([b"only"]) == b""

    def test_empty_input(self):
        assert _choose_anchor([]) == b""


class TestRoundTrip:
    def test_identical_fields_round_trip(self):
        serializer = make_serializer()
        rows = [(i, "GATTACA" * 4, "same-payload") for i in range(50)]
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        encoded = compressor.encode_records()
        for original, record in zip(split, encoded):
            nulls, fields = compressor.decode_record(record, 3)
            assert (list(nulls), fields) == (
                list(original[0]),
                list(original[1]),
            )

    def test_nulls_round_trip(self):
        serializer = make_serializer()
        rows = [(1, None, "x"), (2, "abc", None), (3, None, None)]
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        for original, record in zip(split, compressor.encode_records()):
            nulls, fields = compressor.decode_record(record, 3)
            assert list(nulls) == list(original[0])
            for is_null, a, b in zip(nulls, fields, original[1]):
                if not is_null:
                    assert a == b

    def test_repetitive_data_compresses(self):
        serializer = make_serializer()
        rows = [(i, "ACGTACGTACGTACGTACGT", "tag-payload-repeats") for i in range(100)]
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        encoded = compressor.encode_records()
        raw_size = sum(
            len(serializer.serialize(row)) for row in rows
        )
        compressed_size = (
            sum(len(r) for r in encoded) + compressor.overhead_bytes()
        )
        assert compressed_size < raw_size * 0.5

    def test_unique_data_barely_compresses(self):
        import random

        rng = random.Random(7)
        serializer = make_serializer()
        rows = [
            (
                i,
                "".join(rng.choices("ACGT", k=30)),
                "".join(rng.choices("abcdefgh", k=20)),
            )
            for i in range(100)
        ]
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        encoded = compressor.encode_records()
        raw_size = sum(len(serializer.serialize(row)) for row in rows)
        compressed_size = (
            sum(len(r) for r in encoded) + compressor.overhead_bytes()
        )
        # random sequences: page compression should NOT find much
        assert compressed_size > raw_size * 0.75

    def test_dictionary_entries_shared(self):
        serializer = make_serializer()
        rows = [(i, "common-suffix-value", "unique" + str(i)) for i in range(20)]
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        # one of the columns should have produced dictionary use or a
        # strong anchor: overhead below naive repetition
        encoded = compressor.encode_records()
        name_bytes = sum(len(r) for r in encoded)
        assert name_bytes < sum(
            len(serializer.serialize(row)) for row in rows
        )

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**31 - 1),
                st.one_of(st.none(), st.text(max_size=30)),
                st.one_of(st.none(), st.text(max_size=30)),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_round_trip_property(self, rows):
        serializer = make_serializer()
        split = split_rows(serializer, rows)
        compressor = PageCompressor(split)
        for original, record in zip(split, compressor.encode_records()):
            nulls, fields = compressor.decode_record(record, 3)
            assert list(nulls) == list(original[0])
            for is_null, a, b in zip(nulls, fields, original[1]):
                if not is_null:
                    assert a == b

    def test_empty_page_rejected(self):
        from repro.engine.errors import StorageError

        with pytest.raises(StorageError):
            PageCompressor([])
