"""The worker-pool runtime: real processes, LPT scheduling, fallback."""

import os

import pytest

from repro.engine.workers import (
    DISABLE_ENV,
    WorkerPool,
    WorkerPoolError,
    lpt_assign,
)


@pytest.fixture
def pool():
    p = WorkerPool(max_workers=2)
    yield p
    p.close()


def partial_agg_task(rows, arg_index=1):
    from operator import itemgetter

    from repro.engine.executor import AggregateSpec

    return (
        "partial_agg",
        {
            "source": ("rows", {"rows": rows}),
            "specs": [
                AggregateSpec("count", [], star=True),
                AggregateSpec(
                    "sum", [itemgetter(arg_index)], arg_index=arg_index
                ),
            ],
            "group_indexes": (0,),
        },
    )


class TestLptAssign:
    def test_every_task_assigned_once(self):
        assignment = lpt_assign([5.0, 4.0, 3.0, 3.0, 3.0], 2)
        flat = sorted(i for worker in assignment for i in worker)
        assert flat == [0, 1, 2, 3, 4]

    def test_longest_first_balances_load(self):
        weights = [5.0, 4.0, 3.0, 3.0, 3.0]
        assignment = lpt_assign(weights, 2)
        loads = [sum(weights[i] for i in worker) for worker in assignment]
        # the LPT schedule for these tasks has makespan 10 (see
        # lpt_makespan tests); neither worker exceeds it
        assert max(loads) == pytest.approx(10.0)

    def test_more_workers_than_tasks(self):
        assignment = lpt_assign([1.0], 4)
        assert sum(len(worker) for worker in assignment) == 1

    def test_zero_workers_rejected(self):
        with pytest.raises(WorkerPoolError):
            lpt_assign([1.0], 0)


class TestWorkerPool:
    def test_runs_partial_aggregates_on_processes(self, pool):
        rows = [("a", 1), ("b", 2), ("a", 3)]
        results = pool.run([partial_agg_task(rows)])
        assert len(results) == 1
        groups = results[0].value["groups"]
        assert set(groups) == {"a", "b"}
        count_a, sum_a = (state.result() for state in groups["a"])
        assert (count_a, sum_a) == (2, 4)
        assert results[0].rows == 3
        assert results[0].bytes_sent > 0
        assert results[0].bytes_received > 0
        # workers are real processes, not the coordinator
        assert all(
            row[1] != os.getpid() for row in pool.stats_rows()
        )

    def test_results_return_in_task_order(self, pool):
        tasks = [
            partial_agg_task([(f"g{i}", i)] * (5 - i)) for i in range(4)
        ]
        results = pool.run(tasks, weights=[5, 4, 3, 2])
        for i, result in enumerate(results):
            assert set(result.value["groups"]) == {f"g{i}"}

    def test_pool_reused_across_runs(self, pool):
        pool.run([partial_agg_task([("a", 1)])])
        first_pids = {row[1] for row in pool.stats_rows()}
        pool.run([partial_agg_task([("b", 2)])])
        assert {row[1] for row in pool.stats_rows()} == first_pids
        assert pool.runs == 2

    def test_env_kill_switch_disables_pool(self, monkeypatch):
        monkeypatch.setenv(DISABLE_ENV, "1")
        p = WorkerPool()
        assert not p.available()
        assert DISABLE_ENV in (p.disabled_reason or "")
        with pytest.raises(WorkerPoolError):
            p.run([partial_agg_task([("a", 1)])])

    def test_unpicklable_payload_fails_cleanly(self, pool):
        task = ("partial_agg", {"source": ("rows", {"rows": [lambda: 1]})})
        with pytest.raises(WorkerPoolError, match="not picklable"):
            pool.run([task])
        # a pickling error is the plan's fault: the pool stays usable
        assert pool.available()

    def test_task_error_reports_and_pool_survives(self, pool):
        bad = ("partial_agg", {"source": ("rows", {"rows": [("a",)]})})
        # missing specs/group_indexes keys -> KeyError inside the worker
        with pytest.raises(WorkerPoolError, match="task failed"):
            pool.run([bad])
        assert pool.available()
        results = pool.run([partial_agg_task([("a", 1)])])
        assert results[0].value["rows"] == 1

    def test_unknown_task_kind_is_task_error(self, pool):
        with pytest.raises(WorkerPoolError, match="task failed"):
            pool.run([("no_such_kind", {})])

    def test_stats_rows_shape(self, pool):
        pool.run([partial_agg_task([("a", 1), ("a", 2)])])
        rows = pool.stats_rows()
        assert rows
        for worker_id, pid, state, tasks, nrows, busy, last in rows:
            assert state in ("running", "dead")
            assert pid > 0
        assert sum(row[3] for row in rows) == 1  # tasks_completed
        assert sum(row[4] for row in rows) == 2  # rows_processed

    def test_close_is_idempotent(self):
        p = WorkerPool(max_workers=1)
        p.run([partial_agg_task([("a", 1)])])
        p.close()
        p.close()
        assert p.size == 0


class TestPartitionPayloads:
    def _heap_db(self, storage="heap"):
        from repro.engine import Database

        db = Database()
        suffix = (
            " WITH (STORAGE = COLUMN)" if storage == "column" else ""
        )
        db.execute(f"CREATE TABLE t (g VARCHAR(5), v INT){suffix}")
        db.execute(
            "INSERT INTO t VALUES "
            + ", ".join(f"('g{i % 5}', {i})" for i in range(400))
        )
        return db

    def test_heap_partitions_are_disjoint_and_complete(self):
        with self._heap_db() as db:
            store = db.catalog.table("t").store
            payloads = store.partition_payloads(4)
            assert payloads
            assert sum(p["rows"] for p in payloads) == 400
            total_pages = sum(len(p["pages"]) for p in payloads)
            assert total_pages == len(store.pages)

    def test_heap_empty_table_returns_no_slices(self):
        from repro.engine import Database

        with Database() as db:
            db.execute("CREATE TABLE empty (x INT)")
            store = db.catalog.table("empty").store
            assert store.partition_payloads(4) == []

    def test_column_partitions_cover_segments_and_tail(self):
        with self._heap_db(storage="column") as db:
            store = db.catalog.table("t").store
            payloads = store.partition_payloads(4)
            assert payloads
            assert sum(p["rows"] for p in payloads) == 400
            # the open tail delta rides the last slice only
            assert all("tail" not in p for p in payloads[:-1])

    def test_data_cookie_bumps_on_mutation_only(self):
        with self._heap_db() as db:
            store = db.catalog.table("t").store
            cookie = store.data_cookie()
            assert store.data_cookie() == cookie  # reads don't move it
            db.execute("INSERT INTO t VALUES ('g9', 900)")
            after_insert = store.data_cookie()
            assert after_insert != cookie
            assert after_insert[0] == cookie[0]  # same store identity
            db.execute("DELETE FROM t WHERE v = 900")
            assert store.data_cookie() != after_insert

    def test_slice_cache_reuses_decoded_rows(self):
        from repro.engine.workers import _SLICE_CACHE, _source_rows

        with self._heap_db() as db:
            store = db.catalog.table("t").store

            def source():
                payload = dict(store.partition_payloads(2)[0])
                payload["out_positions"] = None
                return ("heap", payload)

            _SLICE_CACHE.clear()
            cold, _ = _source_rows(source())
            warm, _ = _source_rows(source())
            assert warm is cold  # decoded once, served from cache
            db.execute("INSERT INTO t VALUES ('g9', 900)")
            fresh, _ = _source_rows(source())
            assert fresh is not cold  # version bump invalidates
            _SLICE_CACHE.clear()

    def test_slice_cache_skips_predicated_column_slices(self):
        from repro.engine.workers import _slice_cache_key

        payload = {"cache_key": (1, 0, 2, 0), "out_positions": (0,)}
        assert _slice_cache_key("column", payload) is not None
        payload["predicates"] = ["pred"]
        assert _slice_cache_key("column", payload) is None
        assert _slice_cache_key("heap", {"out_positions": None}) is None

    def test_payloads_decode_to_scan_rows(self):
        from repro.engine.workers import _decode_heap_source

        with self._heap_db() as db:
            table = db.catalog.table("t")
            payloads = table.store.partition_payloads(3)
            decoded = []
            for payload in payloads:
                source = dict(payload)
                source["out_positions"] = None
                decoded.extend(_decode_heap_source(source))
            expected = [row for _rid, row in table.store.scan()]
            assert decoded == expected
