"""The exchange operator and the DOP simulator."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.executor import (
    AggregateSpec,
    HashAggregate,
    MaterializedResult,
    ParallelHashAggregate,
    ParallelMergeUda,
    lpt_makespan,
)
from repro.engine.udf import UserDefinedAggregate


def c(i):
    return lambda row: row[i]


def rows_op(columns, rows):
    return MaterializedResult(columns, rows)


class TestLptMakespan:
    def test_single_worker_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert lpt_makespan([3.0, 3.0], 2) == pytest.approx(3.0)

    def test_lpt_schedules_longest_first(self):
        # tasks 5,4,3,3,3 on 2 workers -> LPT gives max(5+3, 4+3+3)=10? no:
        # 5 -> w1, 4 -> w2, 3 -> w2(7), 3 -> w1(8), 3 -> w2(10) => 10
        assert lpt_makespan([5, 4, 3, 3, 3], 2) == pytest.approx(10.0)

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_zero_workers_rejected(self):
        with pytest.raises(ExecutionError):
            lpt_makespan([1.0], 0)


class TestParallelHashAggregate:
    DATA = [(f"g{i % 7}", i) for i in range(500)]

    def run_plan(self, op_class, **kwargs):
        op = op_class(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [
                AggregateSpec("count", [], star=True),
                AggregateSpec("sum", [c(1)]),
            ],
            ["n", "s"],
            **kwargs,
        )
        return op, sorted(op)

    def test_matches_serial_hash_aggregate(self):
        _serial_op, serial = self.run_plan(HashAggregate)
        parallel_op, parallel = self.run_plan(ParallelHashAggregate, dop=4)
        assert parallel == serial

    def test_stats_populated(self):
        op, result = self.run_plan(ParallelHashAggregate, dop=4)
        stats = op.stats
        assert stats.rows_in == 500
        assert stats.rows_out == len(result) == 7
        assert len(stats.partition_agg_times) == 4
        assert stats.measured_wall > 0
        assert stats.simulated_wall > 0

    def test_simulation_never_slower_than_measured(self):
        op, _ = self.run_plan(ParallelHashAggregate, dop=4)
        assert op.stats.simulated_wall <= op.stats.measured_wall * 1.001

    def test_dop_one_equals_serial_semantics(self):
        op, parallel = self.run_plan(ParallelHashAggregate, dop=1)
        _s, serial = self.run_plan(HashAggregate)
        assert parallel == serial

    def test_multi_column_group_key(self):
        data = [(i % 2, i % 3, 1) for i in range(60)]
        op = ParallelHashAggregate(
            rows_op(["a", "b", "v"], data),
            [c(0), c(1)],
            ["a", "b"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
            dop=3,
        )
        assert sorted(op) == [
            (a, b, 10) for a in range(2) for b in range(3)
        ]

    def test_rejects_non_parallel_safe_uda(self):
        class Ordered(UserDefinedAggregate):
            name = "OrderedUda"
            parallel_safe = False

            def init(self):
                pass

            def accumulate(self, value):
                pass

            def merge(self, other):
                pass

            def terminate(self):
                return None

        with pytest.raises(ExecutionError):
            ParallelHashAggregate(
                rows_op(["g", "v"], self.DATA),
                [c(0)],
                ["g"],
                [AggregateSpec("OrderedUda", [c(1)], uda_class=Ordered)],
                ["x"],
                dop=4,
            )

    def test_explain_mentions_exchange(self):
        op, _ = self.run_plan(ParallelHashAggregate, dop=4)
        label, _kids = op.explain_node()
        assert "Repartition Streams" in label
        assert "Gather Streams" in label
        assert "DOP=4" in label


class TestExplainAnalyzeParallel:
    """EXPLAIN ANALYZE over exchange operators: worker fan-out must not
    double-count rows or time on any node of the plan."""

    DATA = [(f"g{i % 7}", i) for i in range(500)]

    def build(self, dop=4):
        return ParallelHashAggregate(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
            dop=dop,
        )

    def test_child_rows_counted_once(self):
        op = self.build(dop=4)
        op.enable_timing()
        groups = list(op)
        assert len(groups) == 7
        (child,) = op.children()
        # the exchange partitions one pass over the child; the per-worker
        # fan-out must not re-drive (and re-count) the input
        assert child.rows_out == len(self.DATA)
        assert child.loops == 1
        assert op.rows_out == 7
        assert op.loops == 1

    def test_analyze_text_reports_workers_once(self):
        op = self.build(dop=4)
        op.enable_timing()
        list(op)
        text = op.explain(analyze=True)
        assert "actual rows=7" in text
        assert f"actual rows={len(self.DATA)}" in text
        assert "workers=4" in text
        assert "loops=1" in text
        assert "loops=2" not in text

    def test_elapsed_is_wall_clock_not_worker_sum(self):
        op = self.build(dop=4)
        op.enable_timing()
        list(op)
        # operator elapsed is inclusive wall-clock of the pull loop; the
        # simulated per-worker times live in analyze_detail, and their sum
        # must not leak into the node's own clock
        worker_total = sum(op.stats.partition_agg_times)
        assert op.elapsed <= op.stats.measured_wall * 1.5 + 0.05
        assert "worker time=" in (op.analyze_detail() or "")
        assert worker_total >= max(op.stats.partition_agg_times)

    def test_sql_explain_analyze_with_maxdop(self):
        from repro.engine import Database

        with Database() as db:
            db.execute(
                "CREATE TABLE m (id INT PRIMARY KEY, grp VARCHAR(5))"
            )
            db.execute(
                "INSERT INTO m VALUES "
                + ", ".join(f"({i}, 'g{i % 3}')" for i in range(60))
            )
            text = db.explain(
                "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM m "
                "GROUP BY grp OPTION (MAXDOP 4)"
            )
        assert "actual rows=3" in text
        assert "actual rows=60" in text  # the scan, counted exactly once
        assert "time=" in text
        assert "workers=" in text


class ConcatUda(UserDefinedAggregate):
    """Ordered concatenation (stand-in for AssembleConsensus)."""

    name = "ConcatOrdered"
    arity = 1
    parallel_safe = False
    requires_ordered_input = True

    def init(self):
        self.parts = []

    def accumulate(self, value):
        self.parts.append(str(value))

    def merge(self, other):  # pragma: no cover
        raise AssertionError("must not merge")

    def terminate(self):
        return "".join(self.parts)


class TestParallelMergeUda:
    def test_per_group_evaluation(self):
        data = [("a", 1), ("a", 2), ("b", 3), ("c", 4), ("c", 5)]
        op = ParallelMergeUda(
            rows_op(["g", "v"], data),
            [c(0)],
            ["g"],
            AggregateSpec("ConcatOrdered", [c(1)], uda_class=ConcatUda),
            "joined",
            dop=2,
        )
        assert list(op) == [("a", "12"), ("b", "3"), ("c", "45")]

    def test_group_task_times_recorded(self):
        data = [(f"g{i}", i) for i in range(6)]
        op = ParallelMergeUda(
            rows_op(["g", "v"], data),
            [c(0)],
            ["g"],
            AggregateSpec("ConcatOrdered", [c(1)], uda_class=ConcatUda),
            "joined",
            dop=4,
        )
        list(op)
        assert len(op.stats.partition_agg_times) == 6
        assert op.stats.rows_in == 6
