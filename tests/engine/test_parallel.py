"""The exchange operator and the DOP simulator."""

import pytest

from repro.engine.errors import ExecutionError
from repro.engine.executor import (
    AggregateSpec,
    HashAggregate,
    MaterializedResult,
    ParallelHashAggregate,
    ParallelMergeUda,
    lpt_makespan,
)
from repro.engine.udf import UserDefinedAggregate


def c(i):
    return lambda row: row[i]


def rows_op(columns, rows):
    return MaterializedResult(columns, rows)


class TestLptMakespan:
    def test_single_worker_sums(self):
        assert lpt_makespan([1.0, 2.0, 3.0], 1) == pytest.approx(6.0)

    def test_perfect_split(self):
        assert lpt_makespan([3.0, 3.0], 2) == pytest.approx(3.0)

    def test_lpt_schedules_longest_first(self):
        # tasks 5,4,3,3,3 on 2 workers -> LPT gives max(5+3, 4+3+3)=10? no:
        # 5 -> w1, 4 -> w2, 3 -> w2(7), 3 -> w1(8), 3 -> w2(10) => 10
        assert lpt_makespan([5, 4, 3, 3, 3], 2) == pytest.approx(10.0)

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_zero_workers_rejected(self):
        with pytest.raises(ExecutionError):
            lpt_makespan([1.0], 0)


class TestParallelHashAggregate:
    DATA = [(f"g{i % 7}", i) for i in range(500)]

    def run_plan(self, op_class, **kwargs):
        op = op_class(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [
                AggregateSpec("count", [], star=True),
                AggregateSpec("sum", [c(1)]),
            ],
            ["n", "s"],
            **kwargs,
        )
        return op, sorted(op)

    def test_matches_serial_hash_aggregate(self):
        _serial_op, serial = self.run_plan(HashAggregate)
        parallel_op, parallel = self.run_plan(ParallelHashAggregate, dop=4)
        assert parallel == serial

    def test_stats_populated(self):
        op, result = self.run_plan(ParallelHashAggregate, dop=4)
        stats = op.stats
        assert stats.rows_in == 500
        assert stats.rows_out == len(result) == 7
        assert len(stats.partition_agg_times) == 4
        assert stats.serial_wall > 0
        assert stats.simulated_wall > 0

    def test_simulation_never_slower_than_measured(self):
        op, _ = self.run_plan(ParallelHashAggregate, dop=4)
        assert op.stats.simulated_wall <= op.stats.serial_wall * 1.001

    def test_measured_wall_is_deprecated_alias_of_serial_wall(self):
        op, _ = self.run_plan(ParallelHashAggregate, dop=4)
        with pytest.deprecated_call():
            assert op.stats.measured_wall == op.stats.serial_wall

    def test_speedups_guard_zero_walls(self):
        from repro.engine.executor import ParallelStats

        stats = ParallelStats(dop=4)
        assert stats.simulated_speedup == 1.0
        assert stats.measured_speedup == 1.0

    def test_group_order_matches_serial_first_occurrence(self):
        serial_op = HashAggregate(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
        )
        parallel_op = ParallelHashAggregate(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
            dop=4,
        )
        assert list(parallel_op) == list(serial_op)

    def test_dop_one_equals_serial_semantics(self):
        op, parallel = self.run_plan(ParallelHashAggregate, dop=1)
        _s, serial = self.run_plan(HashAggregate)
        assert parallel == serial

    def test_multi_column_group_key(self):
        data = [(i % 2, i % 3, 1) for i in range(60)]
        op = ParallelHashAggregate(
            rows_op(["a", "b", "v"], data),
            [c(0), c(1)],
            ["a", "b"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
            dop=3,
        )
        assert sorted(op) == [
            (a, b, 10) for a in range(2) for b in range(3)
        ]

    def test_rejects_non_parallel_safe_uda(self):
        class Ordered(UserDefinedAggregate):
            name = "OrderedUda"
            parallel_safe = False

            def init(self):
                pass

            def accumulate(self, value):
                pass

            def merge(self, other):
                pass

            def terminate(self):
                return None

        with pytest.raises(ExecutionError):
            ParallelHashAggregate(
                rows_op(["g", "v"], self.DATA),
                [c(0)],
                ["g"],
                [AggregateSpec("OrderedUda", [c(1)], uda_class=Ordered)],
                ["x"],
                dop=4,
            )

    def test_explain_mentions_exchange(self):
        op, _ = self.run_plan(ParallelHashAggregate, dop=4)
        label, _kids = op.explain_node()
        assert "Repartition Streams" in label
        assert "Gather Streams" in label
        assert "DOP=4" in label


class TestExplainAnalyzeParallel:
    """EXPLAIN ANALYZE over exchange operators: worker fan-out must not
    double-count rows or time on any node of the plan."""

    DATA = [(f"g{i % 7}", i) for i in range(500)]

    def build(self, dop=4):
        return ParallelHashAggregate(
            rows_op(["g", "v"], self.DATA),
            [c(0)],
            ["g"],
            [AggregateSpec("count", [], star=True)],
            ["n"],
            dop=dop,
        )

    def test_child_rows_counted_once(self):
        op = self.build(dop=4)
        op.enable_timing()
        groups = list(op)
        assert len(groups) == 7
        (child,) = op.children()
        # the exchange partitions one pass over the child; the per-worker
        # fan-out must not re-drive (and re-count) the input
        assert child.rows_out == len(self.DATA)
        assert child.loops == 1
        assert op.rows_out == 7
        assert op.loops == 1

    def test_analyze_text_reports_workers_once(self):
        op = self.build(dop=4)
        op.enable_timing()
        list(op)
        text = op.explain(analyze=True)
        assert "actual rows=7" in text
        assert f"actual rows={len(self.DATA)}" in text
        assert "workers=4" in text
        assert "loops=1" in text
        assert "loops=2" not in text

    def test_elapsed_is_wall_clock_not_worker_sum(self):
        op = self.build(dop=4)
        op.enable_timing()
        list(op)
        # operator elapsed is inclusive wall-clock of the pull loop; the
        # simulated per-worker times live in analyze_detail, and their sum
        # must not leak into the node's own clock
        worker_total = sum(op.stats.partition_agg_times)
        assert op.elapsed <= op.stats.serial_wall * 1.5 + 0.05
        assert "worker time=" in (op.analyze_detail() or "")
        assert worker_total >= max(op.stats.partition_agg_times)

    def test_sql_explain_analyze_with_maxdop(self):
        from repro.engine import Database

        with Database() as db:
            db.execute(
                "CREATE TABLE m (id INT PRIMARY KEY, grp VARCHAR(5))"
            )
            db.execute(
                "INSERT INTO m VALUES "
                + ", ".join(f"({i}, 'g{i % 3}')" for i in range(60))
            )
            text = db.explain(
                "EXPLAIN ANALYZE SELECT grp, COUNT(*) FROM m "
                "GROUP BY grp OPTION (MAXDOP 4)"
            )
        assert "actual rows=3" in text
        assert "actual rows=60" in text  # the scan, counted exactly once
        assert "time=" in text
        assert "workers=" in text


class TestRealWorkerExecution:
    """Exchange tiers that actually cross a process boundary."""

    @pytest.fixture
    def db(self):
        from repro.engine import Database

        with Database() as database:
            database.execute("CREATE TABLE s (g VARCHAR(5), v INT, f FLOAT)")
            database.execute(
                "INSERT INTO s VALUES "
                + ", ".join(
                    f"('g{i % 7}', {i}, {i}.25)" for i in range(2000)
                )
            )
            yield database

    def _exchange_node(self, op):
        if isinstance(op, ParallelHashAggregate):
            return op
        for child in op.children():
            found = self._exchange_node(child)
            if found is not None:
                return found
        return None

    def _run(self, db, sql):
        from repro.engine.executor import collect_rows

        plan = db.plan(sql)
        rows = collect_rows(plan)
        return rows, self._exchange_node(plan)

    def test_integer_aggregate_offloads_the_scan(self, db):
        rows, node = self._run(
            db,
            "SELECT g, SUM(v), COUNT(*) FROM s "
            "GROUP BY g OPTION (MAXDOP 4)",
        )
        assert node is not None
        assert node.stats.mode == "parallel scan"
        assert node.stats.measured_parallel_wall > 0
        assert node.stats.bytes_shipped > 0
        assert node.stats.bytes_returned > 0
        assert node.stats.worker_breakdown
        serial = db.execute(
            "SELECT g, SUM(v), COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 1)"
        )
        assert list(rows) == list(serial.rows)

    def test_float_sum_takes_the_row_shipping_tier(self, db):
        rows, node = self._run(
            db, "SELECT g, SUM(f) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        assert node.stats.mode == "parallel rows"
        serial = db.execute(
            "SELECT g, SUM(f) FROM s GROUP BY g OPTION (MAXDOP 1)"
        )
        # bit-identical: hash partitioning keeps each group's floats on
        # one worker in serial accumulation order
        assert list(rows) == list(serial.rows)

    def test_scan_offload_counts_child_rows_once(self, db):
        from repro.engine.executor import collect_rows

        plan = db.plan(
            "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        collect_rows(plan)
        node = self._exchange_node(plan)
        assert node.stats.mode == "parallel scan"
        (child,) = node.children()
        assert child.rows_out == 2000
        assert child.loops == 1

    def test_env_kill_switch_forces_simulated(self, db, monkeypatch):
        from repro.engine.workers import DISABLE_ENV

        monkeypatch.setenv(DISABLE_ENV, "1")
        rows, node = self._run(
            db, "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        assert node.stats.mode == "simulated"
        assert DISABLE_ENV in node.stats.fallback_reason
        serial = db.execute(
            "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 1)"
        )
        assert list(rows) == list(serial.rows)

    def test_disabled_pool_noted_in_explain(self, db, monkeypatch):
        from repro.engine.workers import DISABLE_ENV

        monkeypatch.setenv(DISABLE_ENV, "1")
        text = db.explain(
            "EXPLAIN SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        assert "note: exchange will simulate DOP" in text

    def test_analyze_shows_measured_wall_and_mode(self, db):
        text = db.explain(
            "EXPLAIN ANALYZE SELECT g, SUM(v) FROM s "
            "GROUP BY g OPTION (MAXDOP 4)"
        )
        assert "measured wall=" in text
        assert "mode=parallel scan" in text
        assert "w0=" in text

    def test_set_max_dop_caps_hints(self, db):
        db.execute("SET MAX_DOP 1")
        plan = db.plan(
            "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        assert self._exchange_node(plan) is None
        db.execute("SET MAX_DOP 0")
        plan = db.plan(
            "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 4)"
        )
        assert self._exchange_node(plan) is not None

    def test_workers_dmv_populates_after_parallel_query(self, db):
        db.execute("SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 2)")
        rows = db.query(
            "SELECT worker_id, state, tasks_completed FROM sys_dm_os_workers"
        )
        assert rows
        assert all(state == "running" for _w, state, _t in rows)
        assert sum(tasks for _w, _s, tasks in rows) > 0

    def test_query_stats_record_last_dop(self, db):
        db.execute("SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 3)")
        rows = db.query(
            "SELECT query_text, last_dop FROM sys_dm_exec_query_stats"
        )
        from repro.engine.metrics import normalize_query_text

        by_text = dict(rows)
        key = normalize_query_text(
            "SELECT g, COUNT(*) FROM s GROUP BY g OPTION (MAXDOP 3)"
        )
        assert by_text[key] == 3

    def test_columnstore_scan_offloads_with_predicates(self):
        from repro.engine import Database

        with Database() as database:
            database.execute(
                "CREATE TABLE cs (g VARCHAR(5), v INT) "
                "WITH (STORAGE = COLUMN)"
            )
            database.execute(
                "INSERT INTO cs VALUES "
                + ", ".join(f"('g{i % 3}', {i})" for i in range(1200))
            )
            plan = database.plan(
                "SELECT g, SUM(v) FROM cs WHERE v >= 600 "
                "GROUP BY g OPTION (MAXDOP 4)"
            )
            from repro.engine.executor import collect_rows

            rows = collect_rows(plan)
            serial = database.execute(
                "SELECT g, SUM(v) FROM cs WHERE v >= 600 "
                "GROUP BY g OPTION (MAXDOP 1)"
            )
            assert list(rows) == list(serial.rows)


class ConcatUda(UserDefinedAggregate):
    """Ordered concatenation (stand-in for AssembleConsensus)."""

    name = "ConcatOrdered"
    arity = 1
    parallel_safe = False
    requires_ordered_input = True

    def init(self):
        self.parts = []

    def accumulate(self, value):
        self.parts.append(str(value))

    def merge(self, other):  # pragma: no cover
        raise AssertionError("must not merge")

    def terminate(self):
        return "".join(self.parts)


class TestParallelMergeUda:
    def test_per_group_evaluation(self):
        data = [("a", 1), ("a", 2), ("b", 3), ("c", 4), ("c", 5)]
        op = ParallelMergeUda(
            rows_op(["g", "v"], data),
            [c(0)],
            ["g"],
            AggregateSpec("ConcatOrdered", [c(1)], uda_class=ConcatUda),
            "joined",
            dop=2,
        )
        assert list(op) == [("a", "12"), ("b", "3"), ("c", "45")]

    def test_group_task_times_recorded(self):
        data = [(f"g{i}", i) for i in range(6)]
        op = ParallelMergeUda(
            rows_op(["g", "v"], data),
            [c(0)],
            ["g"],
            AggregateSpec("ConcatOrdered", [c(1)], uda_class=ConcatUda),
            "joined",
            dop=4,
        )
        list(op)
        assert len(op.stats.partition_agg_times) == 6
        assert op.stats.rows_in == 6
