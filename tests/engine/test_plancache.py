"""Plan cache + adaptive optimization tests.

Covers the PR-10 surface: normalized-SQL plan caching with parameter
extraction, epoch-based invalidation (DDL / statistics / session
knobs), parameter-sniffing guards and plan-instability recompiles,
the row-modification auto-statistics loop, the selectivity-feedback
memory, the no-capture guarantees of ``check()`` and bare ``EXPLAIN``,
and the query store's periodic checkpoint."""

import json

import pytest

from repro.engine import Database
from repro.engine.optimizer.statistics import SelectivityMemory
from repro.engine.plancache import parameterize_select
from repro.engine.sql.parser import parse_sql


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            "CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(8), v INT)"
        )
        database.execute(
            "INSERT INTO t VALUES "
            + ", ".join(f"({i}, 'g{i % 5}', {i * 3 % 67})" for i in range(80))
        )
        database.execute("UPDATE STATISTICS t")
        yield database


def cache_stats(database):
    return database.plan_cache.stats_dict()


# ---------------------------------------------------------------------------
# parameterization
# ---------------------------------------------------------------------------


class TestParameterize:
    def parse(self, sql):
        (stmt,) = parse_sql(sql)
        return stmt

    def test_literals_become_slots(self):
        stmt = self.parse("SELECT v FROM t WHERE id = 7 AND grp = 'a'")
        parsed = parameterize_select(stmt)
        assert parsed.store == [7, "a"]

    def test_two_parses_align_slot_order(self):
        first = parameterize_select(
            self.parse("SELECT v FROM t WHERE id = 7 AND grp = 'a'")
        )
        second = parameterize_select(
            self.parse("SELECT v FROM t WHERE id = 99 AND grp = 'zz'")
        )
        assert len(first.store) == len(second.store)
        assert second.store == [99, "zz"]
        assert first.extras == second.extras

    def test_null_literal_stays_inline(self):
        parsed = parameterize_select(
            self.parse("SELECT v FROM t WHERE grp = NULL")
        )
        assert parsed.store == []

    def test_top_and_maxdop_join_the_key(self):
        a = parameterize_select(
            self.parse("SELECT TOP 5 v FROM t ORDER BY v")
        )
        b = parameterize_select(
            self.parse("SELECT TOP 9 v FROM t ORDER BY v")
        )
        assert a.extras != b.extras

    def test_template_reexecutes_with_fresh_values(self, db):
        stmt = self.parse("SELECT v FROM t WHERE id = 3")
        parsed = parameterize_select(stmt)
        plan = db._planner.plan_select(parsed.template)
        from repro.engine.executor import collect_rows

        first = collect_rows(plan)
        parsed.store[0] = 11
        second = collect_rows(plan)
        assert first == [(9,)]
        assert second == [(33,)]


# ---------------------------------------------------------------------------
# hit / miss mechanics
# ---------------------------------------------------------------------------


class TestHitMiss:
    def test_second_execution_hits(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.query("SELECT v FROM t WHERE id = 9")
        stats = cache_stats(db)
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_hit_returns_new_parameter_results(self, db):
        assert db.query("SELECT v FROM t WHERE id = 5") == [(15,)]
        assert db.query("SELECT v FROM t WHERE id = 9") == [(27,)]
        assert db.query("SELECT v FROM t WHERE id = 5") == [(15,)]

    def test_distinct_shapes_cache_separately(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.query("SELECT grp FROM t WHERE id = 5")
        assert cache_stats(db)["entries"] == 2

    def test_dmv_rows(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.query("SELECT v FROM t WHERE id = 6")
        rows = db.query(
            "SELECT query_text, state, hit_count, parameter_count "
            "FROM sys_dm_exec_cached_plans"
        )
        target = [r for r in rows if "WHERE id = ?" in r[0]]
        assert target
        assert target[0][1] == "cached"
        assert target[0][2] == 1  # one hit
        assert target[0][3] == 1  # one parameter slot

    def test_set_plan_cache_off_bypasses_and_clears(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["entries"] == 1
        db.execute("SET PLAN_CACHE OFF")
        assert cache_stats(db)["entries"] == 0
        assert cache_stats(db)["evictions_disabled"] == 1
        before = cache_stats(db)
        assert db.query("SELECT v FROM t WHERE id = 5") == [(15,)]
        after = cache_stats(db)
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]
        db.execute("SET PLAN_CACHE ON")
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["entries"] == 1

    def test_capacity_eviction(self, db):
        db.plan_cache.capacity = 2
        db.query("SELECT v FROM t WHERE id = 1")
        db.query("SELECT grp FROM t WHERE id = 1")
        db.query("SELECT id FROM t WHERE v = 3")
        stats = cache_stats(db)
        assert stats["entries"] == 2
        assert stats["evictions_capacity"] == 1


# ---------------------------------------------------------------------------
# invalidation
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_ddl_invalidates(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.execute("CREATE TABLE other (x INT PRIMARY KEY)")
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["evictions_schema"] == 1

    def test_create_index_invalidates(self, db):
        db.query("SELECT v FROM t WHERE v = 30")
        db.execute("CREATE INDEX ix_v ON t (v)")
        db.query("SELECT v FROM t WHERE v = 30")
        assert cache_stats(db)["evictions_schema"] == 1

    def test_update_statistics_invalidates(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.execute("UPDATE STATISTICS t")
        db.query("SELECT v FROM t WHERE id = 5")
        stats = cache_stats(db)
        assert stats["evictions_statistics"] == 1
        assert stats["misses"] == 2

    def test_knob_change_invalidates(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.execute("SET MAX_DOP 2")
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["evictions_knobs"] == 1

    def test_execution_mode_change_invalidates(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.execution_mode = "row"
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["evictions_knobs"] == 1


# ---------------------------------------------------------------------------
# sniffing guards + plan instability
# ---------------------------------------------------------------------------


@pytest.fixture
def skew_db():
    """A heap with a severely skewed secondary-index column: 'hot'
    covers ~97% of rows, the rare values a handful each."""
    with Database() as database:
        database.execute(
            "CREATE TABLE sk (id INT PRIMARY KEY, g VARCHAR(8), v INT)"
        )
        values = []
        rid = 0
        for _ in range(400):
            values.append(f"({rid}, 'hot', {rid % 50})")
            rid += 1
        for tag in ("ra", "rb"):
            for _ in range(5):
                values.append(f"({rid}, '{tag}', {rid % 50})")
                rid += 1
        database.execute("INSERT INTO sk VALUES " + ", ".join(values))
        database.execute("CREATE INDEX ix_g ON sk (g)")
        database.execute("UPDATE STATISTICS sk")
        yield database


class TestSniffingGuards:
    def test_skewed_parameter_triggers_recompile(self, skew_db):
        db = skew_db
        assert len(db.query("SELECT id FROM sk WHERE g = 'ra'")) == 5
        # 'hot' selects ~97% of the table: the cached plan was costed
        # for ~1% selectivity, so the guard must force a recompile
        assert len(db.query("SELECT id FROM sk WHERE g = 'hot'")) == 400
        stats = cache_stats(db)
        assert stats["recompiles_sniffing"] >= 1

    def test_recompile_surfaces_in_explain_note(self, skew_db):
        db = skew_db
        db.query("SELECT id FROM sk WHERE g = 'ra'")
        text = db.execute("EXPLAIN SELECT id FROM sk WHERE g = 'hot'")
        assert "plan cache recompile(sniffing guard:" in text

    def test_flip_flop_marks_plan_unstable(self, skew_db):
        db = skew_db
        # alternate selective / unselective parameters until the plan
        # has flip-flopped often enough to be condemned
        for _ in range(4):
            db.query("SELECT id FROM sk WHERE g = 'ra'")
            db.query("SELECT id FROM sk WHERE g = 'hot'")
        stats = cache_stats(db)
        assert stats["unstable"] == 1
        assert stats["recompiles_unstable"] >= 1
        rows = db.query("SELECT state FROM sys_dm_exec_cached_plans")
        assert any(state.startswith("unstable") for (state,) in rows)

    def test_unstable_plans_still_answer_correctly(self, skew_db):
        db = skew_db
        for _ in range(4):
            assert len(db.query("SELECT id FROM sk WHERE g = 'ra'")) == 5
            assert len(db.query("SELECT id FROM sk WHERE g = 'hot'")) == 400


# ---------------------------------------------------------------------------
# auto statistics (modification counters)
# ---------------------------------------------------------------------------


class TestAutoStatistics:
    def test_bulk_modification_trips_refresh(self, db):
        table = db.catalog.table("t")
        assert table.modification_counter == 0  # analyze() reset it
        stats_version = table.statistics.version
        # threshold = 500 + 0.2 * 80 = 516 modifications
        db.execute(
            "INSERT INTO t VALUES "
            + ", ".join(
                f"({i}, 'g{i % 5}', {i % 67})" for i in range(100, 700)
            )
        )
        assert table.modification_counter == 0  # refreshed + reset
        assert table.statistics.version > stats_version
        assert table.statistics.row_count == 680
        assert any("Auto UPDATE STATISTICS" in m for m in db.messages)

    def test_auto_refresh_invalidates_cached_plans(self, db):
        db.query("SELECT v FROM t WHERE id = 5")
        db.execute(
            "INSERT INTO t VALUES "
            + ", ".join(
                f"({i}, 'g{i % 5}', {i % 67})" for i in range(100, 700)
            )
        )
        db.query("SELECT v FROM t WHERE id = 5")
        assert cache_stats(db)["evictions_statistics"] == 1

    def test_small_modifications_do_not_refresh(self, db):
        table = db.catalog.table("t")
        db.execute("INSERT INTO t VALUES (500, 'g1', 3)")
        assert table.modification_counter == 1
        assert not any("Auto UPDATE STATISTICS" in m for m in db.messages)

    def test_tables_without_statistics_never_auto_refresh(self):
        with Database() as database:
            database.execute("CREATE TABLE fresh (id INT PRIMARY KEY)")
            database.execute(
                "INSERT INTO fresh VALUES "
                + ", ".join(f"({i})" for i in range(600))
            )
            assert database.catalog.table("fresh")._statistics is None
            assert not any(
                "Auto UPDATE STATISTICS" in m for m in database.messages
            )


# ---------------------------------------------------------------------------
# selectivity feedback
# ---------------------------------------------------------------------------


class TestSelectivityMemory:
    def test_observe_and_lookup(self):
        memory = SelectivityMemory(alpha=0.5)
        memory.observe("t", "(v > 10)", 100, 20)
        assert memory.lookup("t", "(v > 10)") == pytest.approx(0.2)
        # literals mask, so different parameter values share an entry
        assert memory.lookup("T", "(v > 99)") == pytest.approx(0.2)

    def test_ewma_update(self):
        memory = SelectivityMemory(alpha=0.5)
        memory.observe("t", "(v > 10)", 100, 20)
        memory.observe("t", "(v > 10)", 100, 60)
        assert memory.lookup("t", "(v > 10)") == pytest.approx(0.4)

    def test_truncated_labels_skipped(self):
        memory = SelectivityMemory()
        memory.observe("t", "(v > 10) AND ...", 100, 20)
        assert len(memory) == 0

    def test_execution_populates_memory(self, db):
        db.query("SELECT id FROM t WHERE grp LIKE 'g1%'")
        observations = db.selectivity_memory.observations()
        assert any("LIKE" in o.predicate for o in observations)

    def test_memory_feeds_like_estimates(self, db):
        # LIKE has no histogram support: the blind default is 0.1, the
        # observed truth here is 16/80 = 0.2
        db.query("SELECT id FROM t WHERE grp LIKE 'g1%'")
        table = db.catalog.table("t")
        from repro.engine.sql.parser import parse_sql

        (stmt,) = parse_sql("SELECT id FROM t WHERE grp LIKE 'g1%'")
        selectivity = db._planner.cost.conjunct_selectivity(
            stmt.where, table
        )
        assert selectivity == pytest.approx(0.2, abs=0.05)


# ---------------------------------------------------------------------------
# no-capture guarantees (check / bare EXPLAIN)
# ---------------------------------------------------------------------------


class TestNoCapture:
    def test_bare_explain_untracked(self, db):
        before_stats = cache_stats(db)
        before_queries = len(db.query_store.queries())
        db.execute("EXPLAIN SELECT v FROM t WHERE id = 5")
        after_stats = cache_stats(db)
        # the cached_plans peek must not populate nor count
        assert after_stats["hits"] == before_stats["hits"]
        assert after_stats["misses"] == before_stats["misses"]
        assert after_stats["entries"] == before_stats["entries"]
        # ...and bare EXPLAIN must not land in query store runtime stats
        assert len(db.query_store.queries()) == before_queries

    def test_explain_analyze_still_records(self, db):
        before = len(db.query_store.queries())
        db.execute("EXPLAIN ANALYZE SELECT v FROM t WHERE id = 5")
        assert len(db.query_store.queries()) == before + 1

    def test_check_populates_nothing(self, db):
        before_cache = cache_stats(db)
        before_queries = len(db.query_store.queries())
        checked = db.check(
            "SELECT v FROM t WHERE id = 5; "
            "EXPLAIN SELECT grp FROM t WHERE v > 3"
        )
        assert checked == 2
        assert cache_stats(db) == before_cache
        assert len(db.query_store.queries()) == before_queries

    def test_explain_notes_peek_state(self, db):
        text = db.execute("EXPLAIN SELECT v FROM t WHERE id = 5")
        assert "note: plan cache miss" in text
        db.query("SELECT v FROM t WHERE id = 5")
        text = db.execute("EXPLAIN SELECT v FROM t WHERE id = 7")
        assert "note: plan cache hit" in text


# ---------------------------------------------------------------------------
# query store checkpoint
# ---------------------------------------------------------------------------


class TestFastPath:
    """The raw-text (parse-free) hit path: registration rules,
    fallback discipline, and side-effect parity with the parse path."""

    def test_miss_registers_shape(self, db):
        db.query("SELECT v FROM t WHERE id = 7")
        assert "SELECT v FROM t WHERE id = ?" in db.plan_cache._fast_index

    def test_hit_skips_parser_entirely(self, db, monkeypatch):
        import repro.engine.database as database_module

        db.query("SELECT v FROM t WHERE id = 7")

        def boom(sql):
            raise AssertionError("parser invoked on fast path")

        monkeypatch.setattr(database_module, "parse_sql", boom)
        assert db.query("SELECT v FROM t WHERE id = 31") == db_rows(31)
        with pytest.raises(AssertionError):
            db.query("SELECT v FROM t WHERE id = 31 AND v >= 0")

    def test_fast_hits_rebind_fresh_values(self, db):
        cold = [db.query(f"SELECT v FROM t WHERE id = {i}") for i in range(8)]
        warm = [db.query(f"SELECT v FROM t WHERE id = {i}") for i in range(8)]
        assert cold == warm
        assert cache_stats(db)["hits"] >= 8

    def test_duplicate_literals_defer_registration(self, db):
        # equal values cannot prove the token→slot mapping; the shape
        # registers only once a distinct-valued rendition comes along
        db.query("SELECT id FROM t WHERE v = 9 AND id > 9")
        entry = next(iter(db.plan_cache._entries.values()))
        assert not entry.fast_shapes
        db.query("SELECT id FROM t WHERE v = 9 AND id > 4")
        assert entry.fast_shapes

    def test_top_literal_blocks_registration(self, db):
        # TOP n is a cache-key extra, invisible to the slot store — a
        # positional rebind would mistake it for a parameter
        db.query("SELECT TOP 3 id FROM t WHERE v > 10")
        entry = next(iter(db.plan_cache._entries.values()))
        assert not entry.fast_shapes

    def test_explain_never_hijacked(self, db):
        db.query("SELECT v FROM t WHERE id = 7")
        db.query("SELECT v FROM t WHERE id = 8")
        text = db.execute("EXPLAIN SELECT v FROM t WHERE id = 9")
        assert isinstance(text, str) and "Seek" in text
        assert "note: plan cache hit" in text

    def test_fast_hits_keep_recording(self, db):
        for i in range(4):
            db.query(f"SELECT v FROM t WHERE id = {i}")
        row = next(
            r
            for r in db.metrics.query_stats_rows()
            if r[0] == "SELECT v FROM t WHERE id = ?"
        )
        assert row[2] == 4  # execution_count counts fast hits too
        stored = [
            q
            for q in db.query_store.query_rows()
            if q[1] == "SELECT v FROM t WHERE id = ?"
        ]
        assert stored

    def test_invalidation_falls_back_and_evicts(self, db):
        db.query("SELECT v FROM t WHERE id = 7")
        db.query("SELECT v FROM t WHERE id = 8")
        db.execute("UPDATE STATISTICS t")
        assert db.query("SELECT v FROM t WHERE id = 9") == db_rows(9)
        assert cache_stats(db)["evictions_statistics"] == 1

    def test_disabled_cache_bypasses_fast_path(self, db):
        db.query("SELECT v FROM t WHERE id = 7")
        db.execute("SET PLAN_CACHE OFF")
        before = cache_stats(db)["hits"]
        assert db.query("SELECT v FROM t WHERE id = 8") == db_rows(8)
        assert cache_stats(db)["hits"] == before

    def test_eviction_cleans_fast_index(self, db):
        db.query("SELECT v FROM t WHERE id = 7")
        assert db.plan_cache._fast_index
        db.plan_cache.clear()
        assert not db.plan_cache._fast_index

    def test_guard_trip_falls_back_to_recompile(self):
        with Database() as database:
            database.execute(
                "CREATE TABLE sk (id INT PRIMARY KEY, g VARCHAR(8))"
            )
            values = [f"({i}, 'hot')" for i in range(400)]
            values += [f"({400 + i}, 'rare')" for i in range(5)]
            database.execute("INSERT INTO sk VALUES " + ", ".join(values))
            database.execute("CREATE INDEX ix_g ON sk (g)")
            database.execute("UPDATE STATISTICS sk")
            assert database.query("SELECT id FROM sk WHERE g = 'rare'")
            entry = next(iter(database.plan_cache._entries.values()))
            assert entry.fast_shapes  # registered off the rare compile
            rows = database.query("SELECT id FROM sk WHERE g = 'hot'")
            assert len(rows) == 400
            stats = database.plan_cache.stats_dict()
            assert stats["recompiles_sniffing"] == 1


def db_rows(i):
    return [(i * 3 % 67,)]


class TestQueryStoreCheckpoint:
    def test_periodic_checkpoint_writes_midsession(self, tmp_path):
        with Database(data_dir=tmp_path / "db") as database:
            database.query_store.checkpoint_interval = 2
            database.execute("CREATE TABLE c (id INT PRIMARY KEY)")
            database.execute("INSERT INTO c VALUES (1)")
            path = tmp_path / "db" / "querystore.json"
            assert path.exists()  # written before close()
            payload = json.loads(path.read_text())
            assert payload["queries"]

    def test_counter_resets_after_checkpoint(self, tmp_path):
        with Database(data_dir=tmp_path / "db") as database:
            database.query_store.checkpoint_interval = 2
            database.execute("CREATE TABLE c (id INT PRIMARY KEY)")
            database.execute("INSERT INTO c VALUES (1)")
            assert database.query_store.records_since_checkpoint < 2

    def test_interval_zero_disables(self, tmp_path):
        with Database(data_dir=tmp_path / "db") as database:
            database.query_store.checkpoint_interval = 0
            database.execute("CREATE TABLE c (id INT PRIMARY KEY)")
            database.execute("INSERT INTO c VALUES (1)")
            database.execute("SELECT id FROM c")
            assert not (tmp_path / "db" / "querystore.json").exists()


# ---------------------------------------------------------------------------
# differential: cached execution must be byte-identical
# ---------------------------------------------------------------------------

_DIFF_QUERIES = [
    "SELECT v FROM t WHERE id = {p}",
    "SELECT grp, COUNT(*), SUM(v) FROM t WHERE v > {p} "
    "GROUP BY grp ORDER BY grp",
    "SELECT id, v FROM t WHERE v BETWEEN {p} AND 40 ORDER BY id",
    "SELECT COUNT(*) FROM t WHERE grp IN ('g1', 'g{p2}')",
    "SELECT TOP 7 id FROM t WHERE v > {p} ORDER BY id",
]


def _build(database, storage):
    suffix = (
        " WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 32)"
        if storage == "column"
        else ""
    )
    database.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(8), v INT)"
        + suffix
    )
    database.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, 'g{i % 5}', {i * 3 % 67})" for i in range(96))
    )
    database.execute("UPDATE STATISTICS t")


def _run_workload(database, dop):
    hint = f" OPTION (MAXDOP {dop})" if dop > 1 else ""
    out = []
    for template in _DIFF_QUERIES:
        for p in (3, 25, 48, 25, 3):
            sql = template.format(p=p, p2=p % 5) + hint
            out.append((sql, database.query(sql)))
    return out


@pytest.mark.parametrize("storage", ["heap", "column"])
@pytest.mark.parametrize("mode", ["auto", "row"])
@pytest.mark.parametrize("dop", [1, 2, 4])
def test_differential_cache_on_off(storage, mode, dop):
    with Database() as cached, Database() as uncached:
        for database in (cached, uncached):
            database.execution_mode = mode
            _build(database, storage)
        uncached.execute("SET PLAN_CACHE OFF")
        with_cache = _run_workload(cached, dop)
        without_cache = _run_workload(uncached, dop)
        for (sql, hot), (_sql, cold) in zip(with_cache, without_cache):
            assert repr(hot) == repr(cold), sql
        # the cache must actually have been exercised
        stats = cached.plan_cache.stats_dict()
        assert stats["hits"] >= len(_DIFF_QUERIES) * 2
        assert uncached.plan_cache.stats_dict()["misses"] == 0
