"""Expression compilation and SQL semantics (three-valued logic,
built-ins, LIKE)."""

import uuid

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import BindError, ExecutionError
from repro.engine.expressions import (
    Between,
    BinaryOp,
    BoundRef,
    Case,
    ColumnRef,
    ExpressionCompiler,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    UnaryOp,
    expression_to_sql,
    like_match,
    rewrite,
)
from repro.engine.udf import FunctionLibrary

COLUMNS = {"a": 0, "b": 1, "s": 2}


def compile_expr(expr, library=None):
    binder = lambda ref: COLUMNS[ref.name]
    return ExpressionCompiler(binder, library).compile(expr)


def evaluate(expr, row=(1, 2, "text"), library=None):
    return compile_expr(expr, library)(row)


def col(name):
    return ColumnRef(name)


class TestArithmetic:
    def test_basic_ops(self):
        assert evaluate(BinaryOp("+", col("a"), col("b"))) == 3
        assert evaluate(BinaryOp("-", col("a"), col("b"))) == -1
        assert evaluate(BinaryOp("*", col("b"), Literal(10))) == 20
        assert evaluate(BinaryOp("%", Literal(7), Literal(3))) == 1

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate(BinaryOp("/", Literal(7), Literal(2))) == 3
        assert evaluate(BinaryOp("/", Literal(-7), Literal(2))) == -3

    def test_float_division(self):
        assert evaluate(BinaryOp("/", Literal(7.0), Literal(2))) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            evaluate(BinaryOp("/", Literal(1), Literal(0)))

    def test_null_propagates(self):
        assert evaluate(BinaryOp("+", Literal(None), Literal(1))) is None
        assert evaluate(UnaryOp("-", Literal(None))) is None

    @given(st.integers(-100, 100), st.integers(-100, 100))
    def test_comparison_matches_python(self, x, y):
        assert evaluate(BinaryOp("<", Literal(x), Literal(y))) == (x < y)
        assert evaluate(BinaryOp("=", Literal(x), Literal(y))) == (x == y)


class TestThreeValuedLogic:
    T, F, N = Literal(True), Literal(False), Literal(None)

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("T", "T", True), ("T", "F", False), ("T", "N", None),
            ("F", "T", False), ("F", "F", False), ("F", "N", False),
            ("N", "T", None), ("N", "F", False), ("N", "N", None),
        ],
    )
    def test_and_kleene(self, left, right, expected):
        expr = BinaryOp("AND", getattr(self, left), getattr(self, right))
        assert evaluate(expr) is expected

    @pytest.mark.parametrize(
        "left,right,expected",
        [
            ("T", "T", True), ("T", "F", True), ("T", "N", True),
            ("F", "T", True), ("F", "F", False), ("F", "N", None),
            ("N", "T", True), ("N", "F", None), ("N", "N", None),
        ],
    )
    def test_or_kleene(self, left, right, expected):
        expr = BinaryOp("OR", getattr(self, left), getattr(self, right))
        assert evaluate(expr) is expected

    def test_not_of_null(self):
        assert evaluate(UnaryOp("NOT", Literal(None))) is None

    def test_null_comparison_is_null(self):
        assert evaluate(BinaryOp("=", Literal(None), Literal(None))) is None

    def test_is_null(self):
        assert evaluate(IsNull(Literal(None))) is True
        assert evaluate(IsNull(Literal(1))) is False
        assert evaluate(IsNull(Literal(None), negated=True)) is False

    def test_in_list_with_null(self):
        # 1 IN (2, NULL) => NULL; 1 IN (1, NULL) => TRUE
        assert (
            evaluate(InList(Literal(1), (Literal(2), Literal(None)))) is None
        )
        assert (
            evaluate(InList(Literal(1), (Literal(1), Literal(None)))) is True
        )

    def test_between_null(self):
        assert evaluate(Between(Literal(None), Literal(1), Literal(2))) is None
        assert evaluate(Between(Literal(5), Literal(1), Literal(9))) is True


class TestBuiltins:
    def call(self, name, *args):
        return evaluate(FuncCall(name, tuple(Literal(a) for a in args)))

    def test_charindex_one_based(self):
        assert self.call("CHARINDEX", "N", "ACGTN") == 5
        assert self.call("CHARINDEX", "N", "ACGT") == 0
        assert self.call("CHARINDEX", "N", None) is None

    def test_substring(self):
        assert self.call("SUBSTRING", "hello", 2, 3) == "ell"

    def test_len_ignores_trailing_spaces(self):
        assert self.call("LEN", "ab  ") == 2

    def test_datalength(self):
        assert self.call("DATALENGTH", "abc") == 3
        assert self.call("DATALENGTH", b"\x00\x01") == 2
        assert self.call("DATALENGTH", 5) == 4
        assert self.call("DATALENGTH", uuid.uuid4()) == 16
        assert self.call("DATALENGTH", None) is None

    def test_isnull_and_coalesce(self):
        assert self.call("ISNULL", None, 7) == 7
        assert self.call("ISNULL", 1, 7) == 1
        assert self.call("COALESCE", None, None, 3) == 3

    def test_string_functions(self):
        assert self.call("UPPER", "acgt") == "ACGT"
        assert self.call("REVERSE", "abc") == "cba"
        assert self.call("REPLACE", "aXa", "X", "b") == "aba"
        assert self.call("LEFT", "hello", 2) == "he"
        assert self.call("RIGHT", "hello", 2) == "lo"

    def test_newid_distinct(self):
        first = evaluate(FuncCall("NEWID", ()))
        second = evaluate(FuncCall("NEWID", ()))
        assert isinstance(first, uuid.UUID) and first != second

    def test_unknown_function(self):
        with pytest.raises(BindError):
            evaluate(FuncCall("NoSuchFn", ()))

    def test_udf_overrides_builtin(self):
        library = FunctionLibrary()
        library.register_scalar("UPPER", lambda s: "overridden")
        assert evaluate(FuncCall("UPPER", (Literal("x"),)), library=library) == (
            "overridden"
        )


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "hello", True),
            ("hello", "h%", True),
            ("hello", "%llo", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),
            ("", "%", True),
            ("a.b", "a.b", True),
            ("axb", "a.b", False),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert like_match(value, pattern) is expected

    def test_null(self):
        assert like_match(None, "%") is None

    def test_negated(self):
        assert evaluate(Like(Literal("abc"), Literal("a%"), negated=True)) is False


class TestCase:
    def test_first_matching_when(self):
        expr = Case(
            (
                (BinaryOp(">", col("a"), Literal(10)), Literal("big")),
                (BinaryOp(">", col("a"), Literal(0)), Literal("small")),
            ),
            Literal("neg"),
        )
        assert evaluate(expr, (5, 0, "")) == "small"
        assert evaluate(expr, (50, 0, "")) == "big"
        assert evaluate(expr, (-1, 0, "")) == "neg"

    def test_no_else_yields_null(self):
        expr = Case(((Literal(False), Literal(1)),))
        assert evaluate(expr) is None


class TestRewrite:
    def test_replaces_matching_nodes(self):
        expr = BinaryOp("+", col("a"), col("b"))
        replaced = rewrite(
            expr,
            lambda node: BoundRef(9) if node == col("a") else None,
        )
        assert replaced == BinaryOp("+", BoundRef(9), col("b"))

    def test_bound_ref_compiles(self):
        fn = compile_expr(BoundRef(2))
        assert fn((0, 0, "hit")) == "hit"

    def test_expression_to_sql_round_readable(self):
        expr = BinaryOp(
            "AND",
            BinaryOp("=", col("a"), Literal(1)),
            Like(col("s"), Literal("x%")),
        )
        text = expression_to_sql(expr)
        assert "a = 1" in text and "LIKE" in text


class TestBinderErrors:
    def test_unknown_column(self):
        def binder(ref):
            raise BindError(f"unknown {ref.name}")

        compiler = ExpressionCompiler(binder)
        with pytest.raises(BindError):
            compiler.compile(col("missing"))
