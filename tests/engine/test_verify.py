"""Static verification of UDx bodies, extension contracts, and SQL lint.

Covers the CLR-host-style verifier (permission sets, determinism and
data-access inference), the structural contracts checked at
registration time, the plan-time lint surfaced through ``db.messages``
and ``sys_dm_verify_results``, and the two optimizer behaviours the
verified properties unlock: constant folding of deterministic UDFs and
the forced-serial aggregate for a merge-less UDA.

All UDx bodies live at module level so ``inspect.getsource`` can see
them — functions defined interactively verify as UDX-NO-SOURCE.
"""

from pathlib import Path

import pytest

from repro.engine import Database
from repro.engine.schema import Column
from repro.engine.types import UdtCodec, int_type, varchar_type
from repro.engine.udf import TableValuedFunction, UserDefinedAggregate
from repro.engine.verify import VerificationError, analyze_callable

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "broken_udx"
EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


# ---------------------------------------------------------------------------
# UDx bodies under test (module level: source must be retrievable)
# ---------------------------------------------------------------------------

def _double_it(x):
    return x * 2


def _jitter(x):
    import random

    return x + random.random()


def _basename(path):
    import os

    return os.path.basename(path)


_COUNTER = 0


def _bump(x):
    global _COUNTER
    _COUNTER += 1
    return x


def _open_file(path):
    with open(path) as handle:
        return handle.read()


def _make_probe(store):
    def probe(rid):
        return store.exists(rid)

    return probe


def _nondeterministic_helper():
    import random

    return random.random()


def _calls_helper(x):
    return x + _nondeterministic_helper()


from repro.genomics.quality import decode_phred


def _calls_cross_module(quals):
    # decode_phred resolves through module globals to a function from
    # repro.genomics.quality — another module the verifier does not
    # recurse into, so determinism stays unknown
    return decode_phred(quals)


def _calls_unresolvable(x):
    return _undefined_helper(x)  # noqa: F821 — intentionally unbound


# a same-module helper whose source inspect.getsource cannot retrieve
exec("def _no_source_helper(x):\n    return x + 1", globals())


def _calls_no_source(x):
    return _no_source_helper(x)  # noqa: F821 — defined by exec above


def _uses_math(x):
    import math

    return math.sqrt(abs(x))


_TRACKED_CALLS = []


def _tracked_triple(x):
    _TRACKED_CALLS.append(x)
    return x * 3


class BrokenSum(UserDefinedAggregate):
    """Claims parallel_safe but provides no merge()."""

    name = "BrokenSum"
    arity = 1
    parallel_safe = True

    def init(self):
        self.total = 0

    def accumulate(self, value):
        if value is not None:
            self.total += value

    def terminate(self):
        return self.total


class GoodSum(UserDefinedAggregate):
    name = "GoodSum"
    arity = 1
    parallel_safe = True

    def init(self):
        self.total = 0

    def accumulate(self, value):
        if value is not None:
            self.total += value

    def merge(self, other):
        self.total += other.total

    def terminate(self):
        return self.total


class ArityLiar(UserDefinedAggregate):
    name = "ArityLiar"
    arity = 2

    def init(self):
        self.seen = 0

    def accumulate(self, value):  # one argument, declares two
        self.seen += 1

    def merge(self, other):
        self.seen += other.seen

    def terminate(self):
        return self.seen


class HalfImplemented(UserDefinedAggregate):
    name = "HalfImplemented"
    arity = 1

    def accumulate(self, value):
        pass

    # init() and terminate() are not overridden


class MaterializedTvf(TableValuedFunction):
    name = "Materialized"
    columns = (Column("pos", int_type()),)

    def create(self, seq):
        return [(i,) for i in range(len(seq))]

    def fill_row(self, obj):
        return (obj[0],)


class WideFillRowTvf(TableValuedFunction):
    name = "WideFillRow"
    columns = (
        Column("pos", int_type()),
        Column("base", varchar_type(1)),
    )

    def create(self, seq):
        for i, base in enumerate(seq):
            yield (i, base)

    def fill_row(self, obj):
        return (obj[0],)  # one value for two declared columns


def _codec_encode(value):
    return value.encode("ascii")


def _codec_decode(raw):
    return raw.decode("ascii")


def _codec_decode_lossy(raw):
    return raw.decode("ascii").lower()


# ---------------------------------------------------------------------------
# permission sets
# ---------------------------------------------------------------------------

class TestPermissionSets:
    def test_safe_rejects_io_import(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_scalar("Basename", _basename)
            rules = {d.rule for d in excinfo.value.diagnostics}
            assert "UDX-SAFE-IMPORT" in rules
            # rejected objects never reach the registry ...
            assert db.catalog.functions.scalar("Basename") is None
            # ... but their findings land in sys_dm_verify_results
            rows = db.query(
                "SELECT object_name, rule, severity "
                "FROM sys_dm_verify_results WHERE rule = 'UDX-SAFE-IMPORT'"
            )
            assert ("Basename", "UDX-SAFE-IMPORT", "error") in rows

    def test_external_access_allows_io_import(self):
        with Database() as db:
            db.register_scalar(
                "Basename", _basename, permission_set="EXTERNAL_ACCESS"
            )
            assert db.catalog.functions.scalar("Basename") is not None
            assert db.scalar("SELECT Basename('/tmp/reads.fastq')") == (
                "reads.fastq"
            )

    def test_safe_rejects_open_call(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_scalar("ReadFile", _open_file)
            assert any(
                d.rule == "UDX-SAFE-CALL" for d in excinfo.value.diagnostics
            )

    def test_safe_rejects_global_mutation(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_scalar("Bump", _bump)
            assert any(
                d.rule == "UDX-SAFE-GLOBAL-WRITE"
                for d in excinfo.value.diagnostics
            )

    def test_safe_rejects_data_access(self):
        with Database() as db:
            probe = _make_probe(db.filestream)
            with pytest.raises(VerificationError) as excinfo:
                db.register_scalar("Probe", probe)
            assert any(
                d.rule == "UDX-SAFE-DATA-ACCESS"
                for d in excinfo.value.diagnostics
            )

    def test_external_access_infers_data_access_read(self):
        with Database() as db:
            probe = _make_probe(db.filestream)
            db.register_scalar(
                "Probe", probe, permission_set="EXTERNAL_ACCESS"
            )
            udf = db.catalog.functions.scalar("Probe")
            assert udf.data_access == "READ"

    def test_declared_no_data_access_contradicted_by_body(self):
        with Database() as db:
            probe = _make_probe(db.filestream)
            with pytest.raises(VerificationError) as excinfo:
                db.register_scalar(
                    "Probe",
                    probe,
                    permission_set="EXTERNAL_ACCESS",
                    data_access="NONE",
                )
            assert any(
                d.rule == "UDX-DATA-ACCESS-MISMATCH"
                for d in excinfo.value.diagnostics
            )

    def test_unsafe_skips_verification_with_warning(self):
        with Database() as db:
            db.register_scalar("Bump", _bump, permission_set="UNSAFE")
            diags = db.catalog.functions.diagnostics_for("Bump")
            assert any(d.rule == "UDX-UNSAFE" for d in diags)
            # nothing was verified, so nothing is inferred
            assert db.catalog.functions.scalar("Bump").is_deterministic is None

    def test_builtin_callable_tolerated_as_no_source(self):
        with Database() as db:
            db.register_scalar("Absolute", abs)
            diags = db.catalog.functions.diagnostics_for("Absolute")
            assert any(d.rule == "UDX-NO-SOURCE" for d in diags)
            assert all(not d.is_error for d in diags)
            assert db.scalar("SELECT Absolute(-7)") == 7


# ---------------------------------------------------------------------------
# determinism inference
# ---------------------------------------------------------------------------

class TestDeterminismInference:
    def test_pure_body_inferred_deterministic(self):
        with Database() as db:
            db.register_scalar("DoubleIt", _double_it)
            assert db.catalog.functions.scalar("DoubleIt").is_deterministic \
                is True

    def test_random_inferred_nondeterministic(self):
        with Database() as db:
            db.register_scalar("Jitter", _jitter)
            udf = db.catalog.functions.scalar("Jitter")
            assert udf.is_deterministic is False
            diags = db.catalog.functions.diagnostics_for("Jitter")
            assert any(d.rule == "UDX-NONDETERMINISTIC" for d in diags)

    def test_declared_deterministic_overridden_by_inference(self):
        with Database() as db:
            db.register_scalar("Jitter", _jitter, deterministic=True)
            # the declaration loses: the body visibly uses random
            assert db.catalog.functions.scalar("Jitter").is_deterministic \
                is False
            diags = db.catalog.functions.diagnostics_for("Jitter")
            assert any(
                d.rule == "UDX-DETERMINISM-MISMATCH" for d in diags
            )

    def test_inference_recurses_into_module_helpers(self):
        report = analyze_callable(_calls_helper, "CallsHelper")
        assert report.is_deterministic is False

    def test_cross_module_callee_leaves_determinism_unverified(self):
        # the soundness contract: True only when every call target was
        # analysed — a helper from another module is not, so the UDF
        # must not be folded or memoised
        report = analyze_callable(_calls_cross_module, "CrossMod")
        assert report.is_deterministic is None
        assert any(
            d.rule == "UDX-UNVERIFIED-CALL" for d in report.diagnostics
        )

    def test_unresolvable_callee_leaves_determinism_unverified(self):
        report = analyze_callable(_calls_unresolvable, "Unresolvable")
        assert report.is_deterministic is None

    def test_sourceless_same_module_callee_taints_verdict(self):
        # an exec-defined helper has no retrievable source: the callee
        # report is unanalysed and must taint the parent down to None
        report = analyze_callable(_calls_no_source, "CallsNoSource")
        assert report.is_deterministic is None

    def test_audited_stdlib_calls_keep_determinism(self):
        report = analyze_callable(_uses_math, "UsesMath")
        assert report.is_deterministic is True

    def test_merge_unverifiable_report_taints_true_parent(self):
        from repro.engine.verify.udx_verifier import AnalysisReport

        parent = AnalysisReport(is_deterministic=True, analyzed=True)
        parent.merge(AnalysisReport())  # source unavailable: None
        assert parent.is_deterministic is None
        # False still dominates an unknown
        parent.merge(AnalysisReport(is_deterministic=False, analyzed=True))
        assert parent.is_deterministic is False

    def test_unverified_udf_not_constant_folded(self):
        with _seeded_db() as db:
            db.register_scalar("CrossMod", _calls_cross_module)
            assert (
                db.catalog.functions.scalar("CrossMod").is_deterministic
                is None
            )
            op = db.plan("SELECT v FROM t WHERE id = CrossMod('I')")
            assert not any(
                "constant-folded" in note for note in op.plan_notes
            )


# ---------------------------------------------------------------------------
# structural contracts
# ---------------------------------------------------------------------------

class TestContracts:
    def test_uda_arity_mismatch_rejected(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_uda(ArityLiar)
            assert any(
                d.rule == "UDX-UDA-ARITY" for d in excinfo.value.diagnostics
            )

    def test_uda_missing_lifecycle_rejected(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_uda(HalfImplemented)
            lifecycle = [
                d
                for d in excinfo.value.diagnostics
                if d.rule == "UDX-UDA-LIFECYCLE"
            ]
            missing = " ".join(d.message for d in lifecycle)
            assert "init" in missing and "terminate" in missing

    def test_mergeless_parallel_uda_registers_with_warning(self):
        with Database() as db:
            db.register_uda(BrokenSum)
            diags = db.catalog.functions.diagnostics_for("BrokenSum")
            assert any(d.rule == "UDX-UDA-NO-MERGE" for d in diags)
            assert BrokenSum._merge_verified is False
            assert db.catalog.functions.uda("BrokenSum") is BrokenSum

    def test_materialized_tvf_rejected(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_tvf(MaterializedTvf())
            assert any(
                d.rule == "UDX-TVF-MATERIALIZED"
                for d in excinfo.value.diagnostics
            )

    def test_fill_row_arity_mismatch_rejected(self):
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_tvf(WideFillRowTvf())
            assert any(
                d.rule == "UDX-TVF-FILLROW-ARITY"
                for d in excinfo.value.diagnostics
            )

    def test_udt_roundtrip_failure_rejected(self):
        codec = UdtCodec(
            name="LossySeq",
            serialize=_codec_encode,
            deserialize=_codec_decode_lossy,
            probe="AcGt",
        )
        with Database() as db:
            with pytest.raises(VerificationError) as excinfo:
                db.register_udt(codec)
            assert any(
                d.rule == "UDX-UDT-ROUNDTRIP"
                for d in excinfo.value.diagnostics
            )

    def test_udt_with_probe_verified(self):
        codec = UdtCodec(
            name="AsciiSeq",
            serialize=_codec_encode,
            deserialize=_codec_decode,
            probe="ACGT",
        )
        with Database() as db:
            db.register_udt(codec)
            diags = db.catalog.functions.diagnostics_for("AsciiSeq")
            assert any(d.rule == "UDX-UDT-VERIFIED" for d in diags)

    def test_udt_without_probe_warns(self):
        codec = UdtCodec(
            name="Unprobed",
            serialize=_codec_encode,
            deserialize=_codec_decode,
        )
        with Database() as db:
            db.register_udt(codec)
            diags = db.catalog.functions.diagnostics_for("Unprobed")
            assert any(d.rule == "UDX-UDT-NO-PROBE" for d in diags)


# ---------------------------------------------------------------------------
# verified properties feed the optimizer
# ---------------------------------------------------------------------------

def _seeded_db():
    db = Database()
    db.register_scalar("DoubleIt", _double_it)
    db.register_scalar("Jitter", _jitter)
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, grp VARCHAR(5), v INT)")
    db.execute(
        "INSERT INTO t VALUES "
        + ", ".join(f"({i}, 'g{i % 3}', {i % 2})" for i in range(60))
    )
    return db


class TestOptimizerIntegration:
    def test_deterministic_udf_constant_folded_into_seek(self):
        with _seeded_db() as db:
            text = db.explain("SELECT v FROM t WHERE id = DoubleIt(21)")
            assert "Index Seek" in text
            assert "constant-folded DoubleIt(21) to 42" in text
            assert db.query("SELECT v FROM t WHERE id = DoubleIt(21)") == [
                (0,)
            ]

    def test_nondeterministic_udf_not_folded_and_not_pushed(self):
        with _seeded_db() as db:
            op = db.plan("SELECT v FROM t WHERE Jitter(id) >= 0")
            assert not any(
                "constant-folded" in note for note in op.plan_notes
            )
            assert any(
                "not pushed down" in note and "Jitter" in note
                for note in op.plan_notes
            )

    def test_deterministic_udf_memoised_per_distinct_args(self):
        with Database() as db:
            db.register_scalar("Tracked", _tracked_triple)
            db.execute("CREATE TABLE s (id INT PRIMARY KEY, v INT)")
            db.execute(
                "INSERT INTO s VALUES "
                + ", ".join(f"({i}, {i % 2})" for i in range(10))
            )
            _TRACKED_CALLS.clear()
            rows = db.query("SELECT Tracked(v) FROM s")
            assert sorted(r[0] for r in rows) == sorted(
                (i % 2) * 3 for i in range(10)
            )
            # 10 rows but only two distinct arguments: the call site's
            # memo absorbs the other eight evaluations
            assert len(_TRACKED_CALLS) == 2


class TestSerialAggregateRegression:
    """A merge-less UDA under a parallel hint must fall back to a serial
    plan — and still produce the serial reference answer."""

    def test_parallel_hint_forced_serial_with_warning(self):
        with _seeded_db() as db:
            db.register_uda(BrokenSum)
            sql = (
                "SELECT grp, BrokenSum(v) FROM t GROUP BY grp "
                "OPTION (MAXDOP 4)"
            )
            text = db.explain(sql)
            assert "Gather Streams" not in text  # no parallel exchange
            assert (
                "note: serial aggregate forced — uda 'BrokenSum' "
                "has no verified merge" in text
            )
            parallel_hinted = db.query(sql)
            assert any(
                "[LINT-SERIAL-AGG]" in message for message in db.messages
            )
            serial_reference = db.query(
                "SELECT grp, BrokenSum(v) FROM t GROUP BY grp "
                "OPTION (MAXDOP 1)"
            )
            assert sorted(parallel_hinted) == sorted(serial_reference)
            expected = {"g0": 10, "g1": 10, "g2": 10}
            assert dict(parallel_hinted) == expected

    def test_verified_merge_keeps_parallel_plan(self):
        with _seeded_db() as db:
            db.register_uda(GoodSum)
            text = db.explain(
                "SELECT grp, GoodSum(v) FROM t GROUP BY grp "
                "OPTION (MAXDOP 4)"
            )
            assert "Gather Streams" in text
            assert "serial aggregate forced" not in text


# ---------------------------------------------------------------------------
# SQL lint: db.messages and sys_dm_verify_results
# ---------------------------------------------------------------------------

class TestSqlLint:
    def test_sarg_warning_reaches_messages_and_view(self):
        with _seeded_db() as db:
            db.query("SELECT v FROM t WHERE Jitter(id) > 100")
            assert any(
                "[LINT-SARG]" in message and "clustered key" in message
                for message in db.messages
            )
            rows = db.query(
                "SELECT object_type, object_name, rule, severity "
                "FROM sys_dm_verify_results WHERE rule = 'LINT-SARG'"
            )
            assert rows and rows[0][0] == "plan"
            assert rows[0][3] == "warning"

    def test_type_mismatch_comparison_warns(self):
        with _seeded_db() as db:
            db.query("SELECT id FROM t WHERE grp = 7")
            assert any(
                "[LINT-TYPE]" in message for message in db.messages
            )

    def test_cartesian_join_warns_before_lowering_fails(self):
        from repro.engine.errors import EngineError

        with _seeded_db() as db:
            db.execute("CREATE TABLE u (uid INT PRIMARY KEY, w INT)")
            with pytest.raises(EngineError):
                db.query(
                    "SELECT t.id FROM t JOIN u ON t.id < u.uid"
                )
            assert any(
                "[LINT-CARTESIAN]" in message for message in db.messages
            )

    def test_lint_rows_survive_subsequent_statements(self):
        with _seeded_db() as db:
            db.query("SELECT v FROM t WHERE Jitter(id) > 100")
            # a later statement resets db.messages but not the view
            db.query("SELECT COUNT(*) FROM t")
            rows = db.query(
                "SELECT rule FROM sys_dm_verify_results "
                "WHERE object_type = 'plan'"
            )
            assert ("LINT-SARG",) in rows

    def test_registration_findings_in_view(self):
        with Database() as db:
            db.register_uda(BrokenSum)
            rows = db.query(
                "SELECT object_type, object_name, severity "
                "FROM sys_dm_verify_results "
                "WHERE rule = 'UDX-UDA-NO-MERGE'"
            )
            assert ("UDA", "BrokenSum", "warning") in rows


# ---------------------------------------------------------------------------
# the lint CLI
# ---------------------------------------------------------------------------

class TestStaticCheck:
    """``db.check`` (the lint CLI's SQL path) plans and binds without
    executing: lint findings fire, but no row is read or written."""

    def test_check_runs_lint_without_executing_dml(self):
        with _seeded_db() as db:
            before = db.scalar("SELECT COUNT(*) FROM t")
            db.check("INSERT INTO t VALUES (999, 'g9', 1)")
            db.check("UPDATE t SET v = 0 WHERE id = 1")
            db.check("DELETE FROM t")
            assert db.scalar("SELECT COUNT(*) FROM t") == before
            assert db.scalar("SELECT v FROM t WHERE id = 1") == 1

    def test_check_fires_plan_lint_for_selects(self):
        with _seeded_db() as db:
            db.check("SELECT v FROM t WHERE Jitter(id) > 100")
            assert any(
                rule == "LINT-SARG"
                for (_o, _n, rule, _s, _m, _src) in db.lint_rows()
            )

    def test_check_applies_ddl_so_later_statements_bind(self):
        from repro.engine.errors import EngineError

        with Database() as db:
            db.check(
                "CREATE TABLE c (id INT PRIMARY KEY, v INT)"
            )
            db.check("SELECT v FROM c WHERE id = 1")  # binds
            with pytest.raises(EngineError):
                db.check("SELECT nope FROM c")

    def test_check_rejects_unknown_insert_column(self):
        from repro.engine.errors import EngineError

        with _seeded_db() as db:
            with pytest.raises(EngineError):
                db.check("INSERT INTO t (id, nope) VALUES (999, 1)")

    def test_split_sql_script_handles_block_comments(self):
        from repro.cli import _split_sql_script

        script = (
            "SELECT 1; /* a ';' and an 'unclosed quote inside */ "
            "SELECT/* inline */2;"
        )
        statements = _split_sql_script(script)
        assert statements == ["SELECT 1", "SELECT 2"]


class TestLintCli:
    def test_broken_fixtures_fail_naming_function_and_rule(self, capsys):
        from repro.cli import main

        rc = main(["lint", "--no-builtins", str(FIXTURES)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "UDX-UDA-ARITY" in out and "WeightedMean" in out
        assert "UDX-TVF-MATERIALIZED" in out and "Kmers" in out
        assert "UDX-UDT-ROUNDTRIP" in out and "LossySeq" in out
        assert "UDX-SAFE-IMPORT" in out and "MaskByHostname" in out
        assert "UDX-UDA-NO-MERGE" in out and "Consensus" in out

    def test_shipped_registry_and_examples_are_clean(self, capsys):
        from repro.cli import main

        rc = main(["lint", str(EXAMPLES)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 error(s), 0 warning(s)" in out
