"""Transactions: commit, rollback, FILESTREAM scope."""

import pytest

from repro.engine import Database
from repro.engine.errors import TransactionError
from repro.engine.transactions import Transaction


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(20))"
        )
        yield database


class TestLifecycle:
    def test_commit_keeps_rows(self, db):
        with Transaction(db) as txn:
            txn.insert("t", (1, "one"))
        assert db.query("SELECT * FROM t") == [(1, "one")]

    def test_rollback_removes_rows(self, db):
        txn = Transaction(db).begin()
        txn.insert("t", (1, "one"))
        txn.insert("t", (2, "two"))
        txn.rollback()
        assert db.query("SELECT * FROM t") == []

    def test_exception_triggers_rollback(self, db):
        with pytest.raises(RuntimeError):
            with Transaction(db) as txn:
                txn.insert("t", (1, "one"))
                raise RuntimeError("boom")
        assert db.query("SELECT * FROM t") == []

    def test_commit_without_begin_rejected(self, db):
        with pytest.raises(TransactionError):
            Transaction(db).commit()

    def test_double_begin_rejected(self, db):
        txn = Transaction(db).begin()
        with pytest.raises(TransactionError):
            txn.begin()
        txn.rollback()

    def test_pk_index_consistent_after_rollback(self, db):
        txn = Transaction(db).begin()
        txn.insert("t", (1, "one"))
        txn.rollback()
        # key is free again
        db.execute("INSERT INTO t VALUES (1, 'again')")
        assert db.query("SELECT b FROM t WHERE a = 1") == [("again",)]


class TestDeleteUndo:
    def test_rollback_restores_deleted_rows(self, db):
        db.execute("INSERT INTO t VALUES (1, 'keep'), (2, 'gone')")
        txn = Transaction(db).begin()
        deleted = txn.delete_where("t", lambda row: row[0] == 2)
        assert deleted == 1
        txn.rollback()
        assert sorted(db.query("SELECT * FROM t")) == [(1, "keep"), (2, "gone")]

    def test_commit_finalises_delete(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        with Transaction(db) as txn:
            txn.delete_where("t", lambda row: True)
        assert db.query("SELECT * FROM t") == []


class TestFileStreamScope:
    def make_fs_table(self, db):
        db.execute(
            """
            CREATE TABLE files (
                guid uniqueidentifier ROWGUIDCOL PRIMARY KEY,
                lane INT,
                payload VARBINARY(MAX) FILESTREAM
            )
            """
        )

    def test_rollback_removes_blob_files(self, db):
        self.make_fs_table(db)
        import uuid

        blobs_before = len(db.filestream)
        txn = Transaction(db).begin()
        txn.insert("files", (uuid.uuid4(), 1, b"lane payload"))
        assert len(db.filestream) == blobs_before + 1
        txn.rollback()
        assert len(db.filestream) == blobs_before
        assert db.query("SELECT * FROM files") == []
        assert db.checkdb() == []

    def test_explicit_blob_rolled_back(self, db):
        txn = Transaction(db).begin()
        guid = txn.create_blob(b"temporary")
        assert db.filestream.exists(guid)
        txn.rollback()
        assert not db.filestream.exists(guid)

    def test_committed_blob_survives(self, db):
        with Transaction(db) as txn:
            guid = txn.create_blob(b"kept")
        assert db.filestream.read_all(guid) == b"kept"

    def test_delete_of_blob_row_restores_payload_on_rollback(self, db):
        self.make_fs_table(db)
        import uuid

        db.table("files").insert((uuid.uuid4(), 7, b"precious"))
        txn = Transaction(db).begin()
        txn.delete_where("files", lambda row: row[1] == 7)
        assert db.query("SELECT * FROM files") == []
        txn.rollback()
        rows = db.query("SELECT lane, DATALENGTH(payload) FROM files")
        assert rows == [(7, 8)]
        assert db.checkdb() == []
