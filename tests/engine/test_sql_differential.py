"""Differential SQL testing: the engine vs. a reference evaluator.

Hypothesis generates random tables and random (structured) queries; every
query runs twice — through the full engine stack (parser → planner →
executor) and through a direct Python implementation of SQL semantics —
and the results must agree. This catches whole-stack disagreements that
unit tests of individual operators cannot.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Database

# -- data generation -------------------------------------------------------------

row_strategy = st.tuples(
    st.one_of(st.none(), st.integers(-20, 20)),  # a
    st.one_of(st.none(), st.integers(-5, 5)),  # b
    st.one_of(st.none(), st.text(alphabet="xyz", max_size=3)),  # s
)

rows_strategy = st.lists(row_strategy, min_size=0, max_size=40)

# a comparison: (column, op, constant)
comparison_strategy = st.tuples(
    st.sampled_from(["a", "b"]),
    st.sampled_from(["=", "<>", "<", "<=", ">", ">="]),
    st.integers(-10, 10),
)

# a predicate: one or two comparisons joined by AND/OR
predicate_strategy = st.one_of(
    comparison_strategy.map(lambda c: ("leaf", c)),
    st.tuples(
        st.sampled_from(["AND", "OR"]),
        comparison_strategy,
        comparison_strategy,
    ).map(lambda t: ("node", t)),
)


def load(db: Database, rows) -> None:
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, a INT, b INT, s VARCHAR(10))"
    )
    table = db.table("t")
    for i, (a, b, s) in enumerate(rows):
        table.insert((i, a, b, s))
    table.finish_bulk_load()


def predicate_sql(predicate) -> str:
    kind, payload = predicate
    if kind == "leaf":
        column, op, constant = payload
        return f"{column} {op} {constant}"
    connective, left, right = payload
    return (
        f"({left[0]} {left[1]} {left[2]}) {connective} "
        f"({right[0]} {right[1]} {right[2]})"
    )


_OPS = {
    "=": lambda x, y: x == y,
    "<>": lambda x, y: x != y,
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
}


def eval_comparison(row, comparison) -> Optional[bool]:
    column, op, constant = comparison
    value = row[{"a": 1, "b": 2}[column]]
    if value is None:
        return None
    return _OPS[op](value, constant)


def eval_predicate(row, predicate) -> Optional[bool]:
    kind, payload = predicate
    if kind == "leaf":
        return eval_comparison(row, payload)
    connective, left, right = payload
    lv = eval_comparison(row, left)
    rv = eval_comparison(row, right)
    if connective == "AND":
        if lv is False or rv is False:
            return False
        if lv is None or rv is None:
            return None
        return True
    if lv is True or rv is True:
        return True
    if lv is None or rv is None:
        return None
    return False


class TestWhere:
    @settings(max_examples=60, deadline=None)
    @given(rows_strategy, predicate_strategy)
    def test_where_matches_reference(self, rows, predicate):
        with Database() as db:
            load(db, rows)
            got = sorted(
                db.query(f"SELECT id FROM t WHERE {predicate_sql(predicate)}")
            )
            full = [(i, a, b, s) for i, (a, b, s) in enumerate(rows)]
            expected = sorted(
                (row[0],)
                for row in full
                if eval_predicate(row, predicate) is True
            )
            assert got == expected


class TestGroupBy:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy)
    def test_aggregates_match_reference(self, rows):
        with Database() as db:
            load(db, rows)
            got = {
                row[0]: row[1:]
                for row in db.query(
                    "SELECT b, COUNT(*), COUNT(a), SUM(a), MIN(a), MAX(a) "
                    "FROM t GROUP BY b"
                )
            }
            expected = {}
            for i, (a, b, s) in enumerate(rows):
                entry = expected.setdefault(b, [0, 0, None, None, None])
                entry[0] += 1
                if a is not None:
                    entry[1] += 1
                    entry[2] = a if entry[2] is None else entry[2] + a
                    entry[3] = a if entry[3] is None else min(entry[3], a)
                    entry[4] = a if entry[4] is None else max(entry[4], a)
            assert got == {k: tuple(v) for k, v in expected.items()}

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy)
    def test_parallel_plan_matches_serial(self, rows):
        with Database() as db:
            load(db, rows)
            serial = sorted(
                db.query(
                    "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b "
                    "OPTION (MAXDOP 1)"
                )
            , key=repr)
            parallel = sorted(
                db.query(
                    "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b "
                    "OPTION (MAXDOP 4)"
                )
            , key=repr)
            assert serial == parallel


class TestOrderBy:
    @settings(max_examples=40, deadline=None)
    @given(rows_strategy, st.booleans())
    def test_order_matches_reference(self, rows, descending):
        with Database() as db:
            load(db, rows)
            direction = "DESC" if descending else "ASC"
            got = [
                row[0]
                for row in db.query(
                    f"SELECT id, a FROM t ORDER BY a {direction}, id"
                )
            ]
            # SQL: NULLs first ascending, last descending; id tiebreak asc
            def key(item):
                i, (a, _b, _s) = item
                null_rank = 0 if a is None else 1
                if descending:
                    return (-null_rank, -(a or 0), i)
                return (null_rank, a or 0, i)

            expected = [i for i, _row in sorted(enumerate(rows), key=key)]
            assert got == expected


class TestJoin:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(0, 8), max_size=25),
        st.lists(st.integers(0, 8), max_size=25),
    )
    def test_inner_join_matches_reference(self, left_keys, right_keys):
        with Database() as db:
            db.execute(
                "CREATE TABLE l (lid INT PRIMARY KEY, lk INT);"
                "CREATE TABLE r (rid INT PRIMARY KEY, rk INT);"
            )
            for i, key in enumerate(left_keys):
                db.table("l").insert((i, key))
            for i, key in enumerate(right_keys):
                db.table("r").insert((i, key))
            got = sorted(
                db.query("SELECT lid, rid FROM l JOIN r ON (lk = rk)")
            )
            expected = sorted(
                (li, ri)
                for li, lk in enumerate(left_keys)
                for ri, rk in enumerate(right_keys)
                if lk == rk
            )
            assert got == expected


class TestTopDistinct:
    @settings(max_examples=30, deadline=None)
    @given(rows_strategy, st.integers(0, 10))
    def test_top_after_order(self, rows, n):
        with Database() as db:
            load(db, rows)
            got = db.query(f"SELECT TOP {n} id FROM t ORDER BY id")
            assert got == [(i,) for i in range(min(n, len(rows)))]

    @settings(max_examples=30, deadline=None)
    @given(rows_strategy)
    def test_distinct_matches_set(self, rows):
        with Database() as db:
            load(db, rows)
            got = sorted(db.query("SELECT DISTINCT b FROM t"), key=repr)
            expected = sorted(
                {(b,) for _a, b, _s in rows}, key=repr
            )
            assert got == expected
