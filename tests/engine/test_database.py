"""End-to-end SQL through the Database facade."""

import uuid

import pytest

from repro.engine import Database
from repro.engine.errors import (
    BindError,
    ConstraintViolation,
    DuplicateKeyError,
    EngineError,
)


@pytest.fixture
def db(tmp_path):
    with Database(data_dir=tmp_path / "db") as database:
        yield database


@pytest.fixture
def people(db):
    db.execute(
        """
        CREATE TABLE people (
            id INT PRIMARY KEY,
            name VARCHAR(50) NOT NULL,
            age INT,
            city VARCHAR(30)
        );
        INSERT INTO people VALUES
            (1, 'ada', 36, 'london'),
            (2, 'grace', 45, 'new york'),
            (3, 'alan', 41, 'london'),
            (4, 'edsger', 72, NULL);
        """
    )
    return db


class TestDdl:
    def test_create_insert_select(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(10))")
        assert db.execute("INSERT INTO t VALUES (1, 'x')") == 1
        assert db.query("SELECT * FROM t") == [(1, "x")]

    def test_drop_table(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("DROP TABLE t")
        with pytest.raises(BindError):
            db.query("SELECT * FROM t")

    def test_truncate(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        db.execute("TRUNCATE TABLE t")
        assert db.query("SELECT * FROM t") == []

    def test_unknown_type_rejected(self, db):
        with pytest.raises(BindError):
            db.execute("CREATE TABLE t (a NOSUCHTYPE PRIMARY KEY)")

    def test_create_index(self, people):
        people.execute("CREATE INDEX ix_city ON people (city)")
        assert people.table("people").has_index_on(["city"])


class TestQueries:
    def test_where_filtering(self, people):
        rows = people.query("SELECT name FROM people WHERE city = 'london'")
        assert sorted(rows) == [("alan",), ("ada",)] or sorted(rows) == [
            ("ada",),
            ("alan",),
        ]

    def test_pk_seek(self, people):
        assert people.query("SELECT name FROM people WHERE id = 3") == [
            ("alan",)
        ]

    def test_null_never_matches_equality(self, people):
        assert people.query("SELECT name FROM people WHERE city = NULL") == []

    def test_is_null(self, people):
        assert people.query(
            "SELECT name FROM people WHERE city IS NULL"
        ) == [("edsger",)]

    def test_group_by_with_aggregates(self, people):
        rows = people.query(
            """
            SELECT city, COUNT(*), AVG(age) FROM people
            WHERE city IS NOT NULL GROUP BY city ORDER BY city
            """
        )
        assert rows == [("london", 2, 38.5), ("new york", 1, 45.0)]

    def test_having(self, people):
        rows = people.query(
            """
            SELECT city, COUNT(*) FROM people
            GROUP BY city HAVING COUNT(*) > 1
            """
        )
        assert rows == [("london", 2)]

    def test_order_by_desc_with_top(self, people):
        rows = people.query(
            "SELECT TOP 2 name FROM people ORDER BY age DESC"
        )
        assert rows == [("edsger",), ("grace",)]

    def test_order_by_alias(self, people):
        rows = people.query(
            "SELECT age * 2 AS doubled, name FROM people ORDER BY doubled"
        )
        assert rows[0] == (72, "ada")

    def test_scalar_aggregate(self, people):
        assert people.scalar("SELECT COUNT(*) FROM people") == 4
        assert people.scalar("SELECT MAX(age) FROM people") == 72

    def test_expression_in_select(self, people):
        rows = people.query(
            "SELECT name, CASE WHEN age > 50 THEN 'old' ELSE 'young' END FROM people WHERE id = 4"
        )
        assert rows == [("edsger", "old")]

    def test_like(self, people):
        rows = people.query("SELECT name FROM people WHERE name LIKE 'a%'")
        assert sorted(rows) == [("ada",), ("alan",)]

    def test_in_list(self, people):
        rows = people.query("SELECT name FROM people WHERE id IN (1, 4)")
        assert sorted(rows) == [("ada",), ("edsger",)]

    def test_distinct(self, people):
        rows = people.query("SELECT DISTINCT city FROM people WHERE city IS NOT NULL")
        assert sorted(rows) == [("london",), ("new york",)]

    def test_join(self, people):
        people.execute(
            """
            CREATE TABLE cities (cname VARCHAR(30) PRIMARY KEY, country VARCHAR(20));
            INSERT INTO cities VALUES ('london', 'uk'), ('new york', 'usa');
            """
        )
        rows = people.query(
            """
            SELECT name, country FROM people
            JOIN cities ON (city = cname) ORDER BY name
            """
        )
        assert rows == [("ada", "uk"), ("alan", "uk"), ("grace", "usa")]

    def test_subquery(self, people):
        rows = people.query(
            """
            SELECT big_name FROM
            (SELECT name AS big_name, age FROM people WHERE age > 40) AS sub
            ORDER BY big_name
            """
        )
        assert rows == [("alan",), ("edsger",), ("grace",)]

    def test_row_number_window(self, people):
        rows = people.query(
            """
            SELECT ROW_NUMBER() OVER (ORDER BY age DESC) AS rnk, name
            FROM people
            """
        )
        assert sorted(rows) == [
            (1, "edsger"),
            (2, "grace"),
            (3, "alan"),
            (4, "ada"),
        ]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1") == [(2,)]

    def test_result_columns_named(self, people):
        result = people.execute("SELECT name AS who, age FROM people WHERE id=1")
        assert result.columns == ["who", "age"]


class TestDml:
    def test_insert_with_column_list_defaults_null(self, db):
        db.execute(
            "CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(5), c INT)"
        )
        db.execute("INSERT INTO t (a) VALUES (1)")
        assert db.query("SELECT * FROM t") == [(1, None, None)]

    def test_insert_select(self, people):
        people.execute("CREATE TABLE names (n VARCHAR(50) PRIMARY KEY)")
        count = people.execute(
            "INSERT INTO names SELECT name FROM people WHERE age > 40"
        )
        assert count == 3

    def test_delete_where(self, people):
        deleted = people.execute("DELETE FROM people WHERE city = 'london'")
        assert deleted == 2
        assert people.scalar("SELECT COUNT(*) FROM people") == 2

    def test_duplicate_pk_via_sql(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(DuplicateKeyError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_fk_enforced(self, db):
        db.execute(
            """
            CREATE TABLE parent (id INT PRIMARY KEY);
            CREATE TABLE child (
                cid INT PRIMARY KEY, pid INT,
                FOREIGN KEY (pid) REFERENCES parent (id)
            );
            INSERT INTO parent VALUES (1);
            """
        )
        db.execute("INSERT INTO child VALUES (10, 1)")
        with pytest.raises(ConstraintViolation):
            db.execute("INSERT INTO child VALUES (11, 99)")
        db.set_foreign_key_enforcement(False)
        db.execute("INSERT INTO child VALUES (11, 99)")  # now allowed


class TestFileStreamSql:
    def test_paper_workflow(self, db, tmp_path):
        """The exact T-SQL sequence from Section 3.3."""
        fastq = tmp_path / "855_s_1.fastq"
        fastq.write_bytes(
            b"@IL4_855:1:1:954:659\nGTTT\n+\n>>>>\n"
            b"@IL4_855:1:1:497:759\nACGT\n+\nIIII\n"
        )
        db.execute(
            """
            CREATE TABLE ShortReadFiles (
                guid uniqueidentifier ROWGUIDCOL PRIMARY KEY,
                sample INT,
                lane INT,
                reads VARBINARY(MAX) FILESTREAM
            ) FILESTREAM_ON FILESTREAMGROUP
            """
        )
        count = db.execute(
            f"""
            INSERT INTO ShortReadFiles (guid, sample, lane, reads)
            SELECT NEWID(), 855, 1, *
            FROM OPENROWSET(BULK '{fastq}', SINGLE_BLOB)
            """
        )
        assert count == 1
        rows = db.query(
            "SELECT guid, sample, lane, reads.PathName(), DATALENGTH(reads) "
            "FROM ShortReadFiles"
        )
        guid, sample, lane, path, length = rows[0]
        assert isinstance(guid, uuid.UUID)
        assert (sample, lane) == (855, 1)
        assert length == fastq.stat().st_size
        from pathlib import Path

        assert Path(path).read_bytes() == fastq.read_bytes()

    def test_bulk_insert_filestream_helper(self, db, tmp_path):
        source = tmp_path / "x.fastq"
        source.write_bytes(b"@r\nAC\n+\nII\n")
        db.execute(
            """
            CREATE TABLE f (
                guid uniqueidentifier ROWGUIDCOL PRIMARY KEY,
                lane INT,
                reads VARBINARY(MAX) FILESTREAM
            )
            """
        )
        import uuid as _uuid

        db.bulk_insert_filestream(
            "f", {"guid": _uuid.uuid4(), "lane": 2}, "reads", source
        )
        assert db.scalar("SELECT DATALENGTH(reads) FROM f") == 11

    def test_checkdb_clean(self, db):
        assert db.checkdb() == []


class TestExplain:
    def test_explain_returns_plan_text(self, people):
        plan = people.explain("SELECT city, COUNT(*) FROM people GROUP BY city")
        assert "Aggregate" in plan
        assert "people" in plan

    def test_explain_statement_form(self, people):
        result = people.execute("EXPLAIN SELECT name FROM people WHERE id = 1")
        assert "Seek" in result

    def test_explain_rejects_dml(self, people):
        with pytest.raises(EngineError):
            people.explain("DELETE FROM people")


class TestStorageReport:
    def test_report_lists_tables(self, people):
        report = people.storage_report()
        names = {entry["table"] for entry in report}
        assert "people" in names
        entry = next(e for e in report if e["table"] == "people")
        assert entry["rows"] == 4
        assert entry["data_bytes"] > 0
