"""Planner: access paths, join selection, aggregation strategy."""

import pytest

from repro.engine import Database
from repro.engine.udf import UserDefinedAggregate


@pytest.fixture
def db():
    with Database() as database:
        database.execute(
            """
            CREATE TABLE orders (
                region INT, store INT, order_id INT, amount INT,
                PRIMARY KEY (region, store, order_id)
            );
            CREATE TABLE stores (
                st_region INT, st_store INT, st_name VARCHAR(20),
                PRIMARY KEY (st_region, st_store)
            );
            """
        )
        for region in range(2):
            for store in range(3):
                database.execute(
                    f"INSERT INTO stores VALUES ({region}, {store}, 's{region}{store}')"
                )
                for order in range(5):
                    database.execute(
                        f"INSERT INTO orders VALUES ({region}, {store}, {order}, {order * 10})"
                    )
        yield database


class TestAccessPaths:
    def test_full_scan_without_predicate(self, db):
        assert "Table Scan [orders]" in db.explain("SELECT * FROM orders")

    def test_pk_prefix_becomes_seek(self, db):
        plan = db.explain("SELECT * FROM orders WHERE region = 1")
        assert "Clustered Index Seek" in plan
        assert "Filter" not in plan  # fully consumed by the seek

    def test_partial_prefix_seek_with_residual(self, db):
        plan = db.explain(
            "SELECT * FROM orders WHERE region = 1 AND amount > 20"
        )
        assert "Clustered Index Seek" in plan
        assert "Filter" in plan

    def test_non_prefix_predicate_stays_filter(self, db):
        plan = db.explain("SELECT * FROM orders WHERE store = 1")
        assert "Table Scan" in plan and "Filter" in plan

    def test_seek_results_correct(self, db):
        rows = db.query(
            "SELECT order_id FROM orders WHERE region = 1 AND store = 2"
        )
        assert sorted(r[0] for r in rows) == [0, 1, 2, 3, 4]


class TestJoinSelection:
    def test_merge_join_when_both_clustered(self, db):
        plan = db.explain(
            """
            SELECT st_name, amount FROM orders
            JOIN stores ON (region = st_region AND store = st_store)
            """
        )
        assert "Merge Join" in plan
        assert "Clustered Index Scan" in plan

    def test_hash_join_when_no_order(self, db):
        db.execute(
            "CREATE TABLE lookup (code INT PRIMARY KEY, amt INT);"
            "INSERT INTO lookup VALUES (0, 0), (10, 1);"
        )
        plan = db.explain(
            "SELECT * FROM orders JOIN lookup ON (amount = amt)"
        )
        assert "Hash Match (Inner Join)" in plan

    def test_join_results_identical_between_algorithms(self, db):
        merge_rows = db.query(
            """
            SELECT st_name, amount FROM orders
            JOIN stores ON (region = st_region AND store = st_store)
            """
        )
        # force hash join by breaking order on one side via subquery
        hash_rows = db.query(
            """
            SELECT st_name, amount FROM orders
            JOIN (SELECT st_region AS r2, st_store AS s2, st_name FROM stores) AS s
            ON (region = r2 AND store = s2)
            """
        )
        assert sorted(merge_rows) == sorted(hash_rows)

    def test_join_requires_equality(self, db):
        from repro.engine.errors import BindError

        with pytest.raises(BindError):
            db.explain(
                "SELECT * FROM orders JOIN stores ON (region > st_region)"
            )


class TestAggregationStrategy:
    def test_small_input_uses_serial_hash(self, db):
        plan = db.explain(
            "SELECT store, COUNT(*) FROM orders GROUP BY store"
        )
        assert "Hash Match (Aggregate" in plan
        assert "Parallelism" not in plan

    def test_large_input_goes_parallel(self, db):
        # shrink the exchange startup cost so the parallel plan's
        # crossover drops below this fixture's 30 rows
        old = db._planner.cost.exchange_startup_cost
        db._planner.cost.exchange_startup_cost = 1.0
        try:
            plan = db.explain(
                "SELECT store, COUNT(*) FROM orders GROUP BY store"
            )
            assert "Repartition Streams" in plan
        finally:
            db._planner.cost.exchange_startup_cost = old

    def test_maxdop_one_disables_parallelism(self, db):
        old = db._planner.cost.exchange_startup_cost
        db._planner.cost.exchange_startup_cost = 1.0
        try:
            plan = db.explain(
                "SELECT store, COUNT(*) FROM orders GROUP BY store OPTION (MAXDOP 1)"
            )
            assert "Repartition Streams" not in plan
        finally:
            db._planner.cost.exchange_startup_cost = old

    def test_group_on_clustered_prefix_streams(self, db):
        plan = db.explain(
            "SELECT region, COUNT(*) FROM orders GROUP BY region"
        )
        assert "Stream Aggregate" in plan
        assert "Sort" not in plan

    def test_ordered_uda_gets_stream_aggregate_without_sort(self, db):
        class OrderedConcat(UserDefinedAggregate):
            name = "OrderedConcat"
            arity = 1
            parallel_safe = False
            requires_ordered_input = True

            def init(self):
                self.parts = []

            def accumulate(self, value):
                self.parts.append(str(value))

            def merge(self, other):  # pragma: no cover
                raise AssertionError

            def terminate(self):
                return ",".join(self.parts)

        db.register_uda(OrderedConcat)
        plan = db.explain(
            """
            SELECT store, OrderedConcat(order_id) FROM orders
            WHERE region = 1 GROUP BY store
            """
        )
        assert "Stream Aggregate" in plan
        assert "Sort" not in plan
        rows = db.query(
            """
            SELECT store, OrderedConcat(order_id) FROM orders
            WHERE region = 1 GROUP BY store
            """
        )
        assert sorted(rows) == [
            (0, "0,1,2,3,4"),
            (1, "0,1,2,3,4"),
            (2, "0,1,2,3,4"),
        ]

    def test_ordered_uda_gets_sort_when_input_unordered(self, db):
        class OrderedSum(UserDefinedAggregate):
            name = "OrderedSum"
            arity = 1
            parallel_safe = False
            requires_ordered_input = True

            def init(self):
                self.total = 0

            def accumulate(self, value):
                self.total += value

            def merge(self, other):  # pragma: no cover
                raise AssertionError

            def terminate(self):
                return self.total

        db.register_uda(OrderedSum)
        plan = db.explain(
            "SELECT amount, OrderedSum(order_id) FROM orders GROUP BY amount"
        )
        assert "Sort" in plan and "Stream Aggregate" in plan


class TestOrderPreservation:
    def test_equality_bound_prefix_allows_stream_on_later_column(self, db):
        # group on `store` after binding `region`: ordering survives
        plan = db.explain(
            "SELECT store, SUM(amount) FROM orders WHERE region = 0 GROUP BY store"
        )
        assert "Stream Aggregate" in plan

    def test_hash_join_preserves_probe_order(self, db):
        from repro.engine.executor import HashJoin

        op = db.plan(
            """
            SELECT st_name, amount FROM orders
            JOIN (SELECT st_region r, st_store s, st_name FROM stores) x
            ON (region = r AND store = s)
            """
        )
        # find the join in the tree
        def find(node):
            if isinstance(node, HashJoin):
                return node
            for child in node.children():
                hit = find(child)
                if hit is not None:
                    return hit
            return None

        join = find(op)
        assert join is not None
        assert join.ordering == join.left.ordering


class TestSubqueryPlanning:
    def test_nested_aggregation(self, db):
        rows = db.query(
            """
            SELECT MAX(total) FROM
            (SELECT store, SUM(amount) AS total FROM orders GROUP BY store) AS t
            """
        )
        assert rows == [(200,)]

    def test_cross_apply_plan(self, db):
        from repro.engine.schema import Column
        from repro.engine.types import int_type
        from repro.engine.udf import SimpleTvf

        db.register_tvf(
            SimpleTvf(
                name="Repeat",
                columns=(Column("i", int_type()),),
                factory=lambda n: ((i,) for i in range(n)),
            )
        )
        plan = db.explain(
            "SELECT order_id, i FROM orders CROSS APPLY Repeat(store)"
        )
        assert "Cross Apply" in plan
        rows = db.query(
            "SELECT COUNT(*) FROM orders CROSS APPLY Repeat(store)"
        )
        # sum over stores: region*[0+1+2 repeats]*5 orders*2 regions
        assert rows == [(30,)]


class TestSecondaryIndexAccess:
    @pytest.fixture
    def indexed_db(self):
        with Database() as database:
            database.execute(
                """
                CREATE TABLE events (
                    ev_id INT PRIMARY KEY,
                    kind VARCHAR(20),
                    region INT,
                    payload VARCHAR(50)
                );
                CREATE INDEX ix_kind ON events (kind, region);
                """
            )
            for i in range(60):
                database.execute(
                    f"INSERT INTO events VALUES "
                    f"({i}, 'k{i % 3}', {i % 5}, 'p{i}')"
                )
            yield database

    def test_equality_on_indexed_column_uses_index(self, indexed_db):
        plan = indexed_db.explain(
            "SELECT ev_id FROM events WHERE kind = 'k1'"
        )
        assert "Index Seek" in plan
        assert "ix_kind" in plan

    def test_two_column_prefix(self, indexed_db):
        plan = indexed_db.explain(
            "SELECT ev_id FROM events WHERE kind = 'k1' AND region = 2"
        )
        assert "Index Seek" in plan
        assert "Filter" not in plan  # fully consumed

    def test_results_match_scan(self, indexed_db):
        via_index = sorted(
            indexed_db.query("SELECT ev_id FROM events WHERE kind = 'k2'")
        )
        expected = sorted((i,) for i in range(60) if i % 3 == 2)
        assert via_index == expected

    def test_pk_preferred_over_secondary(self, indexed_db):
        plan = indexed_db.explain(
            "SELECT payload FROM events WHERE ev_id = 5 AND kind = 'k2'"
        )
        assert "Clustered Index Seek" in plan

    def test_non_leading_column_not_seekable(self, indexed_db):
        plan = indexed_db.explain(
            "SELECT ev_id FROM events WHERE region = 1"
        )
        assert "Index Seek" not in plan
        assert "Table Scan" in plan

    def test_residual_predicate_stays(self, indexed_db):
        plan = indexed_db.explain(
            "SELECT ev_id FROM events WHERE kind = 'k0' AND ev_id > 30"
        )
        assert "Index Seek" in plan and "Filter" in plan
        rows = indexed_db.query(
            "SELECT ev_id FROM events WHERE kind = 'k0' AND ev_id > 30"
        )
        assert sorted(rows) == sorted(
            (i,) for i in range(31, 60) if i % 3 == 0
        )
