"""Differential tests: batch-mode execution must be indistinguishable
from row mode except for speed.

Every query here runs twice — once with ``db.execution_mode = "row"``
(forcing the Volcano row-at-a-time interpreter) and once under ``"auto"``
(the planner picks batch mode wherever the pipeline supports it) — and
the results must match exactly, including row order, group order, and
float bit patterns.
"""

from __future__ import annotations

import pytest

from repro.core import GenomicsWarehouse, queries
from repro.engine.database import Database
from repro.engine.executor import vector
from repro.engine.executor.vector import RowBatch, batches_from_rows


def run_modes(db, sql):
    """Execute ``sql`` in row mode and in auto (batch) mode."""
    prior = db.execution_mode
    try:
        db.execution_mode = "row"
        row_rows = db.query(sql)
        db.execution_mode = "auto"
        batch_rows = db.query(sql)
    finally:
        db.execution_mode = prior
    return row_rows, batch_rows


def assert_identical(db, sql):
    row_rows, batch_rows = run_modes(db, sql)
    assert batch_rows == row_rows
    # float results must be bit-identical, not merely == (0.0 == -0.0)
    assert repr(batch_rows) == repr(row_rows)
    return row_rows


# ---------------------------------------------------------------------------
# synthetic-table differential suite
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module", params=["heap", "column"])
def storage_engine(request):
    return request.param


@pytest.fixture(scope="module")
def db(storage_engine):
    """The synthetic differential database, built once per storage
    engine: every test in this module runs against a heap-backed and a
    columnstore-backed ``sales`` table, and row/batch results must be
    byte-identical on both. A small SEGMENT_ROWS forces many sealed
    segments so encoded execution and zone maps actually engage."""
    with_clause = (
        " WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 256)"
        if storage_engine == "column"
        else ""
    )
    database = Database()
    database.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, region VARCHAR(10), "
        f"product VARCHAR(10), amount INT, price FLOAT){with_clause}"
    )
    regions = ["north", "south", "east", "west"]
    products = ["widget", "gadget", "gizmo"]
    values = []
    for i in range(2000):
        region = regions[i % 4]
        product = products[i % 3]
        amount = (i * 7) % 50 if i % 11 else "NULL"
        price = f"{(i % 13) * 2.5}" if i % 17 else "NULL"
        values.append(f"({i}, '{region}', '{product}', {amount}, {price})")
    database.execute("INSERT INTO sales VALUES " + ",".join(values))
    database.execute(
        "CREATE TABLE regions (name VARCHAR(10) PRIMARY KEY, zone INT)"
    )
    database.execute(
        "INSERT INTO regions VALUES ('north', 1), ('south', 1), "
        "('east', 2), ('west', 2)"
    )
    database.execute("UPDATE STATISTICS sales")
    database.execute("UPDATE STATISTICS regions")
    # the whole differential suite runs with the plan sanitizer armed;
    # teardown asserts it stayed silent over every plan built here
    database.execute("SET PLAN_VERIFY ON")
    yield database
    plan_findings = [
        row for row in database.lint_rows() if row[2].startswith("PLAN-")
    ]
    database.close()
    assert plan_findings == [], (
        "plan sanitizer flagged shipped differential plans: "
        f"{plan_findings}"
    )


DIFFERENTIAL_QUERIES = [
    # scan-filter-aggregate: the canonical batch pipeline
    "SELECT region, COUNT(*), SUM(amount) FROM sales "
    "WHERE amount > 10 GROUP BY region",
    # fused filter + projection (no aggregate between them)
    "SELECT id, amount FROM sales WHERE amount > 25 AND region = 'north'",
    # NULL-handling: Kleene AND/OR must match row mode exactly
    "SELECT id FROM sales WHERE amount > 10 OR price > 20.0",
    "SELECT id FROM sales WHERE amount IS NULL",
    "SELECT COUNT(*), COUNT(amount), SUM(amount), AVG(price), "
    "MIN(amount), MAX(amount) FROM sales",
    # AVG float accumulation order must be identical across modes
    "SELECT region, AVG(price), SUM(price) FROM sales GROUP BY region",
    "SELECT region, COUNT(DISTINCT product) FROM sales GROUP BY region",
    # BETWEEN / IN list
    "SELECT id FROM sales WHERE amount BETWEEN 5 AND 15",
    "SELECT id FROM sales WHERE region IN ('north', 'east') AND amount > 30",
    # row-mode fallback inside a batch plan: LIKE is not batch-safe
    "SELECT id FROM sales WHERE product LIKE 'wid%' AND amount > 40",
    # CASE is not batch-safe either (short-circuit semantics)
    "SELECT id, CASE WHEN amount > 25 THEN 'hi' ELSE 'lo' END "
    "FROM sales WHERE id < 100",
    # hash join with residual
    "SELECT s.id, r.zone FROM sales AS s JOIN regions AS r "
    "ON s.region = r.name WHERE s.amount > 45",
    # HAVING over a batch aggregate
    "SELECT region, SUM(amount) FROM sales GROUP BY region "
    "HAVING SUM(amount) > 100",
    # sort / distinct / top around batch pipelines
    "SELECT DISTINCT region FROM sales WHERE amount > 10",
    "SELECT id, amount FROM sales WHERE amount > 10 ORDER BY amount DESC, id",
    "SELECT TOP 7 id FROM sales WHERE amount > 20",
    # parallel aggregate exchange consumes batches
    "SELECT region, COUNT(*), SUM(amount) FROM sales "
    "GROUP BY region OPTION (MAXDOP 4)",
    # arithmetic projections (batch-compiled)
    "SELECT id, amount * 2 + 1, -amount FROM sales WHERE id < 50",
]


class TestDifferential:
    @pytest.mark.parametrize("sql", DIFFERENTIAL_QUERIES)
    def test_row_and_batch_identical(self, db, sql):
        assert_identical(db, sql)

    def test_differential_queries_not_vacuous(self, db):
        for sql in DIFFERENTIAL_QUERIES:
            if "TOP" in sql or "CASE" in sql:
                continue
            assert db.query(sql), f"empty result defeats the test: {sql}"


# aggregate queries re-run under every DOP: parallel plans must be
# byte-identical to the forced-serial plan, including group order after
# the coordinator merge, on both storage engines and in both modes
PARALLEL_DIFFERENTIAL_QUERIES = [
    "SELECT region, COUNT(*), SUM(amount) FROM sales GROUP BY region",
    "SELECT region, COUNT(*), SUM(amount) FROM sales "
    "WHERE amount > 10 GROUP BY region",
    # float accumulation: the rows tier must not reassociate sums
    "SELECT region, AVG(price), SUM(price) FROM sales GROUP BY region",
    "SELECT region, product, COUNT(*), MIN(amount), MAX(amount) "
    "FROM sales GROUP BY region, product",
    "SELECT region, COUNT(DISTINCT product) FROM sales GROUP BY region",
]


class TestParallelDifferential:
    @pytest.mark.parametrize("dop", [1, 2, 4])
    @pytest.mark.parametrize("sql", PARALLEL_DIFFERENTIAL_QUERIES)
    def test_parallel_identical_to_serial(self, db, sql, dop):
        serial_row, serial_batch = run_modes(db, sql + " OPTION (MAXDOP 1)")
        par_row, par_batch = run_modes(db, sql + f" OPTION (MAXDOP {dop})")
        assert repr(par_row) == repr(serial_row)
        assert repr(par_batch) == repr(serial_batch)
        assert repr(par_batch) == repr(par_row)
        assert serial_row, f"empty result defeats the test: {sql}"


class TestBoundaries:
    def test_empty_table(self, db):
        db.execute(
            "CREATE TABLE empty_t (id INT PRIMARY KEY, v INT)"
        )
        try:
            for sql in (
                "SELECT id, v FROM empty_t WHERE v > 0",
                "SELECT v, COUNT(*) FROM empty_t GROUP BY v",
                "SELECT COUNT(*) FROM empty_t",
            ):
                assert_identical(db, sql)
        finally:
            db.execute("DROP TABLE empty_t")

    def test_batch_size_one(self, db, monkeypatch):
        monkeypatch.setattr(vector, "DEFAULT_BATCH_SIZE", 1)
        assert_identical(
            db,
            "SELECT region, COUNT(*), SUM(amount) FROM sales "
            "WHERE amount > 10 GROUP BY region",
        )

    def test_batch_size_larger_than_table(self, db, monkeypatch):
        monkeypatch.setattr(vector, "DEFAULT_BATCH_SIZE", 1_000_000)
        assert_identical(
            db, "SELECT id FROM sales WHERE amount > 10"
        )

    def test_top_stops_mid_batch(self, db):
        # TOP n smaller than one batch: the batch is trimmed, the rest
        # of the scan abandoned, and the result matches row mode
        rows = assert_identical(
            db, "SELECT TOP 3 id, amount FROM sales WHERE amount > 5"
        )
        assert len(rows) == 3

    def test_top_zero(self, db):
        rows = assert_identical(db, "SELECT TOP 0 id FROM sales")
        assert rows == []


class TestExplainLabels:
    SQL = (
        "SELECT region, COUNT(*), SUM(amount) FROM sales "
        "WHERE amount > 10 GROUP BY region"
    )

    def test_explain_shows_batch_mode(self, db, storage_engine):
        plan = db.explain(self.SQL)
        assert "batch mode" in plan
        if storage_engine == "heap":
            assert "Table Scan" in plan
        else:
            assert "Columnstore Index Scan" in plan

    def test_scan_node_labels_storage_engine(self, db, storage_engine):
        plan = db.explain(self.SQL)
        assert f"storage={storage_engine}" in plan

    def test_explain_analyze_shows_batch_counts(self, db):
        plan = db.execute("EXPLAIN ANALYZE " + self.SQL)
        assert "batch mode" in plan
        assert "batches=" in plan
        assert "actual rows=" in plan

    def test_forced_row_mode_has_no_batch_labels(self, db):
        prior = db.execution_mode
        try:
            db.execution_mode = "row"
            plan = db.execute("EXPLAIN ANALYZE " + self.SQL)
        finally:
            db.execution_mode = prior
        assert "batch mode" not in plan
        assert "batches=" not in plan
        assert "row mode" in plan

    def test_row_only_operator_stays_row_mode(self, db):
        # Sort has no batch variant: it runs in row mode inside an
        # otherwise batch plan (mixed-mode pipeline)
        plan = db.explain(
            "SELECT id FROM sales WHERE amount > 10 ORDER BY amount"
        )
        assert "Sort" in plan and "row mode" in plan
        assert "batch mode" in plan


class TestBatchCounters:
    def test_statistics_io_reports_batch_reads(self, db):
        db.execute("SET STATISTICS IO ON")
        try:
            db.execute("SELECT COUNT(*) FROM sales WHERE amount > 10")
            message = next(
                m for m in db.messages if m.startswith("Table 'sales'")
            )
            assert "batch reads" in message
        finally:
            db.execute("SET STATISTICS IO OFF")

    def test_query_stats_view_has_batch_reads(self, db):
        db.query("SELECT COUNT(*) FROM sales WHERE amount > 15")
        rows = db.query(
            "SELECT query_text, total_batch_reads "
            "FROM sys_dm_exec_query_stats WHERE total_batch_reads > 0"
        )
        assert rows


class TestVectorPrimitives:
    def test_batches_from_rows_chunks(self):
        batches = list(batches_from_rows(iter(range(10)), batch_size=4))
        assert [list(b) for b in batches] == [
            [0, 1, 2, 3], [4, 5, 6, 7], [8, 9]
        ]
        assert all(isinstance(b, RowBatch) for b in batches)

    def test_batches_from_rows_empty(self):
        assert list(batches_from_rows(iter(()))) == []

    def test_default_batch_size_resolved_at_call_time(self, monkeypatch):
        monkeypatch.setattr(vector, "DEFAULT_BATCH_SIZE", 3)
        batches = list(batches_from_rows(iter(range(7))))
        assert [len(b) for b in batches] == [3, 3, 1]


# ---------------------------------------------------------------------------
# golden genomics queries (Figures 9 and 10)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def dge_warehouse(reference, genes, dge_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.load_genes(genes)
    wh.register_experiment(1, "dge", "dge")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, dge_reads)
    wh.bin_unique_tags(1, 1, 1)
    wh.align_tags(1, 1, 1)
    yield wh
    wh.close()


@pytest.fixture(scope="module")
def reseq_warehouse(reference, reseq_reads):
    wh = GenomicsWarehouse()
    wh.load_reference(reference)
    wh.register_experiment(1, "1000g", "resequencing")
    wh.register_sample_group(1, 1, "grp")
    wh.register_sample(1, 1, 1, "smp")
    wh.import_lane_relational(1, 1, 1, reseq_reads)
    wh.align_reads(1, 1, 1)
    yield wh
    wh.close()


class TestGoldenQueries:
    def test_binning_identical(self, dge_warehouse):
        db = dge_warehouse.db
        sql = queries.query1_binning_sql(1, 1, 1)
        row_rows, batch_rows = run_modes(db, sql)
        assert batch_rows == row_rows
        assert row_rows  # non-vacuous

    def test_binning_plan_has_batch_labels(self, dge_warehouse):
        db = dge_warehouse.db
        sql = queries.query1_binning_sql(1, 1, 1)
        plan = db.explain(sql)
        assert "batch mode" in plan
        analyzed = db.execute("EXPLAIN ANALYZE " + sql)
        assert "batches=" in analyzed

    def test_consensus_identical(self, reseq_warehouse):
        db = reseq_warehouse.db
        sql = queries.query3_sliding_window_sql(1, 1, 1)
        prior = db.execution_mode
        try:
            db.execution_mode = "row"
            row_rows = db.query(sql)
            db.execution_mode = "auto"
            batch_rows = db.query(sql)
        finally:
            db.execution_mode = prior
        # consensus values are UDA result objects; compare rendered form
        assert repr(batch_rows) == repr(row_rows)
        assert row_rows

    def test_gene_expression_join_identical(self, dge_warehouse):
        db = dge_warehouse.db
        sql = """
SELECT a_g_id, SUM(t_frequency), COUNT(a_t_id)
  FROM Alignment
  JOIN Tag ON (a_e_id = t_e_id AND a_sg_id = t_sg_id
               AND a_s_id = t_s_id AND a_t_id = t_id)
 WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
       AND a_g_id IS NOT NULL
 GROUP BY a_g_id
"""
        rows = assert_identical(db, sql)
        assert rows
