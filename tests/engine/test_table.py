"""Table: inserts, constraints, indexes, ordered access, FILESTREAM."""

import uuid

import pytest

from repro.engine.catalog import Catalog
from repro.engine.errors import (
    BindError,
    ConstraintViolation,
    DuplicateKeyError,
    TypeMismatchError,
)
from repro.engine.filestream import FileStreamStore
from repro.engine.schema import Column, TableSchema
from repro.engine.table import Table
from repro.engine.types import (
    MAX,
    bigint_type,
    guid_type,
    int_type,
    varbinary_type,
    varchar_type,
)


def plain_schema(**kwargs):
    return TableSchema(
        "t",
        [
            Column("id", int_type(), nullable=False),
            Column("name", varchar_type(50)),
        ],
        primary_key=["id"],
        **kwargs,
    )


class TestInsert:
    def test_round_trip(self):
        table = Table(plain_schema())
        table.insert((1, "one"))
        assert list(table.scan()) == [(1, "one")]

    def test_pk_uniqueness(self):
        table = Table(plain_schema())
        table.insert((1, "a"))
        with pytest.raises(DuplicateKeyError):
            table.insert((1, "b"))

    def test_not_null_enforced(self):
        table = Table(plain_schema())
        with pytest.raises(ConstraintViolation):
            table.insert((None, "x"))

    def test_type_checked(self):
        table = Table(plain_schema())
        with pytest.raises(TypeMismatchError):
            table.insert(("not-int", "x"))

    def test_wrong_arity(self):
        table = Table(plain_schema())
        with pytest.raises(TypeMismatchError):
            table.insert((1,))

    def test_identity_assignment(self):
        schema = TableSchema(
            "s",
            [
                Column("id", bigint_type(), nullable=False, identity=True),
                Column("v", varchar_type(10)),
            ],
            primary_key=["id"],
        )
        table = Table(schema)
        table.insert((None, "a"))
        table.insert((None, "b"))
        table.insert((10, "explicit"))
        table.insert((None, "after"))
        ids = [row[0] for row in table.ordered_scan()]
        assert ids == [1, 2, 10, 11]


class TestOrderedAccess:
    def make_table(self):
        schema = TableSchema(
            "t",
            [
                Column("a", int_type(), nullable=False),
                Column("b", int_type(), nullable=False),
                Column("v", varchar_type(20)),
            ],
            primary_key=["a", "b"],
        )
        table = Table(schema)
        for a in (3, 1, 2):
            for b in (2, 0, 1):
                table.insert((a, b, f"{a}-{b}"))
        return table

    def test_ordered_scan_in_key_order(self):
        table = self.make_table()
        keys = [(row[0], row[1]) for row in table.ordered_scan()]
        assert keys == sorted(keys)
        assert len(keys) == 9

    def test_seek_prefix(self):
        table = self.make_table()
        rows = list(table.seek((2,), (2,)))
        assert [(r[0], r[1]) for r in rows] == [(2, 0), (2, 1), (2, 2)]

    def test_seek_full_key(self):
        table = self.make_table()
        rows = list(table.seek((2, 1), (2, 1)))
        assert rows == [(2, 1, "2-1")]

    def test_get_point_lookup(self):
        table = self.make_table()
        assert table.get((1, 0)) == (1, 0, "1-0")
        assert table.get((9, 9)) is None

    def test_heap_table_has_no_ordered_scan(self):
        schema = TableSchema(
            "h", [Column("x", int_type())], primary_key=[]
        )
        table = Table(schema)
        with pytest.raises(BindError):
            list(table.ordered_scan())


class TestSecondaryIndex:
    def test_index_seek(self):
        table = Table(plain_schema())
        for i in range(20):
            table.insert((i, f"group{i % 3}"))
        table.create_index("ix_name", ["name"])
        rows = list(table.index_seek("ix_name", ("group1",), ("group1",)))
        assert {row[0] % 3 for row in rows} == {1}
        assert len(rows) == 7

    def test_duplicate_index_name_rejected(self):
        table = Table(plain_schema())
        table.create_index("ix", ["name"])
        with pytest.raises(BindError):
            table.create_index("ix", ["name"])

    def test_has_index_on(self):
        table = Table(plain_schema())
        assert table.has_index_on(["id"])
        assert not table.has_index_on(["name"])
        table.create_index("ix", ["name"])
        assert table.has_index_on(["name"])

    def test_index_maintained_on_insert(self):
        table = Table(plain_schema())
        table.create_index("ix", ["name"])
        table.insert((1, "late"))
        assert list(table.index_seek("ix", ("late",), ("late",))) == [(1, "late")]


class TestDelete:
    def test_delete_where(self):
        table = Table(plain_schema())
        for i in range(10):
            table.insert((i, "even" if i % 2 == 0 else "odd"))
        deleted = table.delete_where(lambda row: row[1] == "odd")
        assert deleted == 5
        assert all(row[1] == "even" for row in table.scan())
        # pk index updated: re-insert works
        table.insert((1, "back"))


class TestFileStreamColumns:
    def make_table(self, tmp_path):
        store = FileStreamStore(tmp_path / "fs")
        schema = TableSchema(
            "ShortReadFiles",
            [
                Column("guid", guid_type(), nullable=False, rowguidcol=True),
                Column("lane", int_type()),
                Column("reads", varbinary_type(MAX, filestream=True)),
            ],
            primary_key=["guid"],
        )
        return Table(schema, filestream_store=store), store

    def test_bytes_payload_stored_as_blob(self, tmp_path):
        table, store = self.make_table(tmp_path)
        table.insert((uuid.uuid4(), 1, b"@r1\nACGT\n+\nIIII\n"))
        row = next(table.scan())
        assert isinstance(row[2], uuid.UUID)
        assert store.read_all(row[2]) == b"@r1\nACGT\n+\nIIII\n"
        assert table.filestream_bytes() == 16

    def test_existing_guid_pointer_accepted(self, tmp_path):
        table, store = self.make_table(tmp_path)
        guid = store.create(b"payload")
        table.insert((uuid.uuid4(), 1, guid))
        assert next(table.scan())[2] == guid

    def test_null_blob_allowed(self, tmp_path):
        table, _store = self.make_table(tmp_path)
        table.insert((uuid.uuid4(), 1, None))
        assert next(table.scan())[2] is None

    def test_delete_removes_blob(self, tmp_path):
        table, store = self.make_table(tmp_path)
        table.insert((uuid.uuid4(), 1, b"data"))
        guid = next(table.scan())[2]
        table.delete_where(lambda row: True)
        assert not store.exists(guid)

    def test_failed_insert_rolls_back_blob(self, tmp_path):
        table, store = self.make_table(tmp_path)
        key = uuid.uuid4()
        table.insert((key, 1, b"first"))
        blobs_before = len(store)
        with pytest.raises(DuplicateKeyError):
            table.insert((key, 2, b"second"))
        assert len(store) == blobs_before

    def test_rejects_bad_payload_type(self, tmp_path):
        table, _store = self.make_table(tmp_path)
        with pytest.raises(ConstraintViolation):
            table.insert((uuid.uuid4(), 1, 12345))

    def test_filestream_without_store_rejected(self):
        schema = TableSchema(
            "x",
            [
                Column("guid", guid_type(), rowguidcol=True, nullable=False),
                Column("b", varbinary_type(MAX, filestream=True)),
            ],
            primary_key=["guid"],
        )
        with pytest.raises(BindError):
            Table(schema, filestream_store=None)


class TestCatalog:
    def test_create_and_lookup_case_insensitive(self):
        catalog = Catalog()
        catalog.create_table(plain_schema())
        assert catalog.table("T") is catalog.table("t")
        assert catalog.has_table("T")

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.create_table(plain_schema())
        with pytest.raises(BindError):
            catalog.create_table(plain_schema())

    def test_drop(self):
        catalog = Catalog()
        catalog.create_table(plain_schema())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(BindError):
            catalog.drop_table("t")
