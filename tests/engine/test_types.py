"""Tests for the SQL type system."""

import uuid

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import TypeMismatchError
from repro.engine.types import (
    MAX,
    SqlType,
    bigint_type,
    binary_type,
    bit_type,
    char_type,
    datetime_type,
    float_type,
    guid_type,
    int_type,
    smallint_type,
    tinyint_type,
    varbinary_type,
    varchar_type,
)


class TestValidation:
    def test_int_accepts_in_range(self):
        assert int_type().validate(42) == 42
        assert int_type().validate(-(2**31)) == -(2**31)
        assert int_type().validate(2**31 - 1) == 2**31 - 1

    def test_int_rejects_out_of_range(self):
        with pytest.raises(TypeMismatchError):
            int_type().validate(2**31)
        with pytest.raises(TypeMismatchError):
            int_type().validate(-(2**31) - 1)

    def test_bigint_range(self):
        assert bigint_type().validate(2**62) == 2**62
        with pytest.raises(TypeMismatchError):
            bigint_type().validate(2**63)

    def test_tinyint_is_unsigned(self):
        assert tinyint_type().validate(255) == 255
        with pytest.raises(TypeMismatchError):
            tinyint_type().validate(-1)

    def test_bit_only_zero_one(self):
        assert bit_type().validate(1) == 1
        with pytest.raises(TypeMismatchError):
            bit_type().validate(2)

    def test_int_rejects_string(self):
        with pytest.raises(TypeMismatchError):
            int_type().validate("7")

    def test_int_accepts_integral_float(self):
        assert int_type().validate(7.0) == 7

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            int_type().validate(7.5)

    def test_float_coerces_int(self):
        value = float_type().validate(3)
        assert value == 3.0 and isinstance(value, float)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeMismatchError):
            float_type().validate(True)

    def test_null_always_passes(self):
        for factory in (int_type, float_type, guid_type, datetime_type):
            assert factory().validate(None) is None
        assert varchar_type(5).validate(None) is None

    def test_varchar_length_enforced(self):
        assert varchar_type(5).validate("abc") == "abc"
        with pytest.raises(TypeMismatchError):
            varchar_type(5).validate("abcdef")

    def test_varchar_max_unbounded(self):
        long_text = "x" * 100_000
        assert varchar_type(MAX).validate(long_text) == long_text

    def test_char_pads_to_length(self):
        assert char_type(4).validate("ab") == "ab  "

    def test_binary_accepts_bytearray(self):
        value = varbinary_type(10).validate(bytearray(b"abc"))
        assert value == b"abc" and isinstance(value, bytes)

    def test_binary_length_enforced(self):
        with pytest.raises(TypeMismatchError):
            binary_type(2).validate(b"abc")

    def test_guid_accepts_many_forms(self):
        guid = uuid.uuid4()
        assert guid_type().validate(guid) == guid
        assert guid_type().validate(str(guid)) == guid
        assert guid_type().validate(guid.bytes) == guid

    def test_guid_rejects_junk(self):
        with pytest.raises(TypeMismatchError):
            guid_type().validate("not-a-guid")


class TestEncoding:
    @pytest.mark.parametrize(
        "sql_type,value",
        [
            (int_type(), 12345),
            (int_type(), -1),
            (bigint_type(), 2**40),
            (smallint_type(), -32768),
            (tinyint_type(), 200),
            (float_type(), 3.14159),
            (datetime_type(), 1_600_000_000.5),
            (varchar_type(50), "hello world"),
            (char_type(6), "ab    "),
            (varbinary_type(MAX), b"\x00\x01\xff"),
        ],
    )
    def test_round_trip(self, sql_type, value):
        assert sql_type.decode(sql_type.encode(value)) == value

    def test_guid_round_trip(self):
        guid = uuid.uuid4()
        assert guid_type().decode(guid_type().encode(guid)) == guid

    def test_fixed_widths(self):
        assert int_type().fixed_width == 4
        assert bigint_type().fixed_width == 8
        assert guid_type().fixed_width == 16
        assert char_type(7).fixed_width == 7
        assert varchar_type(7).fixed_width is None

    @given(st.integers(min_value=-(2**31), max_value=2**31 - 1))
    def test_int_encode_round_trip_property(self, value):
        assert int_type().decode(int_type().encode(value)) == value

    @given(st.text(max_size=40))
    def test_varchar_round_trip_property(self, text):
        sql_type = varchar_type(MAX)
        assert sql_type.decode(sql_type.encode(text)) == text


class TestClassification:
    def test_filestream_flag(self):
        plain = varbinary_type(MAX)
        streamed = varbinary_type(MAX, filestream=True)
        assert not plain.filestream
        assert streamed.filestream
        assert "FILESTREAM" in str(streamed)

    def test_is_numeric(self):
        assert int_type().is_numeric
        assert float_type().is_numeric
        assert not varchar_type(5).is_numeric

    def test_display(self):
        assert str(varchar_type(MAX)) == "VARCHAR(MAX)"
        assert str(char_type(3)) == "CHAR(3)"
        assert str(int_type()) == "INT"
