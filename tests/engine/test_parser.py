"""SQL parser: statement shapes."""

import pytest

from repro.engine.errors import SqlSyntaxError
from repro.engine.expressions import (
    AggregateCall,
    BinaryOp,
    Case,
    ColumnRef,
    FuncCall,
    InList,
    IsNull,
    Like,
    Literal,
    WindowCall,
)
from repro.engine.sql import ast
from repro.engine.sql.parser import parse_sql, parse_statement


class TestSelect:
    def test_simple(self):
        stmt = parse_statement("SELECT a, b FROM t")
        assert isinstance(stmt, ast.SelectStmt)
        assert [i.expr.name for i in stmt.items] == ["a", "b"]
        assert stmt.source.name == "t"

    def test_star(self):
        stmt = parse_statement("SELECT * FROM t")
        assert stmt.items[0].star

    def test_qualified_star(self):
        stmt = parse_statement("SELECT t.* FROM t")
        assert stmt.items[0].star and stmt.items[0].star_qualifier == "t"

    def test_top(self):
        assert parse_statement("SELECT TOP 5 a FROM t").top == 5

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_aliases(self):
        stmt = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.source.alias == "u"

    def test_where_group_having_order(self):
        stmt = parse_statement(
            """
            SELECT name, COUNT(*) FROM t
            WHERE x > 1 GROUP BY name HAVING COUNT(*) > 2
            ORDER BY name DESC
            """
        )
        assert isinstance(stmt.where, BinaryOp)
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.order_by[0][1] is True

    def test_join_with_on(self):
        stmt = parse_statement("SELECT * FROM a JOIN b ON (a.x = b.y)")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "JOIN"
        assert isinstance(stmt.joins[0].on, BinaryOp)

    def test_inner_join_keyword(self):
        stmt = parse_statement("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "JOIN"

    def test_cross_apply(self):
        stmt = parse_statement(
            "SELECT * FROM t CROSS APPLY PivotAlignment(pos, seq, quals)"
        )
        assert stmt.joins[0].kind == "CROSS APPLY"
        assert isinstance(stmt.joins[0].source, ast.TvfRef)
        assert len(stmt.joins[0].source.args) == 3

    def test_tvf_as_source(self):
        stmt = parse_statement("SELECT * FROM ListShortReads(855, 1, 'FastQ')")
        assert isinstance(stmt.source, ast.TvfRef)
        assert stmt.source.name == "ListShortReads"

    def test_subquery_source(self):
        stmt = parse_statement("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert isinstance(stmt.source, ast.SubqueryRef)
        assert stmt.source.alias == "sub"

    def test_openrowset(self):
        stmt = parse_statement(
            "SELECT * FROM OPENROWSET(BULK 'D:\\855_s_1.fastq', SINGLE_BLOB)"
        )
        assert isinstance(stmt.source, ast.OpenRowsetRef)
        assert stmt.source.path.endswith("855_s_1.fastq")

    def test_window_function(self):
        stmt = parse_statement(
            "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) FROM t GROUP BY a"
        )
        window = stmt.items[0].expr
        assert isinstance(window, WindowCall)
        assert isinstance(window.order_by[0][0], AggregateCall)
        assert window.order_by[0][1] is True

    def test_maxdop_hint(self):
        stmt = parse_statement("SELECT a FROM t OPTION (MAXDOP 2)")
        assert stmt.maxdop == 2

    def test_bracketed_table(self):
        stmt = parse_statement("SELECT * FROM [Read]")
        assert stmt.source.name == "Read"

    def test_paper_query1_parses(self):
        stmt = parse_statement(
            """
            SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC),
                   COUNT(*), short_read_seq
              FROM [Read]
             WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1
                   AND CHARINDEX('N', short_read_seq)=0
             GROUP BY short_read_seq
            """
        )
        assert len(stmt.items) == 3
        assert stmt.group_by[0] == ColumnRef("short_read_seq")


class TestExpressions:
    def expr(self, text):
        return parse_statement(f"SELECT {text} FROM t").items[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("1 + 2 * 3")
        assert e.op == "+" and e.right.op == "*"

    def test_parens_override(self):
        e = self.expr("(1 + 2) * 3")
        assert e.op == "*" and e.left.op == "+"

    def test_and_or_precedence(self):
        e = parse_statement("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        assert e.op == "OR" and e.right.op == "AND"

    def test_not(self):
        e = parse_statement("SELECT 1 FROM t WHERE NOT a = 1").where
        assert e.op == "NOT"

    def test_is_null_and_is_not_null(self):
        e1 = parse_statement("SELECT 1 FROM t WHERE a IS NULL").where
        e2 = parse_statement("SELECT 1 FROM t WHERE a IS NOT NULL").where
        assert isinstance(e1, IsNull) and not e1.negated
        assert isinstance(e2, IsNull) and e2.negated

    def test_like(self):
        e = parse_statement("SELECT 1 FROM t WHERE a LIKE 'x%'").where
        assert isinstance(e, Like)

    def test_in_list(self):
        e = parse_statement("SELECT 1 FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(e, InList) and len(e.items) == 3

    def test_between(self):
        e = parse_statement("SELECT 1 FROM t WHERE a BETWEEN 1 AND 10").where
        from repro.engine.expressions import Between

        assert isinstance(e, Between)

    def test_case(self):
        e = self.expr("CASE WHEN a = 1 THEN 'one' ELSE 'other' END")
        assert isinstance(e, Case) and e.default is not None

    def test_count_star(self):
        e = self.expr("COUNT(*)")
        assert isinstance(e, AggregateCall) and e.star

    def test_count_distinct(self):
        e = self.expr("COUNT(DISTINCT a)")
        assert isinstance(e, AggregateCall) and e.distinct

    def test_scalar_function(self):
        e = self.expr("CHARINDEX('N', seq)")
        assert isinstance(e, FuncCall) and len(e.args) == 2

    def test_method_style_call(self):
        e = self.expr("reads.PathName()")
        assert isinstance(e, FuncCall)
        assert e.name == "PathName"
        assert e.args[0] == ColumnRef("reads")

    def test_qualified_column(self):
        e = self.expr("a.b")
        assert e == ColumnRef("b", qualifier="a")

    def test_negative_literal(self):
        e = self.expr("-5")
        from repro.engine.expressions import UnaryOp

        assert isinstance(e, UnaryOp) and e.operand == Literal(5)

    def test_string_and_null_literals(self):
        assert self.expr("'text'") == Literal("text")
        assert self.expr("NULL") == Literal(None)

    def test_float_literal(self):
        assert self.expr("2.5") == Literal(2.5)


class TestDdlDml:
    def test_create_table_basics(self):
        stmt = parse_statement(
            """
            CREATE TABLE t (
                id INT PRIMARY KEY,
                name VARCHAR(50) NOT NULL,
                blob VARBINARY(MAX)
            )
            """
        )
        assert isinstance(stmt, ast.CreateTableStmt)
        assert stmt.primary_key == ["id"]
        assert stmt.columns[1].nullable is False
        assert stmt.columns[2].length == -1

    def test_create_table_composite_pk_and_fk(self):
        stmt = parse_statement(
            """
            CREATE TABLE t (
                a INT, b INT, v VARCHAR(10),
                PRIMARY KEY (a, b),
                FOREIGN KEY (a) REFERENCES parent (id)
            )
            """
        )
        assert stmt.primary_key == ["a", "b"]
        assert stmt.foreign_keys[0].parent_table == "parent"

    def test_create_table_compression(self):
        stmt = parse_statement(
            "CREATE TABLE t (a INT PRIMARY KEY) WITH (DATA_COMPRESSION = PAGE)"
        )
        assert stmt.compression == "PAGE"

    def test_paper_filestream_table(self):
        stmt = parse_statement(
            """
            CREATE TABLE ShortReadFiles (
                guid uniqueidentifier ROWGUIDCOL PRIMARY KEY,
                sample INT,
                lane INT,
                reads VARBINARY(MAX) FILESTREAM
            ) FILESTREAM_ON FILESTREAMGROUP
            """
        )
        assert stmt.columns[0].rowguidcol
        assert stmt.columns[3].filestream
        assert stmt.filestream_group == "FILESTREAMGROUP"

    def test_double_pk_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement(
                "CREATE TABLE t (a INT PRIMARY KEY, b INT, PRIMARY KEY (b))"
            )

    def test_create_index(self):
        stmt = parse_statement("CREATE INDEX ix ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndexStmt)
        assert stmt.columns == ["a", "b"]

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertStmt)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.values) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t SELECT a, b FROM u")
        assert stmt.select is not None and stmt.values is None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.DeleteStmt)
        assert stmt.where is not None

    def test_drop_and_truncate(self):
        assert isinstance(parse_statement("DROP TABLE t"), ast.DropTableStmt)
        assert isinstance(
            parse_statement("TRUNCATE TABLE t"), ast.TruncateStmt
        )

    def test_multiple_statements(self):
        statements = parse_sql("SELECT 1; SELECT 2;")
        assert len(statements) == 2

    def test_explain(self):
        stmt = parse_statement("EXPLAIN SELECT a FROM t")
        assert isinstance(stmt, ast.ExplainStmt)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "INSERT t VALUES",
            "CREATE t (a INT)",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP",
            "CREATE TABLE t ()",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_statement(bad)
