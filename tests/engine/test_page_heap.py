"""Slotted pages and heap files."""

import pytest

from repro.engine.errors import StorageError
from repro.engine.schema import (
    COMPRESSION_NONE,
    COMPRESSION_PAGE,
    COMPRESSION_ROW,
    Column,
    TableSchema,
)
from repro.engine.storage.heap import HeapFile
from repro.engine.storage.page import PAGE_HEADER_SIZE, PAGE_SIZE, Page
from repro.engine.storage.serializer import RowSerializer
from repro.engine.types import int_type, varchar_type


def make_schema():
    return TableSchema(
        "t",
        [
            Column("id", int_type(), nullable=False),
            Column("name", varchar_type(200)),
        ],
        primary_key=["id"],
    )


class TestPage:
    def test_append_and_get(self):
        page = Page(0)
        serializer = RowSerializer(make_schema())
        record = serializer.serialize((1, "hello"))
        slot = page.append(record)
        assert page.get(slot, serializer) == record

    def test_fits_respects_page_size(self):
        page = Page(0)
        big = b"x" * (PAGE_SIZE - PAGE_HEADER_SIZE - 2)
        assert page.fits(big)
        page.append(big)
        assert not page.fits(b"y")

    def test_full_page_rejects_append(self):
        page = Page(0)
        page.append(b"x" * 4000)
        page.append(b"y" * 4000)
        with pytest.raises(StorageError):
            page.append(b"z" * 100)

    def test_sealed_page_rejects_append(self):
        page = Page(0)
        page.append(b"abc")
        page.seal()
        with pytest.raises(StorageError):
            page.append(b"more")

    def test_delete_tombstones(self):
        page = Page(0)
        serializer = RowSerializer(make_schema())
        record = serializer.serialize((1, "a"))
        slot = page.append(record)
        page.append(serializer.serialize((2, "b")))
        page.delete(slot)
        assert page.live_count == 1
        with pytest.raises(StorageError):
            page.get(slot, serializer)
        with pytest.raises(StorageError):
            page.delete(slot)

    def test_page_compression_on_seal(self):
        schema = make_schema()
        serializer = RowSerializer(schema, row_compression=True)
        page = Page(0)
        for i in range(60):
            page.append(serializer.serialize((i, "repeated-name-value")))
        before = page.used_bytes
        page.seal(serializer, page_compress=True)
        assert page.used_bytes < before
        # records still readable after compression
        rows = [
            serializer.deserialize(record)
            for _slot, record in page.iter_records(serializer)
        ]
        assert rows[0] == (0, "repeated-name-value")
        assert len(rows) == 60

    def test_page_compression_skipped_when_no_gain(self):
        import random

        rng = random.Random(3)
        schema = make_schema()
        serializer = RowSerializer(schema, row_compression=True)
        page = Page(0)
        for i in range(10):
            page.append(
                serializer.serialize(
                    (i, "".join(rng.choices("abcdefghijklmnop", k=30)))
                )
            )
        before = page.used_bytes
        page.seal(serializer, page_compress=True)
        # compression must never make the page bigger
        assert page.used_bytes <= before


class TestHeapFile:
    def test_insert_fetch_round_trip(self):
        heap = HeapFile(make_schema())
        rid = heap.insert((1, "alpha"))
        assert heap.fetch(rid) == (1, "alpha")

    def test_scan_in_insert_order(self):
        heap = HeapFile(make_schema())
        for i in range(100):
            heap.insert((i, f"row{i}"))
        rows = [row for _rid, row in heap.scan()]
        assert rows == [(i, f"row{i}") for i in range(100)]

    def test_spills_to_multiple_pages(self):
        heap = HeapFile(make_schema())
        for i in range(200):
            heap.insert((i, "x" * 150))
        assert len(heap.pages) > 1
        assert heap.row_count == 200

    def test_delete_removes_from_scan(self):
        heap = HeapFile(make_schema())
        rids = [heap.insert((i, f"r{i}")) for i in range(10)]
        deleted = heap.delete(rids[3])
        assert deleted == (3, "r3")
        remaining = [row[0] for _rid, row in heap.scan()]
        assert 3 not in remaining
        assert heap.row_count == 9

    def test_fetch_bad_rid(self):
        heap = HeapFile(make_schema())
        with pytest.raises(StorageError):
            heap.fetch((99, 0))

    @pytest.mark.parametrize(
        "compression", [COMPRESSION_NONE, COMPRESSION_ROW, COMPRESSION_PAGE]
    )
    def test_round_trip_under_all_compressions(self, compression):
        heap = HeapFile(make_schema(), compression=compression)
        rows = [(i, f"value-{i % 5}") for i in range(300)]
        for row in rows:
            heap.insert(row)
        heap.seal_all()
        assert [row for _r, row in heap.scan()] == rows

    def test_row_compression_reduces_bytes(self):
        plain = HeapFile(make_schema(), compression=COMPRESSION_NONE)
        compressed = HeapFile(make_schema(), compression=COMPRESSION_ROW)
        for i in range(200):
            plain.insert((i, "abc"))
            compressed.insert((i, "abc"))
        plain.seal_all()
        compressed.seal_all()
        assert compressed.stored_bytes() < plain.stored_bytes()

    def test_page_compression_beats_row_on_repetitive_data(self):
        row_heap = HeapFile(make_schema(), compression=COMPRESSION_ROW)
        page_heap = HeapFile(make_schema(), compression=COMPRESSION_PAGE)
        for i in range(500):
            value = "GATTACAGATTACAGATTACA"
            row_heap.insert((i, value))
            page_heap.insert((i, value))
        row_heap.seal_all()
        page_heap.seal_all()
        assert page_heap.stored_bytes() < row_heap.stored_bytes()

    def test_uncompressed_bytes_tracks_logical_size(self):
        heap = HeapFile(make_schema(), compression=COMPRESSION_ROW)
        for i in range(50):
            heap.insert((i, "hello"))
        assert heap.uncompressed_bytes() > heap.stats.data_bytes


class TestRowCache:
    """The decoded-row cache (buffer pool) must stay coherent."""

    def test_second_scan_uses_cache(self):
        heap = HeapFile(make_schema())
        for i in range(50):
            heap.insert((i, f"r{i}"))
        first = [row for _r, row in heap.scan()]
        # the cache object is now populated on each page
        assert all(page.decoded is not None for page in heap.pages)
        second = [row for _r, row in heap.scan()]
        assert first == second

    def test_insert_invalidates_tail_page_cache(self):
        heap = HeapFile(make_schema())
        heap.insert((1, "a"))
        list(heap.scan())
        heap.insert((2, "b"))
        rows = [row for _r, row in heap.scan()]
        assert rows == [(1, "a"), (2, "b")]

    def test_delete_removes_from_cached_scan(self):
        heap = HeapFile(make_schema())
        rid = heap.insert((1, "a"))
        heap.insert((2, "b"))
        list(heap.scan())  # warm
        heap.delete(rid)
        assert [row for _r, row in heap.scan()] == [(2, "b")]

    def test_fetch_after_cache_warm(self):
        heap = HeapFile(make_schema())
        rid = heap.insert((7, "seven"))
        list(heap.scan())
        assert heap.fetch(rid) == (7, "seven")

    def test_fetch_deleted_slot_raises(self):
        heap = HeapFile(make_schema())
        rid = heap.insert((1, "x"))
        heap.delete(rid)
        with pytest.raises(StorageError):
            heap.fetch(rid)

    def test_cache_on_page_compressed_pages(self):
        heap = HeapFile(make_schema(), compression=COMPRESSION_PAGE)
        rows = [(i, "repetitive-value") for i in range(300)]
        for row in rows:
            heap.insert(row)
        heap.seal_all()
        assert [row for _r, row in heap.scan()] == rows
        # warm pass identical
        assert [row for _r, row in heap.scan()] == rows
