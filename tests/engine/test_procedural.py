"""Interpreted (T-SQL-style) and compiled stored procedures."""

import pytest

from repro.engine import Database
from repro.engine.errors import ExecutionError
from repro.engine.expressions import BinaryOp, ColumnRef, FuncCall, Literal
from repro.engine.procedural import (
    Assign,
    Break,
    CloseCursor,
    Declare,
    FetchLine,
    If,
    InterpretedProcedure,
    Interpreter,
    OpenLineCursor,
    Return,
    While,
)


@pytest.fixture
def db():
    with Database() as database:
        yield database


def var(name):
    return ColumnRef(name)


class TestInterpreter:
    def test_declare_assign_return(self, db):
        procedure = InterpretedProcedure(
            "p",
            (),
            [
                Declare("@x", 5),
                Assign("@x", BinaryOp("*", var("@x"), Literal(3))),
                Return(var("@x")),
            ],
        )
        assert Interpreter(db).call(procedure) == 15

    def test_while_loop(self, db):
        procedure = InterpretedProcedure(
            "sum_to_n",
            ("@n",),
            [
                Declare("@i", 0),
                Declare("@total", 0),
                While(
                    BinaryOp("<", var("@i"), var("@n")),
                    [
                        Assign("@i", BinaryOp("+", var("@i"), Literal(1))),
                        Assign(
                            "@total", BinaryOp("+", var("@total"), var("@i"))
                        ),
                    ],
                ),
                Return(var("@total")),
            ],
        )
        assert Interpreter(db).call(procedure, 10) == 55

    def test_if_else(self, db):
        procedure = InterpretedProcedure(
            "sign",
            ("@v",),
            [
                Declare("@r", 0),
                If(
                    BinaryOp(">", var("@v"), Literal(0)),
                    [Assign("@r", Literal(1))],
                    [Assign("@r", Literal(-1))],
                ),
                Return(var("@r")),
            ],
        )
        interp = Interpreter(db)
        assert interp.call(procedure, 5) == 1
        assert interp.call(procedure, -5) == -1

    def test_break(self, db):
        procedure = InterpretedProcedure(
            "p",
            (),
            [
                Declare("@i", 0),
                While(
                    Literal(True),
                    [
                        Assign("@i", BinaryOp("+", var("@i"), Literal(1))),
                        If(
                            BinaryOp(">=", var("@i"), Literal(3)),
                            [Break()],
                        ),
                    ],
                ),
                Return(var("@i")),
            ],
        )
        assert Interpreter(db).call(procedure) == 3

    def test_builtin_functions_available(self, db):
        procedure = InterpretedProcedure(
            "p",
            ("@s",),
            [Return(FuncCall("SUBSTRING", (var("@s"), Literal(1), Literal(3))))],
        )
        assert Interpreter(db).call(procedure, "GATTACA") == "GAT"

    def test_undeclared_variable(self, db):
        procedure = InterpretedProcedure("p", (), [Return(var("@missing"))])
        with pytest.raises(ExecutionError):
            Interpreter(db).call(procedure)

    def test_wrong_arity(self, db):
        procedure = InterpretedProcedure("p", ("@a",), [Return(var("@a"))])
        with pytest.raises(ExecutionError):
            Interpreter(db).call(procedure)

    def test_line_cursor_over_blob(self, db):
        guid = db.filestream.create(b"line1\nline2\nline3\n")
        procedure = InterpretedProcedure(
            "count_lines",
            ("@guid",),
            [
                Declare("@n", 0),
                OpenLineCursor("c", "@guid"),
                FetchLine("c"),
                While(
                    BinaryOp("=", var("c_status"), Literal(1)),
                    [
                        Assign("@n", BinaryOp("+", var("@n"), Literal(1))),
                        FetchLine("c"),
                    ],
                ),
                CloseCursor("c"),
                Return(var("@n")),
            ],
        )
        assert Interpreter(db).call(procedure, guid) == 3


class TestRegistry:
    def test_compiled_procedure(self, db):
        db.procedures.register_compiled(
            "double", lambda database, x: x * 2
        )
        assert db.call_procedure("double", 21) == 42

    def test_compiled_gets_database_handle(self, db):
        db.execute("CREATE TABLE t (a INT PRIMARY KEY); INSERT INTO t VALUES (7)")

        def proc(database):
            return database.scalar("SELECT MAX(a) FROM t")

        db.procedures.register_compiled("maxval", proc)
        assert db.call_procedure("maxval") == 7

    def test_interpreted_registered_and_called(self, db):
        db.procedures.register_interpreted(
            InterpretedProcedure("answer", (), [Return(Literal(42))])
        )
        assert db.call_procedure("answer") == 42

    def test_unknown_procedure(self, db):
        with pytest.raises(ExecutionError):
            db.call_procedure("nope")
