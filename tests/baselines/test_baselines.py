"""File-centric baselines: flat files, the Perl-style script, MAQ tool,
and resource traces."""

from collections import Counter

import pytest

from repro.baselines import (
    FileCentricStore,
    MaqTool,
    ResourceTrace,
    run_binning_script,
)
from repro.genomics.aligner import Alignment
from repro.genomics.fasta import write_fasta
from repro.genomics.fastq import write_fastq
from repro.genomics.maqmap import read_binary_map, read_text_map


class TestFileCentricStore:
    def test_lane_fastq_round_trip(self, tmp_path, dge_reads):
        store = FileCentricStore(tmp_path)
        path = store.store_lane_fastq(855, 1, dge_reads[:50])
        from repro.genomics.fastq import read_fastq

        assert list(read_fastq(path)) == dge_reads[:50]

    def test_naming_convention(self, tmp_path):
        store = FileCentricStore(tmp_path)
        assert store.fastq_path(855, 1).name == "855_s_1.fastq"

    def test_unique_tags_file(self, tmp_path):
        store = FileCentricStore(tmp_path)
        path = store.store_unique_tags(
            855, 1, [(1, 100, "ACGT"), (2, 50, "GGTT")]
        )
        lines = path.read_text().splitlines()
        assert lines[0] == "1\t100\tACGT"

    def test_alignment_files(self, tmp_path):
        store = FileCentricStore(tmp_path)
        alignments = [Alignment("r1", "chr1", 5, "+", 0, 60, 36)]
        text = store.store_alignments(855, 1, alignments)
        binary = store.store_alignments(855, 1, alignments, binary=True)
        assert list(read_text_map(text)) == alignments
        assert list(read_binary_map(binary)) == alignments

    def test_size_accounting(self, tmp_path, dge_reads):
        store = FileCentricStore(tmp_path)
        store.store_lane_fastq(855, 1, dge_reads[:10])
        sizes = store.file_sizes()
        assert "855_s_1.fastq" in sizes
        assert store.total_bytes() == sum(sizes.values())


class TestPerlBinningScript:
    def test_matches_reference_counter(self, tmp_path, dge_reads):
        path = tmp_path / "lane.fastq"
        write_fastq(dge_reads, path)
        ranked, _trace = run_binning_script(path)
        expected = Counter(
            r.sequence for r in dge_reads if "N" not in r.sequence
        )
        assert {seq: count for _rank, count, seq in ranked} == dict(expected)

    def test_ranks_descend_by_frequency(self, tmp_path, dge_reads):
        path = tmp_path / "lane.fastq"
        write_fastq(dge_reads, path)
        ranked, _trace = run_binning_script(path)
        freqs = [count for _rank, count, _seq in ranked]
        assert freqs == sorted(freqs, reverse=True)

    def test_output_file_written(self, tmp_path, dge_reads):
        source = tmp_path / "lane.fastq"
        out = tmp_path / "tags.txt"
        write_fastq(dge_reads[:100], source)
        ranked, trace = run_binning_script(source, out)
        assert len(out.read_text().splitlines()) == len(ranked)
        assert [p.name for p in trace.phases] == ["read", "process", "write"]

    def test_trace_shows_sequential_profile(self, tmp_path, dge_reads):
        path = tmp_path / "lane.fastq"
        write_fastq(dge_reads, path)
        _ranked, trace = run_binning_script(path, cores=4)
        # one core of four: mean utilisation must sit well below 50%
        assert trace.mean_utilization() < 0.5


class TestMaqTool:
    @pytest.fixture
    def inputs(self, tmp_path, reference, reseq_reads):
        fasta = tmp_path / "ref.fasta"
        fastq = tmp_path / "lane.fastq"
        write_fasta(reference, fasta)
        write_fastq(reseq_reads[:150], fastq)
        return MaqTool(tmp_path / "work"), fasta, fastq

    def test_bfq_round_trip(self, inputs, reseq_reads):
        tool, _fasta, fastq = inputs
        bfq = tool.fastq2bfq(fastq)
        assert list(tool.read_bfq(bfq)) == reseq_reads[:150]

    def test_bfa_round_trip(self, inputs, reference):
        tool, fasta, _fastq = inputs
        bfa = tool.fasta2bfa(fasta)
        records = tool.read_bfa(bfa)
        assert [(r.name, r.sequence) for r in records] == [
            (r.name, r.sequence) for r in reference
        ]

    def test_pipeline_produces_all_artifacts(self, inputs):
        tool, fasta, fastq = inputs
        artifacts = tool.pipeline(fastq, fasta)
        assert set(artifacts) == {"bfq", "bfa", "map", "mapview"}
        sizes = tool.artifact_sizes(artifacts)
        assert all(size > 0 for size in sizes.values())

    def test_pipeline_matches_direct_alignment(
        self, inputs, reference, reseq_reads, aligner
    ):
        tool, fasta, fastq = inputs
        artifacts = tool.pipeline(fastq, fasta)
        via_files = {
            (a.read_name, a.reference, a.position, a.strand)
            for a in read_text_map(artifacts["mapview"])
        }
        direct = {
            (hit.read_name, hit.reference, hit.position, hit.strand)
            for _r, hit in aligner.align_all(reseq_reads[:150])
            if hit is not None
        }
        assert via_files == direct

    def test_binary_intermediates_smaller_than_text(self, inputs):
        """4-bit packing: the .bfq must beat the FASTQ it came from."""
        tool, _fasta, fastq = inputs
        bfq = tool.fastq2bfq(fastq)
        assert bfq.stat().st_size < fastq.stat().st_size

    def test_bad_magic_rejected(self, inputs, tmp_path):
        from repro.baselines.maq_tool import MaqToolError

        tool, _fasta, _fastq = inputs
        bogus = tmp_path / "bogus.bfq"
        bogus.write_bytes(b"XXXX")
        with pytest.raises(MaqToolError):
            list(tool.read_bfq(bogus))


class TestResourceTrace:
    def test_phases_recorded_in_order(self):
        trace = ResourceTrace("test", cores=4)
        with trace.record("one", busy_cores=1):
            pass
        with trace.record("two", busy_cores=4):
            pass
        assert [p.name for p in trace.phases] == ["one", "two"]
        assert trace.phases[0].utilization == 0.25
        assert trace.phases[1].utilization == 1.0

    def test_render_contains_bars(self):
        trace = ResourceTrace("demo", cores=4)
        trace.add_phase("work", 0.0, 2.0, busy_cores=4, detail="all cores")
        text = trace.render()
        assert "demo" in text and "work" in text and "#" in text

    def test_mean_utilization(self):
        trace = ResourceTrace("m", cores=2)
        trace.add_phase("a", 0.0, 1.0, busy_cores=2)
        trace.add_phase("b", 1.0, 3.0, busy_cores=1)
        assert trace.mean_utilization() == pytest.approx((1.0 + 2 * 0.5) / 3)

    def test_empty_trace(self):
        trace = ResourceTrace("empty")
        assert trace.total_time == 0.0
        assert trace.mean_utilization() == 0.0
