"""Shared fixtures: a small synthetic genome, gene annotations, and
simulated lanes, session-scoped for speed."""

from __future__ import annotations

import pytest

from repro.genomics.aligner import ShortReadAligner
from repro.genomics.simulate import (
    annotate_genes,
    generate_reference,
    simulate_dge_lane,
    simulate_resequencing_lane,
)


@pytest.fixture(scope="session")
def reference():
    return generate_reference(
        n_chromosomes=2, chromosome_length=20_000, seed=101
    )


@pytest.fixture(scope="session")
def genes(reference):
    return annotate_genes(
        reference, n_genes=25, gene_length=(300, 900), seed=102
    )


@pytest.fixture(scope="session")
def dge_reads(reference, genes):
    return list(
        simulate_dge_lane(reference, genes, n_reads=1200, seed=103)
    )


@pytest.fixture(scope="session")
def reseq_reads(reference):
    return list(
        simulate_resequencing_lane(reference, n_reads=1500, seed=104)
    )


@pytest.fixture(scope="session")
def aligner(reference):
    return ShortReadAligner(reference)
