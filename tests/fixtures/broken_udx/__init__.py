"""Deliberately-broken UDx modules for the lint CLI and test suite.

Each module exposes ``register(db)`` and violates exactly one verifier
rule; ``repro-genomics lint tests/fixtures/broken_udx`` must exit
non-zero naming the offending function and rule.
"""
