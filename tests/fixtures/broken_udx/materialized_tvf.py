"""TVF whose create() returns a materialised list — UDX-TVF-MATERIALIZED."""

from repro.engine.schema import Column
from repro.engine.types import int_type, varchar_type
from repro.engine.udf import TableValuedFunction


class KmersTvf(TableValuedFunction):
    name = "Kmers"
    columns = (
        Column("pos", int_type()),
        Column("kmer", varchar_type(64)),
    )

    def create(self, seq, k):
        # builds the whole result in memory instead of streaming
        return [(i, seq[i : i + k]) for i in range(len(seq) - k + 1)]

    def fill_row(self, obj):
        return (obj[0], obj[1])


def register(db):
    db.register_tvf(KmersTvf())
