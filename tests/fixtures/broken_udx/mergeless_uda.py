"""UDA declared parallel-safe without a merge() — UDX-UDA-NO-MERGE
(warning: registration succeeds but the planner forces serial plans)."""

from repro.engine.udf import UserDefinedAggregate


class Consensus(UserDefinedAggregate):
    name = "Consensus"
    arity = 1
    parallel_safe = True  # claims mergeability ...

    def init(self):
        self.counts = {}

    def accumulate(self, base):
        if base is not None:
            self.counts[base] = self.counts.get(base, 0) + 1

    # ... but provides no merge()

    def terminate(self):
        if not self.counts:
            return None
        return max(sorted(self.counts), key=self.counts.get)


def register(db):
    db.register_uda(Consensus)
