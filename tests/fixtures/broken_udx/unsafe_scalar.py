"""SAFE scalar UDF whose body reaches the OS — UDX-SAFE-IMPORT."""


def mask_by_hostname(seq):
    import os

    return seq if os.environ.get("KEEP") else seq.lower()


def register(db):
    db.register_scalar("MaskByHostname", mask_by_hostname)
