"""TVF whose fill_row() tuple width contradicts the declared columns —
UDX-TVF-FILLROW-ARITY."""

from repro.engine.schema import Column
from repro.engine.types import int_type, varchar_type
from repro.engine.udf import TableValuedFunction


class BasesTvf(TableValuedFunction):
    name = "Bases"
    columns = (
        Column("pos", int_type()),
        Column("base", varchar_type(1)),
        Column("context", varchar_type(8)),
    )

    def create(self, seq):
        for i, base in enumerate(seq):
            yield (i, base)

    def fill_row(self, obj):
        return (obj[0], obj[1])  # two values for three declared columns


def register(db):
    db.register_tvf(BasesTvf())
