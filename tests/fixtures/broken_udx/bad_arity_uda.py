"""UDA whose accumulate() arity contradicts its declaration —
UDX-UDA-ARITY."""

from repro.engine.udf import UserDefinedAggregate


class WeightedMean(UserDefinedAggregate):
    name = "WeightedMean"
    arity = 2  # declared (value, weight) ...
    parallel_safe = False

    def init(self):
        self.total = 0.0
        self.weight = 0.0

    def accumulate(self, value):  # ... but takes only the value
        if value is not None:
            self.total += value
            self.weight += 1.0

    def terminate(self):
        return self.total / self.weight if self.weight else None


def register(db):
    db.register_uda(WeightedMean)
