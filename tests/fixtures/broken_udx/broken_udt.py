"""UDT codec whose probe fails the serialize/deserialize round-trip —
UDX-UDT-ROUNDTRIP."""

from repro.engine.types import UdtCodec


def _serialize(value) -> bytes:
    return value.encode("ascii")


def _deserialize(raw: bytes) -> str:
    return raw.decode("ascii").lower()  # not the inverse: case is lost


LOSSY_SEQ_UDT = UdtCodec(
    name="LossySeq",
    serialize=_serialize,
    deserialize=_deserialize,
    probe="AcGt",
)


def register(db):
    db.register_udt(LOSSY_SEQ_UDT)
