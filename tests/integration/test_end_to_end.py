"""Full-pipeline integration: both paper scenarios, hybrid storage,
and cross-checks between the database path and the file-centric path."""

from collections import Counter

import pytest

from repro.baselines import FileCentricStore, MaqTool, run_binning_script
from repro.core import GenomicsWarehouse, SequencingWorkflow, queries
from repro.genomics.fasta import write_fasta
from repro.genomics.fastq import write_fastq
from repro.genomics.maqmap import read_text_map


class TestDgeScenario:
    """Example 2 of the paper: digital gene expression end to end."""

    @pytest.fixture(scope="class")
    def pipeline(self, reference, genes, dge_reads):
        wh = GenomicsWarehouse()
        wh.load_reference(reference)
        wh.load_genes(genes)
        wh.register_experiment(1, "dge study", "dge")
        wh.register_sample_group(1, 1, "healthy")
        wh.register_sample(1, 1, 1, "cells")
        workflow = SequencingWorkflow(wh)
        counts = workflow.run_all(1, 1, 1, dge_reads, kind="dge", hybrid=True)
        yield wh, workflow, counts
        wh.close()

    def test_counts_consistent(self, pipeline, dge_reads):
        _wh, _workflow, counts = pipeline
        assert counts["reads"] == len(dge_reads)
        assert 0 < counts["alignments"] <= counts["reads"]
        assert 0 < counts["tertiary"]

    def test_sql_binning_equals_perl_script(
        self, pipeline, dge_reads, tmp_path_factory
    ):
        """Section 5.3.2's equivalence: same 565,526-unique-read style
        result from the script and from Query 1."""
        tmp = tmp_path_factory.mktemp("script")
        path = tmp / "lane.fastq"
        write_fastq(dge_reads, path)
        script_ranked, _trace = run_binning_script(path)
        wh, _workflow, _counts = pipeline
        sql_ranked = queries.execute_query1(wh.db, 1, 1, 1)
        script_map = {seq: count for _r, count, seq in script_ranked}
        sql_map = {seq: count for _r, count, seq in sql_ranked}
        assert script_map == sql_map

    def test_expression_totals_conserve_tag_frequencies(self, pipeline):
        wh, _workflow, _counts = pipeline
        expressed_total = wh.db.scalar(
            "SELECT SUM(total_freq) FROM GeneExpression"
        )
        aligned_tag_freq = wh.db.scalar(
            """
            SELECT SUM(t_frequency) FROM Tag
            JOIN Alignment ON (t_e_id = a_e_id AND t_sg_id = a_sg_id
                               AND t_s_id = a_s_id AND t_id = a_t_id)
            WHERE a_g_id IS NOT NULL
            """
        )
        assert expressed_total == aligned_tag_freq

    def test_top_expressed_gene_is_zipf_head(self, pipeline, genes):
        wh, _workflow, _counts = pipeline
        top = wh.db.query(
            "SELECT TOP 1 ge_g_id, total_freq FROM GeneExpression "
            "ORDER BY total_freq DESC"
        )[0]
        total_reads = wh.db.scalar("SELECT COUNT(*) FROM [Read]")
        assert top[1] > total_reads * 0.05

    def test_provenance_complete(self, pipeline):
        _wh, workflow, _counts = pipeline
        events = workflow.provenance(1, 1, 1)
        assert len(events) == 4


class TestReseqScenario:
    """Example 1 of the paper: re-sequencing + consensus calling."""

    @pytest.fixture(scope="class")
    def pipeline(self, reference, reseq_reads):
        wh = GenomicsWarehouse()
        wh.load_reference(reference)
        wh.register_experiment(1, "1000 genomes", "resequencing")
        wh.register_sample_group(1, 1, "individual")
        wh.register_sample(1, 1, 1, "NA12878")
        workflow = SequencingWorkflow(wh)
        counts = workflow.run_all(
            1, 1, 1, reseq_reads, kind="resequencing", hybrid=True
        )
        yield wh, workflow, counts
        wh.close()

    def test_alignment_rate_high(self, pipeline, reseq_reads):
        _wh, _workflow, counts = pipeline
        assert counts["alignments"] > len(reseq_reads) * 0.9

    def test_consensus_agrees_with_genome(self, pipeline, reference):
        wh, _workflow, _counts = pipeline
        rows = wh.db.query(
            "SELECT c_rs_id, c_start, c_seq FROM Consensus"
        )
        by_name = {r.name: r.sequence for r in reference}
        id_to_name = {v: k for k, v in wh.reference_names.items()}
        for rs_id, start, seq in rows:
            genome = by_name[id_to_name[rs_id]]
            called = [
                (a, b)
                for a, b in zip(seq, genome[start : start + len(seq)])
                if a != "N"
            ]
            agree = sum(1 for a, b in called if a == b)
            assert agree / len(called) > 0.97

    def test_db_alignments_match_maq_tool(
        self, pipeline, reference, reseq_reads, tmp_path_factory
    ):
        """The in-database path and the file-centric MAQ pipeline must
        place reads identically (same aligner, different data management)."""
        tmp = tmp_path_factory.mktemp("maq")
        fasta, fastq = tmp / "ref.fasta", tmp / "lane.fastq"
        write_fasta(reference, fasta)
        write_fastq(reseq_reads[:200], fastq)
        tool = MaqTool(tmp / "work")
        artifacts = tool.pipeline(fastq, fasta)
        file_hits = {
            a.read_name: (a.reference, a.position, a.strand)
            for a in read_text_map(artifacts["mapview"])
        }
        wh, _workflow, _counts = pipeline
        name_by_rid = {
            row[3]: row for row in wh.db.table("Read").scan()
        }
        id_to_name = {v: k for k, v in wh.reference_names.items()}
        db_hits = {}
        for row in wh.db.table("Alignment").scan():
            r_id = row[4]
            read_row = name_by_rid[r_id]
            # reconstruct the original read name from its components
            name = f"IL4_855:{read_row[4]}:{read_row[5]}:{read_row[6]}:{read_row[7]}"
            db_hits[name] = (id_to_name[row[6]], row[8], row[9])
        checked = 0
        for name, placement in file_hits.items():
            if name in db_hits:
                assert db_hits[name] == placement
                checked += 1
        assert checked > 150


class TestHybridRoundTrip:
    def test_filestream_lane_is_byte_identical_to_file(
        self, reference, dge_reads, tmp_path
    ):
        """The hybrid promise: FILESTREAM keeps the payload byte-identical,
        so external tools can keep working on the 'file'."""
        store = FileCentricStore(tmp_path)
        file_path = store.store_lane_fastq(855, 1, dge_reads[:200])
        wh = GenomicsWarehouse()
        try:
            wh.load_reference(reference)
            guid = wh.import_lane_hybrid(855, 1, dge_reads[:200])
            blob_bytes = wh.db.filestream.read_all(guid)
            assert blob_bytes == file_path.read_bytes()
            # an external tool can open the managed path directly
            managed = wh.db.query(
                "SELECT reads.PathName() FROM ShortReadFiles"
            )[0][0]
            from pathlib import Path

            assert Path(managed).read_bytes() == blob_bytes
        finally:
            wh.close()
