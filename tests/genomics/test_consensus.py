"""Consensus calling: base calls, pileup vs sliding window, ordering."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.consensus import (
    ConsensusError,
    Pileup,
    SlidingWindowConsensus,
    call_base,
    consensus_by_chromosome,
)


class TestCallBase:
    def test_unanimous(self):
        assert call_base([("A", 30), ("A", 20)]) == ("A", 50)

    def test_majority_by_quality(self):
        base, quality = call_base([("A", 40), ("C", 10), ("C", 10)])
        assert base == "A" and quality == 20

    def test_quality_outvotes_count(self):
        base, _q = call_base([("A", 60), ("C", 10), ("C", 10), ("C", 10)])
        assert base == "A"

    def test_tie_breaks_lexicographically(self):
        base, quality = call_base([("T", 20), ("G", 20)])
        assert base == "G" and quality == 0

    def test_n_observations_ignored(self):
        assert call_base([("N", 40), ("C", 10)]) == ("C", 10)

    def test_no_usable_evidence(self):
        assert call_base([]) == ("N", 0)
        assert call_base([("N", 40)]) == ("N", 0)

    def test_quality_capped(self):
        base, quality = call_base([("A", 90), ("A", 90), ("A", 90)])
        assert quality <= 93


def apply_alignments(consumer, alignments):
    for pos, seq, quals in alignments:
        consumer.add_alignment(pos, seq, quals)


class TestPileup:
    def test_simple_overlap(self):
        pileup = Pileup("chr", 10)
        pileup.add_alignment(0, "ACGT", [30] * 4)
        pileup.add_alignment(2, "GTAA", [30] * 4)
        result = pileup.call()
        assert result.sequence == "ACGTAANNNN"
        assert result.covered_positions == 6
        assert result.total_observations == 8

    def test_disagreement_resolved_by_quality(self):
        pileup = Pileup("chr", 4)
        pileup.add_alignment(0, "AAAA", [10] * 4)
        pileup.add_alignment(0, "CCCC", [40] * 4)
        assert pileup.call().sequence == "CCCC"

    def test_out_of_bounds_clipped(self):
        pileup = Pileup("chr", 5)
        pileup.add_alignment(3, "ACGT", [30] * 4)
        result = pileup.call()
        assert result.sequence == "NNNAC"

    def test_observation_count_tracks_pivot_size(self):
        pileup = Pileup("chr", 100)
        for i in range(10):
            pileup.add_alignment(i, "ACGT", [30] * 4)
        assert pileup.observation_count() == 40

    def test_length_mismatch_rejected(self):
        pileup = Pileup("chr", 10)
        with pytest.raises(ConsensusError):
            pileup.add_alignment(0, "ACGT", [30])


class TestSlidingWindow:
    def test_matches_pileup_simple(self):
        alignments = [(0, "ACGT", [30] * 4), (2, "GTAA", [30] * 4)]
        pileup = Pileup("chr", 10)
        window = SlidingWindowConsensus("chr", 10)
        apply_alignments(pileup, alignments)
        apply_alignments(window, alignments)
        assert window.finish().sequence == pileup.call().sequence

    def test_unordered_input_rejected(self):
        window = SlidingWindowConsensus("chr", 10)
        window.add_alignment(5, "AC", [30, 30])
        with pytest.raises(ConsensusError):
            window.add_alignment(3, "AC", [30, 30])

    def test_window_stays_small(self):
        window = SlidingWindowConsensus("chr", 10_000)
        for pos in range(0, 9_000, 10):
            window.add_alignment(pos, "ACGTACGTACGTACGTACGT", [30] * 20)
        assert window.peak_window <= 40  # vs 10k positions materialised
        window.finish()

    def test_gap_between_alignments_uncovered(self):
        window = SlidingWindowConsensus("chr", 20)
        window.add_alignment(0, "AAAA", [30] * 4)
        window.add_alignment(10, "CCCC", [30] * 4)
        result = window.finish()
        assert result.sequence == "AAAA" + "N" * 6 + "CCCC" + "N" * 6

    def test_unbounded_mode_starts_at_first_alignment(self):
        window = SlidingWindowConsensus("chr", length=None)
        window.add_alignment(100, "ACGT", [30] * 4)
        window.add_alignment(102, "GTTT", [30] * 4)
        result = window.finish()
        assert result.start == 100
        assert result.sequence == "ACGTTT"

    def test_unbounded_empty(self):
        window = SlidingWindowConsensus("chr", length=None)
        result = window.finish()
        assert result.sequence == "" and result.start == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 80),
                st.text(alphabet="ACGT", min_size=1, max_size=12),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_equivalence_with_pileup_property(self, raw):
        """The streaming algorithm must produce exactly the pivot-based
        result for any ordered alignment set."""
        alignments = sorted(
            (pos, seq, [25] * len(seq)) for pos, seq in raw
        )
        length = 100
        pileup = Pileup("chr", length)
        window = SlidingWindowConsensus("chr", length)
        apply_alignments(pileup, alignments)
        apply_alignments(window, alignments)
        expected = pileup.call()
        actual = window.finish()
        assert actual.sequence == expected.sequence
        assert actual.covered_positions == expected.covered_positions
        assert actual.total_observations == expected.total_observations


class TestDriver:
    def test_consensus_by_chromosome(self):
        results = consensus_by_chromosome(
            [
                ("chr1", 0, "AAAA", [30] * 4),
                ("chr1", 2, "AATT", [30] * 4),
                ("chr2", 1, "GGGG", [30] * 4),
            ],
            {"chr1": 8, "chr2": 6},
        )
        assert results["chr1"].sequence.startswith("AAAA")
        assert results["chr2"].sequence == "NGGGGN"

    def test_unknown_chromosome_rejected(self):
        with pytest.raises(ConsensusError):
            consensus_by_chromosome(
                [("mystery", 0, "A", [1])], {"chr1": 10}
            )


class TestReconstruction:
    def test_recovers_reference_from_clean_reads(self):
        """High-coverage error-free reads must reconstruct the genome."""
        rng = random.Random(42)
        genome = "".join(rng.choices("ACGT", k=400))
        alignments = []
        for _ in range(300):
            pos = rng.randrange(0, len(genome) - 30)
            alignments.append((pos, genome[pos : pos + 30], [35] * 30))
        alignments.sort()
        window = SlidingWindowConsensus("g", len(genome))
        apply_alignments(window, alignments)
        result = window.finish()
        matches = sum(
            1 for a, b in zip(result.sequence, genome) if a == b
        )
        assert matches / len(genome) > 0.97  # only coverage gaps miss
