"""Read simulation: determinism and workload statistics."""

from collections import Counter

import pytest

from repro.genomics.fastq import parse_illumina_name
from repro.genomics.quality import decode_phred
from repro.genomics.sequences import gc_content
from repro.genomics.simulate import (
    QualityModel,
    SimulationError,
    TILES_PER_LANE,
    annotate_genes,
    expression_profile,
    generate_reference,
    simulate_dge_lane,
    simulate_resequencing_lane,
)


class TestReference:
    def test_deterministic(self):
        a = generate_reference(n_chromosomes=2, chromosome_length=5000, seed=9)
        b = generate_reference(n_chromosomes=2, chromosome_length=5000, seed=9)
        assert [r.sequence for r in a] == [r.sequence for r in b]

    def test_different_seeds_differ(self):
        a = generate_reference(1, 5000, seed=1)
        b = generate_reference(1, 5000, seed=2)
        assert a[0].sequence != b[0].sequence

    def test_shapes(self):
        ref = generate_reference(n_chromosomes=3, chromosome_length=7000, seed=1)
        assert [r.name for r in ref] == ["chr1", "chr2", "chr3"]
        assert all(len(r.sequence) == 7000 for r in ref)

    def test_gc_content_controlled(self):
        ref = generate_reference(1, 50_000, gc=0.6, seed=4)
        assert gc_content(ref[0].sequence) == pytest.approx(0.6, abs=0.03)

    def test_bad_gc_rejected(self):
        with pytest.raises(SimulationError):
            generate_reference(1, 1000, gc=1.5)


class TestGenes:
    def test_non_overlapping(self, reference):
        genes = annotate_genes(reference, n_genes=20, seed=5)
        by_chrom = {}
        for gene in genes:
            by_chrom.setdefault(gene.chromosome, []).append(gene)
        for chrom_genes in by_chrom.values():
            spans = sorted((g.start, g.end) for g in chrom_genes)
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert e1 <= s2

    def test_within_bounds(self, reference, genes):
        lengths = {r.name: len(r.sequence) for r in reference}
        for gene in genes:
            assert 0 <= gene.start < gene.end <= lengths[gene.chromosome]

    def test_too_many_genes_raises(self):
        tiny = generate_reference(1, 3000, seed=1)
        with pytest.raises(SimulationError):
            annotate_genes(tiny, n_genes=100, gene_length=(500, 900))


class TestResequencingLane:
    def test_read_count_and_length(self, reference):
        reads = list(simulate_resequencing_lane(reference, 200, seed=7))
        assert len(reads) == 200
        assert all(len(r.sequence) == 36 for r in reads)
        assert all(len(r.quality) == 36 for r in reads)

    def test_names_follow_illumina_convention(self, reference):
        reads = list(simulate_resequencing_lane(reference, 50, seed=7, lane=3))
        for read in reads:
            parsed = parse_illumina_name(read.name)
            assert parsed.lane == 3
            assert 1 <= parsed.tile <= TILES_PER_LANE

    def test_mostly_unique_reads(self, reference):
        """The Table 2 workload property: almost all reads unique."""
        reads = list(simulate_resequencing_lane(reference, 1000, seed=7))
        unique = len({r.sequence for r in reads})
        assert unique > 950

    def test_deterministic(self, reference):
        a = [r.sequence for r in simulate_resequencing_lane(reference, 50, seed=1)]
        b = [r.sequence for r in simulate_resequencing_lane(reference, 50, seed=1)]
        assert a == b

    def test_reads_derive_from_reference(self, reference, aligner):
        reads = list(simulate_resequencing_lane(reference, 100, seed=8))
        hits = sum(1 for _r, a in aligner.align_all(reads) if a is not None)
        assert hits >= 95  # nearly all align back

    def test_read_too_long_rejected(self):
        tiny = generate_reference(1, 100, seed=1)
        with pytest.raises(SimulationError):
            list(simulate_resequencing_lane(tiny, 1, read_length=500))


class TestQualityModel:
    def test_scores_decay_along_read(self):
        import random

        model = QualityModel(start_q=35, decay=0.5, jitter=0)
        scores = model.scores(36, random.Random(1))
        assert scores[0] > scores[-1]
        assert all(2 <= s <= 93 for s in scores)

    def test_quality_strings_decode(self, reference):
        reads = list(simulate_resequencing_lane(reference, 20, seed=3))
        for read in reads:
            scores = decode_phred(read.quality)
            assert all(s >= 2 for s in scores)


class TestDgeLane:
    def test_heavy_tag_repetition(self, reference, genes):
        """The Table 1 workload property: few unique tags, many repeats."""
        reads = list(simulate_dge_lane(reference, genes, 2000, seed=9))
        counts = Counter(r.sequence for r in reads)
        assert len(counts) < len(reads) * 0.3
        top_share = counts.most_common(1)[0][1] / len(reads)
        assert top_share > 0.1  # Zipf head dominates

    def test_expression_profile_normalised_and_heavy_tailed(self, genes):
        profile = expression_profile(genes, seed=2)
        weights = [w for _g, w in profile]
        assert sum(weights) == pytest.approx(1.0)
        assert max(weights) > 2 * (sum(weights) / len(weights))

    def test_tags_align_within_genes(self, reference, genes, aligner):
        reads = list(simulate_dge_lane(reference, genes, 300, seed=10))
        spans = {
            g.chromosome: [] for g in genes
        }
        for gene in genes:
            spans[gene.chromosome].append((gene.start - 36, gene.end + 36))
        in_gene = 0
        aligned = 0
        for _read, hit in aligner.align_all(reads):
            if hit is None:
                continue
            aligned += 1
            if any(
                s <= hit.position <= e for s, e in spans.get(hit.reference, [])
            ):
                in_gene += 1
        assert aligned > 250
        assert in_gene / aligned > 0.9

    def test_deterministic(self, reference, genes):
        a = [r.sequence for r in simulate_dge_lane(reference, genes, 100, seed=1)]
        b = [r.sequence for r in simulate_dge_lane(reference, genes, 100, seed=1)]
        assert a == b
