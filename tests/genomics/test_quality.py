"""Phred quality scores."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import TypeMismatchError
from repro.genomics.quality import (
    MAX_SCORE,
    PHRED33,
    PHRED64,
    decode_phred,
    encode_phred,
    error_probability_to_phred,
    expected_mismatches,
    mean_error_probability,
    phred_to_error_probability,
)


class TestConversions:
    @pytest.mark.parametrize(
        "p,q", [(1.0, 0), (0.1, 10), (0.01, 20), (0.001, 30)]
    )
    def test_canonical_values(self, p, q):
        assert error_probability_to_phred(p) == q

    def test_inverse(self):
        assert phred_to_error_probability(20) == pytest.approx(0.01)

    @given(st.integers(0, 60))
    def test_round_trip_property(self, q):
        assert error_probability_to_phred(phred_to_error_probability(q)) == q

    def test_clamped_to_max(self):
        assert error_probability_to_phred(1e-30) == MAX_SCORE

    def test_invalid_probability(self):
        with pytest.raises(TypeMismatchError):
            error_probability_to_phred(0.0)
        with pytest.raises(TypeMismatchError):
            error_probability_to_phred(1.5)

    def test_negative_score_rejected(self):
        with pytest.raises(TypeMismatchError):
            phred_to_error_probability(-1)


class TestAsciiEncoding:
    def test_phred33(self):
        assert encode_phred([0, 1, 40], PHRED33) == "!\"I"
        assert decode_phred("!\"I", PHRED33) == [0, 1, 40]

    def test_phred64(self):
        assert encode_phred([0, 40], PHRED64) == "@h"
        assert decode_phred("@h", PHRED64) == [0, 40]

    def test_paper_figure3_quality_line(self):
        """The example quality string from Figure 3 decodes cleanly."""
        line = ">>>>>>>>>>>>>>>6>>>>>>>;>>>>>>;>>;>;"
        scores = decode_phred(line, PHRED33)
        assert len(scores) == 36
        assert all(s >= 0 for s in scores)

    def test_out_of_range_rejected(self):
        with pytest.raises(TypeMismatchError):
            encode_phred([MAX_SCORE + 1], PHRED33)
        with pytest.raises(TypeMismatchError):
            encode_phred([-1], PHRED33)

    def test_phred64_cannot_hold_high_scores(self):
        with pytest.raises(TypeMismatchError):
            encode_phred([70], PHRED64)

    def test_decode_below_offset_rejected(self):
        with pytest.raises(TypeMismatchError):
            decode_phred("!", PHRED64)

    @given(st.lists(st.integers(0, 60), max_size=50))
    def test_round_trip_property(self, scores):
        assert decode_phred(encode_phred(scores, PHRED33), PHRED33) == scores


class TestAggregates:
    def test_mean_error_probability(self):
        assert mean_error_probability([10, 10]) == pytest.approx(0.1)
        assert mean_error_probability([]) == 0.0

    def test_expected_mismatches(self):
        assert expected_mismatches([10] * 10) == pytest.approx(1.0)
