"""Seed-hash aligner: exactness, strands, mismatch handling, mapq."""

import pytest

from repro.genomics.aligner import AlignmentError, ReferenceIndex, ShortReadAligner
from repro.genomics.fasta import FastaRecord
from repro.genomics.fastq import FastqRecord
from repro.genomics.sequences import reverse_complement

REF_SEQ = (
    "TTCAGGACCTACGGATTCAATGCCTTGAAGCGCATCGTAGCTAGCTTGCAAGGTTCCAGT"
    "ACCGTTAAGCGGATCCTTAGCAACGGTGCTTAAACCCGGGTTTACAGATCGATCGGGCTA"
)


@pytest.fixture(scope="module")
def small_aligner():
    return ShortReadAligner(
        [FastaRecord("chrT", REF_SEQ)], seed_length=8, max_mismatches=2
    )


def read_at(position, length=36, mutate=()):
    seq = list(REF_SEQ[position : position + length])
    for offset, base in mutate:
        seq[offset] = base
    return FastqRecord("test_read", "".join(seq), "I" * length)


class TestIndex:
    def test_indexes_all_kmers(self):
        index = ReferenceIndex([FastaRecord("c", "ACGTACGT")], seed_length=4)
        assert len(index) == len({"ACGT", "CGTA", "GTAC", "TACG"})
        assert ("c", 0) in index.lookup("ACGT")
        assert ("c", 4) in index.lookup("ACGT")

    def test_unknown_seed_empty(self):
        index = ReferenceIndex([FastaRecord("c", "AAAA")], seed_length=4)
        assert index.lookup("CCCC") == []

    def test_bad_seed_length(self):
        with pytest.raises(AlignmentError):
            ReferenceIndex([FastaRecord("c", "ACGT")], seed_length=2)


class TestExactAlignment:
    def test_forward_exact(self, small_aligner):
        hit = small_aligner.align(read_at(10))
        assert hit is not None
        assert (hit.reference, hit.position, hit.strand) == ("chrT", 10, "+")
        assert hit.mismatches == 0

    def test_reverse_strand(self, small_aligner):
        fragment = REF_SEQ[20:56]
        record = FastqRecord("rc", reverse_complement(fragment), "I" * 36)
        hit = small_aligner.align(record)
        assert hit is not None
        assert (hit.position, hit.strand) == (20, "-")
        assert hit.mismatches == 0

    def test_every_offset_alignable(self, small_aligner):
        for position in range(0, len(REF_SEQ) - 36, 7):
            hit = small_aligner.align(read_at(position))
            assert hit is not None and hit.position == position

    def test_foreign_sequence_unaligned(self, small_aligner):
        record = FastqRecord("junk", "A" * 36, "I" * 36)
        assert small_aligner.align(record) is None


class TestMismatches:
    def test_one_mismatch_found(self, small_aligner):
        hit = small_aligner.align(read_at(10, mutate=[(30, "A"), ]))
        # position 40 in ref is 'G'? regardless: one substitution somewhere
        if REF_SEQ[40] == "A":  # mutation was a no-op; pick another base
            hit = small_aligner.align(read_at(10, mutate=[(30, "C")]))
        assert hit is not None
        assert hit.position == 10
        assert hit.mismatches <= 1

    def test_two_mismatches_found(self, small_aligner):
        base1 = "A" if REF_SEQ[12] != "A" else "C"
        base2 = "A" if REF_SEQ[43] != "A" else "C"
        hit = small_aligner.align(read_at(10, mutate=[(2, base1), (33, base2)]))
        assert hit is not None and hit.position == 10

    def test_three_mismatches_rejected(self, small_aligner):
        mutations = []
        for offset in (2, 15, 33):
            original = REF_SEQ[10 + offset]
            mutations.append((offset, "A" if original != "A" else "C"))
        assert small_aligner.align(read_at(10, mutate=mutations)) is None

    def test_n_bases_count_as_mismatches(self, small_aligner):
        hit = small_aligner.align(read_at(10, mutate=[(20, "N")]))
        assert hit is not None and hit.mismatches == 1
        triple_n = read_at(10, mutate=[(5, "N"), (20, "N"), (30, "N")])
        assert small_aligner.align(triple_n) is None


class TestMappingQuality:
    def test_unique_exact_hit_high_mapq(self, small_aligner):
        hit = small_aligner.align(read_at(3))
        assert hit.mapping_quality >= 25

    def test_repeat_placement_zero_mapq(self):
        repeat = "ATCGGCTAAGCTTGCGATCCGTTAGCAAGCTGGATC"
        genome = "TTTT" + repeat + "CCCC" + repeat + "GGGG"
        aligner = ShortReadAligner(
            [FastaRecord("rep", genome)], seed_length=8
        )
        record = FastqRecord("r", repeat, "I" * len(repeat))
        hit = aligner.align(record)
        assert hit is not None
        assert hit.mapping_quality == 0


class TestAlignAll:
    def test_pairs_reads_with_hits(self, small_aligner):
        reads = [read_at(0), FastqRecord("junk", "A" * 36, "I" * 36)]
        results = list(small_aligner.align_all(reads))
        assert results[0][1] is not None
        assert results[1][1] is None

    def test_read_shorter_than_seed_rejected(self, small_aligner):
        with pytest.raises(AlignmentError):
            small_aligner.align(FastqRecord("tiny", "ACG", "III"))
