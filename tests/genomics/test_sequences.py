"""DNA primitives and bit packing."""

import pytest
from hypothesis import given, strategies as st

from repro.engine.errors import TypeMismatchError
from repro.genomics.sequences import (
    PackedDna,
    complement,
    count_ambiguous,
    gc_content,
    is_unambiguous,
    kmers,
    pack_2bit,
    pack_4bit,
    reverse_complement,
    unpack_2bit,
    unpack_4bit,
)

dna = st.text(alphabet="ACGT", max_size=100)
dna_with_n = st.text(alphabet="ACGTN", max_size=100)


class TestBasics:
    def test_complement(self):
        assert complement("ACGT") == "TGCA"
        assert complement("N") == "N"

    def test_reverse_complement(self):
        assert reverse_complement("ATGC") == "GCAT"
        assert reverse_complement("") == ""

    @given(dna)
    def test_revcomp_is_involution(self, seq):
        assert reverse_complement(reverse_complement(seq)) == seq

    def test_gc_content(self):
        assert gc_content("GGCC") == 1.0
        assert gc_content("AATT") == 0.0
        assert gc_content("ACGT") == 0.5
        assert gc_content("") == 0.0

    def test_ambiguity_helpers(self):
        assert is_unambiguous("ACGT")
        assert not is_unambiguous("ACGN")
        assert count_ambiguous("ANNA") == 2

    def test_kmers(self):
        assert list(kmers("ACGTA", 3)) == ["ACG", "CGT", "GTA"]
        assert list(kmers("AC", 3)) == []


class TestTwoBitPacking:
    @pytest.mark.parametrize("seq", ["", "A", "ACGT", "ACGTA", "T" * 37])
    def test_round_trip(self, seq):
        assert unpack_2bit(pack_2bit(seq)) == seq

    def test_density(self):
        # 4 bases per byte plus the 4-byte length header
        packed = pack_2bit("A" * 100)
        assert len(packed) == 4 + 25

    def test_rejects_ambiguous(self):
        with pytest.raises(TypeMismatchError):
            pack_2bit("ACGN")

    @given(dna)
    def test_round_trip_property(self, seq):
        assert unpack_2bit(pack_2bit(seq)) == seq


class TestFourBitPacking:
    @pytest.mark.parametrize("seq", ["", "N", "ACGTN", "RYSWKM", "A" * 33])
    def test_round_trip(self, seq):
        assert unpack_4bit(pack_4bit(seq)) == seq

    def test_density(self):
        packed = pack_4bit("N" * 100)
        assert len(packed) == 4 + 50

    def test_rejects_unknown_symbol(self):
        with pytest.raises(TypeMismatchError):
            pack_4bit("ACGX")

    @given(dna_with_n)
    def test_round_trip_property(self, seq):
        assert unpack_4bit(pack_4bit(seq)) == seq


class TestPackedDna:
    def test_pure_sequence_uses_2bit(self):
        raw = PackedDna("ACGTACGT").serialize()
        assert raw[0] == 2

    def test_ambiguous_sequence_uses_4bit(self):
        raw = PackedDna("ACGTN").serialize()
        assert raw[0] == 4

    @given(dna_with_n)
    def test_round_trip_property(self, seq):
        packed = PackedDna(seq)
        assert PackedDna.deserialize(packed.serialize()) == packed

    def test_quarter_size_claim(self):
        """The paper's future-work estimate: ~4x smaller than text."""
        seq = "ACGT" * 100
        assert len(PackedDna(seq).serialize()) < len(seq) / 3.5

    def test_str_and_len(self):
        packed = PackedDna("ACGT")
        assert str(packed) == "ACGT" and len(packed) == 4

    def test_empty_payload_rejected(self):
        with pytest.raises(TypeMismatchError):
            PackedDna.deserialize(b"")

    def test_bad_mode_rejected(self):
        with pytest.raises(TypeMismatchError):
            PackedDna.deserialize(b"\x07abc")
