"""SNP simulation and calling."""

import pytest

from repro.genomics.consensus import ConsensusResult
from repro.genomics.fasta import FastaRecord
from repro.genomics.variants import (
    Snp,
    VariantError,
    call_snps,
    compare_consensi,
    mutate_reference,
    score_calls,
)


class TestMutateReference:
    def test_truth_matches_changes(self, reference):
        mutated, truth = mutate_reference(reference, 0.002, seed=5)
        originals = {r.name: r.sequence for r in reference}
        for snp in truth:
            original = originals[snp.chromosome]
            changed = next(
                r.sequence for r in mutated if r.name == snp.chromosome
            )
            assert original[snp.position] == snp.ref_base
            assert changed[snp.position] == snp.alt_base
            assert snp.ref_base != snp.alt_base

    def test_rate_respected(self, reference):
        mutated, truth = mutate_reference(reference, 0.001, seed=5)
        total = sum(len(r.sequence) for r in reference)
        assert len(truth) == pytest.approx(total * 0.001, rel=0.2)

    def test_zero_rate_identity(self, reference):
        mutated, truth = mutate_reference(reference, 0.0, seed=5)
        assert truth == []
        assert [r.sequence for r in mutated] == [
            r.sequence for r in reference
        ]

    def test_deterministic(self, reference):
        _m1, t1 = mutate_reference(reference, 0.001, seed=9)
        _m2, t2 = mutate_reference(reference, 0.001, seed=9)
        assert t1 == t2

    def test_bad_rate(self, reference):
        with pytest.raises(VariantError):
            mutate_reference(reference, 1.5)


def make_consensus(sequence, qualities=None, start=0):
    qualities = qualities if qualities is not None else [40] * len(sequence)
    return ConsensusResult(
        chromosome="chrT",
        sequence=sequence,
        qualities=qualities,
        covered_positions=len(sequence),
        total_observations=len(sequence),
        start=start,
    )


class TestCallSnps:
    REF = "ACGTACGTAC"

    def test_perfect_consensus_no_snps(self):
        assert call_snps(self.REF, make_consensus(self.REF)) == []

    def test_single_difference_called(self):
        consensus = make_consensus("ACGTTCGTAC")
        snps = call_snps(self.REF, consensus)
        assert snps == [Snp("chrT", 4, "A", "T", 40)]

    def test_n_positions_skipped(self):
        consensus = make_consensus("ACGTNCGTAC")
        assert call_snps(self.REF, consensus) == []

    def test_low_quality_filtered(self):
        consensus = make_consensus("ACGTTCGTAC", qualities=[5] * 10)
        assert call_snps(self.REF, consensus, min_quality=20) == []
        assert len(call_snps(self.REF, consensus, min_quality=0)) == 1

    def test_start_offset_respected(self):
        consensus = make_consensus("TACG", start=3)
        # reference[3:7] == "TACG": no difference
        assert call_snps(self.REF, consensus) == []
        shifted = make_consensus("TACC", start=3)
        snps = call_snps(self.REF, shifted)
        assert snps == [Snp("chrT", 6, "G", "C", 40)]

    def test_consensus_past_reference_end_clipped(self):
        consensus = make_consensus("ACGTACGTACGTACGT")  # longer than ref
        snps = call_snps(self.REF, consensus)
        assert all(s.position < len(self.REF) for s in snps)


class TestScore:
    def test_perfect_calls(self):
        truth = [Snp("c", 1, "A", "T"), Snp("c", 5, "G", "C")]
        score = score_calls(truth, truth)
        assert score["precision"] == 1.0 and score["recall"] == 1.0

    def test_partial_recall(self):
        truth = [Snp("c", 1, "A", "T"), Snp("c", 5, "G", "C")]
        score = score_calls(truth[:1], truth)
        assert score["recall"] == 0.5 and score["precision"] == 1.0

    def test_false_positive_hits_precision(self):
        truth = [Snp("c", 1, "A", "T")]
        called = truth + [Snp("c", 9, "A", "G")]
        score = score_calls(called, truth)
        assert score["precision"] == 0.5 and score["recall"] == 1.0

    def test_empty_cases(self):
        assert score_calls([], [])["precision"] == 1.0


class TestCompareConsensi:
    def test_differences_found(self):
        a = make_consensus("ACGT")
        b = make_consensus("ACCT")
        assert compare_consensi(a, b, "chrT") == [(2, "G", "C")]

    def test_n_ignored(self):
        a = make_consensus("ACNT")
        b = make_consensus("ACCT")
        assert compare_consensi(a, b, "chrT") == []

    def test_offset_windows_overlap(self):
        a = make_consensus("ACGTAC", start=0)
        b = make_consensus("GAACGG", start=2)
        # overlap covers positions 2..5: a="GTAC", b="GAAC" -> diff at 3, 4
        diffs = compare_consensi(a, b, "chrT")
        assert (3, "T", "A") in diffs


class TestEndToEndRecovery:
    def test_planted_snps_recovered_through_pipeline(self, reference):
        """Sequence an individual (mutated genome), align against the
        *original* reference, call SNPs — the planted variants must come
        back with high precision and recall."""
        from repro.core import GenomicsWarehouse
        from repro.genomics.simulate import simulate_resequencing_lane

        individual, truth = mutate_reference(reference, 0.0015, seed=17)
        reads = list(
            simulate_resequencing_lane(individual, n_reads=12_000, seed=18)
        )
        wh = GenomicsWarehouse()
        try:
            wh.load_reference(reference)  # align against the REFERENCE
            wh.register_experiment(1, "snp test", "resequencing")
            wh.register_sample_group(1, 1, "g")
            wh.register_sample(1, 1, 1, "s")
            wh.import_lane_relational(1, 1, 1, reads)
            wh.align_reads(1, 1, 1)
            called = wh.call_variants(1, 1, 1, min_quality=30)
            score = score_calls(called, truth)
            assert score["recall"] > 0.7
            assert score["precision"] > 0.9
            # Variant table populated
            stored = wh.db.scalar("SELECT COUNT(*) FROM Variant")
            assert stored == len(called)
        finally:
            wh.close()
