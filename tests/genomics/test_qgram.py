"""Q-gram index: exact and approximate sequence search."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.qgram import QGramError, QGramIndex, SequenceMatch


def brute_force(sequences, pattern, max_mismatches):
    """Reference implementation: scan every window."""
    out = set()
    for sequence_id, sequence in sequences.items():
        for start in range(len(sequence) - len(pattern) + 1):
            window = sequence[start : start + len(pattern)]
            mismatches = sum(1 for a, b in zip(pattern, window) if a != b)
            if mismatches <= max_mismatches:
                out.add((sequence_id, start, mismatches))
    return out


def as_set(matches):
    return {(m.sequence_id, m.position, m.mismatches) for m in matches}


@pytest.fixture
def small_index():
    index = QGramIndex(q=4)
    index.add(1, "ACGTACGTAAAA")
    index.add(2, "TTTTACGTCCCC")
    index.add(3, "GGGGGGGGGGGG")
    return index


class TestBuild:
    def test_counts(self, small_index):
        assert len(small_index) == 3
        stats = small_index.stats()
        assert stats["postings"] == 3 * (12 - 4 + 1)

    def test_duplicate_id_rejected(self, small_index):
        with pytest.raises(QGramError):
            small_index.add(1, "ACGT")

    def test_bad_q(self):
        with pytest.raises(QGramError):
            QGramIndex(q=1)

    def test_sequence_lookup(self, small_index):
        assert small_index.sequence(2) == "TTTTACGTCCCC"
        with pytest.raises(QGramError):
            small_index.sequence(99)


class TestExactSearch:
    def test_finds_all_occurrences(self, small_index):
        hits = as_set(small_index.search_exact("ACGT"))
        assert hits == {(1, 0, 0), (1, 4, 0), (2, 4, 0)}

    def test_absent_pattern(self, small_index):
        assert list(small_index.search_exact("ACGTTTTTT")) == []

    def test_pattern_longer_than_gram(self, small_index):
        hits = as_set(small_index.search_exact("ACGTACGT"))
        assert hits == {(1, 0, 0)}

    def test_short_pattern_falls_back_to_scan(self, small_index):
        hits = as_set(small_index.search_exact("GG"))
        assert all(seq_id == 3 for seq_id, _p, _m in hits)
        assert len(hits) == 11


class TestApproximateSearch:
    def test_zero_mismatch_equals_exact(self, small_index):
        assert as_set(small_index.search_approximate("ACGT", 0)) == as_set(
            small_index.search_exact("ACGT")
        )

    def test_one_mismatch(self, small_index):
        hits = as_set(small_index.search_approximate("ACGTACGA", 1))
        assert (1, 0, 1) in hits

    def test_matches_brute_force_on_random_data(self):
        rng = random.Random(13)
        sequences = {
            i: "".join(rng.choices("ACGT", k=60)) for i in range(30)
        }
        index = QGramIndex(q=5)
        index.add_all(sequences.items())
        pattern = sequences[7][10:30]
        for k in (0, 1, 2):
            assert as_set(index.search_approximate(pattern, k)) == (
                brute_force(sequences, pattern, k)
            )

    def test_negative_mismatches_rejected(self, small_index):
        with pytest.raises(QGramError):
            list(small_index.search_approximate("ACGT", -1))

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.text(alphabet="ACGT", min_size=12, max_size=40),
            min_size=1,
            max_size=10,
        ),
        st.text(alphabet="ACGT", min_size=10, max_size=14),
        st.integers(0, 2),
    )
    def test_equals_brute_force_property(self, seqs, pattern, k):
        sequences = dict(enumerate(seqs))
        index = QGramIndex(q=4)
        index.add_all(sequences.items())
        assert as_set(index.search_approximate(pattern, k)) == (
            brute_force(sequences, pattern, k)
        )
