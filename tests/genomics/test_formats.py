"""FASTA, FASTQ, MAQ map, and SRF format round trips."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.genomics.aligner import Alignment
from repro.genomics.fasta import (
    FastaFormatError,
    FastaRecord,
    index_fasta,
    read_fasta,
    write_fasta,
)
from repro.genomics.fastq import (
    FastqFormatError,
    FastqRecord,
    count_records,
    fastq_bytes,
    parse_illumina_name,
    read_fastq,
    write_fastq,
)
from repro.genomics.maqmap import (
    MapFormatError,
    read_binary_map,
    read_text_map,
    write_binary_map,
    write_text_map,
)
from repro.genomics.srf import SrfFormatError, SrfRecord, read_srf, write_srf


class TestFasta:
    RECORDS = [
        FastaRecord("chr1", "ACGT" * 50, "synthetic chromosome 1"),
        FastaRecord("chr2", "GGCC"),
    ]

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "ref.fasta"
        assert write_fasta(self.RECORDS, path) == 2
        assert list(read_fasta(path)) == self.RECORDS

    def test_sixty_column_wrapping(self, tmp_path):
        path = tmp_path / "ref.fasta"
        write_fasta([FastaRecord("x", "A" * 150)], path)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert [len(l) for l in lines[1:]] == [60, 60, 30]

    def test_reads_any_wrap_width(self):
        text = ">x desc here\nACG\nTACG\nT\n"
        records = list(read_fasta(io.StringIO(text)))
        assert records == [FastaRecord("x", "ACGTACGTT"[:8], "desc here")]

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaFormatError):
            list(read_fasta(io.StringIO("ACGT\n>x\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(FastaFormatError):
            list(read_fasta(io.StringIO(">\nACGT\n")))

    def test_index_fasta(self, tmp_path):
        path = tmp_path / "r.fasta"
        write_fasta(self.RECORDS, path)
        index = index_fasta(path)
        assert index["chr2"] == "GGCC"

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abcXYZ123", min_size=1, max_size=10),
                st.text(alphabet="ACGTN", max_size=200),
            ),
            max_size=5,
        )
    )
    def test_round_trip_property(self, pairs):
        # unique names required for a sensible file
        records = [
            FastaRecord(f"{name}_{i}", seq) for i, (name, seq) in enumerate(pairs)
        ]
        buffer = io.StringIO()
        write_fasta(records, buffer)
        buffer.seek(0)
        assert list(read_fasta(buffer)) == records


class TestFastq:
    RECORDS = [
        FastqRecord("IL4_855:1:1:954:659", "GTTT", ">>>>"),
        FastqRecord("IL4_855:1:1:497:759", "ACGTN", "IIII!"),
    ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "lane.fastq"
        assert write_fastq(self.RECORDS, path) == 2
        assert list(read_fastq(path)) == self.RECORDS

    def test_figure3_format_shape(self):
        payload = fastq_bytes(self.RECORDS[:1]).decode()
        lines = payload.splitlines()
        assert lines[0].startswith("@")
        assert lines[2] == "+"
        assert len(lines) == 4

    def test_length_mismatch_rejected(self):
        with pytest.raises(FastqFormatError):
            FastqRecord("x", "ACGT", "II")

    def test_missing_plus_rejected(self):
        bad = io.StringIO("@x\nACGT\nIIII\nACGT\n")
        with pytest.raises(FastqFormatError):
            list(read_fastq(bad))

    def test_bad_header_rejected(self):
        bad = io.StringIO("x\nACGT\n+\nIIII\n")
        with pytest.raises(FastqFormatError):
            list(read_fastq(bad))

    def test_count_records(self, tmp_path):
        path = tmp_path / "lane.fastq"
        write_fastq(self.RECORDS, path)
        assert count_records(path) == 2

    def test_illumina_name_round_trip(self):
        parsed = parse_illumina_name("IL4_855:1:293:426:864")
        assert (parsed.machine, parsed.run_id) == ("IL4", 855)
        assert (parsed.lane, parsed.tile, parsed.x, parsed.y) == (1, 293, 426, 864)
        assert parsed.format() == "IL4_855:1:293:426:864"

    def test_bad_illumina_name(self):
        with pytest.raises(FastqFormatError):
            parse_illumina_name("not-a-read-name")

    def test_scores_accessor(self):
        record = FastqRecord("x", "AC", "!I")
        assert record.scores() == [0, 40]


ALIGNMENTS = [
    Alignment("read1", "chr1", 100, "+", 0, 60, 36),
    Alignment("read2", "chr2", 0, "-", 2, 17, 36),
    Alignment("r:with:colons", "chr10", 99999, "+", 1, 0, 50),
]


class TestMaqMap:
    def test_binary_round_trip(self, tmp_path):
        path = tmp_path / "aln.map"
        assert write_binary_map(ALIGNMENTS, path) == 3
        assert list(read_binary_map(path)) == ALIGNMENTS

    def test_binary_magic_check(self, tmp_path):
        path = tmp_path / "bogus.map"
        path.write_bytes(b"NOTAMAP")
        with pytest.raises(MapFormatError):
            list(read_binary_map(path))

    def test_text_round_trip(self, tmp_path):
        path = tmp_path / "aln.txt"
        write_text_map(ALIGNMENTS, path)
        assert list(read_text_map(path)) == ALIGNMENTS

    def test_text_positions_one_based(self, tmp_path):
        path = tmp_path / "aln.txt"
        write_text_map(ALIGNMENTS[:1], path)
        assert path.read_text().split("\t")[2] == "101"

    def test_text_with_sequences(self, tmp_path):
        path = tmp_path / "aln.txt"
        write_text_map(
            ALIGNMENTS[:1], path, sequences={"read1": ("ACGT", "IIII")}
        )
        fields = path.read_text().rstrip("\n").split("\t")
        assert fields[-2:] == ["ACGT", "IIII"]
        # reader tolerates the extended form
        assert list(read_text_map(path)) == ALIGNMENTS[:1]

    def test_text_field_count_checked(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("only\tthree\tfields\n")
        with pytest.raises(MapFormatError):
            list(read_text_map(path))


class TestSrf:
    RECORDS = [
        SrfRecord("r1", "ACGT", "IIII", 812.5, 14.25),
        SrfRecord("r2", "GGTA", "!!!!", 0.0, 0.0),
    ]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "lane.srf"
        assert write_srf(self.RECORDS, path) == 2
        result = list(read_srf(path))
        assert [(r.name, r.sequence, r.quality) for r in result] == [
            ("r1", "ACGT", "IIII"),
            ("r2", "GGTA", "!!!!"),
        ]
        assert result[0].intensity == pytest.approx(812.5)
        assert result[0].signal_to_noise == pytest.approx(14.25)

    def test_magic_check(self, tmp_path):
        path = tmp_path / "bogus.srf"
        path.write_bytes(b"JUNKJUNK")
        with pytest.raises(SrfFormatError):
            list(read_srf(path))

    def test_fastq_conversion(self):
        record = self.RECORDS[0]
        fastq = record.to_fastq()
        assert (fastq.name, fastq.sequence) == ("r1", "ACGT")
        back = SrfRecord.from_fastq(fastq, 1.0, 2.0)
        assert back.intensity == 1.0
