"""Reproduction of "Data Management for High-Throughput Genomics"
(Roehm & Blakeley, CIDR 2009).

Subpackages:

- :mod:`repro.engine` — an extensible relational engine (the SQL Server
  2008 substitute): SQL subset, FILESTREAM BLOBs, UDF/TVF/UDA/UDT
  contracts, row/page compression, parallel plans;
- :mod:`repro.genomics` — the genomics substrate: formats, simulation,
  alignment, consensus;
- :mod:`repro.core` — the paper's contribution: schemas, file-wrapper
  TVFs, analysis UDAs, canonical queries, warehouse, workflow;
- :mod:`repro.baselines` — the file-centric comparison points.
"""

from .core import GenomicsWarehouse
from .engine import Database

__version__ = "1.0.0"

__all__ = ["Database", "GenomicsWarehouse", "__version__"]
