"""Synthetic genomes and Illumina-like short reads.

The paper's experiments run on data we cannot ship (Sanger Institute
production lanes). This module generates the closest synthetic
equivalents; what matters for the reproduced experiments is preserved:

- **record structure** — 36 bp reads, Phred+33 quality strings, Illumina
  composite read names (machine_run:lane:tile:x:y on a 300-tile lane);
- **re-sequencing statistics** (Table 2 workload) — reads drawn
  uniformly across a multi-chromosome reference at a target coverage,
  so almost all reads are unique;
- **digital-gene-expression statistics** (Table 1 workload) — tags drawn
  from a Zipf-distributed expression profile over annotated genes, so a
  small set of tags repeats heavily (565 k uniques out of millions in
  the paper's lane);
- **quality decay** — scores fall off along the read as on real
  instruments, and base-call errors are sampled from those scores.

Everything is deterministic under a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError
from .fasta import FastaRecord
from .fastq import FastqRecord, IlluminaReadName
from .quality import MAX_SCORE, encode_phred, phred_to_error_probability
from .sequences import DNA_ALPHABET, reverse_complement

#: tiles per lane (paper Section 2.1: "about 300 tiles")
TILES_PER_LANE = 300

#: typical early-Illumina read length
DEFAULT_READ_LENGTH = 36


class SimulationError(EngineError):
    pass


# ---------------------------------------------------------------------------
# reference genomes
# ---------------------------------------------------------------------------


def generate_reference(
    n_chromosomes: int = 3,
    chromosome_length: int = 100_000,
    gc: float = 0.41,
    repeat_fraction: float = 0.05,
    seed: int = 7,
) -> List[FastaRecord]:
    """Generate a reference of ``n_chromosomes`` random chromosomes.

    ``gc`` sets the G+C fraction (human ≈ 0.41); ``repeat_fraction`` of
    each chromosome is filled by copying earlier segments, giving the
    aligner realistic repetitive regions.
    """
    if not 0.0 < gc < 1.0:
        raise SimulationError(f"gc must be in (0,1), got {gc}")
    rng = random.Random(seed)
    weights = [(1 - gc) / 2, gc / 2, gc / 2, (1 - gc) / 2]  # A C G T
    records = []
    for chrom in range(1, n_chromosomes + 1):
        bases = rng.choices(DNA_ALPHABET, weights=weights, k=chromosome_length)
        # paste repeats: copy random earlier windows over later positions
        repeat_budget = int(chromosome_length * repeat_fraction)
        while repeat_budget > 0 and chromosome_length > 2000:
            length = rng.randint(200, 1000)
            src = rng.randrange(0, chromosome_length - length)
            dst = rng.randrange(src + length, max(src + length + 1, chromosome_length - length))
            bases[dst : dst + length] = bases[src : src + length]
            repeat_budget -= length
        records.append(
            FastaRecord(
                name=f"chr{chrom}",
                sequence="".join(bases),
                description=f"synthetic chromosome {chrom}",
            )
        )
    return records


# ---------------------------------------------------------------------------
# gene annotation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GeneAnnotation:
    """A gene locus on the reference (the ``Gene`` table's rows)."""

    gene_id: int
    name: str
    chromosome: str
    start: int  # 0-based inclusive
    end: int  # 0-based exclusive
    strand: str  # '+' or '-'


def annotate_genes(
    reference: Sequence[FastaRecord],
    n_genes: int = 200,
    gene_length: Tuple[int, int] = (500, 3000),
    seed: int = 11,
) -> List[GeneAnnotation]:
    """Place non-overlapping gene annotations across the reference."""
    rng = random.Random(seed)
    genes: List[GeneAnnotation] = []
    occupied = {record.name: [] for record in reference}
    attempts = 0
    while len(genes) < n_genes and attempts < n_genes * 50:
        attempts += 1
        record = rng.choice(list(reference))
        length = rng.randint(*gene_length)
        if len(record.sequence) <= length + 1:
            continue
        start = rng.randrange(0, len(record.sequence) - length)
        end = start + length
        if any(s < end and start < e for s, e in occupied[record.name]):
            continue
        occupied[record.name].append((start, end))
        gene_id = len(genes) + 1
        genes.append(
            GeneAnnotation(
                gene_id=gene_id,
                name=f"GENE{gene_id:05d}",
                chromosome=record.name,
                start=start,
                end=end,
                strand=rng.choice("+-"),
            )
        )
    if len(genes) < n_genes:
        raise SimulationError(
            f"could only place {len(genes)} of {n_genes} genes; "
            "enlarge the reference"
        )
    return genes


# ---------------------------------------------------------------------------
# error / quality model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class QualityModel:
    """Position-dependent quality decay, Illumina-like.

    Quality starts near ``start_q`` and decays linearly by ``decay`` per
    cycle with ``jitter`` noise; base-call errors are then sampled from
    the per-base error probability those scores imply.
    """

    start_q: int = 35
    decay: float = 0.35
    jitter: int = 3

    def scores(self, length: int, rng: random.Random) -> List[int]:
        out = []
        for i in range(length):
            q = self.start_q - self.decay * i + rng.randint(-self.jitter, self.jitter)
            out.append(max(2, min(MAX_SCORE, round(q))))
        return out

    def corrupt(
        self, fragment: str, scores: Sequence[int], rng: random.Random
    ) -> str:
        bases = list(fragment)
        for i, score in enumerate(scores):
            if rng.random() < phred_to_error_probability(score):
                if rng.random() < 0.02:
                    bases[i] = "N"  # no-call
                else:
                    bases[i] = rng.choice(
                        [b for b in DNA_ALPHABET if b != bases[i]]
                    )
        return "".join(bases)


# ---------------------------------------------------------------------------
# name generation
# ---------------------------------------------------------------------------


class _NameFactory:
    """Generates Illumina-style composite read names for one lane."""

    def __init__(self, machine: str, run_id: int, lane: int, rng: random.Random):
        self.machine = machine
        self.run_id = run_id
        self.lane = lane
        self._rng = rng

    def next_name(self) -> str:
        return IlluminaReadName(
            machine=self.machine,
            run_id=self.run_id,
            lane=self.lane,
            tile=self._rng.randint(1, TILES_PER_LANE),
            x=self._rng.randint(0, 2047),
            y=self._rng.randint(0, 2047),
        ).format()


# ---------------------------------------------------------------------------
# re-sequencing reads (1000 Genomes workload)
# ---------------------------------------------------------------------------


def simulate_resequencing_lane(
    reference: Sequence[FastaRecord],
    n_reads: int,
    read_length: int = DEFAULT_READ_LENGTH,
    machine: str = "IL4",
    run_id: int = 855,
    lane: int = 1,
    quality_model: Optional[QualityModel] = None,
    seed: int = 23,
) -> Iterator[FastqRecord]:
    """Reads drawn uniformly over the reference — mostly unique reads,
    the Table 2 / consensus-calling workload."""
    qm = quality_model or QualityModel()
    rng = random.Random(seed)
    names = _NameFactory(machine, run_id, lane, rng)
    chromosomes = [
        r for r in reference if len(r.sequence) >= read_length
    ]
    if not chromosomes:
        raise SimulationError("no chromosome is long enough for the read length")
    weights = [len(r.sequence) for r in chromosomes]
    for _ in range(n_reads):
        record = rng.choices(chromosomes, weights=weights, k=1)[0]
        position = rng.randrange(0, len(record.sequence) - read_length + 1)
        fragment = record.sequence[position : position + read_length]
        if rng.random() < 0.5:
            fragment = reverse_complement(fragment)
        scores = qm.scores(read_length, rng)
        sequence = qm.corrupt(fragment, scores, rng)
        yield FastqRecord.from_scores(names.next_name(), sequence, scores)


# ---------------------------------------------------------------------------
# digital gene expression tags (Table 1 workload)
# ---------------------------------------------------------------------------


def expression_profile(
    genes: Sequence[GeneAnnotation],
    zipf_s: float = 1.2,
    expressed_fraction: float = 0.6,
    seed: int = 31,
) -> List[Tuple[GeneAnnotation, float]]:
    """Assign each expressed gene a Zipf-distributed relative activity.

    Gene expression is famously heavy-tailed: a few genes produce most
    of the mRNA. ``expressed_fraction`` of genes are active at all
    ("only a fraction of the genome is active in a cell").
    """
    rng = random.Random(seed)
    expressed = [g for g in genes if rng.random() < expressed_fraction]
    if not expressed:
        expressed = list(genes[:1])
    rng.shuffle(expressed)
    weights = [1.0 / (rank**zipf_s) for rank in range(1, len(expressed) + 1)]
    total = sum(weights)
    return [
        (gene, weight / total) for gene, weight in zip(expressed, weights)
    ]


def simulate_dge_lane(
    reference: Sequence[FastaRecord],
    genes: Sequence[GeneAnnotation],
    n_reads: int,
    read_length: int = DEFAULT_READ_LENGTH,
    machine: str = "IL4",
    run_id: int = 855,
    lane: int = 1,
    zipf_s: float = 1.2,
    quality_model: Optional[QualityModel] = None,
    seed: int = 31,
) -> Iterator[FastqRecord]:
    """Tags sampled from gene tag-sites under a Zipf expression profile.

    Each gene has one canonical tag site near its 3' end (as in
    LongSAGE-style digital expression), so reads from the same gene are
    (error-free case) identical — producing the heavy tag repetition
    that makes the Table 1 data compress so well.
    """
    qm = quality_model or QualityModel()
    rng = random.Random(seed)
    names = _NameFactory(machine, run_id, lane, rng)
    by_name = {record.name: record.sequence for record in reference}
    profile = expression_profile(genes, zipf_s=zipf_s, seed=seed)
    gene_list = [gene for gene, _ in profile]
    weights = [weight for _, weight in profile]
    tag_sites = {}
    for gene in gene_list:
        chrom_seq = by_name[gene.chromosome]
        # tag site: read_length window ending ~20 bp before the gene end
        site_end = min(gene.end - 20, len(chrom_seq))
        site_start = max(gene.start, site_end - read_length)
        if site_end - site_start < read_length:
            site_start = gene.start
            site_end = site_start + read_length
        tag_sites[gene.gene_id] = (gene.chromosome, site_start)
    for _ in range(n_reads):
        gene = rng.choices(gene_list, weights=weights, k=1)[0]
        chromosome, start = tag_sites[gene.gene_id]
        fragment = by_name[chromosome][start : start + read_length]
        if gene.strand == "-":
            fragment = reverse_complement(fragment)
        scores = qm.scores(read_length, rng)
        sequence = qm.corrupt(fragment, scores, rng)
        yield FastqRecord.from_scores(names.next_name(), sequence, scores)
