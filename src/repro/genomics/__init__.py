"""Genomics substrate: sequences, formats, simulation, alignment,
consensus calling."""

from .aligner import Alignment, ReferenceIndex, ShortReadAligner
from .consensus import (
    ConsensusResult,
    Pileup,
    SlidingWindowConsensus,
    call_base,
    consensus_by_chromosome,
)
from .fasta import FastaRecord, read_fasta, write_fasta
from .fastq import (
    FastqRecord,
    IlluminaReadName,
    parse_illumina_name,
    read_fastq,
    write_fastq,
)
from .quality import decode_phred, encode_phred
from .sequences import PackedDna, reverse_complement
from .variants import Snp, call_snps, compare_consensi, mutate_reference, score_calls
from .simulate import (
    GeneAnnotation,
    QualityModel,
    annotate_genes,
    generate_reference,
    simulate_dge_lane,
    simulate_resequencing_lane,
)

__all__ = [
    "Alignment",
    "ConsensusResult",
    "FastaRecord",
    "FastqRecord",
    "GeneAnnotation",
    "IlluminaReadName",
    "PackedDna",
    "Pileup",
    "QualityModel",
    "ReferenceIndex",
    "ShortReadAligner",
    "SlidingWindowConsensus",
    "annotate_genes",
    "call_base",
    "consensus_by_chromosome",
    "decode_phred",
    "encode_phred",
    "generate_reference",
    "parse_illumina_name",
    "read_fasta",
    "read_fastq",
    "reverse_complement",
    "Snp",
    "call_snps",
    "compare_consensi",
    "mutate_reference",
    "score_calls",
    "simulate_dge_lane",
    "simulate_resequencing_lane",
    "write_fasta",
    "write_fastq",
]
