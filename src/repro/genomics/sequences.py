"""DNA sequence primitives.

Plain-string sequence utilities (complement, reverse complement, GC
content) plus the bit-packed encodings the paper's future-work section
calls for ("a bit-encoding of the sequences could reduce the size to
just about a quarter"): a 2-bit encoding for pure ACGT strings and a
4-bit encoding that also covers IUPAC ambiguity codes such as ``N``.

:class:`PackedDna` is the payload object behind the ``DnaSequence`` UDT
registered by :func:`repro.core.wrappers.register_extensions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..engine.errors import TypeMismatchError

DNA_ALPHABET = "ACGT"

#: IUPAC nucleotide codes (subset used in practice for short reads)
IUPAC_CODES = "ACGTNRYSWKM"

_COMPLEMENT = str.maketrans("ACGTNRYSWKMacgtn", "TGCANYRSWMKtgcan")

_TWO_BIT = {"A": 0, "C": 1, "G": 2, "T": 3}
_TWO_BIT_REV = "ACGT"

_FOUR_BIT = {base: i for i, base in enumerate(IUPAC_CODES)}
_FOUR_BIT_REV = IUPAC_CODES


def complement(seq: str) -> str:
    """Base-wise complement."""
    return seq.translate(_COMPLEMENT)


def reverse_complement(seq: str) -> str:
    """Reverse complement (the minus-strand reading of ``seq``)."""
    return complement(seq)[::-1]


def gc_content(seq: str) -> float:
    """Fraction of G/C bases (0.0 for the empty sequence)."""
    if not seq:
        return 0.0
    gc = sum(1 for base in seq if base in "GCgc")
    return gc / len(seq)


def is_unambiguous(seq: str) -> bool:
    """True when the sequence contains only A/C/G/T."""
    return all(base in _TWO_BIT for base in seq)


def count_ambiguous(seq: str) -> int:
    """Number of non-ACGT symbols (the 'N's that Query 1 filters out)."""
    return sum(1 for base in seq if base not in _TWO_BIT)


def kmers(seq: str, k: int) -> Iterator[str]:
    """All overlapping k-mers of ``seq`` in order."""
    for i in range(len(seq) - k + 1):
        yield seq[i : i + k]


# ---------------------------------------------------------------------------
# bit packing
# ---------------------------------------------------------------------------


def pack_2bit(seq: str) -> bytes:
    """Pack a pure-ACGT sequence at 2 bits/base.

    Layout: 4-byte big-endian length, then bases packed 4 per byte,
    most-significant pair first. Raises on ambiguous symbols.
    """
    out = bytearray(len(seq).to_bytes(4, "big"))
    acc = 0
    bits = 0
    for base in seq:
        try:
            code = _TWO_BIT[base]
        except KeyError:
            raise TypeMismatchError(
                f"cannot 2-bit pack ambiguous base {base!r}"
            ) from None
        acc = (acc << 2) | code
        bits += 2
        if bits == 8:
            out.append(acc)
            acc, bits = 0, 0
    if bits:
        out.append(acc << (8 - bits))
    return bytes(out)


def unpack_2bit(raw: bytes) -> str:
    length = int.from_bytes(raw[:4], "big")
    bases = []
    for byte in raw[4:]:
        for shift in (6, 4, 2, 0):
            bases.append(_TWO_BIT_REV[(byte >> shift) & 0b11])
            if len(bases) == length:
                return "".join(bases)
    if length == 0:
        return ""
    return "".join(bases[:length])


def pack_4bit(seq: str) -> bytes:
    """Pack an IUPAC sequence at 4 bits/base (handles ``N`` etc.)."""
    out = bytearray(len(seq).to_bytes(4, "big"))
    acc = 0
    half = False
    for base in seq:
        try:
            code = _FOUR_BIT[base]
        except KeyError:
            raise TypeMismatchError(f"unknown base {base!r}") from None
        if half:
            out.append(acc | code)
            half = False
        else:
            acc = code << 4
            half = True
    if half:
        out.append(acc)
    return bytes(out)


def unpack_4bit(raw: bytes) -> str:
    length = int.from_bytes(raw[:4], "big")
    bases = []
    for byte in raw[4:]:
        bases.append(_FOUR_BIT_REV[byte >> 4])
        if len(bases) == length:
            break
        bases.append(_FOUR_BIT_REV[byte & 0x0F])
        if len(bases) == length:
            break
    return "".join(bases[:length])


@dataclass(frozen=True)
class PackedDna:
    """A DNA sequence stored bit-packed (the ``DnaSequence`` UDT payload).

    Chooses 2-bit packing when the sequence is pure ACGT and falls back
    to 4-bit for ambiguous sequences; the first byte of the serialised
    form records which.
    """

    sequence: str

    def serialize(self) -> bytes:
        if is_unambiguous(self.sequence):
            return b"\x02" + pack_2bit(self.sequence)
        return b"\x04" + pack_4bit(self.sequence)

    @staticmethod
    def deserialize(raw: bytes) -> "PackedDna":
        if not raw:
            raise TypeMismatchError("empty DnaSequence payload")
        mode, payload = raw[0], raw[1:]
        if mode == 2:
            return PackedDna(unpack_2bit(payload))
        if mode == 4:
            return PackedDna(unpack_4bit(payload))
        raise TypeMismatchError(f"bad DnaSequence mode byte {mode}")

    def __len__(self) -> int:
        return len(self.sequence)

    def __str__(self) -> str:
        return self.sequence
