"""Q-gram indexing for in-database sequence search.

The paper's future work (Section 6.1) points at indexing as the key to
sequence search inside a DBMS, citing suffix-tree indexing of proteins
[7] and the BLAST-in-the-RDBMS studies [13][18]. This module provides
the classic *q-gram* index those systems build on:

- every length-``q`` substring of every indexed sequence is hashed to
  the (sequence id, offset) positions where it occurs;
- **exact substring search** looks up the pattern's first q-gram and
  verifies candidates;
- **approximate search** uses the q-gram counting lemma: a pattern of
  length ``m`` matching with at most ``k`` errors shares at least
  ``m - q + 1 - k*q`` q-grams with its occurrence, so candidates can be
  vote-counted and only plausible ones verified.

The :class:`~repro.core.wrappers` layer exposes this as the
``SearchShortReads`` TVF so SQL queries can do
``SELECT * FROM SearchShortReads('ACGTACGT', 1)``.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError


class QGramError(EngineError):
    pass


@dataclass(frozen=True)
class SequenceMatch:
    """One verified occurrence of the pattern."""

    sequence_id: int
    position: int
    mismatches: int


class QGramIndex:
    """A q-gram index over a collection of (id, sequence) pairs."""

    def __init__(self, q: int = 8):
        if q < 2 or q > 32:
            raise QGramError(f"unreasonable q {q}")
        self.q = q
        self._sequences: Dict[int, str] = {}
        self._grams: Dict[str, List[Tuple[int, int]]] = defaultdict(list)

    # -- building -----------------------------------------------------------------

    def add(self, sequence_id: int, sequence: str) -> None:
        if sequence_id in self._sequences:
            raise QGramError(f"sequence id {sequence_id} already indexed")
        self._sequences[sequence_id] = sequence
        q = self.q
        grams = self._grams
        for i in range(len(sequence) - q + 1):
            grams[sequence[i : i + q]].append((sequence_id, i))

    def add_all(self, pairs: Sequence[Tuple[int, str]]) -> None:
        for sequence_id, sequence in pairs:
            self.add(sequence_id, sequence)

    def __len__(self) -> int:
        return len(self._sequences)

    @property
    def gram_count(self) -> int:
        return len(self._grams)

    def sequence(self, sequence_id: int) -> str:
        try:
            return self._sequences[sequence_id]
        except KeyError:
            raise QGramError(f"unknown sequence id {sequence_id}") from None

    # -- exact substring search ------------------------------------------------------

    def search_exact(self, pattern: str) -> Iterator[SequenceMatch]:
        """All occurrences of ``pattern`` as an exact substring."""
        if len(pattern) < self.q:
            # short patterns: scan the grams starting with the pattern is
            # wrong; fall back to scanning all sequences (documented cost)
            for sequence_id, sequence in self._sequences.items():
                start = sequence.find(pattern)
                while start >= 0:
                    yield SequenceMatch(sequence_id, start, 0)
                    start = sequence.find(pattern, start + 1)
            return
        anchor = pattern[: self.q]
        for sequence_id, offset in self._grams.get(anchor, ()):
            sequence = self._sequences[sequence_id]
            if sequence.startswith(pattern, offset):
                yield SequenceMatch(sequence_id, offset, 0)

    # -- approximate search -------------------------------------------------------------

    def search_approximate(
        self, pattern: str, max_mismatches: int
    ) -> Iterator[SequenceMatch]:
        """Occurrences with at most ``max_mismatches`` substitutions.

        Candidate generation uses the q-gram lemma threshold; every
        candidate window is verified by direct comparison, so results
        are exact for substitution-only matching.
        """
        if max_mismatches < 0:
            raise QGramError("max_mismatches must be >= 0")
        if max_mismatches == 0:
            yield from self.search_exact(pattern)
            return
        m, q = len(pattern), self.q
        threshold = m - q + 1 - max_mismatches * q
        if threshold < 1:
            # the lemma gives no pruning power; verify everywhere
            yield from self._scan_all(pattern, max_mismatches)
            return
        votes: Dict[Tuple[int, int], int] = defaultdict(int)
        for i in range(m - q + 1):
            gram = pattern[i : i + q]
            for sequence_id, offset in self._grams.get(gram, ()):
                start = offset - i
                if start >= 0:
                    votes[(sequence_id, start)] += 1
        seen = set()
        for (sequence_id, start), count in votes.items():
            if count < threshold or (sequence_id, start) in seen:
                continue
            seen.add((sequence_id, start))
            match = self._verify(sequence_id, start, pattern, max_mismatches)
            if match is not None:
                yield match

    def _verify(
        self, sequence_id: int, start: int, pattern: str, limit: int
    ) -> Optional[SequenceMatch]:
        sequence = self._sequences[sequence_id]
        if start < 0 or start + len(pattern) > len(sequence):
            return None
        mismatches = 0
        for a, b in zip(pattern, sequence[start : start + len(pattern)]):
            if a != b:
                mismatches += 1
                if mismatches > limit:
                    return None
        return SequenceMatch(sequence_id, start, mismatches)

    def _scan_all(
        self, pattern: str, limit: int
    ) -> Iterator[SequenceMatch]:
        for sequence_id, sequence in self._sequences.items():
            for start in range(len(sequence) - len(pattern) + 1):
                match = self._verify(sequence_id, start, pattern, limit)
                if match is not None:
                    yield match

    # -- diagnostics -----------------------------------------------------------------------

    def stats(self) -> dict:
        postings = sum(len(v) for v in self._grams.values())
        return {
            "q": self.q,
            "sequences": len(self._sequences),
            "distinct_grams": len(self._grams),
            "postings": postings,
        }
