"""A simple SRF-like container for level-1 data.

The paper (Section 5.3.1) mentions the Sequence Read Format initiative:
a container that holds not just the short reads and qualities but also
core image-analysis metrics (intensities, signal-to-noise). This module
implements a small binary container in that spirit so the hybrid design
can demonstrate wrapping "SRF files as FileStreams too":

Layout: magic, record count, then per record a length-prefixed name,
sequence, quality string, and two float metrics (mean intensity,
signal-to-noise ratio).
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Union

from ..engine.errors import EngineError
from .fastq import FastqRecord

MAGIC = b"SRF\x00\x02"


class SrfFormatError(EngineError):
    pass


@dataclass(frozen=True)
class SrfRecord:
    """A short read plus image-analysis metrics."""

    name: str
    sequence: str
    quality: str
    intensity: float = 0.0
    signal_to_noise: float = 0.0

    def to_fastq(self) -> FastqRecord:
        return FastqRecord(self.name, self.sequence, self.quality)

    @staticmethod
    def from_fastq(
        record: FastqRecord,
        intensity: float = 0.0,
        signal_to_noise: float = 0.0,
    ) -> "SrfRecord":
        return SrfRecord(
            record.name,
            record.sequence,
            record.quality,
            intensity,
            signal_to_noise,
        )


def _write_str(handle: IO, text: str) -> None:
    data = text.encode("ascii")
    handle.write(struct.pack("<H", len(data)))
    handle.write(data)


def _read_str(handle: IO) -> str:
    raw = handle.read(2)
    if len(raw) != 2:
        raise SrfFormatError("truncated string length")
    (length,) = struct.unpack("<H", raw)
    data = handle.read(length)
    if len(data) != length:
        raise SrfFormatError("truncated string payload")
    return data.decode("ascii")


def write_srf(
    records: Iterable[SrfRecord],
    destination: Union[str, os.PathLike, IO],
) -> int:
    """Write a container; returns the record count."""
    materialised: List[SrfRecord] = list(records)
    if isinstance(destination, (str, os.PathLike)):
        handle: IO = open(destination, "wb")
        owned = True
    else:
        handle = destination
        owned = False
    try:
        handle.write(MAGIC)
        handle.write(struct.pack("<I", len(materialised)))
        for record in materialised:
            _write_str(handle, record.name)
            _write_str(handle, record.sequence)
            _write_str(handle, record.quality)
            handle.write(
                struct.pack("<ff", record.intensity, record.signal_to_noise)
            )
    finally:
        if owned:
            handle.close()
    return len(materialised)


def read_srf(source: Union[str, os.PathLike, IO]) -> Iterator[SrfRecord]:
    """Stream records from a container."""
    if isinstance(source, (str, os.PathLike)):
        handle: IO = open(source, "rb")
        owned = True
    else:
        handle = source
        owned = False
    try:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise SrfFormatError("not an SRF container (bad magic)")
        raw = handle.read(4)
        if len(raw) != 4:
            raise SrfFormatError("truncated record count")
        (count,) = struct.unpack("<I", raw)
        for _ in range(count):
            name = _read_str(handle)
            sequence = _read_str(handle)
            quality = _read_str(handle)
            metrics = handle.read(8)
            if len(metrics) != 8:
                raise SrfFormatError("truncated metrics")
            intensity, snr = struct.unpack("<ff", metrics)
            yield SrfRecord(name, sequence, quality, intensity, snr)
    finally:
        if owned:
            handle.close()
