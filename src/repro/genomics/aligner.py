"""Seed-hash short-read alignment (MAQ-like).

The secondary data analysis of a re-sequencing or DGE experiment aligns
millions of short reads against a known reference. MAQ — the tool the
paper's lanes were aligned with — indexes read seeds and scans the
reference; we invert the arrangement (index the reference k-mers, look
up read seeds), which is equivalent for this scale and keeps the index
reusable across lanes.

Algorithm:

1. index every ``seed_length``-mer of every chromosome (both strands are
   handled by also trying the reverse-complemented read);
2. for a read allowing ``m`` mismatches, take ``m + 1`` non-overlapping
   seeds — by pigeonhole, any alignment with ≤ m mismatches matches at
   least one seed exactly;
3. verify each candidate position by counting mismatches, weighting them
   by base quality as MAQ does;
4. report the best hit with a MAQ-flavoured mapping quality: high when
   the best alignment's quality-weighted mismatch score is clearly
   better than the runner-up's, 0 when the placement is ambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError
from .fasta import FastaRecord
from .fastq import FastqRecord
from .quality import PHRED33
from .sequences import reverse_complement


class AlignmentError(EngineError):
    pass


@dataclass(frozen=True)
class Alignment:
    """One read-to-reference placement (a Level-2 data row)."""

    read_name: str
    reference: str
    position: int  # 0-based leftmost position on the forward strand
    strand: str  # '+' or '-'
    mismatches: int
    mapping_quality: int
    read_length: int


class ReferenceIndex:
    """Hash index of reference k-mers → (chromosome, position) lists."""

    def __init__(self, reference: Sequence[FastaRecord], seed_length: int = 12):
        if seed_length < 4 or seed_length > 32:
            raise AlignmentError(f"unreasonable seed length {seed_length}")
        self.seed_length = seed_length
        self.sequences: Dict[str, str] = {
            record.name: record.sequence for record in reference
        }
        self._index: Dict[str, List[Tuple[str, int]]] = {}
        for name, seq in self.sequences.items():
            index = self._index
            k = seed_length
            for i in range(len(seq) - k + 1):
                seed = seq[i : i + k]
                bucket = index.get(seed)
                if bucket is None:
                    index[seed] = [(name, i)]
                else:
                    bucket.append((name, i))

    def lookup(self, seed: str) -> List[Tuple[str, int]]:
        return self._index.get(seed, [])

    def __len__(self) -> int:
        return len(self._index)


class ShortReadAligner:
    """Aligns FASTQ records against an indexed reference."""

    def __init__(
        self,
        reference: Sequence[FastaRecord],
        seed_length: int = 12,
        max_mismatches: int = 2,
        quality_offset: int = PHRED33,
    ):
        self.index = ReferenceIndex(reference, seed_length)
        self.max_mismatches = max_mismatches
        self.quality_offset = quality_offset

    # -- seeding -----------------------------------------------------------------

    def _seed_offsets(self, read_length: int) -> List[int]:
        """Non-overlapping seed start offsets (pigeonhole coverage)."""
        k = self.index.seed_length
        needed = self.max_mismatches + 1
        offsets = []
        for i in range(needed):
            offset = i * k
            if offset + k > read_length:
                break
            offsets.append(offset)
        if not offsets:
            raise AlignmentError(
                f"read length {read_length} shorter than one seed ({k})"
            )
        return offsets

    # -- verification ---------------------------------------------------------------

    @staticmethod
    def _mismatch_score(
        read: str, qualities: Sequence[int], ref: str, limit: int
    ) -> Optional[Tuple[int, int]]:
        """(mismatch count, quality-weighted score) or None past limit.

        'N' bases never match (they are uncalled) but carry their
        (low) quality as the penalty, as MAQ does.
        """
        mismatches = 0
        score = 0
        for i, (a, b) in enumerate(zip(read, ref)):
            if a != b or a == "N":
                mismatches += 1
                if mismatches > limit:
                    return None
                score += min(qualities[i], 30)
        return mismatches, score

    def _candidates(self, sequence: str) -> Iterator[Tuple[str, int]]:
        k = self.index.seed_length
        seen = set()
        for offset in self._seed_offsets(len(sequence)):
            seed = sequence[offset : offset + k]
            if "N" in seed:
                continue
            for chrom, seed_pos in self.index.lookup(seed):
                position = seed_pos - offset
                key = (chrom, position)
                if key in seen:
                    continue
                seen.add(key)
                yield key

    # -- alignment ---------------------------------------------------------------------

    def align(self, record: FastqRecord) -> Optional[Alignment]:
        """Best alignment of one read, or None when nothing passes."""
        qualities = record.scores(self.quality_offset)
        best: Optional[Tuple[int, str, int, str, int]] = None  # score sort key
        second_score: Optional[int] = None
        for strand, sequence, quals in (
            ("+", record.sequence, qualities),
            ("-", reverse_complement(record.sequence), qualities[::-1]),
        ):
            for chrom, position in self._candidates(sequence):
                if position < 0:
                    continue
                ref_seq = self.index.sequences[chrom]
                if position + len(sequence) > len(ref_seq):
                    continue
                window = ref_seq[position : position + len(sequence)]
                verdict = self._mismatch_score(
                    sequence, quals, window, self.max_mismatches
                )
                if verdict is None:
                    continue
                mismatches, score = verdict
                entry = (score, chrom, position, strand, mismatches)
                if best is None or entry[0] < best[0]:
                    second_score = best[0] if best is not None else None
                    best = entry
                elif second_score is None or entry[0] < second_score:
                    # equal placements count as competing hits too
                    if (entry[1], entry[2], entry[3]) != (best[1], best[2], best[3]):
                        second_score = entry[0]
        if best is None:
            return None
        score, chrom, position, strand, mismatches = best
        if second_score is None:
            mapq = 60 if mismatches == 0 else max(25, 60 - 10 * mismatches)
        else:
            mapq = max(0, min(60, second_score - score))
        return Alignment(
            read_name=record.name,
            reference=chrom,
            position=position,
            strand=strand,
            mismatches=mismatches,
            mapping_quality=mapq,
            read_length=len(record.sequence),
        )

    def align_all(
        self, records: Iterable[FastqRecord]
    ) -> Iterator[Tuple[FastqRecord, Optional[Alignment]]]:
        """Align a stream of reads, yielding (read, alignment-or-None)."""
        for record in records:
            yield record, self.align(record)
