"""MAQ-style alignment files.

MAQ's workflow (paper Section 2.1) is the canonical example of the
file-centric zoo: it first converts FASTQ and FASTA into proprietary
*binary* intermediates (``.bfq``, ``.bfa``), aligns into a binary
``.map`` file, and only then dumps a "human readable" text form
(``maq mapview``) that downstream scripts parse again. This module
implements all three shapes so the baselines can reproduce that exact
I/O pattern:

- :func:`write_binary_map` / :func:`read_binary_map` — a compact binary
  record format (struct-packed, length-prefixed names);
- :func:`write_text_map` / :func:`read_text_map` — the tab-separated
  mapview-like text:
  ``read_name  ref  position(1-based)  strand  mapq  mismatches  length``.
"""

from __future__ import annotations

import io
import os
import struct
from typing import IO, Iterable, Iterator, List, Tuple, Union

from ..engine.errors import EngineError
from .aligner import Alignment

MAGIC = b"MAQM\x01"


class MapFormatError(EngineError):
    pass


# ---------------------------------------------------------------------------
# binary map
# ---------------------------------------------------------------------------


def write_binary_map(
    alignments: Iterable[Alignment],
    destination: Union[str, os.PathLike, IO],
) -> int:
    """Write the binary ``.map``-like file; returns the record count."""
    if isinstance(destination, (str, os.PathLike)):
        handle: IO = open(destination, "wb")
        owned = True
    else:
        handle = destination
        owned = False
    count = 0
    try:
        handle.write(MAGIC)
        for a in alignments:
            name = a.read_name.encode("ascii")
            ref = a.reference.encode("ascii")
            handle.write(struct.pack("<HH", len(name), len(ref)))
            handle.write(name)
            handle.write(ref)
            handle.write(
                struct.pack(
                    "<IBbBH",
                    a.position,
                    1 if a.strand == "+" else 0,
                    a.mismatches,
                    a.mapping_quality,
                    a.read_length,
                )
            )
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def read_binary_map(
    source: Union[str, os.PathLike, IO],
) -> Iterator[Alignment]:
    if isinstance(source, (str, os.PathLike)):
        handle: IO = open(source, "rb")
        owned = True
    else:
        handle = source
        owned = False
    try:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise MapFormatError("not a binary map file (bad magic)")
        header_size = struct.calcsize("<HH")
        body_size = struct.calcsize("<IBbBH")
        while True:
            header = handle.read(header_size)
            if not header:
                return
            if len(header) != header_size:
                raise MapFormatError("truncated record header")
            name_len, ref_len = struct.unpack("<HH", header)
            name = handle.read(name_len).decode("ascii")
            ref = handle.read(ref_len).decode("ascii")
            body = handle.read(body_size)
            if len(body) != body_size:
                raise MapFormatError("truncated record body")
            position, fwd, mismatches, mapq, length = struct.unpack(
                "<IBbBH", body
            )
            yield Alignment(
                read_name=name,
                reference=ref,
                position=position,
                strand="+" if fwd else "-",
                mismatches=mismatches,
                mapping_quality=mapq,
                read_length=length,
            )
    finally:
        if owned:
            handle.close()


# ---------------------------------------------------------------------------
# text map (mapview-like)
# ---------------------------------------------------------------------------


def write_text_map(
    alignments: Iterable[Alignment],
    destination: Union[str, os.PathLike, IO],
    sequences: Union[dict, None] = None,
) -> int:
    """Write the tab-separated human-readable form (1-based positions,
    as mapview prints).

    ``sequences`` optionally maps read name → (sequence, quality); when
    given, both are appended as columns — real ``maq mapview`` output
    repeats the read sequence and qualities per alignment, which is
    exactly the redundancy the normalized schema's foreign keys remove
    (the ~40 % saving of Table 2).
    """
    if isinstance(destination, (str, os.PathLike)):
        handle: IO = open(destination, "w", encoding="ascii")
        owned = True
    else:
        handle = destination
        owned = False
    count = 0
    try:
        for a in alignments:
            handle.write(
                f"{a.read_name}\t{a.reference}\t{a.position + 1}\t"
                f"{a.strand}\t{a.mapping_quality}\t{a.mismatches}\t"
                f"{a.read_length}"
            )
            if sequences is not None:
                seq, qual = sequences.get(a.read_name, ("", ""))
                handle.write(f"\t{seq}\t{qual}")
            handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def read_text_map(
    source: Union[str, os.PathLike, IO],
) -> Iterator[Alignment]:
    if isinstance(source, (str, os.PathLike)):
        handle: IO = open(source, "r", encoding="ascii")
        owned = True
    elif isinstance(source, io.TextIOBase):
        handle, owned = source, False
    else:
        handle, owned = io.TextIOWrapper(source, encoding="ascii"), False
    try:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line:
                continue
            parts = line.split("\t")
            if len(parts) not in (7, 9):
                raise MapFormatError(
                    f"line {line_no}: expected 7 or 9 fields, got {len(parts)}"
                )
            name, ref, pos, strand, mapq, mismatches, length = parts[:7]
            yield Alignment(
                read_name=name,
                reference=ref,
                position=int(pos) - 1,
                strand=strand,
                mismatches=int(mismatches),
                mapping_quality=int(mapq),
                read_length=int(length),
            )
    finally:
        if owned:
            handle.close()
