"""Phred quality scores.

Short-read sequences are probabilistic data: each called base carries an
error probability from the image-analysis phase. FASTQ stores these as
*Phred* scores, ``Q = -10 * log10(p_error)``, shifted into printable
ASCII. Two shifts exist in the wild: Sanger/Phred+33 and the Illumina
Phred+64 variant current when the paper was written; both are supported.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from ..engine.errors import TypeMismatchError

#: offsets for the two common ASCII encodings
PHRED33 = 33
PHRED64 = 64

#: the practical score range (the paper cites 0..100; instruments emit
#: lower maxima, but the codec accepts the full range)
MIN_SCORE = 0
MAX_SCORE = 93  # chr(33 + 93) == '~', the last printable ASCII character


def error_probability_to_phred(p_error: float) -> int:
    """``Q = -10 log10(p)``, clamped to the representable range."""
    if not 0.0 < p_error <= 1.0:
        raise TypeMismatchError(
            f"error probability must be in (0, 1], got {p_error}"
        )
    score = round(-10.0 * math.log10(p_error))
    return max(MIN_SCORE, min(MAX_SCORE, score))


def phred_to_error_probability(score: int) -> float:
    """Inverse of :func:`error_probability_to_phred`."""
    if score < MIN_SCORE:
        raise TypeMismatchError(f"negative phred score {score}")
    return 10.0 ** (-score / 10.0)


def encode_phred(scores: Sequence[int], offset: int = PHRED33) -> str:
    """Scores → the printable quality string of a FASTQ record."""
    out = []
    for score in scores:
        if not MIN_SCORE <= score <= MAX_SCORE:
            raise TypeMismatchError(f"phred score {score} out of range")
        code = score + offset
        if code > 126:
            raise TypeMismatchError(
                f"score {score} not representable at offset {offset}"
            )
        out.append(chr(code))
    return "".join(out)


def decode_phred(text: str, offset: int = PHRED33) -> List[int]:
    """Quality string → scores; raises on characters below the offset."""
    scores = []
    for ch in text:
        score = ord(ch) - offset
        if score < 0:
            raise TypeMismatchError(
                f"quality character {ch!r} invalid for offset {offset}"
            )
        scores.append(score)
    return scores


def mean_error_probability(scores: Sequence[int]) -> float:
    """Average per-base error probability of a read."""
    if not scores:
        return 0.0
    return sum(phred_to_error_probability(s) for s in scores) / len(scores)


def expected_mismatches(scores: Sequence[int]) -> float:
    """Expected number of erroneous bases in a read."""
    return sum(phred_to_error_probability(s) for s in scores)
