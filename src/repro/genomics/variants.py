"""SNP calling (the tertiary analysis of the 1000 Genomes scenario).

Section 2.1.1: "The tertiary data analysis phase finally calls the
consensus over all alignments, and looks for variations between
individual genomes (single nucleotide polymorphisms (SNPs))."

Two halves:

- :func:`mutate_reference` — simulate an *individual's* genome by
  planting substitutions into the reference at a given rate, returning
  the mutated chromosomes and the ground-truth SNP list (so calls can be
  scored for precision/recall);
- :func:`call_snps` — compare a called consensus against the reference:
  every confidently-called disagreement is a SNP candidate, filtered by
  consensus quality.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError
from .consensus import ConsensusResult
from .fasta import FastaRecord
from .sequences import DNA_ALPHABET


class VariantError(EngineError):
    pass


@dataclass(frozen=True)
class Snp:
    """One single-nucleotide polymorphism."""

    chromosome: str
    position: int  # 0-based
    ref_base: str
    alt_base: str
    quality: int = 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.chromosome}:{self.position} "
            f"{self.ref_base}>{self.alt_base} (q{self.quality})"
        )


def mutate_reference(
    reference: Sequence[FastaRecord],
    mutation_rate: float = 0.001,
    seed: int = 97,
) -> Tuple[List[FastaRecord], List[Snp]]:
    """Plant random substitutions; returns (mutated genome, truth SNPs).

    ``mutation_rate`` ≈ 0.001 matches the human SNP density the 1000
    Genomes project was built to chart (~1 variant per kb).
    """
    if not 0.0 <= mutation_rate < 1.0:
        raise VariantError(f"bad mutation rate {mutation_rate}")
    rng = random.Random(seed)
    mutated: List[FastaRecord] = []
    truth: List[Snp] = []
    for record in reference:
        bases = list(record.sequence)
        n_mutations = int(len(bases) * mutation_rate)
        positions = rng.sample(range(len(bases)), min(n_mutations, len(bases)))
        for position in sorted(positions):
            ref_base = bases[position]
            if ref_base not in DNA_ALPHABET:
                continue
            alt_base = rng.choice(
                [b for b in DNA_ALPHABET if b != ref_base]
            )
            bases[position] = alt_base
            truth.append(
                Snp(record.name, position, ref_base, alt_base)
            )
        mutated.append(
            FastaRecord(
                record.name,
                "".join(bases),
                f"{record.description} (+{len(positions)} SNPs)".strip(),
            )
        )
    return mutated, truth


def call_snps(
    reference_sequence: str,
    consensus: ConsensusResult,
    chromosome: Optional[str] = None,
    min_quality: int = 20,
) -> List[Snp]:
    """SNPs where the consensus confidently disagrees with the reference.

    Positions the consensus could not call (``N``) or called below
    ``min_quality`` are skipped — low-coverage disagreements are noise,
    not variants.
    """
    name = chromosome or consensus.chromosome
    snps: List[Snp] = []
    start = consensus.start
    for offset, called in enumerate(consensus.sequence):
        if called == "N":
            continue
        position = start + offset
        if position >= len(reference_sequence):
            break
        quality = (
            consensus.qualities[offset]
            if offset < len(consensus.qualities)
            else 0
        )
        if quality < min_quality:
            continue
        ref_base = reference_sequence[position]
        if called != ref_base:
            snps.append(Snp(name, position, ref_base, called, quality))
    return snps


def score_calls(
    called: Sequence[Snp], truth: Sequence[Snp]
) -> Dict[str, float]:
    """Precision/recall of called SNPs against the planted truth
    (matching on chromosome+position+alt base)."""
    called_set = {(s.chromosome, s.position, s.alt_base) for s in called}
    truth_set = {(s.chromosome, s.position, s.alt_base) for s in truth}
    true_positives = len(called_set & truth_set)
    precision = true_positives / len(called_set) if called_set else 1.0
    recall = true_positives / len(truth_set) if truth_set else 1.0
    return {
        "called": float(len(called_set)),
        "truth": float(len(truth_set)),
        "true_positives": float(true_positives),
        "precision": precision,
        "recall": recall,
    }


def compare_consensi(
    a: ConsensusResult, b: ConsensusResult, chromosome: str
) -> List[Tuple[int, str, str]]:
    """Positions where two individuals' consensi disagree (both called)
    — the cross-individual variation scan of the 1000 Genomes analysis."""
    if a.start != b.start:
        # align on the overlapping window
        start = max(a.start, b.start)
    else:
        start = a.start
    end = min(a.start + len(a.sequence), b.start + len(b.sequence))
    out = []
    for position in range(start, end):
        base_a = a.sequence[position - a.start]
        base_b = b.sequence[position - b.start]
        if base_a != "N" and base_b != "N" and base_a != base_b:
            out.append((position, base_a, base_b))
    return out
