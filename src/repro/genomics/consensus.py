"""Consensus calling (tertiary analysis for re-sequencing).

Overlapping alignments of one sample are reduced to a single consensus
sequence per chromosome (paper Figure 6). Two implementations mirror the
two query shapes of Section 4.2.3:

- :class:`Pileup` — the *conceptually clean* path: pivot every aligned
  base into per-position observation lists, then call each position.
  Its memory is O(chromosome length × coverage): the "large intermediate
  result" the paper found impractical;
- :class:`SlidingWindowConsensus` — the optimised path: consume
  alignments ordered by start position and keep only the window of
  positions that can still receive observations, emitting called bases
  as the window slides. O(read length) state — what the
  ``AssembleConsensus`` UDA runs internally.

Base calling is quality-weighted: each observation votes with its Phred
score, the winning base's consensus quality is the margin over the
runner-up (a simplification of MAQ's Bayesian model that preserves its
monotonicity in the inputs).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError

#: base emitted for uncovered positions
NO_CALL = "N"

#: cap for consensus quality values
MAX_CONSENSUS_QUALITY = 93


class ConsensusError(EngineError):
    pass


def call_base(observations: Sequence[Tuple[str, int]]) -> Tuple[str, int]:
    """Call one position from ``(base, quality)`` observations.

    Returns ``(base, consensus_quality)``; ``('N', 0)`` when there is no
    usable observation. 'N' observations are ignored (uncalled bases
    carry no evidence).
    """
    votes: Dict[str, int] = {}
    for base, quality in observations:
        if base == NO_CALL:
            continue
        votes[base] = votes.get(base, 0) + max(int(quality), 0)
    if not votes:
        return NO_CALL, 0
    ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
    best_base, best_score = ranked[0]
    runner_up = ranked[1][1] if len(ranked) > 1 else 0
    quality = min(best_score - runner_up, MAX_CONSENSUS_QUALITY)
    return best_base, max(quality, 0)


@dataclass
class ConsensusResult:
    """Consensus for one chromosome plus coverage accounting."""

    chromosome: str
    sequence: str
    qualities: List[int]
    covered_positions: int
    total_observations: int
    #: genome position of ``sequence[0]`` (nonzero in unbounded mode)
    start: int = 0

    @property
    def length(self) -> int:
        return len(self.sequence)

    @property
    def coverage_fraction(self) -> float:
        return self.covered_positions / self.length if self.length else 0.0


# ---------------------------------------------------------------------------
# pivot-based pileup (the blocking, large-intermediate path)
# ---------------------------------------------------------------------------


class Pileup:
    """Materialised per-position observations for one chromosome."""

    def __init__(self, chromosome: str, length: int):
        if length < 0:
            raise ConsensusError(f"negative chromosome length {length}")
        self.chromosome = chromosome
        self.length = length
        self._positions: Dict[int, List[Tuple[str, int]]] = {}
        self.total_observations = 0

    def add_alignment(
        self, position: int, sequence: str, qualities: Sequence[int]
    ) -> None:
        """Pivot one alignment into its per-position observations
        (what the ``PivotAlignment`` TVF emits)."""
        if len(sequence) != len(qualities):
            raise ConsensusError("sequence/quality length mismatch")
        for offset, (base, quality) in enumerate(zip(sequence, qualities)):
            pos = position + offset
            if pos < 0 or pos >= self.length:
                continue
            self._positions.setdefault(pos, []).append((base, quality))
            self.total_observations += 1

    def observation_count(self) -> int:
        """Size of the pivoted intermediate (rows the pivot plan writes)."""
        return self.total_observations

    def depth_at(self, position: int) -> int:
        return len(self._positions.get(position, ()))

    def call(self) -> ConsensusResult:
        bases: List[str] = []
        qualities: List[int] = []
        covered = 0
        for pos in range(self.length):
            observations = self._positions.get(pos)
            if observations:
                base, quality = call_base(observations)
                covered += 1
            else:
                base, quality = NO_CALL, 0
            bases.append(base)
            qualities.append(quality)
        return ConsensusResult(
            chromosome=self.chromosome,
            sequence="".join(bases),
            qualities=qualities,
            covered_positions=covered,
            total_observations=self.total_observations,
        )


# ---------------------------------------------------------------------------
# sliding-window consensus (the streaming path)
# ---------------------------------------------------------------------------


class SlidingWindowConsensus:
    """Streaming consensus over alignments ordered by start position.

    Feed alignments with monotonically non-decreasing ``position``; the
    window keeps only positions that a future alignment could still
    touch. Peak state is O(max read length + max gap between flushes).
    """

    def __init__(self, chromosome: str, length: Optional[int] = None):
        """``length=None`` runs in *unbounded* mode: the consensus starts
        at the first alignment's position and ends at the last covered
        position — the mode the ``AssembleConsensus`` UDA uses, since an
        aggregate does not know the chromosome length."""
        self.chromosome = chromosome
        self.length = length
        self._window: deque = deque()  # observation lists
        self._window_start = 0 if length is not None else None
        self.start_position: Optional[int] = 0 if length is not None else None
        self._bases: List[str] = []
        self._qualities: List[int] = []
        self._covered = 0
        self.total_observations = 0
        self._last_position = -1
        self.peak_window = 0

    def add_alignment(
        self, position: int, sequence: str, qualities: Sequence[int]
    ) -> None:
        if position < self._last_position:
            raise ConsensusError(
                "alignments must arrive ordered by start position "
                f"({position} after {self._last_position})"
            )
        self._last_position = position
        if self._window_start is None:
            self._window_start = position
            self.start_position = position
        self._flush_before(position)
        if len(sequence) != len(qualities):
            raise ConsensusError("sequence/quality length mismatch")
        # grow the window to cover this alignment
        end = position + len(sequence)
        if self.length is not None:
            end = min(end, self.length)
        while self._window_start + len(self._window) < end:
            self._window.append([])
        for offset, (base, quality) in enumerate(zip(sequence, qualities)):
            pos = position + offset
            if pos < self._window_start:
                continue
            if self.length is not None and pos >= self.length:
                continue
            self._window[pos - self._window_start].append((base, quality))
            self.total_observations += 1
        self.peak_window = max(self.peak_window, len(self._window))

    def _flush_before(self, position: int) -> None:
        """Call and emit every window position strictly below ``position``
        — no later alignment can add observations there."""
        while self._window and self._window_start < position:
            observations = self._window.popleft()
            self._emit(observations)
            self._window_start += 1
        if not self._window and self._window_start < position:
            # uncovered gap between alignments
            limit = position if self.length is None else min(position, self.length)
            gap = limit - self._window_start
            if gap > 0:
                self._bases.extend(NO_CALL * gap)
                self._qualities.extend([0] * gap)
                self._window_start += gap

    def _emit(self, observations: List[Tuple[str, int]]) -> None:
        if observations:
            base, quality = call_base(observations)
            self._covered += 1
        else:
            base, quality = NO_CALL, 0
        self._bases.append(base)
        self._qualities.append(quality)

    def finish(self) -> ConsensusResult:
        """Flush the tail and produce the chromosome consensus."""
        if self._window_start is None:
            self._window_start = 0
            self.start_position = 0
        while self._window:
            self._emit(self._window.popleft())
            self._window_start += 1
        if self.length is not None and self._window_start < self.length:
            gap = self.length - self._window_start
            self._bases.extend(NO_CALL * gap)
            self._qualities.extend([0] * gap)
            self._window_start = self.length
        return ConsensusResult(
            chromosome=self.chromosome,
            sequence="".join(self._bases),
            qualities=self._qualities,
            covered_positions=self._covered,
            total_observations=self.total_observations,
            start=self.start_position or 0,
        )


def consensus_by_chromosome(
    alignments: Iterable[Tuple[str, int, str, Sequence[int]]],
    lengths: Dict[str, int],
) -> Dict[str, ConsensusResult]:
    """Convenience driver: ``(chromosome, position, sequence, qualities)``
    tuples, ordered by (chromosome, position), → per-chromosome results."""
    results: Dict[str, ConsensusResult] = {}
    current: Optional[SlidingWindowConsensus] = None
    for chromosome, position, sequence, qualities in alignments:
        if current is None or current.chromosome != chromosome:
            if current is not None:
                results[current.chromosome] = current.finish()
            if chromosome not in lengths:
                raise ConsensusError(f"unknown chromosome {chromosome!r}")
            current = SlidingWindowConsensus(chromosome, lengths[chromosome])
        current.add_alignment(position, sequence, qualities)
    if current is not None:
        results[current.chromosome] = current.finish()
    return results
