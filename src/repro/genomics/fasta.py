"""FASTA reading and writing.

The common interchange format for reference sequences. Sequences are
line-wrapped (conventionally to 60 columns — the paper singles this out
as a format "optimized for a textual display"); the reader is streaming
and tolerant of any wrap width.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Tuple, Union

from ..engine.errors import EngineError

#: conventional wrap width
LINE_WIDTH = 60


class FastaFormatError(EngineError):
    """Malformed FASTA input."""


@dataclass(frozen=True)
class FastaRecord:
    """One ``>name description`` + sequence entry."""

    name: str
    sequence: str
    description: str = ""

    @property
    def header(self) -> str:
        if self.description:
            return f"{self.name} {self.description}"
        return self.name


def _as_text_handle(source: Union[str, os.PathLike, IO]) -> Tuple[IO, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    if isinstance(source, io.TextIOBase):
        return source, False
    # binary handle (e.g. a FileStream stream): wrap it
    return io.TextIOWrapper(source, encoding="ascii"), False


def read_fasta(source: Union[str, os.PathLike, IO]) -> Iterator[FastaRecord]:
    """Stream records from a path or open handle."""
    handle, owned = _as_text_handle(source)
    try:
        name = None
        description = ""
        chunks: List[str] = []
        for line in handle:
            line = line.rstrip("\n").rstrip("\r")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield FastaRecord(name, "".join(chunks), description)
                header = line[1:].strip()
                if not header:
                    raise FastaFormatError("empty FASTA header")
                parts = header.split(None, 1)
                name = parts[0]
                description = parts[1] if len(parts) > 1 else ""
                chunks = []
            else:
                if name is None:
                    raise FastaFormatError(
                        "sequence data before the first '>' header"
                    )
                chunks.append(line.strip())
        if name is not None:
            yield FastaRecord(name, "".join(chunks), description)
    finally:
        if owned:
            handle.close()


def write_fasta(
    records: Iterable[FastaRecord],
    destination: Union[str, os.PathLike, IO],
    line_width: int = LINE_WIDTH,
) -> int:
    """Write records, wrapping sequences; returns the record count."""
    if line_width < 1:
        raise FastaFormatError(f"bad line width {line_width}")
    if isinstance(destination, (str, os.PathLike)):
        handle = open(destination, "w", encoding="ascii")
        owned = True
    else:
        handle = destination
        owned = False
    count = 0
    try:
        for record in records:
            handle.write(f">{record.header}\n")
            seq = record.sequence
            for i in range(0, len(seq), line_width):
                handle.write(seq[i : i + line_width])
                handle.write("\n")
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def index_fasta(source: Union[str, os.PathLike, IO]) -> dict:
    """Load a whole FASTA file as a ``{name: sequence}`` dict."""
    return {record.name: record.sequence for record in read_fasta(source)}
