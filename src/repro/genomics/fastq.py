"""FASTQ reading and writing.

Level-1 short reads travel in FASTQ: four lines per record — ``@name``,
the sequence, a ``+`` separator, and the quality string (Figure 3 of the
paper). Read names follow the Illumina convention of a composite textual
identifier::

    @IL4_855:1:1:954:659
     machine_runid : lane : tile : x : y

which is precisely the materialised composite key whose repetition blows
up the 1:1 relational import in Table 1/2; :func:`parse_illumina_name`
decomposes it so the normalized schema can store its parts once.
"""

from __future__ import annotations

import io
import os
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Tuple, Union

from ..engine.errors import EngineError
from .quality import PHRED33, decode_phred, encode_phred


class FastqFormatError(EngineError):
    """Malformed FASTQ input."""


@dataclass(frozen=True)
class FastqRecord:
    """One four-line FASTQ entry."""

    name: str
    sequence: str
    quality: str  # printable quality string (offset as stored)

    def __post_init__(self):
        if len(self.sequence) != len(self.quality):
            raise FastqFormatError(
                f"read {self.name!r}: sequence length {len(self.sequence)} "
                f"!= quality length {len(self.quality)}"
            )

    def scores(self, offset: int = PHRED33) -> List[int]:
        return decode_phred(self.quality, offset)

    @staticmethod
    def from_scores(
        name: str, sequence: str, scores, offset: int = PHRED33
    ) -> "FastqRecord":
        return FastqRecord(name, sequence, encode_phred(scores, offset))


@dataclass(frozen=True)
class IlluminaReadName:
    """Decomposed Illumina read name (machine, flowcell run, lane, tile,
    x, y) — the composite identifier of Section 5.1.1."""

    machine: str
    run_id: int
    lane: int
    tile: int
    x: int
    y: int

    def format(self) -> str:
        return (
            f"{self.machine}_{self.run_id}:{self.lane}:{self.tile}"
            f":{self.x}:{self.y}"
        )


def parse_illumina_name(name: str) -> IlluminaReadName:
    """Parse ``IL4_855:1:1:954:659`` style names."""
    try:
        head, lane, tile, x, y = name.split(":")
        machine, run_id = head.rsplit("_", 1)
        return IlluminaReadName(
            machine, int(run_id), int(lane), int(tile), int(x), int(y)
        )
    except ValueError as exc:
        raise FastqFormatError(f"bad Illumina read name {name!r}") from exc


def _as_text_handle(source: Union[str, os.PathLike, IO]) -> Tuple[IO, bool]:
    if isinstance(source, (str, os.PathLike)):
        return open(source, "r", encoding="ascii"), True
    if isinstance(source, io.TextIOBase):
        return source, False
    return io.TextIOWrapper(source, encoding="ascii"), False


def read_fastq(source: Union[str, os.PathLike, IO]) -> Iterator[FastqRecord]:
    """Stream FASTQ records from a path or handle."""
    handle, owned = _as_text_handle(source)
    try:
        while True:
            header = handle.readline()
            if not header:
                return
            header = header.rstrip("\n")
            if not header:
                continue
            if not header.startswith("@"):
                raise FastqFormatError(
                    f"expected '@' header, found {header[:20]!r}"
                )
            sequence = handle.readline().rstrip("\n")
            plus = handle.readline().rstrip("\n")
            quality = handle.readline().rstrip("\n")
            if not plus.startswith("+"):
                raise FastqFormatError(
                    f"read {header[1:]!r}: expected '+' separator"
                )
            if not quality and sequence:
                raise FastqFormatError(
                    f"read {header[1:]!r}: truncated record"
                )
            yield FastqRecord(header[1:], sequence, quality)
    finally:
        if owned:
            handle.close()


def write_fastq(
    records: Iterable[FastqRecord],
    destination: Union[str, os.PathLike, IO],
) -> int:
    """Write records; returns the count."""
    if isinstance(destination, (str, os.PathLike)):
        handle = open(destination, "w", encoding="ascii")
        owned = True
    else:
        handle = destination
        owned = False
    count = 0
    try:
        for record in records:
            handle.write(
                f"@{record.name}\n{record.sequence}\n+\n{record.quality}\n"
            )
            count += 1
    finally:
        if owned:
            handle.close()
    return count


def fastq_bytes(records: Iterable[FastqRecord]) -> bytes:
    """Serialise records to the bytes of a FASTQ file (for FILESTREAM
    import without touching disk)."""
    buffer = io.StringIO()
    write_fastq(records, buffer)
    return buffer.getvalue().encode("ascii")


def count_records(source: Union[str, os.PathLike, IO]) -> int:
    """Count records without materialising them."""
    return sum(1 for _ in read_fastq(source))
