"""A MAQ-like command-line alignment tool.

Section 2.1 describes MAQ's workflow as the canonical example of the
file-format zoo: "MAQ first transforms the output files from a sequencer
and the reference sequences into its own internal formats (intermediate
binary files); the output of its short-read alignment is another
proprietary binary file which then has to be converted into a human
readable form before it can be further processed."

:class:`MaqTool` reproduces that exact pipeline shape, each step a
separate "command" that reads files and writes files:

1. ``fastq2bfq`` — FASTQ → binary read file (``.bfq``);
2. ``fasta2bfa`` — reference FASTA → binary reference (``.bfa``);
3. ``map`` — ``.bfq`` + ``.bfa`` → binary alignment file (``.map``);
4. ``mapview`` — ``.map`` → tab-separated text.

The alignment core is the same :class:`ShortReadAligner` the in-database
path uses, so quality comparisons measure *data management*, not two
different aligners.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from ..engine.errors import EngineError
from ..genomics.aligner import ShortReadAligner
from ..genomics.fasta import FastaRecord, read_fasta
from ..genomics.fastq import FastqRecord, read_fastq
from ..genomics.maqmap import read_binary_map, write_binary_map, write_text_map
from ..genomics.quality import decode_phred
from ..genomics.sequences import pack_4bit, unpack_4bit

BFQ_MAGIC = b"BFQ\x01"
BFA_MAGIC = b"BFA\x01"


class MaqToolError(EngineError):
    pass


class MaqTool:
    """The file-to-file alignment pipeline."""

    def __init__(self, workdir: os.PathLike | str):
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)

    # -- step 1: fastq2bfq -------------------------------------------------------------

    def fastq2bfq(self, fastq_path: os.PathLike | str) -> Path:
        """Convert FASTQ to the binary read format."""
        out_path = self.workdir / (Path(fastq_path).stem + ".bfq")
        with open(out_path, "wb") as out:
            out.write(BFQ_MAGIC)
            for record in read_fastq(fastq_path):
                name = record.name.encode("ascii")
                seq = pack_4bit(record.sequence)
                quals = bytes(record.scores())
                out.write(struct.pack("<HHH", len(name), len(seq), len(quals)))
                out.write(name)
                out.write(seq)
                out.write(quals)
        return out_path

    def read_bfq(self, bfq_path: os.PathLike | str) -> Iterator[FastqRecord]:
        with open(bfq_path, "rb") as handle:
            if handle.read(len(BFQ_MAGIC)) != BFQ_MAGIC:
                raise MaqToolError(f"{bfq_path}: not a bfq file")
            header_size = struct.calcsize("<HHH")
            while True:
                header = handle.read(header_size)
                if not header:
                    return
                name_len, seq_len, qual_len = struct.unpack("<HHH", header)
                name = handle.read(name_len).decode("ascii")
                sequence = unpack_4bit(handle.read(seq_len))
                scores = list(handle.read(qual_len))
                yield FastqRecord.from_scores(name, sequence, scores)

    # -- step 2: fasta2bfa -------------------------------------------------------------

    def fasta2bfa(self, fasta_path: os.PathLike | str) -> Path:
        """Convert a reference FASTA to the binary reference format."""
        out_path = self.workdir / (Path(fasta_path).stem + ".bfa")
        with open(out_path, "wb") as out:
            out.write(BFA_MAGIC)
            for record in read_fasta(fasta_path):
                name = record.name.encode("ascii")
                seq = pack_4bit(record.sequence)
                out.write(struct.pack("<HI", len(name), len(seq)))
                out.write(name)
                out.write(seq)
        return out_path

    def read_bfa(self, bfa_path: os.PathLike | str) -> List[FastaRecord]:
        records = []
        with open(bfa_path, "rb") as handle:
            if handle.read(len(BFA_MAGIC)) != BFA_MAGIC:
                raise MaqToolError(f"{bfa_path}: not a bfa file")
            header_size = struct.calcsize("<HI")
            while True:
                header = handle.read(header_size)
                if not header:
                    return records
                name_len, seq_len = struct.unpack("<HI", header)
                name = handle.read(name_len).decode("ascii")
                sequence = unpack_4bit(handle.read(seq_len))
                records.append(FastaRecord(name, sequence))

    # -- step 3: map -------------------------------------------------------------------

    def map(
        self,
        bfq_path: os.PathLike | str,
        bfa_path: os.PathLike | str,
        max_mismatches: int = 2,
    ) -> Path:
        """Align the binary reads against the binary reference, writing
        the binary alignment file."""
        reference = self.read_bfa(bfa_path)
        aligner = ShortReadAligner(reference, max_mismatches=max_mismatches)
        out_path = self.workdir / (Path(bfq_path).stem + ".map")
        hits = (
            alignment
            for _read, alignment in aligner.align_all(self.read_bfq(bfq_path))
            if alignment is not None
        )
        write_binary_map(hits, out_path)
        return out_path

    # -- step 4: mapview ----------------------------------------------------------------

    def mapview(self, map_path: os.PathLike | str) -> Path:
        """Dump the binary map as 'human readable' text — the extra
        conversion step the paper notes actually *complicates* downstream
        processing."""
        out_path = Path(map_path).with_suffix(".map.txt")
        write_text_map(read_binary_map(map_path), out_path)
        return out_path

    # -- full pipeline ------------------------------------------------------------------

    def pipeline(
        self,
        fastq_path: os.PathLike | str,
        fasta_path: os.PathLike | str,
    ) -> Dict[str, Path]:
        """Run all four steps; returns every artefact (note how many
        intermediate files one alignment needs)."""
        bfq = self.fastq2bfq(fastq_path)
        bfa = self.fasta2bfa(fasta_path)
        map_file = self.map(bfq, bfa)
        text = self.mapview(map_file)
        return {"bfq": bfq, "bfa": bfa, "map": map_file, "mapview": text}

    def artifact_sizes(self, artifacts: Dict[str, Path]) -> Dict[str, int]:
        return {name: path.stat().st_size for name, path in artifacts.items()}
