"""The sequential "Perl script" baseline for unique-read binning.

Section 5.3.2: a 26-line Perl script used by bioinformatics colleagues
performs the unique-read binning that Query 1 expresses declaratively;
the script took 10 minutes where the SQL query took 44 seconds. The gap
has two causes the paper identifies in Figures 7 and 8:

1. the script is *sequential* — read the whole file into memory, then
   process, then write, using one of the four cores (~25 % CPU);
2. the database plan is *set-oriented and parallel* — the scan, hash
   aggregation and ranking run across all cores.

:func:`run_binning_script` reproduces the scripting pattern faithfully
(slurp → per-record loop with regex-flavoured string tests → sort →
write) and instruments each phase so the benchmark can regenerate the
Figure 7 trace.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Tuple

from .trace import ResourceTrace


def run_binning_script(
    fastq_path: os.PathLike | str,
    output_path: Optional[os.PathLike | str] = None,
    cores: int = 4,
) -> Tuple[List[Tuple[int, int, str]], ResourceTrace]:
    """Bin unique reads the way the Perl one-liner culture does.

    Returns the ranked ``(rank, count, sequence)`` list and the phase
    trace. Deliberate scripting idioms, kept on purpose:

    - the whole file is slurped into a line list before any processing
      (the dark-green read ramp in Figure 7);
    - records are processed one at a time in interpreter code;
    - everything runs on one core (utilisation = 1/cores).
    """
    trace = ResourceTrace(label="perl-style script", cores=cores)

    with trace.record("read", busy_cores=0.6, detail="slurp file into memory"):
        with open(fastq_path, "r", encoding="ascii") as handle:
            lines = handle.readlines()

    with trace.record("process", busy_cores=1.0, detail="per-record loop"):
        counts: dict = {}
        i = 0
        n = len(lines)
        while i + 4 <= n:
            header = lines[i]
            if not header.startswith("@"):
                i += 1
                continue
            seq = lines[i + 1].rstrip("\n")
            # the Perl script's  next if /N/;
            if "N" in seq:
                i += 4
                continue
            if seq in counts:
                counts[seq] += 1
            else:
                counts[seq] = 1
            i += 4
        # sort by descending frequency (Perl:  sort { $h{$b} <=> $h{$a} })
        ranked_pairs = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        ranked = [
            (rank, count, seq)
            for rank, (seq, count) in enumerate(ranked_pairs, start=1)
        ]

    if output_path is not None:
        with trace.record("write", busy_cores=0.5, detail="dump result file"):
            with open(output_path, "w", encoding="ascii") as out:
                for rank, count, seq in ranked:
                    out.write(f"{rank}\t{count}\t{seq}\n")

    return ranked, trace
