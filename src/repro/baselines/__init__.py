"""File-centric baselines: the flat-file zoo, the sequential binning
script, and the MAQ-style command-line pipeline."""

from .flat_files import FileCentricStore
from .maq_tool import MaqTool
from .perl_binning import run_binning_script
from .trace import Phase, ResourceTrace, trace_from_parallel_stats

__all__ = [
    "FileCentricStore",
    "MaqTool",
    "Phase",
    "ResourceTrace",
    "run_binning_script",
    "trace_from_parallel_stats",
]
