"""Phase-level resource traces (the Figures 7 and 8 instrumentation).

The paper contrasts the resource profile of the sequential Perl script
(read everything → process on one core → write; ~25 % CPU on a 4-core
box) with the parallel SQL plan (all cores busy). We record the same
story as *phase traces*: each phase has a wall-clock span and a CPU
utilisation (cores busy ÷ cores available), and the renderer draws the
text equivalent of the paper's perfmon screenshots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class Phase:
    name: str
    start: float
    end: float
    #: fraction of the machine's cores kept busy (0..1]
    utilization: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ResourceTrace:
    """An ordered list of phases for one program run."""

    label: str
    cores: int = 4
    phases: List[Phase] = field(default_factory=list)
    _origin: Optional[float] = None

    def record(self, name: str, busy_cores: float = 1.0, detail: str = ""):
        """Context manager timing one phase::

            with trace.record("process", busy_cores=1):
                ...
        """
        return _PhaseRecorder(self, name, busy_cores, detail)

    def add_phase(
        self,
        name: str,
        start: float,
        end: float,
        busy_cores: float,
        detail: str = "",
    ) -> None:
        if self._origin is None:
            self._origin = start
        self.phases.append(
            Phase(
                name,
                start - self._origin,
                end - self._origin,
                min(busy_cores / self.cores, 1.0),
                detail,
            )
        )

    @property
    def total_time(self) -> float:
        return self.phases[-1].end if self.phases else 0.0

    def mean_utilization(self) -> float:
        total = self.total_time
        if total <= 0:
            return 0.0
        busy = sum(p.duration * p.utilization for p in self.phases)
        return busy / total

    # -- rendering ---------------------------------------------------------------------

    def render(self, width: int = 64) -> str:
        """Draw the trace as a text chart: one row per phase, bar length
        ∝ duration, bar fill ∝ CPU utilisation."""
        lines = [
            f"{self.label}  (total {self.total_time:.2f}s, "
            f"mean CPU {self.mean_utilization() * 100:.0f}% of {self.cores} cores)"
        ]
        total = self.total_time or 1.0
        for phase in self.phases:
            bar_len = max(1, round(width * phase.duration / total))
            filled = max(0, round(bar_len * phase.utilization))
            bar = "#" * filled + "." * (bar_len - filled)
            lines.append(
                f"  {phase.name:<10} |{bar:<{width}}| "
                f"{phase.duration:6.2f}s @ {phase.utilization * 100:3.0f}% CPU"
                + (f"  ({phase.detail})" if phase.detail else "")
            )
        return "\n".join(lines)


class _PhaseRecorder:
    def __init__(self, trace: ResourceTrace, name: str, busy_cores: float, detail: str):
        self._trace = trace
        self._name = name
        self._busy = busy_cores
        self._detail = detail
        self._start = 0.0

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._trace.add_phase(
            self._name,
            self._start,
            time.perf_counter(),
            self._busy,
            self._detail,
        )
        return False
