"""Phase-level resource traces (the Figures 7 and 8 instrumentation).

The paper contrasts the resource profile of the sequential Perl script
(read everything → process on one core → write; ~25 % CPU on a 4-core
box) with the parallel SQL plan (all cores busy). We record the same
story as *phase traces*: each phase has a wall-clock span and a CPU
utilisation (cores busy ÷ cores available), and the renderer draws the
text equivalent of the paper's perfmon screenshots.

Built on the engine's span model (:mod:`repro.engine.metrics`), so the
script-side traces here and the operator/exchange timings inside the
engine come from one instrumentation source — a :class:`Phase` *is* a
:class:`~repro.engine.metrics.Span` with a utilisation attribute, and a
:class:`ResourceTrace` is a :class:`~repro.engine.metrics.SpanTimeline`.
:func:`trace_from_parallel_stats` converts an exchange operator's
measured :class:`~repro.engine.executor.parallel.ParallelStats` into the
same trace shape, which is how the Figure 8 chart is produced.

Chrome trace-event export goes through the engine's one trace writer
(:mod:`repro.engine.tracing`), so a simulated baseline timeline and a
real engine statement trace load side by side in ``chrome://tracing``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.metrics import Span, SpanTimeline
from repro.engine.tracing import (
    _process_name_event,
    timeline_chrome_events,
    write_chrome_trace,
)


class Phase(Span):
    """One trace phase: a span carrying CPU utilisation and a note."""

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        utilization: float,
        detail: str = "",
    ):
        super().__init__(
            name, start, end, {"utilization": utilization, "detail": detail}
        )

    @property
    def utilization(self) -> float:
        return self.attrs["utilization"]

    @property
    def detail(self) -> str:
        return self.attrs["detail"]


class ResourceTrace(SpanTimeline):
    """An ordered list of phases for one program run."""

    def __init__(
        self,
        label: str,
        cores: int = 4,
        phases: Optional[Sequence[Phase]] = None,
    ):
        super().__init__(label)
        self.cores = cores
        if phases:
            self.spans.extend(phases)

    @property
    def phases(self) -> List[Phase]:
        return self.spans

    @contextmanager
    def record(self, name: str, busy_cores: float = 1.0, detail: str = ""):
        """Context manager timing one phase::

            with trace.record("process", busy_cores=1):
                ...
        """
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add_phase(
                name, start, time.perf_counter(), busy_cores, detail
            )

    def add_phase(
        self,
        name: str,
        start: float,
        end: float,
        busy_cores: float,
        detail: str = "",
    ) -> None:
        if self._origin is None:
            self._origin = start
        self.spans.append(
            Phase(
                name,
                start - self._origin,
                end - self._origin,
                min(busy_cores / self.cores, 1.0),
                detail,
            )
        )

    def mean_utilization(self) -> float:
        total = self.total_time
        if total <= 0:
            return 0.0
        busy = sum(p.duration * p.utilization for p in self.phases)
        return busy / total

    # -- rendering ---------------------------------------------------------------------

    def render(self, width: int = 64) -> str:
        """Draw the trace as a text chart: one row per phase, bar length
        ∝ duration, bar fill ∝ CPU utilisation."""
        lines = [
            f"{self.label}  (total {self.total_time:.2f}s, "
            f"mean CPU {self.mean_utilization() * 100:.0f}% of {self.cores} cores)"
        ]
        total = self.total_time or 1.0
        for phase in self.phases:
            bar_len = max(1, round(width * phase.duration / total))
            filled = max(0, round(bar_len * phase.utilization))
            bar = "#" * filled + "." * (bar_len - filled)
            lines.append(
                f"  {phase.name:<10} |{bar:<{width}}| "
                f"{phase.duration:6.2f}s @ {phase.utilization * 100:3.0f}% CPU"
                + (f"  ({phase.detail})" if phase.detail else "")
            )
        return "\n".join(lines)

    # -- Chrome trace export (shared writer) ---------------------------------------

    def chrome_events(self, pid: int = 0) -> List[Dict[str, Any]]:
        """This trace as Chrome complete events on process ``pid`` (one
        ``tid`` per trace; spans are already normalised to t=0)."""
        return timeline_chrome_events(self, pid=pid, tid=0)

    def to_chrome_payload(self, pid: int = 0) -> Dict[str, Any]:
        """A self-contained Chrome trace-event JSON object."""
        return {
            "traceEvents": [_process_name_event(pid, self.label or "trace")]
            + self.chrome_events(pid=pid),
            "displayTimeUnit": "ms",
        }

    def write_chrome_trace(self, path: Any, pid: int = 0) -> None:
        write_chrome_trace(path, self.to_chrome_payload(pid=pid))


def trace_from_parallel_stats(label, stats, cores: int = 4) -> ResourceTrace:
    """Build the Figure-8-style trace from an exchange operator's
    measured :class:`~repro.engine.executor.parallel.ParallelStats`.

    Scan and repartition are data-parallel (all workers busy); the
    aggregate phase spans the slowest partition with utilisation equal
    to total worker time ÷ span; the gather is serial.
    """
    trace = ResourceTrace(label=label, cores=cores)
    now = 0.0
    trace.add_phase(
        "scan", now, now + stats.scan_time, busy_cores=cores,
        detail="parallel clustered index seek + filter",
    )
    now += stats.scan_time
    trace.add_phase(
        "repartition", now, now + stats.partition_time, busy_cores=cores,
        detail="hash on group key",
    )
    now += stats.partition_time
    agg_span = max(stats.partition_agg_times) if stats.partition_agg_times else 0
    busy = (
        sum(stats.partition_agg_times) / agg_span if agg_span > 0 else cores
    )
    trace.add_phase(
        "aggregate", now, now + agg_span, busy_cores=min(busy, cores),
        detail="partial hash aggregates, one per worker",
    )
    now += agg_span
    trace.add_phase(
        "gather+rank", now, now + stats.gather_time + 0.001, busy_cores=1,
        detail="gather streams, ROW_NUMBER",
    )
    return trace
