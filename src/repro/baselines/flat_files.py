"""The file-centric status quo: a directory of per-stage files.

This is the baseline data management the paper describes in Sections 1
and 2: every workflow stage writes its own file in its own format — the
lane FASTQ, the unique-tag listing, the MAQ-style alignment files, and
the tab-separated analysis outputs — with identity carried in textual
composite names and no shared data model. The storage benchmarks measure
these files as the "Files" column of Tables 1 and 2.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.errors import EngineError
from ..genomics.aligner import Alignment
from ..genomics.fastq import FastqRecord, write_fastq
from ..genomics.maqmap import write_binary_map, write_text_map


class FileCentricStore:
    """Manages the per-lane file zoo under one root directory."""

    def __init__(self, root: os.PathLike | str):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # -- path conventions (mirroring e.g. '855_s_1.fastq') -------------------------

    def lane_prefix(self, sample: int, lane: int) -> str:
        return f"{sample}_s_{lane}"

    def fastq_path(self, sample: int, lane: int) -> Path:
        return self.root / f"{self.lane_prefix(sample, lane)}.fastq"

    def tags_path(self, sample: int, lane: int) -> Path:
        return self.root / f"{self.lane_prefix(sample, lane)}.tags.txt"

    def map_path(self, sample: int, lane: int, binary: bool = False) -> Path:
        suffix = "map" if binary else "map.txt"
        return self.root / f"{self.lane_prefix(sample, lane)}.{suffix}"

    def expression_path(self, sample: int, lane: int) -> Path:
        return self.root / f"{self.lane_prefix(sample, lane)}.expr.txt"

    def consensus_path(self, sample: int, lane: int) -> Path:
        return self.root / f"{self.lane_prefix(sample, lane)}.cns.fasta"

    # -- writers ----------------------------------------------------------------------

    def store_lane_fastq(
        self, sample: int, lane: int, records: Iterable[FastqRecord]
    ) -> Path:
        path = self.fastq_path(sample, lane)
        write_fastq(records, path)
        return path

    def store_unique_tags(
        self,
        sample: int,
        lane: int,
        ranked_tags: Sequence[Tuple[int, int, str]],
    ) -> Path:
        """The Perl script's output: ``rank  count  sequence`` lines."""
        path = self.tags_path(sample, lane)
        with open(path, "w", encoding="ascii") as handle:
            for rank, count, sequence in ranked_tags:
                handle.write(f"{rank}\t{count}\t{sequence}\n")
        return path

    def store_alignments(
        self,
        sample: int,
        lane: int,
        alignments: Sequence[Alignment],
        binary: bool = False,
    ) -> Path:
        path = self.map_path(sample, lane, binary=binary)
        if binary:
            write_binary_map(alignments, path)
        else:
            write_text_map(alignments, path)
        return path

    def store_expression(
        self,
        sample: int,
        lane: int,
        rows: Sequence[Tuple[str, int, int]],
    ) -> Path:
        """Gene-expression results: ``gene  total_frequency  tag_count``."""
        path = self.expression_path(sample, lane)
        with open(path, "w", encoding="ascii") as handle:
            for gene, total, count in rows:
                handle.write(f"{gene}\t{total}\t{count}\n")
        return path

    # -- accounting --------------------------------------------------------------------

    def file_sizes(self) -> Dict[str, int]:
        """Size of every managed file, by name."""
        return {
            entry.name: entry.stat().st_size
            for entry in sorted(self.root.iterdir())
            if entry.is_file()
        }

    def total_bytes(self) -> int:
        return sum(self.file_sizes().values())

    def size_of(self, path: Path) -> int:
        if not path.exists():
            raise EngineError(f"missing file {path}")
        return path.stat().st_size
