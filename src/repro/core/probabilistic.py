"""Probabilistic sequence support (future work, Section 6.1).

"Short-read sequence data is probabilistic data as represented by the
quality values associated with each read. However, so far many
algorithms simply ignore those quality values ... An approach with
probabilistic databases hence seems natural."

This module supplies the building blocks such an approach needs inside
the engine:

- the ``ProbSequence`` UDT — one value holding bases *and* their
  per-base error probabilities (fixing the paper's own self-criticism
  that its model keeps them "in separate attributes");
- scalar UDFs over quality strings, usable in any query:
  ``BaseErrorProbability``, ``ExpectedMismatches``,
  ``SequenceReliability``, and the probabilistic equality
  ``ProbMatch(seq, quals, candidate)``;
- :func:`probabilistic_query1_sql` — Query 1 upgraded to weight each
  tag by the probability it was read correctly, yielding an *expected
  true count* next to the raw count.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.errors import UdfError
from ..engine.types import UdtCodec
from ..genomics.quality import PHRED33, decode_phred, phred_to_error_probability
from ..genomics.sequences import pack_4bit, unpack_4bit


@dataclass(frozen=True)
class ProbabilisticSequence:
    """A DNA sequence together with its per-base error probabilities."""

    bases: str
    quality: str  # phred+33 string, same length as bases

    def __post_init__(self):
        if len(self.bases) != len(self.quality):
            raise UdfError(
                "ProbabilisticSequence requires equal base/quality lengths"
            )

    @property
    def error_probabilities(self) -> List[float]:
        return [
            phred_to_error_probability(score)
            for score in decode_phred(self.quality, PHRED33)
        ]

    def reliability(self) -> float:
        """Probability that *every* base was called correctly."""
        result = 1.0
        for p in self.error_probabilities:
            result *= 1.0 - p
        return result

    def expected_mismatches(self) -> float:
        return sum(self.error_probabilities)

    def match_probability(self, candidate: str) -> float:
        """P(true sequence == candidate) under the independent per-base
        error model: a matching base contributes (1-p), a mismatching
        base contributes p/3 (the error landed on that specific base)."""
        if len(candidate) != len(self.bases):
            return 0.0
        result = 1.0
        for base, cand, p in zip(
            self.bases, candidate, self.error_probabilities
        ):
            if base == cand:
                result *= 1.0 - p
            else:
                result *= p / 3.0
            if result == 0.0:
                return 0.0
        return result

    # -- UDT serialisation --------------------------------------------------------

    def serialize(self) -> bytes:
        packed = pack_4bit(self.bases)
        quals = self.quality.encode("ascii")
        return struct.pack("<HH", len(packed), len(quals)) + packed + quals

    @staticmethod
    def deserialize(raw: bytes) -> "ProbabilisticSequence":
        seq_len, qual_len = struct.unpack_from("<HH", raw, 0)
        offset = struct.calcsize("<HH")
        bases = unpack_4bit(raw[offset : offset + seq_len])
        quality = raw[offset + seq_len : offset + seq_len + qual_len].decode(
            "ascii"
        )
        return ProbabilisticSequence(bases, quality)

    def __str__(self) -> str:
        return self.bases


def _prob_serialize(value) -> bytes:
    if isinstance(value, ProbabilisticSequence):
        return value.serialize()
    if isinstance(value, tuple) and len(value) == 2:
        return ProbabilisticSequence(*value).serialize()
    raise UdfError(
        f"ProbSequence takes ProbabilisticSequence or (bases, quality), "
        f"got {type(value).__name__}"
    )


PROB_SEQUENCE_UDT = UdtCodec(
    name="ProbSequence",
    serialize=_prob_serialize,
    deserialize=ProbabilisticSequence.deserialize,
    to_string=str,
    probe=("ACGT", "IIII"),
)


# ---------------------------------------------------------------------------
# scalar UDFs
# ---------------------------------------------------------------------------


def _base_error_probability(quals: Optional[str], index: Optional[int]):
    """1-based per-base error probability from a quality string."""
    if quals is None or index is None:
        return None
    i = int(index) - 1
    if i < 0 or i >= len(quals):
        return None
    return phred_to_error_probability(ord(quals[i]) - PHRED33)


def _expected_mismatches(quals: Optional[str]):
    if quals is None:
        return None
    return sum(
        phred_to_error_probability(ord(c) - PHRED33) for c in quals
    )


def _sequence_reliability(quals: Optional[str]):
    if quals is None:
        return None
    result = 1.0
    for c in quals:
        result *= 1.0 - phred_to_error_probability(ord(c) - PHRED33)
    return result


def _prob_match(seq: Optional[str], quals: Optional[str], candidate: Optional[str]):
    if seq is None or quals is None or candidate is None:
        return None
    return ProbabilisticSequence(seq, quals).match_probability(candidate)


def register_probabilistic_extensions(database: Database) -> None:
    """Install the probabilistic UDT and UDFs on a database."""
    database.register_udt(PROB_SEQUENCE_UDT)
    database.register_scalar(
        "BaseErrorProbability", _base_error_probability, deterministic=True
    )
    database.register_scalar(
        "ExpectedMismatches", _expected_mismatches, deterministic=True
    )
    database.register_scalar(
        "SequenceReliability", _sequence_reliability, deterministic=True
    )
    database.register_scalar("ProbMatch", _prob_match, deterministic=True)


# ---------------------------------------------------------------------------
# probabilistic Query 1
# ---------------------------------------------------------------------------


def probabilistic_query1_sql(e_id: int, sg_id: int, s_id: int) -> str:
    """Query 1 with quality awareness: next to the raw frequency, the
    *expected number of correct observations* of each tag — reads with
    shaky quality contribute less than clean ones."""
    return f"""
SELECT short_read_seq,
       COUNT(*) AS frequency,
       SUM(SequenceReliability(quals)) AS expected_true_count
  FROM [Read]
 WHERE r_e_id = {e_id} AND r_sg_id = {sg_id} AND r_s_id = {s_id}
       AND CHARINDEX('N', short_read_seq) = 0
 GROUP BY short_read_seq
 ORDER BY expected_true_count DESC
"""


def execute_probabilistic_query1(
    db: Database, e_id: int = 1, sg_id: int = 1, s_id: int = 1
) -> List[Tuple[str, int, float]]:
    return db.query(probabilistic_query1_sql(e_id, sg_id, s_id))
