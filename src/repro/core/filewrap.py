"""The five file-scanning variants of the Section 5.2 experiment.

The paper measures ``SELECT COUNT(*)`` over a 5M-line FASTA short-read
file through five access paths::

    Command line program (C#)                        ~  5 secs
    T-SQL Stored Procedure                      several minutes
    CLR-based Stored Procedure with StreamReader      21 secs
    CLR-based Stored Procedure with Chunking           7 secs
    CLR-based TVF with Chunking                       14 secs

This module implements each variant against the same FILESTREAM blob:

1. :func:`count_records_command_line` — a plain program reading the file
   directly (no database involved);
2. :func:`build_interpreted_count_procedure` — the T-SQL-style procedure
   executed by the tree-walking interpreter (statement-at-a-time, AST
   re-evaluated per line: the architectural reason it is slowest);
3. :func:`count_records_streamreader` — a compiled procedure reading the
   blob line by line (per-line call overhead, no chunk buffer);
4. :func:`count_records_chunked` — a compiled procedure scanning the
   blob in large chunks and counting record starts inside each buffer;
5. the registered ``ListShortReads`` TVF driven through the query
   engine — full parse + ``fill_row`` conversion per record, the
   iterator-contract overhead the paper quantifies.
"""

from __future__ import annotations

import uuid
from typing import Any

from ..engine.database import Database
from ..engine.expressions import BinaryOp, ColumnRef, FuncCall, Literal
from ..engine.procedural import (
    Assign,
    Declare,
    FetchLine,
    If,
    InterpretedProcedure,
    OpenLineCursor,
    Return,
    While,
)
from .wrappers import DEFAULT_CHUNK_SIZE

#: the record-start marker per format
_MARKERS = {"fasta": b">", "fastq": b"@"}


def _marker(fmt: str) -> bytes:
    try:
        return _MARKERS[fmt.lower()]
    except KeyError:
        raise ValueError(f"unsupported format {fmt!r}") from None


# -- variant 1: command-line program ------------------------------------------------


def count_records_command_line(
    path, fmt: str = "fasta", chunk_size: int = DEFAULT_CHUNK_SIZE
) -> int:
    """Count records by scanning the file directly (no DBMS)."""
    marker = _marker(fmt)
    count = 0
    prev_last = b"\n"
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                return count
            if prev_last == b"\n" and chunk.startswith(marker):
                count += 1
            count += chunk.count(b"\n" + marker)
            prev_last = chunk[-1:]


# -- variant 2: interpreted T-SQL-style procedure -----------------------------------


def build_interpreted_count_procedure(fmt: str = "fasta") -> InterpretedProcedure:
    """A cursor loop counting record headers, line by line, with every
    expression re-evaluated through the interpreter.

    T-SQL equivalent::

        DECLARE @count INT = 0
        OPEN CURSOR ... ; FETCH ...
        WHILE @status = 1
        BEGIN
            IF SUBSTRING(@line, 1, 1) = '>' SET @count = @count + 1
            FETCH NEXT ...
        END
        RETURN @count
    """
    marker = _marker(fmt).decode("ascii")
    var = ColumnRef  # variables resolve through the interpreter env
    return InterpretedProcedure(
        name=f"usp_count_{fmt.lower()}_records",
        params=("@guid",),
        body=[
            Declare("@count", 0),
            OpenLineCursor("c", "@guid"),
            FetchLine("c"),
            While(
                condition=BinaryOp("=", var("c_status"), Literal(1)),
                body=[
                    If(
                        condition=BinaryOp(
                            "=",
                            FuncCall(
                                "SUBSTRING",
                                (var("c_line"), Literal(1), Literal(1)),
                            ),
                            Literal(marker),
                        ),
                        then_body=[
                            Assign(
                                "@count",
                                BinaryOp("+", var("@count"), Literal(1)),
                            )
                        ],
                    ),
                    FetchLine("c"),
                ],
            ),
            Return(var("@count")),
        ],
    )


def count_records_interpreted(db: Database, guid: uuid.UUID, fmt: str = "fasta") -> int:
    """Run the interpreted procedure against a blob."""
    procedure = build_interpreted_count_procedure(fmt)
    db.procedures.register_interpreted(procedure)
    return db.call_procedure(procedure.name, guid)


# -- variant 3: compiled procedure, StreamReader-style --------------------------------


def count_records_streamreader(
    db: Database, guid: uuid.UUID, fmt: str = "fasta"
) -> int:
    """Compiled procedure reading the blob line by line (the CLR
    ``StreamReader`` pattern: correct, but one call per line)."""
    marker = _marker(fmt)
    count = 0
    with db.filestream.open_stream(guid) as handle:
        while True:
            line = handle.readline()
            if not line:
                return count
            if line.startswith(marker):
                count += 1


# -- variant 4: compiled procedure with chunking ---------------------------------------


def count_records_chunked(
    db: Database,
    guid: uuid.UUID,
    fmt: str = "fasta",
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> int:
    """Compiled procedure using the paper's ReadChunk pattern over the
    FILESTREAM ``get_bytes`` API: scan large buffers, count markers."""
    marker = _marker(fmt)
    store = db.filestream
    buffer = bytearray(chunk_size)
    offset = 0
    count = 0
    prev_last = b"\n"
    while True:
        read = store.get_bytes(
            guid, offset, buffer, 0, chunk_size,
            sequential=True, prefetch=max(chunk_size, 1 << 20),
        )
        if read == 0:
            return count
        view = bytes(buffer[:read])
        if prev_last == b"\n" and view.startswith(marker):
            count += 1
        count += view.count(b"\n" + marker)
        prev_last = view[-1:]
        offset += read


# -- variant 5: TVF with chunking -------------------------------------------------------


def count_records_tvf(
    db: Database, sample: int, lane: int, fmt: str = "FastA"
) -> int:
    """Drive the registered ``ListShortReads`` TVF through the query
    engine: full entry parse, per-row ``fill_row`` conversion, iterator
    contract — everything a real TVF pays."""
    return db.scalar(
        f"SELECT COUNT(*) FROM ListShortReads({sample}, {lane}, '{fmt}')"
    )
