"""Relational schemas for high-throughput sequencing (paper Section 3).

Two physical designs are provided, the very designs Tables 1 and 2
compare:

**Normalized** (:func:`create_normalized_schema`) — the paper's proposed
schema. Workflow provenance (Experiment → SampleGroup → Sample, Flowcell
→ Lane) and the level-1..3 sequence data live in one schema; composite
integer keys replace materialised textual identifiers; alignments link
back to the ``Read``/``Tag`` base tables by foreign key instead of
repeating sequences.

**1:1 import** (:func:`create_one_to_one_schema`) — the "straightforward"
import that mirrors the file structures: each table repeats the textual
composite identifiers (``IL4_855:1:293:426:864``-style read names) just
as the files do. This is the design whose storage *doubles* in Table 1.

Clustered-index choice is a parameter (the paper's physical-data-
independence point): alignments may be clustered by *position* (feeds
the sliding-window consensus without a sort) or by *read id* (feeds the
alignment ⋈ read merge join).
"""

from __future__ import annotations

from typing import Literal

from ..engine.database import Database

#: the paper's FILESTREAM filegroup name
FILESTREAM_GROUP = "FILESTREAMGROUP"

AlignmentClustering = Literal["position", "read"]


def create_workflow_tables(db: Database) -> None:
    """Experiment / sample / flowcell provenance tables (shared by both
    physical designs — this metadata is relational even in file-centric
    labs, per Section 2.1)."""
    db.execute(
        """
        CREATE TABLE Experiment (
            e_id        INT PRIMARY KEY,
            name        VARCHAR(100) NOT NULL,
            kind        VARCHAR(20) NOT NULL,
            description VARCHAR(MAX),
            started     DATETIME
        );
        CREATE TABLE SampleGroup (
            sg_e_id INT,
            sg_id   INT,
            name    VARCHAR(100),
            PRIMARY KEY (sg_e_id, sg_id),
            FOREIGN KEY (sg_e_id) REFERENCES Experiment (e_id)
        );
        CREATE TABLE Sample (
            s_e_id   INT,
            s_sg_id  INT,
            s_id     INT,
            name     VARCHAR(100),
            organism VARCHAR(100),
            PRIMARY KEY (s_e_id, s_sg_id, s_id),
            FOREIGN KEY (s_e_id, s_sg_id) REFERENCES SampleGroup (sg_e_id, sg_id)
        );
        CREATE TABLE Flowcell (
            fc_id      INT PRIMARY KEY,
            instrument VARCHAR(50),
            run_started DATETIME
        );
        CREATE TABLE Lane (
            l_fc_id    INT,
            l_lane     INT,
            l_e_id     INT,
            l_sg_id    INT,
            l_s_id     INT,
            is_control BIT,
            PRIMARY KEY (l_fc_id, l_lane),
            FOREIGN KEY (l_fc_id) REFERENCES Flowcell (fc_id)
        );
        """
    )


def create_reference_tables(db: Database) -> None:
    """Reference genome and gene annotation (level-0 knowledge)."""
    db.execute(
        """
        CREATE TABLE ReferenceSequence (
            rs_id   INT PRIMARY KEY,
            name    VARCHAR(50) NOT NULL,
            length  INT NOT NULL,
            seq     VARCHAR(MAX)
        );
        CREATE TABLE Gene (
            g_id      INT PRIMARY KEY,
            g_rs_id   INT NOT NULL,
            name      VARCHAR(50),
            start_pos INT,
            end_pos   INT,
            strand    CHAR(1),
            FOREIGN KEY (g_rs_id) REFERENCES ReferenceSequence (rs_id)
        );
        """
    )


def create_normalized_schema(
    db: Database,
    compression: str = "NONE",
    alignment_clustering: AlignmentClustering = "position",
    sequence_type: str = "VARCHAR(500)",
    storage: str = "HEAP",
) -> None:
    """The paper's normalized schema for level-1..3 data.

    Parameters
    ----------
    compression:
        ``NONE`` / ``ROW`` / ``PAGE`` on the bulk tables.
    alignment_clustering:
        ``position`` clusters ``Alignment`` by (experiment, sample,
        reference, position) so the consensus UDA streams without a
        sort; ``read`` clusters by read id so Alignment ⋈ Read is a
        merge join (the paper's 1.6 M-alignments/s figure).
    sequence_type:
        The column type for sequence payloads — swap in the ``DnaSequence``
        UDT to measure the bit-packed ablation.
    storage:
        ``HEAP`` (default) or ``COLUMN`` — the access method for the
        bulk tables, for the columnstore storage ablation.
    """
    options = []
    if compression != "NONE":
        options.append(f"DATA_COMPRESSION = {compression}")
    if storage.upper() != "HEAP":
        options.append(f"STORAGE = '{storage.upper()}'")
    with_clause = f" WITH ({', '.join(options)})" if options else ""
    db.execute(
        f"""
        CREATE TABLE [Read] (
            r_e_id         INT,
            r_sg_id        INT,
            r_s_id         INT,
            r_id           BIGINT,
            lane           INT,
            tile           INT,
            x              INT,
            y              INT,
            short_read_seq {sequence_type},
            quals          VARCHAR(500),
            PRIMARY KEY (r_e_id, r_sg_id, r_s_id, r_id)
        ){with_clause}
        """
    )
    db.execute(
        f"""
        CREATE TABLE Tag (
            t_e_id      INT,
            t_sg_id     INT,
            t_s_id      INT,
            t_id        BIGINT,
            t_seq       {sequence_type},
            t_frequency INT,
            PRIMARY KEY (t_e_id, t_sg_id, t_s_id, t_id)
        ){with_clause}
        """
    )
    if alignment_clustering == "position":
        alignment_pk = "a_e_id, a_sg_id, a_s_id, a_rs_id, a_pos, a_id"
    elif alignment_clustering == "read":
        alignment_pk = "a_e_id, a_sg_id, a_s_id, a_r_id, a_id"
    else:
        raise ValueError(f"unknown alignment clustering {alignment_clustering!r}")
    db.execute(
        f"""
        CREATE TABLE Alignment (
            a_e_id       INT,
            a_sg_id      INT,
            a_s_id       INT,
            a_id         BIGINT,
            a_r_id       BIGINT,
            a_t_id       BIGINT,
            a_rs_id      INT,
            a_g_id       INT,
            a_pos        INT,
            a_strand     CHAR(1),
            a_mismatches INT,
            a_mapq       INT,
            PRIMARY KEY ({alignment_pk})
        ){with_clause}
        """
    )
    db.execute(
        f"""
        CREATE TABLE GeneExpression (
            ge_g_id     INT,
            ge_e_id     INT,
            ge_sg_id    INT,
            ge_s_id     INT,
            total_freq  INT,
            tag_count   INT,
            PRIMARY KEY (ge_e_id, ge_sg_id, ge_s_id, ge_g_id)
        ){with_clause}
        """
    )
    db.execute(
        """
        CREATE TABLE Variant (
            v_e_id   INT,
            v_sg_id  INT,
            v_s_id   INT,
            v_rs_id  INT,
            v_pos    INT,
            ref_base CHAR(1),
            alt_base CHAR(1),
            v_qual   INT,
            PRIMARY KEY (v_e_id, v_sg_id, v_s_id, v_rs_id, v_pos)
        )
        """
    )
    db.execute(
        """
        CREATE TABLE Consensus (
            c_e_id   INT,
            c_sg_id  INT,
            c_s_id   INT,
            c_rs_id  INT,
            c_start  INT,
            c_seq    VARCHAR(MAX),
            PRIMARY KEY (c_e_id, c_sg_id, c_s_id, c_rs_id)
        )
        """
    )


def create_one_to_one_schema(db: Database, compression: str = "NONE") -> None:
    """The naive 1:1 import mirroring the files (Section 5.1).

    Every table repeats the textual composite identifiers exactly as the
    file formats materialise them — no synthetic keys, no normalization.
    """
    with_clause = (
        f" WITH (DATA_COMPRESSION = {compression})"
        if compression != "NONE"
        else ""
    )
    db.execute(
        f"""
        CREATE TABLE ReadsFlat (
            read_name      VARCHAR(80),
            short_read_seq VARCHAR(500),
            quals          VARCHAR(500),
            PRIMARY KEY (read_name)
        ){with_clause}
        """
    )
    db.execute(
        f"""
        CREATE TABLE TagsFlat (
            tag_name    VARCHAR(80),
            t_seq       VARCHAR(500),
            t_frequency INT,
            PRIMARY KEY (tag_name)
        ){with_clause}
        """
    )
    db.execute(
        f"""
        CREATE TABLE AlignmentsFlat (
            read_name    VARCHAR(80),
            ref_name     VARCHAR(50),
            a_pos        INT,
            a_strand     CHAR(1),
            a_mapq       INT,
            a_mismatches INT,
            read_length  INT,
            a_seq        VARCHAR(500),
            a_quals      VARCHAR(500),
            PRIMARY KEY (read_name, ref_name, a_pos)
        ){with_clause}
        """
    )
    db.execute(
        f"""
        CREATE TABLE GeneExpressionFlat (
            gene_name  VARCHAR(50),
            exp_name   VARCHAR(100),
            total_freq INT,
            tag_count  INT,
            PRIMARY KEY (gene_name, exp_name)
        ){with_clause}
        """
    )


def create_filestream_schema(db: Database) -> None:
    """The hybrid design's ``ShortReadFiles`` table (paper Section 3.3)."""
    db.execute(
        f"""
        CREATE TABLE ShortReadFiles (
            guid   UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,
            sample INT,
            lane   INT,
            fmt    VARCHAR(10),
            reads  VARBINARY(MAX) FILESTREAM
        ) FILESTREAM_ON {FILESTREAM_GROUP}
        """
    )
