"""Differential expression analysis (the DGE tertiary analysis).

Section 2.1.2: "As tertiary data analysis, one performs a differential
expression analysis of different samples, e.g. comparing healthy cells
with cancer cells." And Section 2.1 phase 3: "this is based on
statistical analysis."

:func:`differential_expression` runs that comparison over two samples'
``GeneExpression`` rows — the SQL self-join produces the per-gene count
pairs, the statistics decide which differences are real:

- **log2 fold change** on library-size-normalised counts;
- a **two-proportion z-test** (equivalently the chi-squared test on the
  2×2 table of gene count vs. rest-of-library count) giving a p-value
  per gene — the classic test for SAGE/DGE tag counts (Kal et al. 1999).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..engine.database import Database
from ..engine.errors import EngineError


@dataclass(frozen=True)
class DifferentialResult:
    """One gene's differential-expression verdict."""

    gene_id: int
    gene_name: str
    count_a: int
    count_b: int
    log2_fold_change: float
    p_value: float

    @property
    def significant(self) -> bool:
        return self.p_value < 0.05


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (no scipy dependency in
    the hot path; erfc is exact)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def two_proportion_p_value(
    count_a: int, total_a: int, count_b: int, total_b: int
) -> float:
    """Two-sided two-proportion z-test for tag counts.

    Tests whether a gene's share of library A differs from its share of
    library B. Returns 1.0 when a test is not meaningful (empty
    libraries or zero counts on both sides).
    """
    if total_a <= 0 or total_b <= 0:
        return 1.0
    if count_a == 0 and count_b == 0:
        return 1.0
    p_a = count_a / total_a
    p_b = count_b / total_b
    pooled = (count_a + count_b) / (total_a + total_b)
    denominator = pooled * (1 - pooled) * (1 / total_a + 1 / total_b)
    if denominator <= 0:
        return 1.0
    z = abs(p_a - p_b) / math.sqrt(denominator)
    return 2.0 * _normal_sf(z)


def log2_fold_change(
    count_a: int, total_a: int, count_b: int, total_b: int,
    pseudocount: float = 0.5,
) -> float:
    """log2 of the normalised expression ratio, with a pseudo-count so
    zero-count genes stay finite."""
    rate_a = (count_a + pseudocount) / max(total_a, 1)
    rate_b = (count_b + pseudocount) / max(total_b, 1)
    return math.log2(rate_a / rate_b)


DIFFERENTIAL_SQL = """
SELECT a.ga AS gene_id, name, a.freq_a, b.freq_b
  FROM (SELECT ge_g_id AS ga, total_freq AS freq_a
          FROM GeneExpression
         WHERE ge_e_id = {e_id} AND ge_sg_id = {sg_id}
               AND ge_s_id = {sample_a}) AS a
  JOIN (SELECT ge_g_id AS gb, total_freq AS freq_b
          FROM GeneExpression
         WHERE ge_e_id = {e_id} AND ge_sg_id = {sg_id}
               AND ge_s_id = {sample_b}) AS b
    ON (a.ga = b.gb)
  JOIN Gene ON (g_id = a.ga)
"""


def differential_expression(
    db: Database,
    e_id: int,
    sg_id: int,
    sample_a: int,
    sample_b: int,
    min_total: int = 5,
) -> List[DifferentialResult]:
    """Compare two samples' gene expression; most-significant first.

    Genes expressed in only one of the samples are included with a zero
    count on the other side (a LEFT/RIGHT union done as two passes, since
    the engine speaks inner joins). ``min_total`` drops genes whose
    combined count is too small to test.
    """
    totals = {}
    for s_id in (sample_a, sample_b):
        totals[s_id] = db.scalar(
            f"""
            SELECT SUM(total_freq) FROM GeneExpression
            WHERE ge_e_id = {e_id} AND ge_sg_id = {sg_id}
                  AND ge_s_id = {s_id}
            """
        ) or 0
    if totals[sample_a] == 0 and totals[sample_b] == 0:
        raise EngineError(
            f"no GeneExpression rows for samples {sample_a}/{sample_b}"
        )

    counts = {}
    names = {}
    for s_index, s_id in ((0, sample_a), (1, sample_b)):
        for gene_id, name, freq in db.query(
            f"""
            SELECT ge_g_id, name, total_freq FROM GeneExpression
            JOIN Gene ON (g_id = ge_g_id)
            WHERE ge_e_id = {e_id} AND ge_sg_id = {sg_id}
                  AND ge_s_id = {s_id}
            """
        ):
            entry = counts.setdefault(gene_id, [0, 0])
            entry[s_index] = freq
            names[gene_id] = name

    results = []
    for gene_id, (count_a, count_b) in counts.items():
        if count_a + count_b < min_total:
            continue
        results.append(
            DifferentialResult(
                gene_id=gene_id,
                gene_name=names[gene_id],
                count_a=count_a,
                count_b=count_b,
                log2_fold_change=log2_fold_change(
                    count_a, totals[sample_a], count_b, totals[sample_b]
                ),
                p_value=two_proportion_p_value(
                    count_a, totals[sample_a], count_b, totals[sample_b]
                ),
            )
        )
    results.sort(key=lambda r: (r.p_value, -abs(r.log2_fold_change)))
    return results
