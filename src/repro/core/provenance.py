"""Data provenance management (future work, Section 6.1).

"When and how were short-reads sequenced, which alignment algorithm with
certain parameters was used to align them against (a specific version
of) the Human reference genome? These are central questions to control
the quality of sequencing results."

This module implements the PROV-style core the paper's future-work
paragraph sketches, *inside the same relational schema* as the science
data (the paper's integration argument):

- **entities** — the data artefacts: a FASTQ blob, a Read-table sample,
  an alignment set, a consensus;
- **activities** — the processing steps, with their tool name and
  JSON-encoded parameters;
- **used / generated** edges — which activity consumed and produced
  which entities.

:meth:`ProvenanceTracker.lineage` answers the paper's question directly:
walk upstream from any entity to every activity and source entity it
derives from — e.g. from a consensus back to the aligner version and the
raw lane blob.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.errors import BindError

PROVENANCE_DDL = """
CREATE TABLE ProvEntity (
    ent_id  BIGINT IDENTITY PRIMARY KEY,
    kind    VARCHAR(40) NOT NULL,
    name    VARCHAR(200) NOT NULL,
    created DATETIME
);
CREATE TABLE ProvActivity (
    act_id   BIGINT IDENTITY PRIMARY KEY,
    name     VARCHAR(100) NOT NULL,
    params   VARCHAR(MAX),
    started  DATETIME,
    finished DATETIME
);
CREATE TABLE ProvUsed (
    u_act_id BIGINT,
    u_ent_id BIGINT,
    PRIMARY KEY (u_act_id, u_ent_id),
    FOREIGN KEY (u_act_id) REFERENCES ProvActivity (act_id),
    FOREIGN KEY (u_ent_id) REFERENCES ProvEntity (ent_id)
);
CREATE TABLE ProvGenerated (
    g_act_id BIGINT,
    g_ent_id BIGINT,
    PRIMARY KEY (g_act_id, g_ent_id),
    FOREIGN KEY (g_act_id) REFERENCES ProvActivity (act_id),
    FOREIGN KEY (g_ent_id) REFERENCES ProvEntity (ent_id)
);
"""


@dataclass(frozen=True)
class LineageStep:
    """One upstream derivation: entity ← activity ← source entities."""

    entity: Tuple[int, str, str]  # (ent_id, kind, name)
    activity: Optional[Tuple[int, str, str]]  # (act_id, name, params)
    sources: Tuple[Tuple[int, str, str], ...]


class ProvenanceTracker:
    """Records and queries PROV-style lineage on a database."""

    def __init__(self, database: Database):
        self.db = database
        if not database.catalog.has_table("ProvEntity"):
            database.execute(PROVENANCE_DDL)

    # -- recording ---------------------------------------------------------------

    def new_entity(self, kind: str, name: str) -> int:
        rid = self.db.table("ProvEntity").insert(
            (None, kind, name, time.time())
        )
        return self.db.table("ProvEntity").heap.fetch(rid)[0]

    def record_activity(
        self,
        name: str,
        params: Optional[Dict[str, Any]] = None,
        used: Sequence[int] = (),
        generated: Sequence[int] = (),
        started: Optional[float] = None,
    ) -> int:
        """Record one processing step with its inputs and outputs."""
        now = time.time()
        act_table = self.db.table("ProvActivity")
        rid = act_table.insert(
            (
                None,
                name,
                json.dumps(params or {}, sort_keys=True),
                started if started is not None else now,
                now,
            )
        )
        act_id = act_table.heap.fetch(rid)[0]
        for ent_id in used:
            self.db.insert_row("ProvUsed", (act_id, ent_id))
        for ent_id in generated:
            self.db.insert_row("ProvGenerated", (act_id, ent_id))
        return act_id

    # -- queries ------------------------------------------------------------------

    def _entity(self, ent_id: int) -> Tuple[int, str, str]:
        row = self.db.table("ProvEntity").get((ent_id,))
        if row is None:
            raise BindError(f"unknown provenance entity {ent_id}")
        return (row[0], row[1], row[2])

    def _generating_activity(self, ent_id: int) -> Optional[int]:
        rows = self.db.query(
            f"SELECT g_act_id FROM ProvGenerated WHERE g_ent_id = {ent_id}"
        )
        return rows[0][0] if rows else None

    def _activity(self, act_id: int) -> Tuple[int, str, str]:
        row = self.db.table("ProvActivity").get((act_id,))
        return (row[0], row[1], row[2])

    def _inputs_of(self, act_id: int) -> List[int]:
        return [
            row[0]
            for row in self.db.query(
                f"SELECT u_ent_id FROM ProvUsed WHERE u_act_id = {act_id}"
            )
        ]

    def lineage(self, ent_id: int) -> List[LineageStep]:
        """The full upstream derivation chain of an entity, breadth
        first — the paper's "which algorithm with which parameters
        against which reference version" question."""
        steps: List[LineageStep] = []
        frontier = [ent_id]
        visited = set()
        while frontier:
            current = frontier.pop(0)
            if current in visited:
                continue
            visited.add(current)
            entity = self._entity(current)
            act_id = self._generating_activity(current)
            if act_id is None:
                steps.append(LineageStep(entity, None, ()))
                continue
            sources = tuple(
                self._entity(src) for src in self._inputs_of(act_id)
            )
            steps.append(
                LineageStep(entity, self._activity(act_id), sources)
            )
            frontier.extend(src[0] for src in sources)
        return steps

    def derived_from(self, ent_id: int, ancestor_id: int) -> bool:
        """Does ``ent_id`` (transitively) derive from ``ancestor_id``?"""
        return any(
            step.entity[0] == ancestor_id for step in self.lineage(ent_id)
        )

    def render_lineage(self, ent_id: int) -> str:
        """Human-readable lineage report."""
        lines = []
        for step in self.lineage(ent_id):
            _eid, kind, name = step.entity
            if step.activity is None:
                lines.append(f"{kind} {name!r}  (source data)")
            else:
                _aid, act_name, params = step.activity
                sources = ", ".join(
                    f"{k} {n!r}" for _i, k, n in step.sources
                )
                lines.append(
                    f"{kind} {name!r}  <- {act_name}({params})  <- [{sources}]"
                )
        return "\n".join(lines)
