"""In-database alignment and sequence search.

Section 5.3.2: "Alternatively, we can implement the alignment algorithms
directly in the DBMS as stored procedures. Previous work showed that
this is possible, although with limited scalability [13]." And §6.1
flags indexing as the missing piece for in-database sequence search.

This module supplies both:

- :class:`AlignShortReadsTvf` — ``SELECT * FROM AlignShortReads(e, sg,
  s, max_mismatches)`` aligns a sample's ``Read`` rows against the
  loaded ``ReferenceSequence`` table, entirely inside the engine; an
  ``INSERT INTO Alignment SELECT ...`` completes the paper's
  "secondary analysis in the DBMS" story;
- ``usp_align_sample`` — the same as a compiled stored procedure that
  also writes the ``Alignment`` rows (clustered bulk load included);
- :class:`SearchShortReadsTvf` — q-gram-indexed substring/approximate
  search over the ``Read`` table: ``SELECT * FROM
  SearchShortReads('ACGTACGT', 1)`` returns the reads containing the
  pattern with ≤ 1 mismatch (Section 6.1's indexing future work).

Both TVFs build their index lazily and cache it per database, keyed by
the source table's row count — crude but honest invalidation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..engine.database import Database
from ..engine.errors import UdfError
from ..engine.schema import Column
from ..engine.types import char_type, float_type, int_type, varchar_type, bigint_type
from ..engine.udf import TableValuedFunction
from ..genomics.aligner import ShortReadAligner
from ..genomics.fasta import FastaRecord
from ..genomics.fastq import FastqRecord
from ..genomics.qgram import QGramIndex


class AlignShortReadsTvf(TableValuedFunction):
    """Align one sample's reads against the reference, as a relation."""

    name = "AlignShortReads"
    #: scans SequenceReads / ReferenceGenome tables while streaming
    permission_set = "EXTERNAL_ACCESS"
    columns = (
        Column("r_id", bigint_type()),
        Column("rs_id", int_type()),
        Column("pos", int_type()),
        Column("strand", char_type(1)),
        Column("mismatches", int_type()),
        Column("mapq", int_type()),
    )

    def __init__(self, database: Database):
        self._db = database
        self._aligner: Optional[ShortReadAligner] = None
        self._aligner_rows = -1
        self._rs_ids: Dict[str, int] = {}

    def _reference_aligner(self, max_mismatches: int) -> ShortReadAligner:
        table = self._db.table("ReferenceSequence")
        if (
            self._aligner is None
            or self._aligner_rows != table.row_count
            or self._aligner.max_mismatches != max_mismatches
        ):
            records = []
            self._rs_ids = {}
            for rs_id, name, _length, seq in table.scan():
                if seq is None:
                    raise UdfError(
                        f"reference sequence {name!r} has no stored bases"
                    )
                records.append(FastaRecord(name, seq))
                self._rs_ids[name] = rs_id
            if not records:
                raise UdfError("ReferenceSequence table is empty")
            self._aligner = ShortReadAligner(
                records, max_mismatches=max_mismatches
            )
            self._aligner_rows = table.row_count
        return self._aligner

    def create(
        self, e_id: int, sg_id: int, s_id: int, max_mismatches: int = 2
    ) -> Iterator[Any]:
        aligner = self._reference_aligner(int(max_mismatches))
        read_table = self._db.table("Read")
        rs_ids = self._rs_ids

        def generate():
            for row in read_table.seek(
                (e_id, sg_id, s_id), (e_id, sg_id, s_id)
            ):
                r_id, seq, quals = row[3], row[8], row[9]
                hit = aligner.align(FastqRecord(f"r_{r_id}", seq, quals))
                if hit is None:
                    continue
                yield (
                    r_id,
                    rs_ids[hit.reference],
                    hit.position,
                    hit.strand,
                    hit.mismatches,
                    hit.mapping_quality,
                )

        return generate()


class SearchShortReadsTvf(TableValuedFunction):
    """Q-gram-indexed pattern search over the ``Read`` table."""

    name = "SearchShortReads"
    #: scans the Read table to build and probe the q-gram index
    permission_set = "EXTERNAL_ACCESS"
    columns = (
        Column("r_id", bigint_type()),
        Column("short_read_seq", varchar_type(500)),
        Column("match_pos", int_type()),
        Column("mismatches", int_type()),
    )

    def __init__(self, database: Database, q: int = 8):
        self._db = database
        self._q = q
        self._index: Optional[QGramIndex] = None
        self._index_rows = -1

    def _read_index(self) -> QGramIndex:
        table = self._db.table("Read")
        if self._index is None or self._index_rows != table.row_count:
            index = QGramIndex(q=self._q)
            for row in table.scan():
                r_id, seq = row[3], row[8]
                if seq:
                    index.add(r_id, seq)
            self._index = index
            self._index_rows = table.row_count
        return self._index

    def create(self, pattern: str, max_mismatches: int = 0) -> Iterator[Any]:
        if not pattern:
            raise UdfError("SearchShortReads requires a pattern")
        index = self._read_index()

        def generate():
            for match in index.search_approximate(
                pattern, int(max_mismatches)
            ):
                yield (
                    match.sequence_id,
                    index.sequence(match.sequence_id),
                    match.position,
                    match.mismatches,
                )

        return generate()


def _usp_align_sample(
    database: Database,
    e_id: int,
    sg_id: int,
    s_id: int,
    max_mismatches: int = 2,
) -> int:
    """Compiled stored procedure: align a sample and bulk-load the
    ``Alignment`` table in clustered order. Returns the row count."""
    tvf = database.catalog.functions.tvf("AlignShortReads")
    if tvf is None:
        raise UdfError("AlignShortReads TVF is not registered")
    table = database.table("Alignment")
    rows: List[tuple] = []
    # continue above any alignment ids this sample already has
    a_id = max(
        (
            row[3]
            for row in table.scan()
            if (row[0], row[1], row[2]) == (e_id, sg_id, s_id)
        ),
        default=0,
    )
    for r_id, rs_id, pos, strand, mismatches, mapq in tvf.rows(
        e_id, sg_id, s_id, max_mismatches
    ):
        a_id += 1
        rows.append(
            (e_id, sg_id, s_id, a_id, r_id, None, rs_id, None, pos,
             strand, mismatches, mapq)
        )
    key = table.schema.key_indexes
    rows.sort(key=lambda r: tuple(r[i] for i in key))
    for row in rows:
        table.insert(row)
    table.finish_bulk_load()
    return len(rows)


def register_alignment_extensions(database: Database, q: int = 8) -> None:
    """Install the in-database alignment TVF + procedure and the q-gram
    search TVF. Requires the normalized schema (``ReferenceSequence``,
    ``Read``, ``Alignment``) to exist."""
    database.register_tvf(AlignShortReadsTvf(database))
    database.register_tvf(SearchShortReadsTvf(database, q=q))
    database.procedures.register_compiled("usp_align_sample", _usp_align_sample)
