"""The paper's extensibility artefacts: file-wrapper TVFs, analysis UDAs,
and the DNA sequence UDT.

This module is the reproduction of Sections 4.1 and 4.2.3:

- :class:`ChunkedBlobReader` — the Figure 5 machinery: scan a FileStream
  BLOB in large chunks (``ReadChunk``), parse entries out of an internal
  byte buffer, and page incomplete tail entries to the buffer start when
  a chunk boundary splits an entry;
- :class:`ListShortReadsTvf` — the ``ListShortReads(sample, lane, 'FastQ')``
  wrapper that surfaces a stored FASTQ/SRF blob as a relation, with the
  CLR-style split between the iterator (byte slices) and ``fill_row``
  (the per-row conversion the paper identifies as the bottleneck);
- :class:`PivotAlignmentTvf`, :class:`CallBaseUda`,
  :class:`AssembleSequenceUda`, :class:`AssembleConsensusUda` — the
  building blocks of Query 3, including the sliding-window optimisation;
- the ``DnaSequence`` UDT — the bit-packed sequence type the paper's
  future-work section projects a ~4× saving for.

:func:`register_extensions` installs everything on a database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..engine.database import Database
from ..engine.errors import UdfError
from ..engine.filestream import FileStreamStore
from ..engine.schema import Column
from ..engine.types import UdtCodec, char_type, int_type, varchar_type
from ..engine.udf import TableValuedFunction, UserDefinedAggregate
from ..genomics.consensus import SlidingWindowConsensus, call_base
from ..genomics.quality import PHRED33
from ..genomics.sequences import PackedDna

#: default ReadChunk size (the A2 ablation sweeps this)
DEFAULT_CHUNK_SIZE = 256 * 1024


# ---------------------------------------------------------------------------
# chunked FileStream scanning (paper Figure 5 / Section 4.1)
# ---------------------------------------------------------------------------


class ChunkedBlobReader:
    """Streams entries out of a FileStream BLOB via chunked reads.

    The parse callback receives ``(buffer, valid_length, position,
    at_eof)`` and returns ``(entry, new_position)`` — or ``None`` when
    the entry is incomplete, which triggers the paging algorithm: the
    incomplete tail is copied to the buffer start and the remainder of
    the buffer refilled from the file.
    """

    def __init__(
        self,
        store: FileStreamStore,
        guid,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        sequential: bool = True,
    ):
        if chunk_size < 256:
            raise UdfError(f"chunk size {chunk_size} is too small")
        self._store = store
        self._guid = guid
        self._buffer = bytearray(chunk_size)
        self._file_pos = 0
        self._buffer_pos = 0
        self._buffer_offset = 0  # carried-over tail bytes at buffer start
        self._at_eof = False
        self.chunks_read = 0

    def _read_chunk(self) -> int:
        """The paper's ``ReadChunk()``: refill the buffer after any
        carried-over bytes; returns the number of valid bytes."""
        length = len(self._buffer) - self._buffer_offset
        read = self._store.get_bytes(
            self._guid,
            self._file_pos,
            self._buffer,
            self._buffer_offset,
            length,
            sequential=True,
            prefetch=max(len(self._buffer), 1 << 20),
        )
        self._file_pos += read
        self._buffer_pos = 0
        self.chunks_read += 1
        if read == 0:
            self._at_eof = True
            carried = self._buffer_offset
            self._buffer_offset = 0
            return carried
        if self._buffer_offset > 0:
            read += self._buffer_offset
            self._buffer_offset = 0
        return read

    def entries(
        self,
        parse_entry: Callable[[bytes, int, int, bool], Optional[Tuple[Any, int]]],
    ) -> Iterator[Any]:
        """The paper's ``MoveNext()`` loop, as a generator."""
        bytes_read = self._read_chunk()
        while bytes_read > 0:
            if self._buffer_pos >= bytes_read:
                if self._at_eof:
                    return
                bytes_read = self._read_chunk()
                continue
            result = parse_entry(
                self._buffer, bytes_read, self._buffer_pos, self._at_eof
            )
            if result is not None:
                entry, new_pos = result
                self._buffer_pos = new_pos
                yield entry
                continue
            if self._at_eof:
                raise UdfError(
                    "malformed trailing entry in FileStream blob"
                )
            # paging algorithm: move the incomplete entry to the start
            tail = bytes_read - self._buffer_pos
            if tail >= len(self._buffer):
                raise UdfError(
                    f"entry larger than the {len(self._buffer)}-byte buffer"
                )
            self._buffer[0:tail] = self._buffer[self._buffer_pos:bytes_read]
            self._buffer_offset = tail
            bytes_read = self._read_chunk()


def parse_fastq_entry(
    buffer: bytes, end: int, pos: int, at_eof: bool
) -> Optional[Tuple[Tuple[bytes, bytes, bytes], int]]:
    """Parse one 4-line FASTQ entry out of the buffer.

    Returns raw byte slices (name, sequence, quality) — decoding to SQL
    types is the TVF's ``fill_row`` job, by design.
    """
    cursor = pos
    lines: List[bytes] = []
    for _ in range(4):
        newline = buffer.find(b"\n", cursor, end)
        if newline < 0:
            if at_eof and cursor < end and len(lines) == 3:
                lines.append(bytes(buffer[cursor:end]))
                cursor = end
                break
            return None
        lines.append(bytes(buffer[cursor:newline]))
        cursor = newline + 1
    if len(lines) < 4:
        return None
    header, sequence, plus, quality = lines
    if not header.startswith(b"@") or not plus.startswith(b"+"):
        raise UdfError(
            f"malformed FASTQ entry near byte {pos} "
            f"({header[:20]!r} / {plus[:10]!r})"
        )
    return (header[1:], sequence, quality), cursor


def parse_fasta_entry(
    buffer: bytes, end: int, pos: int, at_eof: bool
) -> Optional[Tuple[Tuple[bytes, bytes], int]]:
    """Parse one FASTA entry (header + sequence lines up to the next
    ``>`` or EOF)."""
    if buffer[pos : pos + 1] != b">":
        raise UdfError(f"expected '>' at byte {pos}")
    header_end = buffer.find(b"\n", pos, end)
    if header_end < 0:
        return None
    # entry ends at the next '>' that starts a line
    search = header_end + 1
    while True:
        next_header = buffer.find(b"\n>", search, end)
        if next_header >= 0:
            entry_end = next_header + 1
            break
        if at_eof:
            entry_end = end
            break
        return None
    header = bytes(buffer[pos + 1 : header_end])
    sequence = bytes(buffer[header_end + 1 : entry_end]).replace(b"\n", b"")
    return (header, sequence), entry_end


# ---------------------------------------------------------------------------
# ListShortReads TVF (the hybrid design's relational window onto FASTQ)
# ---------------------------------------------------------------------------


class ListShortReadsTvf(TableValuedFunction):
    """``SELECT * FROM ListShortReads(sample, lane, 'FastQ')``.

    Finds the ``ShortReadFiles`` row for (sample, lane), then streams
    the blob through :class:`ChunkedBlobReader`. The iterator yields raw
    byte slices; :meth:`fill_row` performs the CLR→SQL conversion.
    """

    name = "ListShortReads"
    #: reads the ShortReadFiles table and FILESTREAM blobs
    permission_set = "EXTERNAL_ACCESS"
    columns = (
        Column("read_name", varchar_type(80)),
        Column("short_read_seq", varchar_type(500)),
        Column("quals", varchar_type(500)),
    )

    def __init__(
        self,
        database: Database,
        table_name: str = "ShortReadFiles",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ):
        self._db = database
        self._table_name = table_name
        self.chunk_size = chunk_size

    def _find_blob(self, sample: int, lane: int):
        table = self._db.table(self._table_name)
        schema = table.schema
        sample_i = schema.column_index("sample")
        lane_i = schema.column_index("lane")
        guid_i = schema.column_index("reads")
        for row in table.scan():
            if row[sample_i] == sample and row[lane_i] == lane:
                return row[guid_i]
        raise UdfError(
            f"no short-read file for sample={sample}, lane={lane}"
        )

    def create(self, sample: int, lane: int, fmt: str = "FastQ") -> Iterator[Any]:
        guid = self._find_blob(sample, lane)
        reader = ChunkedBlobReader(
            self._db.filestream, guid, chunk_size=self.chunk_size
        )
        fmt_key = (fmt or "FastQ").lower()
        if fmt_key == "fastq":
            return reader.entries(parse_fastq_entry)
        if fmt_key == "fasta":
            return (
                (name, seq, b"") for name, seq in reader.entries(parse_fasta_entry)
            )
        if fmt_key == "srf":
            # SRF containers are length-prefixed binary; stream them
            # through the container reader over the managed file handle
            # (Section 5.3.1: "our hybrid approach would however
            # naturally extend to encapsulate SRF files as FileStreams")
            from ..genomics.srf import read_srf

            def srf_rows():
                with self._db.filestream.open_stream(guid) as handle:
                    for record in read_srf(handle):
                        yield (record.name, record.sequence, record.quality)

            return srf_rows()
        raise UdfError(f"unsupported short-read format {fmt!r}")

    def fill_row(self, obj) -> Tuple[Any, ...]:
        name, sequence, quality = obj
        if isinstance(name, bytes):
            return (
                name.decode("ascii"),
                sequence.decode("ascii"),
                quality.decode("ascii"),
            )
        return (name, sequence, quality)


# ---------------------------------------------------------------------------
# PivotAlignment TVF (Query 3, conceptually clean version)
# ---------------------------------------------------------------------------


class PivotAlignmentTvf(TableValuedFunction):
    """``CROSS APPLY PivotAlignment(a_pos, short_read_seq, quals)`` —
    pivot one aligned read into (position, base, quality) rows."""

    name = "PivotAlignment"
    columns = (
        Column("pos", int_type()),
        Column("base", char_type(1)),
        Column("qual", int_type()),
    )

    def __init__(self, quality_offset: int = PHRED33):
        self._offset = quality_offset

    def create(self, pos: int, seq: str, quals: str) -> Iterator[Any]:
        if seq is None:
            return iter(())
        offset = self._offset
        quals = quals or ""
        return (
            (
                pos + i,
                seq[i],
                (ord(quals[i]) - offset) if i < len(quals) else 0,
            )
            for i in range(len(seq))
        )


# ---------------------------------------------------------------------------
# UDAs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ConsensusPiece:
    """A called consensus fragment: genome start + sequence (the large
    in-aggregate BLOB result Section 5.3.3 worries about).

    ``qualities`` carries per-base consensus quality when the producing
    aggregate computes it (the sliding-window UDA does; the pivot
    pipeline's ``AssembleSequence`` does not) — SNP calling filters on
    it."""

    start: int
    sequence: str
    qualities: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return len(self.sequence)

    def __eq__(self, other) -> bool:
        # equality ignores qualities so the pivot and sliding-window
        # pipelines (which agree on the called bases) compare equal
        if not isinstance(other, ConsensusPiece):
            return NotImplemented
        return (self.start, self.sequence) == (other.start, other.sequence)

    def __hash__(self) -> int:
        return hash((self.start, self.sequence))


class CallBaseUda(UserDefinedAggregate):
    """``CallBase(base, qual)`` — quality-weighted consensus base for one
    (chromosome, position) group."""

    name = "CallBase"
    arity = 2
    parallel_safe = True
    permission_set = "SAFE"

    def init(self) -> None:
        self._votes: dict = {}

    def accumulate(self, base: str, qual: int) -> None:
        if base is None or base == "N":
            return
        self._votes[base] = self._votes.get(base, 0) + max(int(qual or 0), 0)

    def merge(self, other: "CallBaseUda") -> None:
        for base, score in other._votes.items():
            self._votes[base] = self._votes.get(base, 0) + score

    def terminate(self) -> str:
        if not self._votes:
            return "N"
        ranked = sorted(self._votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[0][0]


class AssembleSequenceUda(UserDefinedAggregate):
    """``AssembleSequence(pos, b)`` — concatenate called bases into the
    consensus string (the inverse of PivotAlignment). Buffers all
    (position, base) pairs: O(consensus length) state, the "large
    internal BLOB result" limitation the paper discusses."""

    name = "AssembleSequence"
    arity = 2
    parallel_safe = True
    permission_set = "SAFE"

    def init(self) -> None:
        self._calls: List[Tuple[int, str]] = []

    def accumulate(self, pos: int, base: str) -> None:
        if pos is None:
            return
        self._calls.append((pos, base or "N"))

    def merge(self, other: "AssembleSequenceUda") -> None:
        self._calls.extend(other._calls)

    def terminate(self) -> ConsensusPiece:
        if not self._calls:
            return ConsensusPiece(0, "")
        self._calls.sort(key=lambda pb: pb[0])
        start = self._calls[0][0]
        end = self._calls[-1][0]
        bases = ["N"] * (end - start + 1)
        for pos, base in self._calls:
            bases[pos - start] = base
        return ConsensusPiece(start, "".join(bases))


class AssembleConsensusUda(UserDefinedAggregate):
    """``AssembleConsensus(pos, seq, quals)`` — the optimised one-pass
    consensus: combines base calling and assembly over alignments that
    arrive ordered by position, with O(window) state (Section 4.2.3's
    proposed sliding-window processing technique)."""

    name = "AssembleConsensus"
    arity = 3
    permission_set = "SAFE"
    parallel_safe = False  # partial windows overlap partition borders
    requires_ordered_input = True

    quality_offset = PHRED33

    def init(self) -> None:
        self._window: Optional[SlidingWindowConsensus] = None

    def accumulate(self, pos: int, seq: str, quals: str) -> None:
        if pos is None or seq is None:
            return
        if self._window is None:
            self._window = SlidingWindowConsensus("", length=None)
        offset = self.quality_offset
        scores = (
            [ord(c) - offset for c in quals]
            if quals
            else [0] * len(seq)
        )
        if len(scores) < len(seq):
            scores = scores + [0] * (len(seq) - len(scores))
        self._window.add_alignment(pos, seq, scores[: len(seq)])

    def merge(self, other: "AssembleConsensusUda") -> None:
        raise UdfError(
            "AssembleConsensus cannot merge partial states: alignments "
            "overlapping a partition border would be split (the paper's "
            "partitioning problem); partition by chromosome instead"
        )

    def terminate(self) -> ConsensusPiece:
        if self._window is None:
            return ConsensusPiece(0, "")
        result = self._window.finish()
        return ConsensusPiece(
            result.start, result.sequence, tuple(result.qualities)
        )

    @property
    def peak_window(self) -> int:
        return self._window.peak_window if self._window else 0


# ---------------------------------------------------------------------------
# DnaSequence UDT
# ---------------------------------------------------------------------------


def _dna_serialize(value: Any) -> bytes:
    if isinstance(value, PackedDna):
        return value.serialize()
    if isinstance(value, str):
        return PackedDna(value).serialize()
    raise UdfError(f"DnaSequence takes str or PackedDna, got {type(value).__name__}")


DNA_SEQUENCE_UDT = UdtCodec(
    name="DnaSequence",
    serialize=_dna_serialize,
    deserialize=PackedDna.deserialize,
    to_string=lambda v: str(v),
    probe="ACGTACGT",
)


# ---------------------------------------------------------------------------
# registration
# ---------------------------------------------------------------------------


def register_extensions(
    database: Database, chunk_size: int = DEFAULT_CHUNK_SIZE
) -> None:
    """Install the paper's UDFs, TVFs, UDAs, and UDT on a database."""
    from ..genomics.sequences import reverse_complement

    database.register_scalar(
        "ReverseComplement",
        reverse_complement,
        returns_null_on_null_input=True,
        deterministic=True,
    )
    database.register_tvf(ListShortReadsTvf(database, chunk_size=chunk_size))
    database.register_tvf(PivotAlignmentTvf())
    database.register_uda(CallBaseUda)
    database.register_uda(AssembleSequenceUda)
    database.register_uda(AssembleConsensusUda)
    database.register_udt(DNA_SEQUENCE_UDT)
