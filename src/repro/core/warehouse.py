"""The genomics warehouse: the paper's data management design as an API.

:class:`GenomicsWarehouse` assembles the pieces — normalized relational
schema, hybrid FILESTREAM storage for level-1 data, registered TVFs/UDAs,
and the analysis queries — into the workflow a sequencing lab would run:

1. register provenance (experiment → sample group → sample, flowcell →
   lane);
2. import level-1 FASTQ lanes, either as FILESTREAM blobs (hybrid) or
   into the ``Read`` table (full relational), or both;
3. bin unique tags (Query 1) into ``Tag``;
4. align reads/tags with the built-in MAQ-like aligner into
   ``Alignment``;
5. tertiary analysis: gene expression (Query 2) or consensus calling
   (Query 3).
"""

from __future__ import annotations

import time
from bisect import bisect_right
from typing import Dict, Iterable, List, Literal, Optional, Sequence, Tuple

from ..engine.database import Database
from ..engine.errors import BindError, EngineError
from ..genomics.aligner import Alignment, ShortReadAligner
from ..genomics.fasta import FastaRecord
from ..genomics.fastq import FastqRecord, fastq_bytes
from ..genomics.simulate import GeneAnnotation
from . import queries
from .schemas import (
    AlignmentClustering,
    create_filestream_schema,
    create_normalized_schema,
    create_reference_tables,
    create_workflow_tables,
)
from .wrappers import register_extensions


class GenomicsWarehouse:
    """A ready-to-use genomics database following the paper's design."""

    def __init__(
        self,
        data_dir=None,
        compression: str = "NONE",
        alignment_clustering: AlignmentClustering = "position",
        sequence_type: str = "VARCHAR(500)",
        default_dop: int = 4,
        chunk_size: int = 256 * 1024,
    ):
        self.db = Database(data_dir=data_dir, default_dop=default_dop)
        register_extensions(self.db, chunk_size=chunk_size)
        create_workflow_tables(self.db)
        create_reference_tables(self.db)
        create_normalized_schema(
            self.db,
            compression=compression,
            alignment_clustering=alignment_clustering,
            sequence_type=sequence_type,
        )
        create_filestream_schema(self.db)
        self._reference: List[FastaRecord] = []
        self._rs_ids: Dict[str, int] = {}
        self._gene_index: Dict[str, Tuple[List[int], List[Tuple[int, int]]]] = {}
        self._aligner: Optional[ShortReadAligner] = None
        self._next_alignment_id: Dict[Tuple[int, int, int], int] = {}

    def close(self) -> None:
        self.db.close()

    def __enter__(self) -> "GenomicsWarehouse":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- provenance --------------------------------------------------------------------

    def register_experiment(
        self,
        e_id: int,
        name: str,
        kind: Literal["resequencing", "dge"],
        description: str = "",
    ) -> None:
        self.db.insert_row(
            "Experiment", (e_id, name, kind, description, time.time())
        )

    def register_sample_group(self, e_id: int, sg_id: int, name: str) -> None:
        self.db.insert_row("SampleGroup", (e_id, sg_id, name))

    def register_sample(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        name: str,
        organism: str = "Homo sapiens",
    ) -> None:
        self.db.insert_row("Sample", (e_id, sg_id, s_id, name, organism))

    def register_flowcell(
        self, fc_id: int, instrument: str = "Illumina GA"
    ) -> None:
        self.db.insert_row("Flowcell", (fc_id, instrument, time.time()))

    def register_lane(
        self,
        fc_id: int,
        lane: int,
        e_id: int,
        sg_id: int,
        s_id: int,
        is_control: bool = False,
    ) -> None:
        self.db.insert_row(
            "Lane", (fc_id, lane, e_id, sg_id, s_id, 1 if is_control else 0)
        )

    # -- reference data --------------------------------------------------------------------

    def load_reference(self, reference: Sequence[FastaRecord]) -> None:
        """Load chromosomes into ``ReferenceSequence`` and build the
        in-process aligner index."""
        table = self.db.table("ReferenceSequence")
        self._reference = list(reference)
        for i, record in enumerate(self._reference, start=1):
            table.insert((i, record.name, len(record.sequence), record.sequence))
            self._rs_ids[record.name] = i
        self._aligner = None  # rebuilt lazily

    def load_genes(self, genes: Sequence[GeneAnnotation]) -> None:
        table = self.db.table("Gene")
        per_chromosome: Dict[str, List[GeneAnnotation]] = {}
        for gene in genes:
            rs_id = self._rs_ids.get(gene.chromosome)
            if rs_id is None:
                raise BindError(
                    f"gene {gene.name} references unknown chromosome "
                    f"{gene.chromosome!r}"
                )
            table.insert(
                (gene.gene_id, rs_id, gene.name, gene.start, gene.end, gene.strand)
            )
            per_chromosome.setdefault(gene.chromosome, []).append(gene)
        for chromosome, chrom_genes in per_chromosome.items():
            chrom_genes.sort(key=lambda g: g.start)
            starts = [g.start for g in chrom_genes]
            spans = [(g.end, g.gene_id) for g in chrom_genes]
            self._gene_index[chromosome] = (starts, spans)

    def gene_at(self, chromosome: str, position: int) -> Optional[int]:
        """Gene id covering ``position``, or None (intergenic)."""
        entry = self._gene_index.get(chromosome)
        if entry is None:
            return None
        starts, spans = entry
        i = bisect_right(starts, position) - 1
        if i < 0:
            return None
        end, gene_id = spans[i]
        return gene_id if position < end else None

    @property
    def aligner(self) -> ShortReadAligner:
        if self._aligner is None:
            if not self._reference:
                raise EngineError("load_reference() before aligning")
            self._aligner = ShortReadAligner(self._reference)
        return self._aligner

    @property
    def reference_names(self) -> Dict[str, int]:
        return dict(self._rs_ids)

    def chromosome_lengths(self) -> Dict[int, int]:
        return {
            self._rs_ids[r.name]: len(r.sequence) for r in self._reference
        }

    # -- level-1 import --------------------------------------------------------------------

    def import_lane_hybrid(
        self,
        sample: int,
        lane: int,
        records: Iterable[FastqRecord],
        fmt: str = "FastQ",
    ):
        """Hybrid design: store the lane's FASTQ bytes as a FILESTREAM
        blob in ``ShortReadFiles``; returns the blob GUID."""
        import uuid as _uuid

        payload = fastq_bytes(records)
        guid = _uuid.uuid4()
        self.db.table("ShortReadFiles").insert(
            (guid, sample, lane, fmt, payload)
        )
        # the payload is stored under its own blob GUID; fetch it back
        row = self.db.table("ShortReadFiles").get((guid,))
        return row[self.db.table("ShortReadFiles").schema.column_index("reads")]

    def import_lane_relational(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        records: Iterable[FastqRecord],
        lane: int = 1,
    ) -> int:
        """Full-relational design: parse the lane into ``Read`` rows with
        synthetic ids (the normalization step of Section 3.2)."""
        from ..genomics.fastq import parse_illumina_name

        table = self.db.table("Read")
        count = 0
        for r_id, record in enumerate(records, start=1):
            try:
                parsed = parse_illumina_name(record.name)
                tile, x, y = parsed.tile, parsed.x, parsed.y
                lane_no = parsed.lane
            except Exception:
                tile, x, y, lane_no = 0, 0, 0, lane
            table.insert(
                (
                    e_id,
                    sg_id,
                    s_id,
                    r_id,
                    lane_no,
                    tile,
                    x,
                    y,
                    record.sequence,
                    record.quality,
                )
            )
            count += 1
        table.finish_bulk_load()
        return count

    def load_reads_from_filestream(
        self, e_id: int, sg_id: int, s_id: int, sample: int, lane: int
    ) -> int:
        """ETL from the hybrid store into ``Read`` via the
        ``ListShortReads`` TVF — FILESTREAM in, relational rows out."""
        rows = self.db.query(
            f"SELECT * FROM ListShortReads({sample}, {lane}, 'FastQ')"
        )
        from ..genomics.fastq import FastqRecord as _Record

        return self.import_lane_relational(
            e_id,
            sg_id,
            s_id,
            (_Record(name, seq, quals) for name, seq, quals in rows),
            lane=lane,
        )

    # -- secondary analysis --------------------------------------------------------------------

    def bin_unique_tags(self, e_id: int, sg_id: int, s_id: int) -> int:
        """Run Query 1 and materialise the result into ``Tag``."""
        ranked = queries.execute_query1(self.db, e_id, sg_id, s_id)
        table = self.db.table("Tag")
        for rank, frequency, sequence in ranked:
            table.insert((e_id, sg_id, s_id, rank, sequence, frequency))
        table.finish_bulk_load()
        return len(ranked)

    def _alignment_id(self, e_id: int, sg_id: int, s_id: int) -> int:
        key = (e_id, sg_id, s_id)
        value = self._next_alignment_id.get(key)
        if value is None:
            # resume above whatever is already stored for this sample
            # (e.g. rows written by usp_align_sample)
            value = max(
                (
                    row[3]
                    for row in self.db.table("Alignment").scan()
                    if (row[0], row[1], row[2]) == key
                ),
                default=0,
            )
        value += 1
        self._next_alignment_id[key] = value
        return value

    def align_tags(self, e_id: int, sg_id: int, s_id: int) -> int:
        """Align each unique tag; write ``Alignment`` rows carrying the
        tag link and the covering gene (DGE scenario)."""
        tag_table = self.db.table("Tag")
        rows = [
            row
            for row in tag_table.scan()
            if row[0] == e_id and row[1] == sg_id and row[2] == s_id
        ]
        alignment_rows = []
        for (_e, _sg, _s, t_id, t_seq, _freq) in rows:
            record = FastqRecord(f"tag_{t_id}", t_seq, "I" * len(t_seq))
            hit = self.aligner.align(record)
            if hit is None:
                continue
            alignment_rows.append(self._alignment_row(
                e_id, sg_id, s_id, hit, t_id=t_id
            ))
        return self._store_alignments(alignment_rows)

    def align_reads(self, e_id: int, sg_id: int, s_id: int) -> int:
        """Align every ``Read`` row of a sample (re-sequencing scenario)."""
        read_table = self.db.table("Read")
        alignment_rows = []
        for row in read_table.seek((e_id, sg_id, s_id), (e_id, sg_id, s_id)):
            r_id, seq, quals = row[3], row[8], row[9]
            hit = self.aligner.align(FastqRecord(f"r_{r_id}", seq, quals))
            if hit is None:
                continue
            alignment_rows.append(self._alignment_row(
                e_id, sg_id, s_id, hit, r_id=r_id
            ))
        return self._store_alignments(alignment_rows)

    def load_alignments(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        alignments: Sequence[Alignment],
        read_ids: Dict[str, int],
    ) -> int:
        """Bulk-load precomputed alignments (e.g. imported from a MAQ
        map file), mapping read names to ``Read.r_id`` via ``read_ids``."""
        rows = [
            self._alignment_row(
                e_id, sg_id, s_id, hit, r_id=read_ids[hit.read_name]
            )
            for hit in alignments
            if hit.read_name in read_ids
        ]
        return self._store_alignments(rows)

    def _alignment_row(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        hit: Alignment,
        r_id: Optional[int] = None,
        t_id: Optional[int] = None,
    ) -> tuple:
        rs_id = self._rs_ids[hit.reference]
        g_id = self.gene_at(hit.reference, hit.position)
        return (
            e_id,
            sg_id,
            s_id,
            self._alignment_id(e_id, sg_id, s_id),
            r_id,
            t_id,
            rs_id,
            g_id,
            hit.position,
            hit.strand,
            hit.mismatches,
            hit.mapping_quality,
        )

    def _store_alignments(self, rows: List[tuple]) -> int:
        table = self.db.table("Alignment")
        # bulk-load in clustered order so pages fill sequentially
        key_indexes = table.schema.key_indexes
        rows.sort(key=lambda r: tuple(r[i] for i in key_indexes))
        for row in rows:
            table.insert(row)
        table.finish_bulk_load()
        return len(rows)

    # -- tertiary analysis --------------------------------------------------------------------

    def compute_gene_expression(
        self, e_id: int, sg_id: int, s_id: int
    ) -> int:
        """Query 2: populate ``GeneExpression``."""
        return queries.execute_query2(self.db, e_id, sg_id, s_id)

    def call_consensus(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        method: Literal["sliding", "pivot"] = "sliding",
    ) -> List[tuple]:
        """Query 3: per-chromosome consensus pieces, also stored in
        ``Consensus``."""
        if method == "sliding":
            results = queries.execute_query3_sliding(self.db, e_id, sg_id, s_id)
        elif method == "pivot":
            results = queries.execute_query3_pivot(self.db, e_id, sg_id, s_id)
        else:
            raise EngineError(f"unknown consensus method {method!r}")
        table = self.db.table("Consensus")
        table.delete_where(
            lambda row: row[0] == e_id and row[1] == sg_id and row[2] == s_id
        )
        for rs_id, piece in results:
            table.insert(
                (e_id, sg_id, s_id, rs_id, piece.start, piece.sequence)
            )
        return results

    def call_variants(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        min_quality: int = 20,
    ) -> List["Snp"]:
        """SNP calling: compare the sample's consensus against the
        reference, storing confident disagreements in ``Variant`` (the
        1000-Genomes tertiary analysis of Section 2.1.1)."""
        from ..genomics.variants import Snp, call_snps

        results = queries.execute_query3_sliding(self.db, e_id, sg_id, s_id)
        id_to_name = {v: k for k, v in self._rs_ids.items()}
        sequences = {r.name: r.sequence for r in self._reference}
        table = self.db.table("Variant")
        table.delete_where(
            lambda row: row[0] == e_id and row[1] == sg_id and row[2] == s_id
        )
        all_snps: List[Snp] = []
        for rs_id, piece in results:
            name = id_to_name[rs_id]
            snps = call_snps(
                sequences[name],
                piece,
                chromosome=name,
                min_quality=min_quality,
            )
            for snp in snps:
                table.insert(
                    (
                        e_id,
                        sg_id,
                        s_id,
                        rs_id,
                        snp.position,
                        snp.ref_base,
                        snp.alt_base,
                        snp.quality,
                    )
                )
            all_snps.extend(snps)
        table.finish_bulk_load()
        return all_snps

    # -- reporting --------------------------------------------------------------------

    def storage_report(self) -> List[dict]:
        return self.db.storage_report()
