"""The storage-efficiency harness behind Tables 1 and 2.

Given one scenario's artefacts (level-1 reads, unique tags, alignments,
analysis results), this module materialises each of the paper's physical
designs and measures the bytes each occupies:

- **Files** — the file-centric zoo (:class:`FileCentricStore` + MAQ text
  map with repeated sequences, as real ``mapview`` output has);
- **FileStream** — the hybrid design (level-1 payload byte-identical in
  the FILESTREAM store; higher-level data normalized-relational);
- **Relational 1:1** — the naive import repeating textual composite IDs;
- **Normalized** — synthetic integer keys, FK links, no compression;
- **Normalized + ROW / PAGE** — engine storage compression;
- **Normalized + DnaSequence UDT** — the bit-packed future-work design.

The output of :func:`measure_storage` feeds ``benchmarks/bench_table1_storage``
and ``bench_table2_storage`` which print the paper-style tables.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.flat_files import FileCentricStore
from ..engine.database import Database
from ..genomics.aligner import Alignment
from ..genomics.fastq import FastqRecord, fastq_bytes, parse_illumina_name
from .schemas import (
    create_filestream_schema,
    create_normalized_schema,
    create_one_to_one_schema,
)
from .wrappers import register_extensions

#: the design columns of Tables 1 and 2, in display order
DESIGNS = (
    "files",
    "filestream",
    "one_to_one",
    "normalized",
    "norm_row",
    "norm_page",
    "norm_column",
    "norm_udt",
)

DESIGN_LABELS = {
    "files": "Files",
    "filestream": "FileStream",
    "one_to_one": "Relational 1:1",
    "normalized": "Normalized",
    "norm_row": "Norm + ROW",
    "norm_page": "Norm + PAGE",
    "norm_column": "Norm + COLUMN",
    "norm_udt": "Norm + DNA UDT",
}


@dataclass
class ScenarioData:
    """Everything one lane produced, format-independent."""

    kind: str  # 'dge' or 'resequencing'
    reads: List[FastqRecord]
    alignments: List[Alignment]
    #: (rank, count, sequence) — DGE only
    ranked_tags: List[Tuple[int, int, str]] = field(default_factory=list)
    #: (gene_name, total_frequency, tag_count) — DGE only
    expression: List[Tuple[str, int, int]] = field(default_factory=list)
    sample: int = 855
    lane: int = 1
    #: alignment read-name → (sequence, quality); overrides the read
    #: lookup when alignments reference tags rather than raw reads
    alignment_sequences: Optional[Dict[str, Tuple[str, str]]] = None

    @property
    def read_lookup(self) -> Dict[str, Tuple[str, str]]:
        if self.alignment_sequences is not None:
            return self.alignment_sequences
        return {r.name: (r.sequence, r.quality) for r in self.reads}


StorageTable = Dict[str, Dict[str, int]]  # artifact -> design -> bytes


def engine_report(db: Database, design: str) -> List[dict]:
    """Per-table storage-engine rows for one measured design: which
    access method backs each table, its stored vs raw bytes (the
    compression ratio), and the dominant encoding per column (column
    store only; heaps report no encodings)."""
    rows: List[dict] = []
    for table in db.catalog.tables():
        store = getattr(table, "store", None)
        if store is None or table.row_count == 0:
            continue
        stored = table.stored_bytes()
        raw = table.uncompressed_bytes()
        rows.append(
            {
                "design": design,
                "table_name": table.schema.name,
                "engine": store.engine_name,
                "rows": table.row_count,
                "stored_bytes": stored,
                "uncompressed_bytes": raw,
                "ratio": round(stored / raw, 3) if raw else None,
                "encodings": store.encoding_summary(),
            }
        )
    return rows


def format_engine_report(rows: List[dict]) -> str:
    """Render :func:`engine_report` rows as an appendix section."""
    lines = [
        "",
        "Storage engines (per table):",
        f"{'Design':<14}{'Table':<20}{'Engine':<8}{'Rows':>8}"
        f"{'Stored':>12}{'Raw':>12}{'Ratio':>7}  Encodings",
    ]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        encodings = ", ".join(
            f"{name}={enc}" for name, enc in sorted(row["encodings"].items())
        )
        ratio = f"{row['ratio']:.2f}" if row["ratio"] is not None else "-"
        lines.append(
            f"{row['design']:<14}{row['table_name']:<20}"
            f"{row['engine']:<8}{row['rows']:>8}"
            f"{row['stored_bytes']:>12,}{row['uncompressed_bytes']:>12,}"
            f"{ratio:>7}  {encodings}"
        )
    return "\n".join(lines)


def _measure_files(scenario: ScenarioData, root: Path) -> Dict[str, int]:
    store = FileCentricStore(root)
    sizes: Dict[str, int] = {}
    fastq = store.store_lane_fastq(scenario.sample, scenario.lane, scenario.reads)
    sizes["short_reads"] = store.size_of(fastq)
    if scenario.ranked_tags:
        tags = store.store_unique_tags(
            scenario.sample, scenario.lane, scenario.ranked_tags
        )
        sizes["unique_tags"] = store.size_of(tags)
    # mapview-style text with repeated sequences — the real file shape
    from ..genomics.maqmap import write_text_map

    map_path = store.map_path(scenario.sample, scenario.lane)
    write_text_map(scenario.alignments, map_path, sequences=scenario.read_lookup)
    sizes["alignments"] = store.size_of(map_path)
    if scenario.expression:
        expr = store.store_expression(
            scenario.sample, scenario.lane, scenario.expression
        )
        sizes["expression"] = store.size_of(expr)
    return sizes


def _measure_filestream(scenario: ScenarioData, data_dir: Path) -> Dict[str, int]:
    """Hybrid design: level-1 FASTQ bytes in the FILESTREAM store."""
    db = Database(data_dir=data_dir)
    register_extensions(db)
    create_filestream_schema(db)
    import uuid

    payload = fastq_bytes(scenario.reads)
    db.table("ShortReadFiles").insert(
        (uuid.uuid4(), scenario.sample, scenario.lane, "FastQ", payload)
    )
    sizes = {
        "short_reads": db.table("ShortReadFiles").filestream_bytes(),
    }
    db.close()
    return sizes


def _tag_textual_name(scenario: ScenarioData, rank: int) -> str:
    return f"{scenario.sample}_s_{scenario.lane}:tag:{rank:07d}"


def _measure_one_to_one(scenario: ScenarioData, data_dir: Path) -> Dict[str, int]:
    db = Database(data_dir=data_dir)
    create_one_to_one_schema(db)
    reads_table = db.table("ReadsFlat")
    for record in scenario.reads:
        reads_table.insert((record.name, record.sequence, record.quality))
    reads_table.finish_bulk_load()
    sizes = {"short_reads": reads_table.stored_bytes()}
    if scenario.ranked_tags:
        tags_table = db.table("TagsFlat")
        for rank, count, seq in scenario.ranked_tags:
            tags_table.insert((_tag_textual_name(scenario, rank), seq, count))
        tags_table.finish_bulk_load()
        sizes["unique_tags"] = tags_table.stored_bytes()
    lookup = scenario.read_lookup
    align_table = db.table("AlignmentsFlat")
    for a in scenario.alignments:
        seq, qual = lookup.get(a.read_name, ("", ""))
        align_table.insert(
            (
                a.read_name,
                a.reference,
                a.position,
                a.strand,
                a.mapping_quality,
                a.mismatches,
                a.read_length,
                seq,
                qual,
            )
        )
    align_table.finish_bulk_load()
    sizes["alignments"] = align_table.stored_bytes()
    if scenario.expression:
        expr_table = db.table("GeneExpressionFlat")
        experiment_name = f"experiment {scenario.sample} lane {scenario.lane}"
        for gene, total, count in scenario.expression:
            expr_table.insert((gene, experiment_name, total, count))
        expr_table.finish_bulk_load()
        sizes["expression"] = expr_table.stored_bytes()
    db.close()
    return sizes


def _measure_normalized(
    scenario: ScenarioData,
    data_dir: Path,
    compression: str = "NONE",
    sequence_type: str = "VARCHAR(500)",
    storage: str = "HEAP",
    engine_detail: Optional[List[dict]] = None,
    design: str = "",
) -> Dict[str, int]:
    db = Database(data_dir=data_dir)
    register_extensions(db)
    create_normalized_schema(
        db,
        compression=compression,
        sequence_type=sequence_type,
        storage=storage,
    )
    read_table = db.table("Read")
    name_to_rid: Dict[str, int] = {}
    for r_id, record in enumerate(scenario.reads, start=1):
        try:
            parsed = parse_illumina_name(record.name)
            lane, tile, x, y = parsed.lane, parsed.tile, parsed.x, parsed.y
        except Exception:
            lane, tile, x, y = scenario.lane, 0, 0, 0
        read_table.insert(
            (1, 1, 1, r_id, lane, tile, x, y, record.sequence, record.quality)
        )
        name_to_rid[record.name] = r_id
    read_table.finish_bulk_load()
    sizes = {"short_reads": read_table.stored_bytes()}
    seq_by_rank: Dict[str, int] = {}
    if scenario.ranked_tags:
        tag_table = db.table("Tag")
        for rank, count, seq in scenario.ranked_tags:
            tag_table.insert((1, 1, 1, rank, seq, count))
            seq_by_rank[seq] = rank
        tag_table.finish_bulk_load()
        sizes["unique_tags"] = tag_table.stored_bytes()
    align_table = db.table("Alignment")
    rows = []
    for a_id, a in enumerate(scenario.alignments, start=1):
        rows.append(
            (
                1,
                1,
                1,
                a_id,
                name_to_rid.get(a.read_name),
                None,
                1,  # rs_id resolution is scenario-independent here
                None,
                a.position,
                a.strand,
                a.mismatches,
                a.mapping_quality,
            )
        )
    key_indexes = align_table.schema.key_indexes
    rows.sort(key=lambda r: tuple(r[i] for i in key_indexes))
    for row in rows:
        align_table.insert(row)
    align_table.finish_bulk_load()
    sizes["alignments"] = align_table.stored_bytes()
    if scenario.expression:
        expr_table = db.table("GeneExpression")
        for g_id, (_gene, total, count) in enumerate(
            scenario.expression, start=1
        ):
            expr_table.insert((g_id, 1, 1, 1, total, count))
        expr_table.finish_bulk_load()
        sizes["expression"] = expr_table.stored_bytes()
    if engine_detail is not None:
        engine_detail.extend(engine_report(db, design))
    db.close()
    return sizes


def measure_storage(
    scenario: ScenarioData,
    workdir: Optional[Path] = None,
    include_udt: bool = True,
    engine_detail: Optional[List[dict]] = None,
) -> StorageTable:
    """Measure every design; returns ``{artifact: {design: bytes}}``."""
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-storage-")
        workdir = Path(tmp.name)
    else:
        tmp = None
        workdir = Path(workdir)
    try:
        per_design: Dict[str, Dict[str, int]] = {}
        per_design["files"] = _measure_files(scenario, workdir / "files")
        per_design["filestream"] = _measure_filestream(
            scenario, workdir / "fsdb"
        )
        per_design["one_to_one"] = _measure_one_to_one(
            scenario, workdir / "flatdb"
        )
        per_design["normalized"] = _measure_normalized(
            scenario, workdir / "normdb", compression="NONE",
            engine_detail=engine_detail, design="normalized",
        )
        per_design["norm_row"] = _measure_normalized(
            scenario, workdir / "rowdb", compression="ROW"
        )
        per_design["norm_page"] = _measure_normalized(
            scenario, workdir / "pagedb", compression="PAGE",
            engine_detail=engine_detail, design="norm_page",
        )
        per_design["norm_column"] = _measure_normalized(
            scenario, workdir / "coldb", storage="COLUMN",
            engine_detail=engine_detail, design="norm_column",
        )
        if include_udt:
            per_design["norm_udt"] = _measure_normalized(
                scenario,
                workdir / "udtdb",
                compression="NONE",
                sequence_type="DnaSequence",
            )
        # pivot: artifact -> design -> bytes
        table: StorageTable = {}
        for design, sizes in per_design.items():
            for artifact, size in sizes.items():
                table.setdefault(artifact, {})[design] = size
        return table
    finally:
        if tmp is not None:
            tmp.cleanup()


ARTIFACT_ORDER = ("short_reads", "unique_tags", "alignments", "expression")

ARTIFACT_LABELS = {
    "short_reads": "Level-1 short reads",
    "unique_tags": "Unique tags",
    "alignments": "Alignments",
    "expression": "Gene expression",
}


def format_table(table: StorageTable, title: str) -> str:
    """Render the measured sizes in the layout of the paper's tables,
    with each design also shown as a ratio to the original files."""
    designs = [d for d in DESIGNS if any(d in row for row in table.values())]
    header = f"{'Artifact':<22}" + "".join(
        f"{DESIGN_LABELS[d]:>18}" for d in designs
    )
    lines = [title, "=" * len(header), header, "-" * len(header)]
    for artifact in ARTIFACT_ORDER:
        if artifact not in table:
            continue
        sizes = table[artifact]
        base = sizes.get("files")
        cells = []
        for design in designs:
            size = sizes.get(design)
            if size is None:
                cells.append(f"{'-':>18}")
            elif base:
                cells.append(f"{size:>11,}B {size / base:4.2f}x")
            else:
                cells.append(f"{size:>17,}B")
        lines.append(f"{ARTIFACT_LABELS[artifact]:<22}" + "".join(cells))
    return "\n".join(lines)
