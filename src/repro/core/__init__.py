"""The paper's contribution layer: schemas, extensibility wrappers,
canonical queries, and the warehouse facade."""

from . import differential, filewrap, indb_align, probabilistic, provenance, queries, schemas, storage_report
from .warehouse import GenomicsWarehouse
from .differential import differential_expression
from .indb_align import register_alignment_extensions
from .probabilistic import (
    ProbabilisticSequence,
    register_probabilistic_extensions,
)
from .provenance import ProvenanceTracker
from .workflow import SequencingWorkflow
from .wrappers import (
    AssembleConsensusUda,
    AssembleSequenceUda,
    CallBaseUda,
    ChunkedBlobReader,
    ConsensusPiece,
    DNA_SEQUENCE_UDT,
    ListShortReadsTvf,
    PivotAlignmentTvf,
    parse_fasta_entry,
    parse_fastq_entry,
    register_extensions,
)

__all__ = [
    "AssembleConsensusUda",
    "AssembleSequenceUda",
    "CallBaseUda",
    "ChunkedBlobReader",
    "ConsensusPiece",
    "DNA_SEQUENCE_UDT",
    "GenomicsWarehouse",
    "ListShortReadsTvf",
    "PivotAlignmentTvf",
    "parse_fasta_entry",
    "parse_fastq_entry",
    "differential",
    "differential_expression",
    "filewrap",
    "indb_align",
    "probabilistic",
    "provenance",
    "ProbabilisticSequence",
    "ProvenanceTracker",
    "register_alignment_extensions",
    "register_probabilistic_extensions",
    "queries",
    "register_extensions",
    "schemas",
    "storage_report",
    "SequencingWorkflow",
]
