"""The paper's canonical analysis queries (Section 4.2).

Each builder returns the SQL text (so benchmarks can EXPLAIN it) and has
an ``execute`` companion running it against a warehouse database.

- **Query 1** — unique short-read binning for digital gene expression:
  frequency-ranked tags, excluding reads with uncalled bases. The
  declarative replacement for the 26-line Perl script.
- **Query 2** — gene-expression analysis: group alignments by gene,
  totalling tag frequencies, INSERTed into ``GeneExpression``.
- **Query 3** — consensus calling, in both shapes the paper discusses:
  the conceptually clean pivot/group/aggregate pipeline and the
  optimised single-pass sliding-window ``AssembleConsensus`` UDA.
"""

from __future__ import annotations

from typing import List, Tuple

from ..engine.database import Database


def query1_binning_sql(
    e_id: int, sg_id: int, s_id: int, maxdop: int | None = None
) -> str:
    """Query 1 — Binning Unique Short Reads."""
    option = f"\nOPTION (MAXDOP {maxdop})" if maxdop is not None else ""
    return f"""
SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC) AS tag_rank,
       COUNT(*) AS frequency,
       short_read_seq
  FROM [Read]
 WHERE r_e_id = {e_id} AND r_sg_id = {sg_id} AND r_s_id = {s_id}
       AND CHARINDEX('N', short_read_seq) = 0
 GROUP BY short_read_seq{option}
"""


def execute_query1(
    db: Database, e_id: int = 1, sg_id: int = 1, s_id: int = 1,
    maxdop: int | None = None,
) -> List[Tuple[int, int, str]]:
    """Run Query 1; rows are (rank, frequency, sequence)."""
    return db.query(query1_binning_sql(e_id, sg_id, s_id, maxdop))


def query2_expression_sql(e_id: int, sg_id: int, s_id: int) -> str:
    """Query 2 — Gene Expression Analysis (INSERT ... SELECT)."""
    return f"""
INSERT INTO GeneExpression
SELECT a_g_id, a_e_id, a_sg_id, a_s_id,
       SUM(t_frequency) AS total_freq,
       COUNT(a_t_id) AS tag_count
  FROM Alignment
  JOIN Tag ON (a_e_id = t_e_id AND a_sg_id = t_sg_id
               AND a_s_id = t_s_id AND a_t_id = t_id)
 WHERE a_e_id = {e_id} AND a_sg_id = {sg_id} AND a_s_id = {s_id}
       AND a_g_id IS NOT NULL
 GROUP BY a_g_id, a_e_id, a_sg_id, a_s_id
"""


def execute_query2(
    db: Database, e_id: int = 1, sg_id: int = 1, s_id: int = 1
) -> int:
    """Run Query 2; returns the number of GeneExpression rows written."""
    return db.execute(query2_expression_sql(e_id, sg_id, s_id))


#: the forward-strand projection of a stored read: minus-strand hits are
#: reverse-complemented (and their qualities reversed) through scalar
#: UDFs, exactly the kind of in-query sequence manipulation the paper's
#: extensibility story enables
ORIENTED_SEQ = (
    "CASE WHEN a_strand = '-' THEN ReverseComplement(short_read_seq) "
    "ELSE short_read_seq END"
)
ORIENTED_QUALS = (
    "CASE WHEN a_strand = '-' THEN REVERSE(quals) ELSE quals END"
)


def query3_pivot_sql(e_id: int, sg_id: int, s_id: int) -> str:
    """Query 3, conceptually clean shape: pivot every alignment into
    per-base rows, group by position for CallBase, then reassemble."""
    return f"""
SELECT chromosome, AssembleSequence(pos, b) AS consensus
  FROM (SELECT a_rs_id AS chromosome, pos, CallBase(base, qual) AS b
          FROM Alignment
          JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                          AND a_s_id = r_s_id AND a_r_id = r_id)
         CROSS APPLY PivotAlignment(a_pos, {ORIENTED_SEQ}, {ORIENTED_QUALS})
         WHERE a_e_id = {e_id} AND a_sg_id = {sg_id} AND a_s_id = {s_id}
         GROUP BY a_rs_id, pos) AS piv
 GROUP BY chromosome
"""


def query3_sliding_window_sql(e_id: int, sg_id: int, s_id: int) -> str:
    """Query 3, optimised shape: one ordered pass per chromosome through
    the AssembleConsensus UDA (no pivoted intermediate)."""
    return f"""
SELECT a_rs_id,
       AssembleConsensus(a_pos, {ORIENTED_SEQ}, {ORIENTED_QUALS}) AS consensus
  FROM Alignment
  JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                  AND a_s_id = r_s_id AND a_r_id = r_id)
 WHERE a_e_id = {e_id} AND a_sg_id = {sg_id} AND a_s_id = {s_id}
 GROUP BY a_rs_id
"""


def execute_query3_pivot(
    db: Database, e_id: int = 1, sg_id: int = 1, s_id: int = 1
) -> List[Tuple]:
    """Run the pivot-shaped consensus query; rows are
    (chromosome_id, ConsensusPiece)."""
    return db.query(query3_pivot_sql(e_id, sg_id, s_id))


def execute_query3_sliding(
    db: Database, e_id: int = 1, sg_id: int = 1, s_id: int = 1
) -> List[Tuple]:
    """Run the sliding-window consensus query; rows are
    (chromosome_id, ConsensusPiece)."""
    return db.query(query3_sliding_window_sql(e_id, sg_id, s_id))
