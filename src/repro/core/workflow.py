"""The five-phase sequencing workflow driver, with provenance.

Section 2.1 describes the pipeline: sample preparation (−1), sequencer
run (0), primary analysis (1: image analysis → short reads), secondary
analysis (2: alignment), tertiary analysis (3: expression / consensus).
Phases −1 and 0 are physical/instrument phases — here they are the
simulation step. This driver runs phases 1–3 against a
:class:`GenomicsWarehouse` and records *provenance* for every step: when
it ran, which tool and parameters, and how many rows it produced — the
"central questions to control the quality of sequencing results" the
paper's future-work section raises.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Literal, Optional, Sequence

from ..engine.errors import EngineError
from ..genomics.fastq import FastqRecord
from .warehouse import GenomicsWarehouse

PROVENANCE_DDL = """
CREATE TABLE WorkflowEvent (
    ev_id    BIGINT IDENTITY PRIMARY KEY,
    e_id     INT,
    sg_id    INT,
    s_id     INT,
    phase    INT NOT NULL,
    tool     VARCHAR(100) NOT NULL,
    params   VARCHAR(MAX),
    started  DATETIME,
    finished DATETIME,
    rows_out INT
)
"""


@dataclass
class WorkflowEvent:
    phase: int
    tool: str
    params: Dict[str, Any]
    rows_out: int
    duration: float


class SequencingWorkflow:
    """Drives phases 1–3 for one sample, recording provenance."""

    def __init__(self, warehouse: GenomicsWarehouse):
        self.warehouse = warehouse
        if not warehouse.db.catalog.has_table("WorkflowEvent"):
            warehouse.db.execute(PROVENANCE_DDL)
        self.events: List[WorkflowEvent] = []

    # -- provenance ----------------------------------------------------------------

    def _record(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        phase: int,
        tool: str,
        params: Dict[str, Any],
        started: float,
        rows_out: int,
    ) -> WorkflowEvent:
        finished = time.time()
        self.warehouse.db.table("WorkflowEvent").insert(
            (
                None,
                e_id,
                sg_id,
                s_id,
                phase,
                tool,
                json.dumps(params, sort_keys=True),
                started,
                finished,
                rows_out,
            )
        )
        event = WorkflowEvent(
            phase, tool, params, rows_out, finished - started
        )
        self.events.append(event)
        return event

    def provenance(
        self, e_id: int, sg_id: int, s_id: int
    ) -> List[tuple]:
        """Every recorded event for a sample — the navigational query the
        normalized schema makes trivial."""
        return self.warehouse.db.query(
            f"""
            SELECT phase, tool, params, rows_out
              FROM WorkflowEvent
             WHERE e_id = {e_id} AND sg_id = {sg_id} AND s_id = {s_id}
             ORDER BY ev_id
            """
        )

    # -- phase 1: primary analysis output lands as level-1 data ------------------------

    def run_primary(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        records: Iterable[FastqRecord],
        sample: Optional[int] = None,
        lane: int = 1,
        hybrid: bool = True,
    ) -> int:
        """Store level-1 reads. ``hybrid=True`` keeps the FASTQ payload
        as a FILESTREAM blob and loads rows through the TVF; otherwise
        rows are imported directly."""
        started = time.time()
        sample = sample if sample is not None else s_id
        records = list(records)
        if hybrid:
            self.warehouse.import_lane_hybrid(sample, lane, records)
            count = self.warehouse.load_reads_from_filestream(
                e_id, sg_id, s_id, sample, lane
            )
            tool = "filestream-import+ListShortReads"
        else:
            count = self.warehouse.import_lane_relational(
                e_id, sg_id, s_id, records, lane=lane
            )
            tool = "relational-import"
        self._record(
            e_id,
            sg_id,
            s_id,
            1,
            tool,
            {"lane": lane, "sample": sample, "hybrid": hybrid},
            started,
            count,
        )
        return count

    # -- phase 2: secondary analysis ---------------------------------------------------

    def run_secondary(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        kind: Literal["dge", "resequencing"],
    ) -> int:
        """Alignment. DGE first bins unique tags (Query 1) and aligns
        tags; re-sequencing aligns every read."""
        started = time.time()
        if kind == "dge":
            tags = self.warehouse.bin_unique_tags(e_id, sg_id, s_id)
            self._record(
                e_id, sg_id, s_id, 2, "query1-binning", {}, started, tags
            )
            started = time.time()
            count = self.warehouse.align_tags(e_id, sg_id, s_id)
            tool = "seed-hash-aligner(tags)"
        elif kind == "resequencing":
            count = self.warehouse.align_reads(e_id, sg_id, s_id)
            tool = "seed-hash-aligner(reads)"
        else:
            raise EngineError(f"unknown experiment kind {kind!r}")
        self._record(
            e_id,
            sg_id,
            s_id,
            2,
            tool,
            {"max_mismatches": self.warehouse.aligner.max_mismatches},
            started,
            count,
        )
        return count

    # -- phase 3: tertiary analysis ----------------------------------------------------

    def run_tertiary(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        kind: Literal["dge", "resequencing"],
        consensus_method: Literal["sliding", "pivot"] = "sliding",
    ) -> int:
        started = time.time()
        if kind == "dge":
            count = self.warehouse.compute_gene_expression(e_id, sg_id, s_id)
            self._record(
                e_id, sg_id, s_id, 3, "query2-expression", {}, started, count
            )
            return count
        if kind == "resequencing":
            results = self.warehouse.call_consensus(
                e_id, sg_id, s_id, method=consensus_method
            )
            self._record(
                e_id,
                sg_id,
                s_id,
                3,
                "query3-consensus",
                {"method": consensus_method},
                started,
                len(results),
            )
            return len(results)
        raise EngineError(f"unknown experiment kind {kind!r}")

    # -- all phases ----------------------------------------------------------------------

    def run_all(
        self,
        e_id: int,
        sg_id: int,
        s_id: int,
        records: Iterable[FastqRecord],
        kind: Literal["dge", "resequencing"],
        lane: int = 1,
        hybrid: bool = True,
    ) -> Dict[str, int]:
        """Phases 1–3 end to end; returns per-phase row counts."""
        reads = self.run_primary(
            e_id, sg_id, s_id, records, lane=lane, hybrid=hybrid
        )
        aligned = self.run_secondary(e_id, sg_id, s_id, kind)
        tertiary = self.run_tertiary(e_id, sg_id, s_id, kind)
        return {"reads": reads, "alignments": aligned, "tertiary": tertiary}
