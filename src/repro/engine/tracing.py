"""End-to-end structured tracing and wait-stats accounting.

SQL Server's operability story rests on Extended Events and the wait
statistics DMVs: every statement can be traced across threads, and the
cumulative time the engine spent *waiting* (on queues, on transport, on
IO) is queryable as ``sys.dm_os_wait_stats``. This module is our
equivalent, sized to the engine we actually have:

- :class:`TraceSpan` / :class:`StatementTrace` — one trace per executed
  statement, holding a tree of wall-clock spans. Coordinator-side code
  opens spans with the :meth:`StatementTrace.span` context manager
  (safe for *blocking* sections; generator-interleaved operators are
  instead grafted structurally after execution, see
  :func:`record_operator_spans`);
- cross-process spans — worker processes return raw
  ``(name, wait_type, start, end)`` tuples for their queue-wait /
  unpickle / decode / aggregate / result-ship phases, and the
  coordinator grafts them into the active statement trace
  (``perf_counter`` is CLOCK_MONOTONIC on Linux, one time base for
  every process on the box, so no clock translation is needed);
- :class:`Tracer` — the per-database trace manager: a ring buffer of
  recent statement traces plus the database-lifetime :class:`WaitStats`
  rollup surfaced as ``sys_dm_os_wait_stats``;
- Chrome trace-event export — :func:`chrome_trace_payload` renders
  traces (and the baseline :class:`~repro.engine.metrics.SpanTimeline`
  objects, via :func:`timeline_chrome_events`) as ``chrome://tracing``
  / Perfetto JSON, the one trace writer shared by the engine and the
  simulated baselines in :mod:`repro.baselines.trace`.

Wait types mirror where this engine actually blocks:

========== ==========================================================
WORKER_QUEUE  a task sat in a worker's queue before being picked up
TRANSPORT     pickling task payloads / unpickling them worker-side /
              pickling results back (the exchange's "wire")
DECODE        worker-side decode of shipped heap pages or column
              segments into rows
AGG_MERGE     coordinator-side gather: merging partial aggregate
              states back into one result
IO            coordinator-side slicing of storage into shippable
              partitions (reads pages/segments from the store)
========== ==========================================================
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

#: the statement trace currently being recorded, if any (the engine is a
#: single-caller library; a thread-local would be overkill until the
#: serving tier lands)
_ACTIVE: Optional["StatementTrace"] = None


def current_trace() -> Optional["StatementTrace"]:
    """The statement trace being recorded right now, or None."""
    return _ACTIVE


@contextmanager
def span(
    name: str,
    category: str = "",
    wait_type: Optional[str] = None,
    **attrs: Any,
) -> Iterator[Optional["TraceSpan"]]:
    """Open a span on the active trace; a no-op when tracing is off.

    Only safe around *blocking* code — the parent stack assumes the
    section runs to completion before its caller resumes."""
    trace = _ACTIVE
    if trace is None:
        yield None
        return
    with trace.span(name, category=category, wait_type=wait_type, **attrs) as s:
        yield s


# ---------------------------------------------------------------------------
# spans and statement traces
# ---------------------------------------------------------------------------


@dataclass
class TraceSpan:
    """One wall-clock interval in a statement trace.

    ``start``/``end`` are raw ``time.perf_counter()`` readings (not
    normalised); ``pid`` is 0 for the coordinator and the OS pid for
    grafted worker spans; ``wait_type`` marks spans that count toward
    ``sys_dm_os_wait_stats``."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    category: str = ""
    wait_type: Optional[str] = None
    pid: int = 0
    worker: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)


class StatementTrace:
    """The span tree recorded for one executed statement."""

    def __init__(self, trace_id: int, text: str, kind: str):
        self.trace_id = trace_id
        self.text = text
        self.kind = kind
        #: wall-clock time the statement started (for display only;
        #: span math uses perf_counter)
        self.started_at = time.time()
        self.spans: List[TraceSpan] = []
        self._next_id = 0
        root = self._new_span(
            name=f"{kind}: {text}" if text else kind,
            parent_id=None,
            start=time.perf_counter(),
            category="statement",
        )
        self.root = root
        self._stack: List[int] = [root.span_id]

    # -- recording ---------------------------------------------------------------

    def _new_span(self, name, parent_id, start, **kwargs) -> TraceSpan:
        span_obj = TraceSpan(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=start,
            end=start,
            **kwargs,
        )
        self._next_id += 1
        self.spans.append(span_obj)
        return span_obj

    @property
    def current_parent_id(self) -> int:
        return self._stack[-1]

    def add_raw(
        self,
        name: str,
        start: float,
        end: float,
        parent_id: Optional[int] = None,
        category: str = "",
        wait_type: Optional[str] = None,
        pid: int = 0,
        worker: Optional[int] = None,
        **attrs: Any,
    ) -> TraceSpan:
        """Graft a span with already-measured endpoints (worker phases,
        post-hoc operator spans)."""
        if parent_id is None:
            parent_id = self.current_parent_id
        span_obj = self._new_span(
            name,
            parent_id,
            start,
            category=category,
            wait_type=wait_type,
            pid=pid,
            worker=worker,
            attrs=dict(attrs),
        )
        span_obj.end = end
        return span_obj

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "",
        wait_type: Optional[str] = None,
        **attrs: Any,
    ) -> Iterator[TraceSpan]:
        span_obj = self._new_span(
            name,
            self.current_parent_id,
            time.perf_counter(),
            category=category,
            wait_type=wait_type,
            attrs=dict(attrs),
        )
        self._stack.append(span_obj.span_id)
        try:
            yield span_obj
        finally:
            span_obj.end = time.perf_counter()
            self._stack.pop()

    def finish(self) -> None:
        self.root.end = time.perf_counter()

    # -- reading -----------------------------------------------------------------

    @property
    def duration(self) -> float:
        return self.root.duration

    def find(self, name_substring: str) -> List[TraceSpan]:
        return [s for s in self.spans if name_substring in s.name]

    def children_of(self, span_id: int) -> List[TraceSpan]:
        kids = [s for s in self.spans if s.parent_id == span_id]
        kids.sort(key=lambda s: s.start)
        return kids

    def ancestors(self, span_obj: TraceSpan) -> List[TraceSpan]:
        by_id = {s.span_id: s for s in self.spans}
        chain = []
        cursor = span_obj
        while cursor.parent_id is not None:
            cursor = by_id[cursor.parent_id]
            chain.append(cursor)
        return chain

    def wait_rollup(self) -> Dict[str, Tuple[int, float, float]]:
        """``wait_type -> (count, total_seconds, max_seconds)``."""
        rollup: Dict[str, List[float]] = {}
        for s in self.spans:
            if s.wait_type is None:
                continue
            acc = rollup.setdefault(s.wait_type, [0, 0.0, 0.0])
            acc[0] += 1
            acc[1] += s.duration
            acc[2] = max(acc[2], s.duration)
        return {k: (int(c), t, m) for k, (c, t, m) in rollup.items()}

    def render(self) -> str:
        """Indented text tree (the ``repro-genomics trace`` output)."""
        origin = self.root.start
        lines: List[str] = []

        def walk(span_obj: TraceSpan, depth: int) -> None:
            offset = (span_obj.start - origin) * 1000.0
            label = span_obj.name
            details = [f"{span_obj.duration * 1000.0:.3f}ms"]
            if span_obj.wait_type:
                details.append(f"wait={span_obj.wait_type}")
            if span_obj.pid:
                details.append(f"pid={span_obj.pid}")
            for key, value in span_obj.attrs.items():
                details.append(f"{key}={value}")
            lines.append(
                "  " * depth
                + f"{label}  [{', '.join(details)}] @+{offset:.3f}ms"
            )
            for kid in self.children_of(span_obj.span_id):
                walk(kid, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# operator spans (structural grafting after EXPLAIN ANALYZE)
# ---------------------------------------------------------------------------


def record_operator_spans(
    trace: StatementTrace, op: Any, parent_id: Optional[int] = None
) -> None:
    """Graft per-operator spans from an executed, timing-armed plan.

    Operators are generators that interleave arbitrarily, so their spans
    cannot be opened on the live parent stack; instead each operator
    records its first-pull and exhaustion timestamps
    (:class:`~repro.engine.executor.base.PhysicalOperator`) and this
    walks the plan *structurally*, parenting each operator span under
    its parent operator's span."""
    if parent_id is None:
        parent_id = trace.root.span_id
    start = getattr(op, "_span_start", None)
    end = getattr(op, "_span_end", None)
    if start is not None and end is not None:
        label = op.explain_node()[0].split("\n")[0]
        span_obj = trace.add_raw(
            label,
            start,
            end,
            parent_id=parent_id,
            category="operator",
            rows=op.rows_out,
            loops=op.loops,
        )
        parent_id = span_obj.span_id
    for child in op.children():
        record_operator_spans(trace, child, parent_id)


def graft_worker_spans(
    trace: StatementTrace,
    task_label: str,
    worker_id: int,
    pid: int,
    raw_spans: Sequence[Tuple[str, Optional[str], float, float]],
    parent_id: Optional[int] = None,
) -> Optional[TraceSpan]:
    """Attach one worker task's phase spans under a container span.

    ``raw_spans`` is the worker-returned ``(name, wait_type, start,
    end)`` sequence; the container spans their full extent."""
    if not raw_spans:
        return None
    start = min(s[2] for s in raw_spans)
    end = max(s[3] for s in raw_spans)
    container = trace.add_raw(
        task_label,
        start,
        end,
        parent_id=parent_id,
        category="worker",
        pid=pid,
        worker=worker_id,
    )
    for name, wait_type, span_start, span_end in raw_spans:
        trace.add_raw(
            name,
            span_start,
            span_end,
            parent_id=container.span_id,
            category="worker",
            wait_type=wait_type,
            pid=pid,
            worker=worker_id,
        )
    return container


# ---------------------------------------------------------------------------
# wait statistics (sys_dm_os_wait_stats)
# ---------------------------------------------------------------------------


class WaitStats:
    """Cumulative engine-lifetime wait accounting by wait type."""

    def __init__(self):
        self._waits: Dict[str, List[float]] = {}

    def record(self, wait_type: str, seconds: float, count: int = 1) -> None:
        acc = self._waits.setdefault(wait_type, [0, 0.0, 0.0])
        acc[0] += count
        acc[1] += seconds
        acc[2] = max(acc[2], seconds)

    def absorb(self, trace: StatementTrace) -> None:
        for wait_type, (count, total, peak) in trace.wait_rollup().items():
            acc = self._waits.setdefault(wait_type, [0, 0.0, 0.0])
            acc[0] += count
            acc[1] += total
            acc[2] = max(acc[2], peak)

    def clear(self) -> None:
        self._waits.clear()

    def rows(self) -> List[Tuple[str, int, float, float]]:
        """``(wait_type, waiting_tasks_count, wait_time_ms, max_wait_time_ms)``."""
        return [
            (
                wait_type,
                int(count),
                round(total * 1000.0, 3),
                round(peak * 1000.0, 3),
            )
            for wait_type, (count, total, peak) in sorted(self._waits.items())
        ]


# ---------------------------------------------------------------------------
# the per-database tracer
# ---------------------------------------------------------------------------


class Tracer:
    """Owns statement traces for one database.

    ``enabled`` gates all recording (the observability benchmark's
    on/off knob); completed traces are retained in a bounded ring, and
    their wait spans roll up into :attr:`wait_stats`."""

    def __init__(self, retain: int = 32):
        self.enabled = True
        self.retain = retain
        self.traces: List[StatementTrace] = []
        self.wait_stats = WaitStats()
        self._next_trace_id = 1

    @property
    def last(self) -> Optional[StatementTrace]:
        return self.traces[-1] if self.traces else None

    @contextmanager
    def statement(self, text: str, kind: str) -> Iterator[Optional[StatementTrace]]:
        """Record one statement's trace (None yielded when disabled).

        Nested statements (stored procedures executing SQL) each get
        their own trace; the outer statement's trace resumes on exit."""
        global _ACTIVE
        if not self.enabled:
            yield None
            return
        trace = StatementTrace(self._next_trace_id, text, kind)
        self._next_trace_id += 1
        previous = _ACTIVE
        _ACTIVE = trace
        try:
            yield trace
        finally:
            _ACTIVE = previous
            trace.finish()
            self.wait_stats.absorb(trace)
            self.traces.append(trace)
            if len(self.traces) > self.retain:
                del self.traces[: -self.retain]

    def clear(self) -> None:
        self.traces.clear()

    # -- DMV row sources ---------------------------------------------------------

    def span_rows(self) -> List[Tuple[Any, ...]]:
        """Rows for ``sys_dm_exec_trace_spans`` (retained traces)."""
        rows = []
        for trace in self.traces:
            origin = trace.root.start
            for s in trace.spans:
                rows.append(
                    (
                        trace.trace_id,
                        s.span_id,
                        -1 if s.parent_id is None else s.parent_id,
                        s.name,
                        s.category,
                        s.wait_type or "",
                        round((s.start - origin) * 1000.0, 3),
                        round(s.duration * 1000.0, 3),
                        s.pid,
                        -1 if s.worker is None else s.worker,
                    )
                )
        return rows


# ---------------------------------------------------------------------------
# Chrome trace-event export (the one writer, shared with baselines)
# ---------------------------------------------------------------------------


def chrome_complete_event(
    name: str,
    ts_us: float,
    dur_us: float,
    pid: int = 0,
    tid: int = 0,
    category: str = "",
    args: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One ``ph="X"`` (complete) trace event."""
    event: Dict[str, Any] = {
        "name": name,
        "ph": "X",
        "ts": round(ts_us, 3),
        "dur": round(max(dur_us, 0.0), 3),
        "pid": pid,
        "tid": tid,
    }
    if category:
        event["cat"] = category
    if args:
        event["args"] = args
    return event


def _process_name_event(pid: int, name: str) -> Dict[str, Any]:
    return {
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def trace_chrome_events(
    trace: StatementTrace, origin: Optional[float] = None
) -> List[Dict[str, Any]]:
    """A statement trace as complete events (µs relative to ``origin``,
    default the trace's own root start). Coordinator spans land on
    pid 0 / tid = trace id; worker spans on their own pid."""
    if origin is None:
        origin = trace.root.start
    events = []
    for s in trace.spans:
        args: Dict[str, Any] = dict(s.attrs)
        if s.wait_type:
            args["wait_type"] = s.wait_type
        if s.parent_id is not None:
            args["parent_span"] = s.parent_id
        events.append(
            chrome_complete_event(
                s.name,
                ts_us=(s.start - origin) * 1e6,
                dur_us=s.duration * 1e6,
                pid=s.pid,
                tid=s.worker if s.worker is not None else trace.trace_id,
                category=s.category or "span",
                args=args,
            )
        )
    return events


def chrome_trace_payload(
    traces: Sequence[StatementTrace],
) -> Dict[str, Any]:
    """Retained statement traces as one Chrome trace-event JSON object
    (load in ``chrome://tracing`` or https://ui.perfetto.dev)."""
    events: List[Dict[str, Any]] = []
    pids = {0: "coordinator"}
    origin = min((t.root.start for t in traces), default=0.0)
    for trace in traces:
        events.extend(trace_chrome_events(trace, origin=origin))
        for s in trace.spans:
            if s.pid and s.pid not in pids:
                pids[s.pid] = (
                    f"worker-{s.worker}" if s.worker is not None else "worker"
                )
    metadata = [_process_name_event(pid, name) for pid, name in pids.items()]
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
    }


def timeline_chrome_events(
    timeline: Any, pid: int = 0, tid: int = 0
) -> List[Dict[str, Any]]:
    """A :class:`~repro.engine.metrics.SpanTimeline` (or subclass, e.g.
    the baselines' ``ResourceTrace``) as complete events. Timeline spans
    are already normalised to t=0."""
    events = []
    for s in timeline.spans:
        events.append(
            chrome_complete_event(
                s.name,
                ts_us=s.start * 1e6,
                dur_us=(s.end - s.start) * 1e6,
                pid=pid,
                tid=tid,
                category="phase",
                args=dict(s.attrs),
            )
        )
    return events


def write_chrome_trace(path: Any, payload: Dict[str, Any]) -> None:
    """Serialise a trace payload to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
