"""Query planner: SELECT AST → physical operator tree.

A rule-based planner in the spirit of the plans the paper shows:

- **access paths** — base tables scan as heaps; when a clustered key can
  satisfy equality predicates the planner emits a Clustered Index Seek,
  and when a downstream operator wants key order it emits a Clustered
  Index Scan;
- **predicate pushdown** — WHERE conjuncts that reference a single
  source are applied directly above that source's scan, before joins;
- **join selection** — equi-joins between inputs that both arrive
  ordered on the join key become Merge Joins (Figure 10's plan);
  otherwise a Hash Join; non-equi predicates stay as residuals;
- **aggregation strategy** — ordered-input UDAs get a Stream Aggregate
  (sorting first if the input is not already ordered); large
  parallel-safe aggregations get the exchange-based parallel plan
  (Figure 9); everything else gets a Hash Aggregate;
- **windows** — ``ROW_NUMBER() OVER (ORDER BY ...)`` plans as a
  Sequence Project above the aggregation.

``explain()`` renders the chosen tree as indented text — the stand-in
for the graphical plans in the paper's Figures 9 and 10.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import BindError, SqlSyntaxError
from .executor import (
    AggregateSpec,
    ClusteredIndexScan,
    ClusteredIndexSeek,
    CrossApply,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    MaterializedResult,
    MergeJoin,
    ParallelHashAggregate,
    PhysicalOperator,
    Project,
    RowNumberWindow,
    Sort,
    StreamAggregate,
    TableScan,
    Top,
    TvfScan,
)
from .expressions import (
    AggregateCall,
    BinaryOp,
    BoundRef,
    ColumnRef,
    Expr,
    ExpressionCompiler,
    FuncCall,
    Literal,
    WindowCall,
    column_refs,
    expression_to_sql,
    find_aggregates,
    find_windows,
    rewrite,
)
from .sql import ast

#: row-count threshold above which a parallel-safe aggregation is
#: planned with the exchange operator
PARALLEL_AGG_THRESHOLD = 50_000


def make_binder(op: PhysicalOperator) -> Callable[[ColumnRef], int]:
    """Build a binder resolving column references against ``op``'s output."""
    columns = [c.lower() for c in op.columns]

    def binder(ref: ColumnRef) -> int:
        target = ref.name.lower()
        if ref.qualifier:
            wanted = f"{ref.qualifier.lower()}.{target}"
            exact = [i for i, c in enumerate(columns) if c == wanted]
            if len(exact) == 1:
                return exact[0]
            if len(exact) > 1:
                raise BindError(f"ambiguous column {ref}")
            raise BindError(f"unknown column {ref}")
        exact = [i for i, c in enumerate(columns) if c == target]
        if len(exact) == 1:
            return exact[0]
        suffix = [
            i for i, c in enumerate(columns) if c.rsplit(".", 1)[-1] == target
        ]
        if len(exact or suffix) == 1:
            return (exact or suffix)[0]
        if not exact and not suffix:
            raise BindError(f"unknown column {ref}")
        raise BindError(f"ambiguous column {ref}")

    return binder


def _binds(op: PhysicalOperator, expr: Expr) -> bool:
    """True when every column reference in ``expr`` resolves against op."""
    binder = make_binder(op)
    try:
        for ref in column_refs(expr):
            binder(ref)
        return True
    except BindError:
        return False


def _split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return _split_conjuncts(expr.left) + _split_conjuncts(expr.right)
    return [expr]


def _conjoin(conjuncts: Sequence[Expr]) -> Optional[Expr]:
    result: Optional[Expr] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def estimate_rows(op: PhysicalOperator) -> int:
    """Crude cardinality estimate used for the parallel-plan decision."""
    if isinstance(op, (TableScan, ClusteredIndexScan)):
        return op.table.row_count
    if isinstance(op, ClusteredIndexSeek):
        return max(op.table.row_count // 10, 1)
    if isinstance(op, Filter):
        return max(estimate_rows(op.child) // 2, 1)
    if isinstance(op, (HashJoin, MergeJoin)):
        return max(estimate_rows(op.left), estimate_rows(op.right))
    if isinstance(op, CrossApply):
        return estimate_rows(op.outer) * 8  # TVFs typically fan out
    if isinstance(op, MaterializedResult):
        return len(op)
    kids = op.children()
    if kids:
        return max(estimate_rows(k) for k in kids)
    return 1000


class _Relabel(PhysicalOperator):
    """Expose a child operator under new column names (derived tables)."""

    def __init__(self, child: PhysicalOperator, columns: Sequence[str]):
        super().__init__()
        self.child = child
        self.columns = list(columns)
        self.ordering = child.ordering

    def execute(self):
        return iter(self.child)

    def children(self):
        return (self.child,)

    def explain_node(self):
        label, _ = self.child.explain_node()
        return label, self.child.children()


class Planner:
    """Plans statements against one database instance."""

    def __init__(self, database):
        self.database = database

    # ------------------------------------------------------------------ SELECT

    def plan_select(self, stmt: ast.SelectStmt) -> PhysicalOperator:
        conjuncts = _split_conjuncts(stmt.where)
        op, remaining = self._plan_from(stmt, conjuncts)
        op = self._apply_residual_where(op, remaining)
        op, agg_subst = self._apply_group_by(op, stmt)
        if stmt.having is not None:
            having = self._substitute(
                self._bind_udas(stmt.having), agg_subst
            )
            compiler = ExpressionCompiler(
                make_binder(op), self.database.catalog.functions
            )
            op = Filter(op, compiler.compile(having), label="HAVING")
        op, window_subst = self._apply_windows(op, stmt, agg_subst)
        subst = {**agg_subst, **window_subst}
        op = self._apply_order_project_top(op, stmt, subst)
        return op

    # -- FROM --------------------------------------------------------------------

    def _plan_from(
        self, stmt: ast.SelectStmt, conjuncts: List[Expr]
    ) -> Tuple[PhysicalOperator, List[Expr]]:
        if stmt.source is None:
            return MaterializedResult([], [()]), conjuncts
        op, conjuncts = self._plan_source_filtered(stmt.source, conjuncts)
        for join in stmt.joins:
            if join.kind == "CROSS APPLY":
                op = self._plan_cross_apply(op, join.source)
            else:
                op, conjuncts = self._plan_join(op, join, conjuncts)
        return op, conjuncts

    def _plan_source_filtered(
        self, source, conjuncts: List[Expr]
    ) -> Tuple[PhysicalOperator, List[Expr]]:
        """Plan one FROM source and push down every WHERE conjunct whose
        columns all resolve against it (seeking on a clustered-key
        prefix where possible)."""
        op = self._plan_source(source)
        local = [c for c in conjuncts if _binds(op, c)]
        remaining = [c for c in conjuncts if not _binds(op, c)]
        if local:
            op = self._apply_residual_where(op, local)
        return op, remaining

    def _plan_source(self, source) -> PhysicalOperator:
        if isinstance(source, ast.TableRef):
            table = self.database.catalog.table(source.name)
            return TableScan(table, alias=source.binding_name)
        if isinstance(source, ast.TvfRef):
            tvf = self.database.catalog.functions.tvf(source.name)
            if tvf is None:
                raise BindError(f"unknown table-valued function {source.name!r}")
            args = self._eval_constant_args(source.args)
            return TvfScan(tvf, args, alias=source.binding_name)
        if isinstance(source, ast.SubqueryRef):
            inner = self.plan_select(source.select)
            alias = source.binding_name
            renamed = [
                f"{alias}.{c.rsplit('.', 1)[-1]}" for c in inner.columns
            ]
            return _Relabel(inner, renamed)
        if isinstance(source, ast.OpenRowsetRef):
            data = self.database.read_bulk_file(source.path)
            alias = source.binding_name
            return MaterializedResult([f"{alias}.BulkColumn"], [(data,)])
        raise BindError(f"unsupported FROM source {type(source).__name__}")

    def _eval_constant_args(self, args: Sequence[Expr]) -> List[Any]:
        def no_columns(ref: ColumnRef) -> int:
            raise BindError(
                f"TVF arguments in FROM must be constants, found column {ref}"
            )

        compiler = ExpressionCompiler(
            no_columns, self.database.catalog.functions
        )
        return [compiler.compile(a)(()) for a in args]

    def _plan_cross_apply(self, outer: PhysicalOperator, source) -> PhysicalOperator:
        if not isinstance(source, ast.TvfRef):
            raise BindError("CROSS APPLY supports table-valued functions only")
        tvf = self.database.catalog.functions.tvf(source.name)
        if tvf is None:
            raise BindError(f"unknown table-valued function {source.name!r}")
        compiler = ExpressionCompiler(
            make_binder(outer), self.database.catalog.functions
        )
        arg_fns = [compiler.compile(a) for a in source.args]
        return CrossApply(outer, tvf, arg_fns, alias=source.binding_name)

    # -- joins -----------------------------------------------------------------------

    def _plan_join(
        self,
        left: PhysicalOperator,
        join: ast.JoinClause,
        where_conjuncts: Optional[List[Expr]] = None,
    ) -> Tuple[PhysicalOperator, List[Expr]]:
        if where_conjuncts is None:
            where_conjuncts = []
        right, where_conjuncts = self._plan_source_filtered(
            join.source, where_conjuncts
        )
        conjuncts = _split_conjuncts(join.on)
        equi: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Expr] = []
        for conjunct in conjuncts:
            pair = self._equi_pair(left, right, conjunct)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        if not equi:
            raise BindError(
                "JOIN requires at least one equality predicate between the inputs"
            )
        left_refs = [pair[0] for pair in equi]
        right_refs = [pair[1] for pair in equi]

        # Merge join when both sides can deliver join-key order from a
        # clustered index.
        merged = self._try_merge_join(left, right, left_refs, right_refs)
        if merged is not None:
            joined = merged
        else:
            left_binder = make_binder(left)
            right_binder = make_binder(right)
            library = self.database.catalog.functions
            left_fns = [
                ExpressionCompiler(left_binder, library).compile(r)
                for r in left_refs
            ]
            right_fns = [
                ExpressionCompiler(right_binder, library).compile(r)
                for r in right_refs
            ]
            joined = HashJoin(left, right, left_fns, right_fns)
        if residual:
            compiler = ExpressionCompiler(
                make_binder(joined), self.database.catalog.functions
            )
            predicate = compiler.compile(_conjoin(residual))
            joined = Filter(joined, predicate, label="join residual")
        return joined, where_conjuncts

    def _equi_pair(
        self, left: PhysicalOperator, right: PhysicalOperator, conjunct: Expr
    ) -> Optional[Tuple[ColumnRef, ColumnRef]]:
        if not (
            isinstance(conjunct, BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return None
        a, b = conjunct.left, conjunct.right
        if _binds(left, a) and _binds(right, b) and not _binds(left, b):
            return (a, b)
        if _binds(left, b) and _binds(right, a) and not _binds(left, a):
            return (b, a)
        # ambiguous (same column name on both sides): prefer qualifier match
        if _binds(left, a) and _binds(right, b):
            return (a, b)
        if _binds(left, b) and _binds(right, a):
            return (b, a)
        return None

    def _try_merge_join(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_refs: Sequence[ColumnRef],
        right_refs: Sequence[ColumnRef],
    ) -> Optional[MergeJoin]:
        left_ordered = self._ordered_on(left, left_refs)
        right_ordered = self._ordered_on(right, right_refs)
        if left_ordered is None or right_ordered is None:
            return None
        library = self.database.catalog.functions
        left_fns = [
            ExpressionCompiler(make_binder(left_ordered), library).compile(r)
            for r in left_refs
        ]
        right_fns = [
            ExpressionCompiler(make_binder(right_ordered), library).compile(r)
            for r in right_refs
        ]
        return MergeJoin(left_ordered, right_ordered, left_fns, right_fns)

    @staticmethod
    def _bound_columns(op: PhysicalOperator) -> frozenset:
        """Output positions known constant (equality-bound seek prefix),
        found by walking through order-preserving wrappers."""
        bound = getattr(op, "bound_columns", None)
        if bound is not None:
            return bound
        if isinstance(op, Filter):
            return Planner._bound_columns(op.child)
        if isinstance(op, (HashJoin, MergeJoin)):
            return Planner._bound_columns(op.left)
        if isinstance(op, CrossApply):
            return Planner._bound_columns(op.outer)
        return frozenset()

    def _ordered_on(
        self, op: PhysicalOperator, refs: Sequence[ColumnRef]
    ) -> Optional[PhysicalOperator]:
        """Return a (possibly replaced) operator delivering rows ordered
        by ``refs``, or None when order cannot be obtained cheaply.

        Columns bound to constants by an equality seek are trivially
        ordered, so they are skipped when matching the requirement."""
        binder = make_binder(op)
        try:
            indexes = tuple(binder(r) for r in refs)
        except BindError:
            return None
        bound = self._bound_columns(op)
        effective = tuple(i for i in indexes if i not in bound)
        if op.ordering[: len(effective)] == effective:
            return op
        # Upgrade a bare heap scan to a clustered scan when the clustered
        # key leads with the join columns.
        if isinstance(op, TableScan):
            names = [op.columns[i].rsplit(".", 1)[-1] for i in indexes]
            table = op.table
            if not table.schema.heap and tuple(
                c.lower() for c in table.schema.primary_key[: len(names)]
            ) == tuple(n.lower() for n in names):
                return ClusteredIndexScan(table, alias=op.alias)
        if isinstance(op, Filter):
            upgraded = self._ordered_on(op.child, refs)
            if upgraded is op.child:
                return op
            if upgraded is not None:
                return Filter(upgraded, op.predicate, label=op.label)
        return None

    # -- WHERE ------------------------------------------------------------------------

    def _apply_residual_where(
        self, op: PhysicalOperator, conjuncts: List[Expr]
    ) -> PhysicalOperator:
        if not conjuncts:
            return op
        library = self.database.catalog.functions

        # Try converting a heap scan + PK-prefix equality into a seek.
        if isinstance(op, TableScan):
            op, conjuncts = self._try_seek(op, conjuncts)
        if not conjuncts:
            return op
        compiler = ExpressionCompiler(make_binder(op), library)
        predicate = compiler.compile(_conjoin(conjuncts))
        label = expression_to_sql(_conjoin(conjuncts))
        if len(label) > 60:
            label = label[:57] + "..."
        return Filter(op, predicate, label=label)

    @staticmethod
    def _equality_bindings(
        scan: TableScan, conjuncts: List[Expr]
    ) -> Dict[int, Tuple[Any, Expr]]:
        """column position → (literal value, conjunct) for every
        ``column = constant`` conjunct on this scan."""
        binder = make_binder(scan)
        bindings: Dict[int, Tuple[Any, Expr]] = {}
        for conjunct in conjuncts:
            if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
                continue
            ref, lit = conjunct.left, conjunct.right
            if isinstance(lit, ColumnRef) and isinstance(ref, Literal):
                ref, lit = lit, ref
            if not (isinstance(ref, ColumnRef) and isinstance(lit, Literal)):
                continue
            try:
                col_index = binder(ref)
            except BindError:
                continue
            bindings.setdefault(col_index, (lit.value, conjunct))
        return bindings

    @staticmethod
    def _bound_prefix(
        column_positions: Sequence[int],
        bindings: Dict[int, Tuple[Any, Expr]],
    ) -> Tuple[Tuple[Any, ...], List[Expr]]:
        """Longest equality-bound prefix of an index's columns; returns
        the key values and the conjuncts the seek consumes."""
        prefix: List[Any] = []
        consumed: List[Expr] = []
        for col_index in column_positions:
            if col_index not in bindings:
                break
            value, conjunct = bindings[col_index]
            prefix.append(value)
            consumed.append(conjunct)
        return tuple(prefix), consumed

    def _try_seek(
        self, scan: TableScan, conjuncts: List[Expr]
    ) -> Tuple[PhysicalOperator, List[Expr]]:
        table = scan.table
        bindings = self._equality_bindings(scan, conjuncts)
        if not bindings:
            return scan, conjuncts

        # prefer the clustered key (no bookmark lookup)
        if not table.schema.heap and table.schema.primary_key:
            key_positions = [
                table.schema.column_index(c)
                for c in table.schema.primary_key
            ]
            prefix, consumed = self._bound_prefix(key_positions, bindings)
            if prefix:
                seek = ClusteredIndexSeek(
                    table, prefix, prefix, alias=scan.alias
                )
                consumed_ids = {id(c) for c in consumed}
                remaining = [
                    c for c in conjuncts if id(c) not in consumed_ids
                ]
                return seek, remaining

        # fall back to the best secondary index (longest bound prefix)
        best: Optional[Tuple[str, Tuple[Any, ...], List[Expr]]] = None
        for name, col_idxs in table.secondary_indexes().items():
            prefix, consumed = self._bound_prefix(col_idxs, bindings)
            if prefix and (best is None or len(prefix) > len(best[1])):
                best = (name, prefix, consumed)
        if best is not None:
            from .executor import SecondaryIndexSeek

            name, prefix, consumed = best
            seek = SecondaryIndexSeek(
                table, name, prefix, prefix, alias=scan.alias
            )
            consumed_ids = {id(c) for c in consumed}
            remaining = [c for c in conjuncts if id(c) not in consumed_ids]
            return seek, remaining
        return scan, conjuncts

    # -- GROUP BY / aggregates -----------------------------------------------------------

    def _bind_udas(self, expr: Expr) -> Expr:
        """Convert registered-UDA function calls into AggregateCall nodes."""
        library = self.database.catalog.functions

        def transform(node: Expr) -> Optional[Expr]:
            if isinstance(node, FuncCall) and library.uda(node.name) is not None:
                return AggregateCall(node.name, node.args)
            return None

        return rewrite(expr, transform)

    def _apply_group_by(
        self, op: PhysicalOperator, stmt: ast.SelectStmt
    ) -> Tuple[PhysicalOperator, Dict[str, BoundRef]]:
        # Gather every expression that may contain aggregates.
        exprs: List[Expr] = []
        for item in stmt.items:
            if item.expr is not None:
                exprs.append(self._bind_udas(item.expr))
        if stmt.having is not None:
            exprs.append(self._bind_udas(stmt.having))
        for order_expr, _ in stmt.order_by:
            exprs.append(self._bind_udas(order_expr))
        aggregates: Dict[str, AggregateCall] = {}
        for expr in exprs:
            for agg in find_aggregates(expr):
                aggregates.setdefault(expression_to_sql(agg).lower(), agg)
        if not stmt.group_by and not aggregates:
            return op, {}

        library = self.database.catalog.functions
        binder = make_binder(op)
        compiler = ExpressionCompiler(binder, library)

        group_exprs = list(stmt.group_by)
        group_fns = [compiler.compile(e) for e in group_exprs]
        group_names = [expression_to_sql(e) for e in group_exprs]
        group_indexes = None
        if group_exprs and all(isinstance(e, ColumnRef) for e in group_exprs):
            try:
                group_indexes = tuple(binder(e) for e in group_exprs)
            except BindError:
                group_indexes = None

        specs: List[AggregateSpec] = []
        agg_names: List[str] = []
        subst: Dict[str, BoundRef] = {}
        for i, (text, agg) in enumerate(aggregates.items()):
            uda_class = library.uda(agg.name)
            arg_fns = [compiler.compile(a) for a in agg.args]
            specs.append(
                AggregateSpec(
                    agg.name,
                    arg_fns,
                    star=agg.star,
                    distinct=agg.distinct,
                    uda_class=uda_class,
                )
            )
            agg_names.append(f"$agg{i}")
        # group columns come first in aggregate output
        for i, text in enumerate(n.lower() for n in group_names):
            subst[text] = BoundRef(i, label=group_names[i])
        for i, text in enumerate(aggregates.keys()):
            subst[text] = BoundRef(len(group_names) + i, label=agg_names[i])

        needs_order = any(s.requires_ordered_input for s in specs)
        all_parallel_safe = all(s.parallel_safe for s in specs)
        dop = stmt.maxdop if stmt.maxdop is not None else self.database.default_dop
        # an explicit OPTION (MAXDOP n>1) hint opts into the parallel
        # plan regardless of the (crude) cardinality estimate
        big_input = (
            estimate_rows(op) >= PARALLEL_AGG_THRESHOLD
            or (stmt.maxdop is not None and stmt.maxdop > 1)
        )

        if needs_order:
            ordered = self._group_ordered(op, group_exprs)
            if ordered is None:
                op = Sort(
                    op,
                    group_fns,
                    [False] * len(group_fns),
                    label="for ordered UDA",
                )
                # recompile group fns against same columns (unchanged)
            else:
                op = ordered
            return (
                StreamAggregate(op, group_fns, group_names, specs, agg_names),
                subst,
            )
        if (
            all_parallel_safe
            and dop > 1
            and big_input
            and group_fns  # scalar aggregates stay serial; cheap anyway
        ):
            return (
                ParallelHashAggregate(
                    op,
                    group_fns,
                    group_names,
                    specs,
                    agg_names,
                    dop=dop,
                    group_indexes=group_indexes,
                ),
                subst,
            )
        if not group_fns:
            # scalar aggregate: Stream Aggregate emits exactly one row,
            # with NULL/0 results on empty input (SQL semantics)
            return (
                StreamAggregate(op, [], [], specs, agg_names),
                subst,
            )
        ordered = self._group_ordered(op, group_exprs)
        if ordered is not None:
            return (
                StreamAggregate(
                    ordered, group_fns, group_names, specs, agg_names
                ),
                subst,
            )
        return (
            HashAggregate(
                op,
                group_fns,
                group_names,
                specs,
                agg_names,
                group_indexes=group_indexes,
            ),
            subst,
        )

    def _group_ordered(
        self, op: PhysicalOperator, group_exprs: Sequence[Expr]
    ) -> Optional[PhysicalOperator]:
        """Is ``op`` (or a cheap upgrade of it) ordered by the group key?"""
        refs = [e for e in group_exprs if isinstance(e, ColumnRef)]
        if len(refs) != len(group_exprs) or not refs:
            return None
        return self._ordered_on(op, refs)

    # -- windows ---------------------------------------------------------------------

    def _apply_windows(
        self,
        op: PhysicalOperator,
        stmt: ast.SelectStmt,
        agg_subst: Dict[str, BoundRef],
    ) -> Tuple[PhysicalOperator, Dict[str, BoundRef]]:
        windows: Dict[str, WindowCall] = {}
        for item in stmt.items:
            if item.expr is None:
                continue
            expr = self._bind_udas(item.expr)
            for window in find_windows(expr):
                windows.setdefault(expression_to_sql(window).lower(), window)
        if not windows:
            return op, {}
        subst: Dict[str, BoundRef] = {}
        library = self.database.catalog.functions
        for window in windows.values():
            if window.name.lower() != "row_number":
                raise BindError(
                    f"unsupported window function {window.name!r}"
                )
            # substitute aggregate results into the OVER clause first; the
            # substitution key must be this *rebuilt* form, because that
            # is what projection expressions contain after their own
            # (bottom-up) aggregate substitution
            rebuilt = self._substitute(window, agg_subst)
            binder = make_binder(op)
            compiler = ExpressionCompiler(binder, library)
            order_fns = []
            descending = []
            for order_expr, desc in rebuilt.order_by:
                order_fns.append(compiler.compile(order_expr))
                descending.append(desc)
            op = RowNumberWindow(op, order_fns, descending)
            bound = BoundRef(len(op.columns) - 1, label="row_number")
            subst[expression_to_sql(rebuilt).lower()] = bound
            subst[expression_to_sql(window).lower()] = bound
        return op, subst

    # -- projection / order / top ---------------------------------------------------------

    def _substitute(self, expr: Expr, subst: Dict[str, BoundRef]) -> Expr:
        if not subst:
            return expr

        def transform(node: Expr) -> Optional[Expr]:
            # any expression matching a computed value (group-by
            # expression, aggregate, window) is replaced by a reference
            # to the aggregate/window operator's output — this is what
            # lets GROUP BY CASE ... / SELECT CASE ... line up
            return subst.get(expression_to_sql(node).lower())

        return rewrite(expr, transform)

    def _apply_order_project_top(
        self,
        op: PhysicalOperator,
        stmt: ast.SelectStmt,
        subst: Dict[str, BoundRef],
    ) -> PhysicalOperator:
        library = self.database.catalog.functions
        binder = make_binder(op)
        compiler = ExpressionCompiler(binder, library)

        # Resolve select items against the current (pre-projection) op.
        fns: List[Callable] = []
        names: List[str] = []
        alias_exprs: Dict[str, Expr] = {}
        for item in stmt.items:
            if item.star:
                if stmt.group_by:
                    raise BindError("SELECT * is invalid with GROUP BY")
                for i, col in enumerate(op.columns):
                    if item.star_qualifier and not col.lower().startswith(
                        item.star_qualifier.lower() + "."
                    ):
                        continue
                    index = i
                    fns.append(lambda row, j=index: row[j])
                    names.append(col.rsplit(".", 1)[-1])
                continue
            expr = self._substitute(self._bind_udas(item.expr), subst)
            fns.append(compiler.compile(expr))
            if item.alias:
                name = item.alias
                alias_exprs[item.alias.lower()] = expr
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.name
            else:
                name = expression_to_sql(item.expr)
            names.append(name)

        # ORDER BY runs before projection (it may use non-projected values);
        # aliases resolve to their defining expressions.
        if stmt.order_by:
            order_fns = []
            descending = []
            for order_expr, desc in stmt.order_by:
                if (
                    isinstance(order_expr, ColumnRef)
                    and order_expr.qualifier is None
                    and order_expr.name.lower() in alias_exprs
                ):
                    bound = alias_exprs[order_expr.name.lower()]
                else:
                    bound = self._substitute(
                        self._bind_udas(order_expr), subst
                    )
                order_fns.append(compiler.compile(bound))
                descending.append(desc)
            op = Sort(op, order_fns, descending, label="ORDER BY")
        op = Project(op, fns, names)
        if stmt.distinct:
            op = Distinct(op)
        if stmt.top is not None:
            op = Top(op, stmt.top)
        return op

    # -- explain -------------------------------------------------------------------------

    def explain_select(self, stmt: ast.SelectStmt) -> str:
        return self.plan_select(stmt).explain()
