"""Query planner: SELECT AST → logical plan → physical operator tree.

Planning runs in two phases, the classic logical/physical split of the
SQL Server 2008 optimizer the paper's plans come from:

1. the binder lowers the AST into the logical IR of
   :mod:`repro.engine.optimizer.logical` and the rewrite rules of
   :mod:`repro.engine.optimizer.rules` run over it (predicate pushdown,
   projection pruning, cardinality-ordered join reordering);
2. this module lowers the rewritten logical tree to physical
   operators, choosing between alternatives with the cost model of
   :mod:`repro.engine.optimizer.cost`, fed by the table statistics
   ``UPDATE STATISTICS`` collects:

   - **access paths** — heap scan vs. clustered/secondary index seek
     is a cost comparison of the B-tree descend + estimated qualifying
     rows against the full scan with a residual filter;
   - **join algorithm** — equi-joins whose inputs both deliver join-key
     order price a Merge Join against the Hash Join's build surcharge
     (Figure 10's plan); non-equi predicates stay as residuals;
   - **aggregation strategy** — ordered-input UDAs get a Stream
     Aggregate (sorting first if needed); parallel-safe aggregations
     take the exchange-based parallel plan (Figure 9) when the
     estimated input cardinality makes the exchange startup cost pay
     for itself, or when an ``OPTION (MAXDOP n)`` hint forces it;
   - **windows** — ``ROW_NUMBER() OVER (ORDER BY ...)`` plans as a
     Sequence Project above the aggregation.

Every physical node is annotated with ``est_rows`` / ``est_cost``;
``explain()`` renders the tree with those annotations, and EXPLAIN
ANALYZE adds the actual row counts observed during execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .errors import BindError
from .executor import (
    AggregateSpec,
    ClusteredIndexScan,
    ClusteredIndexSeek,
    ColumnStoreScan,
    CrossApply,
    Distinct,
    EncodedAggregate,
    Filter,
    FusedFilterProject,
    HashAggregate,
    HashJoin,
    MaterializedResult,
    MergeJoin,
    ParallelHashAggregate,
    PhysicalOperator,
    Project,
    RowNumberWindow,
    SecondaryIndexSeek,
    Sort,
    StreamAggregate,
    TableScan,
    Top,
    TvfScan,
)
from .expressions import (
    Between,
    BoundRef,
    ColumnRef,
    Expr,
    ExpressionCompiler,
    InList,
    IsNull,
    Literal,
    Parameter,
    BinaryOp,
    column_refs,
    expression_to_sql,
    rewrite,
)
from .optimizer import CostModel, apply_rewrites, lower_select
from .optimizer.cost import _column_comparison
from .storage.base import STORAGE_COLUMN
from .storage.columnstore import PushedPredicate
from .optimizer.logical import (
    LogicalAggregate,
    LogicalApply,
    LogicalDistinct,
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNode,
    LogicalPlan,
    LogicalProject,
    LogicalSort,
    LogicalTop,
    LogicalWindow,
    bind_udas,
    conjoin as _conjoin,
    split_conjuncts as _split_conjuncts,
)
from .sql import ast


def make_binder(op: PhysicalOperator) -> Callable[[ColumnRef], int]:
    """Build a binder resolving column references against ``op``'s output."""
    columns = [c.lower() for c in op.columns]

    def binder(ref: ColumnRef) -> int:
        target = ref.name.lower()
        if ref.qualifier:
            wanted = f"{ref.qualifier.lower()}.{target}"
            exact = [i for i, c in enumerate(columns) if c == wanted]
            if len(exact) == 1:
                return exact[0]
            if len(exact) > 1:
                raise BindError(f"ambiguous column {ref}")
            raise BindError(f"unknown column {ref}")
        exact = [i for i, c in enumerate(columns) if c == target]
        if len(exact) == 1:
            return exact[0]
        suffix = [
            i for i, c in enumerate(columns) if c.rsplit(".", 1)[-1] == target
        ]
        if len(exact or suffix) == 1:
            return (exact or suffix)[0]
        if not exact and not suffix:
            raise BindError(f"unknown column {ref}")
        raise BindError(f"ambiguous column {ref}")

    return binder


def _sniffed(prefix: Sequence[Any]) -> List[Any]:
    """Current values of a seek prefix that may hold parameter slots —
    what the cost model prices a cached plan's first compile against."""
    return [v.value if isinstance(v, Parameter) else v for v in prefix]


def _binds(op: PhysicalOperator, expr: Expr) -> bool:
    """True when every column reference in ``expr`` resolves against op."""
    binder = make_binder(op)
    try:
        for ref in column_refs(expr):
            binder(ref)
        return True
    except BindError:
        return False


class _Relabel(PhysicalOperator):
    """Expose a child operator under new column names (derived tables)."""

    batch_capable = True

    def __init__(self, child: PhysicalOperator, columns: Sequence[str]):
        super().__init__()
        self.child = child
        self.columns = list(columns)
        self.ordering = child.ordering

    def execute(self):
        return iter(self.child)

    def execute_batch(self):
        return self.child.iter_batches()

    def children(self):
        return (self.child,)

    def explain_node(self):
        label, _ = self.child.explain_node()
        return label, self.child.children()


class _LowerContext:
    """State threaded through lowering of one SELECT: the statement and
    the substitution map aggregate/window operators establish for the
    expressions above them."""

    __slots__ = ("stmt", "subst")

    def __init__(self, stmt: ast.SelectStmt):
        self.stmt = stmt
        self.subst: Dict[str, BoundRef] = {}


class Planner:
    """Plans statements against one database instance."""

    def __init__(self, database, cost: Optional[CostModel] = None):
        self.database = database
        self.cost = cost if cost is not None else CostModel()
        #: verifier/optimizer notes for the plan being built (EXPLAIN
        #: renders them as ``note:`` lines under the operator tree)
        self._notes: List[str] = []
        #: normalised SQL of the statement being planned — recorded as
        #: the ``source`` of every lint/sanitizer finding it produces
        self._current_source = ""
        #: rule IDs suppressed by ``-- lint: ignore RULE`` pragmas in
        #: the statement being planned
        self._suppressed: frozenset = frozenset()

    # ------------------------------------------------------------------ SELECT

    def plan_select(self, stmt: ast.SelectStmt) -> PhysicalOperator:
        from . import tracing
        from .verify.sql_lint import parse_suppressions

        with tracing.span("plan statement", category="plan"):
            logical = lower_select(stmt, self.database.catalog)
            self._notes = []
            source_sql = getattr(stmt, "source_sql", "") or ""
            self._current_source = " ".join(source_sql.split())[:200]
            self._suppressed = parse_suppressions(source_sql)
            apply_rewrites(
                logical, self.database.catalog, self.cost, self._notes
            )
            self._lint(logical)
            op = self._lower_plan(logical)
            self._select_execution_modes(op)
            self.cost.annotate(op)
            op.plan_notes = list(self._notes)
            self._sanitize(op)
        return op

    def _select_execution_modes(self, op: PhysicalOperator) -> None:
        """Flip every batch-capable operator to batch mode.

        Runs after physical lowering and *before* the final cost
        annotation, so the batch discount is visible in EXPLAIN but all
        access-path / join / parallelism decisions (which price
        alternatives mid-lowering) were taken mode-agnostically.
        Row-only operators simply stay in row mode — the batch iterator
        protocol bridges both directions, so a pipeline may change mode
        at any operator boundary."""
        if getattr(self.database, "execution_mode", "auto") == "row":
            return
        for child in op.children():
            self._select_execution_modes(child)
        if op.batch_capable:
            op.execution_mode = "batch"

    def _lint(self, logical: LogicalPlan) -> None:
        from .verify.sql_lint import lint_plan

        diagnostics = [
            d
            for d in lint_plan(logical, self.database.catalog)
            if d.rule not in self._suppressed
        ]
        for d in diagnostics:
            self._notes.append(d.message)
        self._record_lint(diagnostics)

    def _sanitize(self, op: PhysicalOperator) -> None:
        """Run the plan sanitizer (PLAN-* rules) over the finished
        physical plan when the session's ``SET PLAN_VERIFY ON`` knob is
        armed. Runs *after* ``plan_notes`` is attached so silence
        checks (PLAN-EXCHANGE-SILENT) can see the exchange-tier notes
        the planner just phrased; findings then append their own
        ``note:`` lines and land in ``sys_dm_verify_results``."""
        if not getattr(self.database, "plan_verify", False):
            return
        from .verify.plan_sanitizer import sanitize_plan

        findings = [
            d
            for d in sanitize_plan(op, self.database)
            if d.rule not in self._suppressed
        ]
        if not findings:
            return
        op.plan_notes = list(op.plan_notes) + [
            f"{d.severity} [{d.rule}] {d.obj}: {d.message}"
            for d in findings
        ]
        self._record_lint(findings)

    def _record_lint(self, diagnostics) -> None:
        diagnostics = [
            d for d in diagnostics if d.rule not in self._suppressed
        ]
        record = getattr(self.database, "record_lint", None)
        if record is not None and diagnostics:
            record(diagnostics, source=self._current_source)

    def _note_exchange_tier(self, pool, op, specs, group_indexes) -> None:
        """EXPLAIN note when a parallel plan cannot run the partitioned-
        scan offload — which execution tier it will use instead, and why
        (satellite of the real-parallelism work: a serial fallback must
        never be silent)."""
        from .executor.exchange import (
            rebuild_shippable_specs,
            rows_offload_blocker,
            scan_offload_blocker,
        )

        def note(message: str) -> None:
            if message not in self._notes:
                self._notes.append(message)

        if pool is None or not pool.available():
            reason = (
                pool.disabled_reason if pool is not None else "no pool"
            )
            note(f"exchange will simulate DOP — {reason}")
            return
        if rebuild_shippable_specs(specs) is None:
            note(
                "exchange will simulate DOP — aggregate descriptors "
                "cannot ship to workers"
            )
            return
        scan_blocker = scan_offload_blocker(op, specs, group_indexes)
        if scan_blocker is None:
            return
        rows_blocker = rows_offload_blocker(specs, group_indexes)
        if rows_blocker is not None:
            note(f"exchange will simulate DOP — {rows_blocker}")
        else:
            note(
                "exchange will repartition rows on the coordinator — "
                f"{scan_blocker}"
            )

    def _warn_serial_forced(self, uda_name: str) -> None:
        from .verify.udx_verifier import Diagnostic

        message = (
            f"serial aggregate forced — uda {uda_name!r} has no "
            "verified merge"
        )
        if message not in self._notes:
            self._notes.append(message)
        self._record_lint(
            [Diagnostic("LINT-SERIAL-AGG", "warning", uda_name, message)]
        )

    def explain_select(self, stmt: ast.SelectStmt) -> str:
        return self.plan_select(stmt).explain()

    # -- logical → physical lowering ---------------------------------------------

    def _lower_plan(self, plan: LogicalPlan) -> PhysicalOperator:
        return self._lower(plan.root, _LowerContext(plan.stmt))

    def _lower(
        self, node: LogicalNode, ctx: _LowerContext
    ) -> PhysicalOperator:
        if isinstance(node, LogicalGet):
            return self._lower_get(node)
        if isinstance(node, LogicalFilter):
            child = self._lower(node.child, ctx)
            if node.kind == "HAVING":
                return self._lower_having(child, node, ctx)
            return self._apply_residual_where(child, list(node.conjuncts))
        if isinstance(node, LogicalJoin):
            left = self._lower(node.left, ctx)
            right = self._lower(node.right, ctx)
            return self._make_join(left, right, list(node.conjuncts))
        if isinstance(node, LogicalApply):
            outer = self._lower(node.outer, ctx)
            return self._plan_cross_apply(outer, node.source)
        if isinstance(node, LogicalAggregate):
            child = self._lower(node.child, ctx)
            op, subst = self._apply_group_by(child, node)
            ctx.subst.update(subst)
            return op
        if isinstance(node, LogicalWindow):
            child = self._lower(node.child, ctx)
            op, subst = self._apply_windows(child, node, ctx.subst)
            ctx.subst.update(subst)
            return op
        if isinstance(node, LogicalProject):
            below = node.child
            if isinstance(below, LogicalSort):
                below = below.child  # ORDER BY lowers with the projection
            op = self._lower(below, ctx)
            return self._apply_order_project_top(op, ctx.stmt, ctx.subst)
        if isinstance(node, LogicalDistinct):
            return Distinct(self._lower(node.child, ctx))
        if isinstance(node, LogicalTop):
            return Top(self._lower(node.child, ctx), node.n)
        raise BindError(
            f"cannot lower logical node {type(node).__name__}"
        )  # pragma: no cover - every node type is handled above

    # -- FROM --------------------------------------------------------------------

    def _lower_get(self, node: LogicalGet) -> PhysicalOperator:
        source = node.source
        if source is None:
            return MaterializedResult([], [()])  # constant one-row input
        if isinstance(source, ast.TableRef):
            store = getattr(node.table, "store", None)
            scan_class = (
                ColumnStoreScan
                if store is not None
                and store.engine_name == STORAGE_COLUMN
                else TableScan
            )
            scan = scan_class(
                node.table,
                alias=source.binding_name,
                projection=node.required,
            )
            scan.est_rows = node.table.row_count
            return scan
        if isinstance(source, ast.TvfRef):
            tvf = self.database.catalog.functions.tvf(source.name)
            if tvf is None:
                raise BindError(
                    f"unknown table-valued function {source.name!r}"
                )
            args = self._eval_constant_args(source.args)
            return TvfScan(tvf, args, alias=source.binding_name)
        if isinstance(source, ast.SubqueryRef):
            inner = self._lower_plan(node.inner)
            alias = source.binding_name
            renamed = [
                f"{alias}.{c.rsplit('.', 1)[-1]}" for c in inner.columns
            ]
            return _Relabel(inner, renamed)
        if isinstance(source, ast.OpenRowsetRef):
            data = self.database.read_bulk_file(source.path)
            alias = source.binding_name
            return MaterializedResult([f"{alias}.BulkColumn"], [(data,)])
        raise BindError(
            f"unsupported FROM source {type(source).__name__}"
        )

    def _eval_constant_args(self, args: Sequence[Expr]) -> List[Any]:
        def no_columns(ref: ColumnRef) -> int:
            raise BindError(
                f"TVF arguments in FROM must be constants, found column {ref}"
            )

        compiler = ExpressionCompiler(
            no_columns, self.database.catalog.functions
        )
        return [compiler.compile(a)(()) for a in args]

    def _plan_cross_apply(
        self, outer: PhysicalOperator, source
    ) -> PhysicalOperator:
        if not isinstance(source, ast.TvfRef):
            raise BindError("CROSS APPLY supports table-valued functions only")
        tvf = self.database.catalog.functions.tvf(source.name)
        if tvf is None:
            raise BindError(f"unknown table-valued function {source.name!r}")
        compiler = ExpressionCompiler(
            make_binder(outer), self.database.catalog.functions
        )
        arg_fns = [compiler.compile(a) for a in source.args]
        return CrossApply(outer, tvf, arg_fns, alias=source.binding_name)

    # -- joins -----------------------------------------------------------------------

    def _make_join(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        conjuncts: List[Expr],
    ) -> PhysicalOperator:
        equi: List[Tuple[ColumnRef, ColumnRef]] = []
        residual: List[Expr] = []
        for conjunct in conjuncts:
            pair = self._equi_pair(left, right, conjunct)
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        if not equi:
            raise BindError(
                "JOIN requires at least one equality predicate between the inputs"
            )
        left_refs = [pair[0] for pair in equi]
        right_refs = [pair[1] for pair in equi]

        self.cost.annotate(left)
        self.cost.annotate(right)
        left_rows = left.est_rows or 1
        right_rows = right.est_rows or 1

        # Merge join when both sides can deliver join-key order from a
        # clustered index and it prices below the hash join's build.
        merged = self._try_merge_join(left, right, left_refs, right_refs)
        if merged is not None and self.cost.prefer_merge_join(
            left_rows, right_rows
        ):
            joined: PhysicalOperator = merged
        else:
            left_binder = make_binder(left)
            right_binder = make_binder(right)
            library = self.database.catalog.functions
            left_fns = [
                ExpressionCompiler(left_binder, library).compile(r)
                for r in left_refs
            ]
            right_fns = [
                ExpressionCompiler(right_binder, library).compile(r)
                for r in right_refs
            ]
            # equi keys are plain columns, so batch mode can build/probe
            # with positional getters
            joined = HashJoin(
                left,
                right,
                left_fns,
                right_fns,
                left_key_indexes=[left_binder(r) for r in left_refs],
                right_key_indexes=[right_binder(r) for r in right_refs],
            )
        key_ndvs = []
        for left_ref, right_ref in equi:
            sides = [
                self._column_ndv(left, left_ref),
                self._column_ndv(right, right_ref),
            ]
            known = [n for n in sides if n]
            key_ndvs.append(max(known) if known else None)
        joined.est_rows = self.cost.join_rows(
            left_rows, right_rows, key_ndvs
        )
        if residual:
            compiler = ExpressionCompiler(
                make_binder(joined), self.database.catalog.functions
            )
            residual_expr = _conjoin(residual)
            join_rows = joined.est_rows
            joined = Filter(
                joined,
                compiler.compile(residual_expr),
                label="join residual",
                batch_predicate=compiler.compile_batch(residual_expr),
            )
            joined.est_rows = self.cost.filter_output(join_rows, residual)
        return joined

    def _equi_pair(
        self, left: PhysicalOperator, right: PhysicalOperator, conjunct: Expr
    ) -> Optional[Tuple[ColumnRef, ColumnRef]]:
        if not (
            isinstance(conjunct, BinaryOp)
            and conjunct.op == "="
            and isinstance(conjunct.left, ColumnRef)
            and isinstance(conjunct.right, ColumnRef)
        ):
            return None
        a, b = conjunct.left, conjunct.right
        if _binds(left, a) and _binds(right, b) and not _binds(left, b):
            return (a, b)
        if _binds(left, b) and _binds(right, a) and not _binds(left, a):
            return (b, a)
        # ambiguous (same column name on both sides): prefer qualifier match
        if _binds(left, a) and _binds(right, b):
            return (a, b)
        if _binds(left, b) and _binds(right, a):
            return (b, a)
        return None

    def _try_merge_join(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_refs: Sequence[ColumnRef],
        right_refs: Sequence[ColumnRef],
    ) -> Optional[MergeJoin]:
        left_ordered = self._ordered_on(left, left_refs)
        right_ordered = self._ordered_on(right, right_refs)
        if left_ordered is None or right_ordered is None:
            return None
        library = self.database.catalog.functions
        left_fns = [
            ExpressionCompiler(make_binder(left_ordered), library).compile(r)
            for r in left_refs
        ]
        right_fns = [
            ExpressionCompiler(make_binder(right_ordered), library).compile(r)
            for r in right_refs
        ]
        return MergeJoin(left_ordered, right_ordered, left_fns, right_fns)

    @staticmethod
    def _bound_columns(op: PhysicalOperator) -> frozenset:
        """Output positions known constant (equality-bound seek prefix),
        found by walking through order-preserving wrappers."""
        bound = getattr(op, "bound_columns", None)
        if bound is not None:
            return bound
        if isinstance(op, Filter):
            return Planner._bound_columns(op.child)
        if isinstance(op, (HashJoin, MergeJoin)):
            return Planner._bound_columns(op.left)
        if isinstance(op, CrossApply):
            return Planner._bound_columns(op.outer)
        return frozenset()

    def _ordered_on(
        self, op: PhysicalOperator, refs: Sequence[ColumnRef]
    ) -> Optional[PhysicalOperator]:
        """Return a (possibly replaced) operator delivering rows ordered
        by ``refs``, or None when order cannot be obtained cheaply.

        Columns bound to constants by an equality seek are trivially
        ordered, so they are skipped when matching the requirement."""
        binder = make_binder(op)
        try:
            indexes = tuple(binder(r) for r in refs)
        except BindError:
            return None
        bound = self._bound_columns(op)
        effective = tuple(i for i in indexes if i not in bound)
        if op.ordering[: len(effective)] == effective:
            return op
        # Upgrade a bare heap scan to a clustered scan when the clustered
        # key leads with the join columns.
        if isinstance(op, TableScan):
            names = [op.columns[i].rsplit(".", 1)[-1] for i in indexes]
            table = op.table
            if not table.schema.heap and tuple(
                c.lower() for c in table.schema.primary_key[: len(names)]
            ) == tuple(n.lower() for n in names):
                # keep the scan's projection so column positions — which
                # expressions above may already be compiled against —
                # stay identical across the upgrade
                projection = None
                if op.projection is not None:
                    projection = [
                        table.schema.column_names[i] for i in op.projection
                    ]
                upgraded = ClusteredIndexScan(
                    table, alias=op.alias, projection=projection
                )
                if upgraded.ordering[: len(effective)] != effective:
                    return None
                upgraded.est_rows = table.row_count
                return upgraded
        if isinstance(op, Filter):
            upgraded = self._ordered_on(op.child, refs)
            if upgraded is op.child:
                return op
            if upgraded is not None:
                replaced = Filter(
                    upgraded,
                    op.predicate,
                    label=op.label,
                    batch_predicate=op.batch_predicate,
                )
                replaced.est_rows = op.est_rows
                return replaced
        return None

    # -- statistics lookups ------------------------------------------------------------

    def _base_operators(self, op: PhysicalOperator):
        if hasattr(op, "table"):
            yield op
        for kid in op.children():
            yield from self._base_operators(kid)

    def _column_ndv(
        self, op: PhysicalOperator, ref: ColumnRef
    ) -> Optional[int]:
        """Distinct count of the base-table column ``ref`` resolves to
        under ``op``, when statistics exist for exactly one candidate."""
        owners = [
            base for base in self._base_operators(op) if _binds(base, ref)
        ]
        if len(owners) != 1:
            return None
        stats = getattr(owners[0].table, "statistics", None)
        if stats is None:
            return None
        return stats.n_distinct(ref.name)

    # -- WHERE ------------------------------------------------------------------------

    def _apply_residual_where(
        self, op: PhysicalOperator, conjuncts: List[Expr]
    ) -> PhysicalOperator:
        if not conjuncts:
            return op
        library = self.database.catalog.functions

        # Price an index seek against scan + residual filter.
        if isinstance(op, TableScan):
            op, conjuncts = self._try_seek(op, conjuncts)
        # Column tables instead push conjuncts into the scan itself,
        # where zone maps skip segments and the encoded vectors evaluate
        # the predicate without materialising rows.
        if isinstance(op, ColumnStoreScan):
            op, conjuncts = self._push_into_columnstore(op, conjuncts)
        if not conjuncts:
            return op
        compiler = ExpressionCompiler(make_binder(op), library)
        residual_expr = _conjoin(conjuncts)
        predicate = compiler.compile(residual_expr)
        label = expression_to_sql(residual_expr)
        if len(label) > 60:
            label = label[:57] + "..."
        filtered = Filter(
            op,
            predicate,
            label=label,
            batch_predicate=compiler.compile_batch(residual_expr),
        )
        table = getattr(op, "table", None)
        if table is not None:
            if isinstance(op, (TableScan, ClusteredIndexScan)):
                filtered.est_rows = self.cost.scan_output(table, conjuncts)
            elif op.est_rows is not None:
                filtered.est_rows = self.cost.filter_output(
                    op.est_rows, conjuncts, table
                )
        return filtered

    @staticmethod
    def _equality_bindings(
        scan: TableScan, conjuncts: List[Expr]
    ) -> Dict[int, Tuple[Any, Expr]]:
        """column position → (literal value, conjunct) for every
        ``column = constant`` conjunct on this scan."""
        binder = make_binder(scan)
        bindings: Dict[int, Tuple[Any, Expr]] = {}
        for conjunct in conjuncts:
            if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
                continue
            ref, lit = conjunct.left, conjunct.right
            if isinstance(lit, ColumnRef) and isinstance(ref, Literal):
                ref, lit = lit, ref
            if not (isinstance(ref, ColumnRef) and isinstance(lit, Literal)):
                continue
            try:
                col_index = binder(ref)
            except BindError:
                continue
            # parameter slots stay as nodes so a cached seek resolves the
            # current value at execute time; plain literals bind by value
            bound = lit if isinstance(lit, Parameter) else lit.value
            bindings.setdefault(col_index, (bound, conjunct))
        return bindings

    @staticmethod
    def _bound_prefix(
        column_positions: Sequence[int],
        bindings: Dict[int, Tuple[Any, Expr]],
    ) -> Tuple[Tuple[Any, ...], List[Expr]]:
        """Longest equality-bound prefix of an index's columns; returns
        the key values and the conjuncts the seek consumes."""
        prefix: List[Any] = []
        consumed: List[Expr] = []
        for col_index in column_positions:
            if col_index not in bindings:
                break
            value, conjunct = bindings[col_index]
            prefix.append(value)
            consumed.append(conjunct)
        return tuple(prefix), consumed

    @staticmethod
    def _scan_positions(scan: TableScan) -> Dict[str, int]:
        """Bare column name → position in the scan's (possibly pruned)
        output, so index-key prefixes resolve against projections."""
        positions: Dict[str, int] = {}
        for i, col in enumerate(scan.columns):
            positions.setdefault(col.lower().rsplit(".", 1)[-1], i)
        return positions

    def _try_seek(
        self, scan: TableScan, conjuncts: List[Expr]
    ) -> Tuple[PhysicalOperator, List[Expr]]:
        """Convert a scan + equality conjuncts into the cheapest seek,
        when one prices below the scan with its residual filter."""
        table = scan.table
        bindings = self._equality_bindings(scan, conjuncts)
        if not bindings:
            return scan, conjuncts
        positions = self._scan_positions(scan)
        scan_cost = self.cost.scan_filter_cost(
            table.row_count, len(conjuncts)
        )
        # (cost, tie_break, est, builder, consumed)
        candidates: List[Tuple[float, int, int, Callable, List[Expr]]] = []

        schema = table.schema
        if not schema.heap and schema.primary_key:
            key_positions = [
                positions.get(c.lower(), -1) for c in schema.primary_key
            ]
            prefix, consumed = self._bound_prefix(key_positions, bindings)
            if prefix:
                bound = list(zip(schema.primary_key, _sniffed(prefix)))
                est = self.cost.seek_rows(
                    table, bound, full_key=len(prefix) == len(schema.primary_key)
                )

                def build_clustered(
                    prefix=prefix,
                ) -> PhysicalOperator:
                    return ClusteredIndexSeek(
                        table, prefix, prefix, alias=scan.alias
                    )

                candidates.append(
                    (self.cost.seek_cost(est), 0, est, build_clustered, consumed)
                )
        for name, col_idxs in table.secondary_indexes().items():
            index_positions = [
                positions.get(schema.columns[i].name.lower(), -1)
                for i in col_idxs
            ]
            prefix, consumed = self._bound_prefix(index_positions, bindings)
            if not prefix:
                continue
            sniffed = _sniffed(prefix)
            bound = [
                (schema.columns[col_idxs[i]].name, sniffed[i])
                for i in range(len(prefix))
            ]
            est = self.cost.seek_rows(table, bound, full_key=False)

            def build_secondary(
                name=name, prefix=prefix
            ) -> PhysicalOperator:
                return SecondaryIndexSeek(
                    table, name, prefix, prefix, alias=scan.alias
                )

            candidates.append(
                (
                    self.cost.seek_cost(est, secondary=True),
                    1,
                    est,
                    build_secondary,
                    consumed,
                )
            )
        if not candidates:
            return scan, conjuncts
        cost, _, est, build, consumed = min(
            candidates, key=lambda c: (c[0], c[1])
        )
        if cost >= scan_cost:
            return scan, conjuncts
        seek = build()
        seek.est_rows = est
        consumed_ids = {id(c) for c in consumed}
        remaining = [c for c in conjuncts if id(c) not in consumed_ids]
        return seek, remaining

    def _pushable_predicate(
        self, scan: ColumnStoreScan, conjunct: Expr
    ) -> Optional[PushedPredicate]:
        """Translate one conjunct into a :class:`PushedPredicate` over
        the scan's *schema* column positions, or None when its shape is
        out of reach for encoded evaluation.

        NULL literals are never pushed: ``col <> NULL`` must match
        nothing, which the three-valued compiled predicate gets right
        but a two-valued matcher would not."""
        binder = make_binder(scan)

        def schema_position(ref: Expr) -> Optional[int]:
            if not isinstance(ref, ColumnRef):
                return None
            try:
                return scan.schema_index(binder(ref))
            except BindError:
                return None

        # parameter slots are pushed as the node itself: PushedPredicate
        # resolves the current slot value on every read, so a cached scan
        # prunes against the parameters of *this* execution
        def payload(lit: Literal) -> Any:
            return lit if isinstance(lit, Parameter) else lit.value

        label = expression_to_sql(conjunct)
        comparison = _column_comparison(conjunct)
        if comparison is not None:
            ref, op, value = comparison
            position = schema_position(ref)
            if position is None or value is None:
                return None
            if op == "!=":
                op = "<>"
            lit = (
                conjunct.right
                if isinstance(conjunct.right, Literal)
                else conjunct.left
            )
            return PushedPredicate(position, op, payload(lit), label=label)
        if isinstance(conjunct, Between):
            position = schema_position(conjunct.operand)
            if (
                position is None
                or not isinstance(conjunct.low, Literal)
                or not isinstance(conjunct.high, Literal)
                or conjunct.low.value is None
                or conjunct.high.value is None
            ):
                return None
            return PushedPredicate(
                position,
                "between",
                (payload(conjunct.low), payload(conjunct.high)),
                label=label,
            )
        if isinstance(conjunct, InList):
            position = schema_position(conjunct.operand)
            if position is None or not all(
                isinstance(item, Literal) and item.value is not None
                for item in conjunct.items
            ):
                return None
            if any(isinstance(item, Parameter) for item in conjunct.items):
                values: Any = tuple(payload(item) for item in conjunct.items)
            else:
                try:
                    values = frozenset(item.value for item in conjunct.items)
                except TypeError:
                    return None
            return PushedPredicate(position, "in", values, label=label)
        if isinstance(conjunct, IsNull):
            position = schema_position(conjunct.operand)
            if position is None:
                return None
            return PushedPredicate(
                position,
                "notnull" if conjunct.negated else "isnull",
                None,
                label=label,
            )
        return None

    def _push_into_columnstore(
        self, scan: ColumnStoreScan, conjuncts: List[Expr]
    ) -> Tuple[ColumnStoreScan, List[Expr]]:
        """Move pushable conjuncts into the column scan, where zone maps
        prune whole segments and the survivors evaluate on encoded
        vectors; the rest stay for the compiled residual filter.

        Each conjunct is gated individually by the cost model: a
        predicate that filters (almost) nothing would pay encoded
        selection per segment without ever skipping one, so it stays in
        the residual (materialize-then-filter)."""
        table = scan.table
        pushed: List[PushedPredicate] = []
        pushed_exprs: List[Expr] = []
        remaining: List[Expr] = []
        for conjunct in conjuncts:
            predicate = self._pushable_predicate(scan, conjunct)
            if predicate is None or not self.cost.worth_pushing(
                self.cost.conjunct_selectivity(conjunct, table)
            ):
                remaining.append(conjunct)
                continue
            pushed.append(predicate)
            pushed_exprs.append(conjunct)
        if pushed:
            scan.set_predicates(list(scan.predicates) + pushed)
            scan.est_rows = self.cost.scan_output(table, pushed_exprs)
        return scan, remaining

    # -- GROUP BY / aggregates -----------------------------------------------------------

    def _apply_group_by(
        self, op: PhysicalOperator, node: LogicalAggregate
    ) -> Tuple[PhysicalOperator, Dict[str, BoundRef]]:
        library = self.database.catalog.functions
        binder = make_binder(op)
        compiler = ExpressionCompiler(binder, library)

        group_exprs = list(node.group_by)
        group_fns = [compiler.compile(e) for e in group_exprs]
        group_names = [expression_to_sql(e) for e in group_exprs]
        group_indexes = None
        if group_exprs and all(isinstance(e, ColumnRef) for e in group_exprs):
            try:
                group_indexes = tuple(binder(e) for e in group_exprs)
            except BindError:
                group_indexes = None

        specs: List[AggregateSpec] = []
        agg_names: List[str] = []
        subst: Dict[str, BoundRef] = {}
        for i, agg in enumerate(node.aggregates.values()):
            uda_class = library.uda(agg.name)
            arg_fns = [compiler.compile(a) for a in agg.args]
            # plain-column argument position, so batch mode can extract
            # the argument column without a per-row closure call
            arg_index = None
            if not agg.star and len(agg.args) == 1:
                arg = agg.args[0]
                if isinstance(arg, BoundRef):
                    arg_index = arg.index
                elif isinstance(arg, ColumnRef):
                    try:
                        arg_index = binder(arg)
                    except BindError:
                        arg_index = None
            specs.append(
                AggregateSpec(
                    agg.name,
                    arg_fns,
                    star=agg.star,
                    distinct=agg.distinct,
                    uda_class=uda_class,
                    arg_index=arg_index,
                )
            )
            agg_names.append(f"$agg{i}")
        # group columns come first in aggregate output
        for i, text in enumerate(n.lower() for n in group_names):
            subst[text] = BoundRef(i, label=group_names[i])
        for i, text in enumerate(node.aggregates.keys()):
            subst[text] = BoundRef(len(group_names) + i, label=agg_names[i])

        needs_order = any(s.requires_ordered_input for s in specs)
        all_parallel_safe = all(s.parallel_safe for s in specs)
        dop = (
            node.maxdop
            if node.maxdop is not None
            else self.database.default_dop
        )
        # SET MAX_DOP n caps the session; hints are clamped, not trusted
        session_cap = getattr(self.database, "max_dop", None)
        if session_cap is not None:
            dop = min(dop, session_cap)
        input_rows = self.cost.annotate(op).est_rows or 1
        group_ndvs = [
            self._column_ndv(op, e) if isinstance(e, ColumnRef) else None
            for e in group_exprs
        ]
        output_rows = self.cost.group_rows(input_rows, group_ndvs)
        # an explicit OPTION (MAXDOP n>1) hint opts into the parallel
        # plan regardless of the cost model's cardinality estimate
        go_parallel = (
            node.maxdop is not None and node.maxdop > 1
        ) or self.cost.parallel_agg_wins(input_rows, dop)
        # segment-at-a-time aggregation over an encoded column scan:
        # the exchange plan would repartition materialised rows, so when
        # the encoded plan prices below it (and no MAXDOP hint forces
        # parallelism) the aggregation stays on the encoded vectors
        encoded_eligible = EncodedAggregate.eligible(
            op, group_indexes, specs
        )
        if (
            encoded_eligible
            and (node.maxdop is None or node.maxdop <= 1)
            and self.cost.encoded_agg_wins(input_rows, dop)
        ):
            go_parallel = False

        # a UDA that *claims* parallel_safe but failed merge verification
        # falls out of all_parallel_safe (AggregateSpec consults
        # _merge_verified) — when that is what blocks an otherwise
        # parallel plan, say so
        if (
            not all_parallel_safe
            and not needs_order
            and group_fns
            and dop > 1
            and go_parallel
        ):
            for spec in specs:
                cls = spec.uda_class
                if (
                    cls is not None
                    and cls.parallel_safe
                    and not getattr(cls, "_merge_verified", True)
                ):
                    self._warn_serial_forced(getattr(cls, "name", spec.name))

        result: PhysicalOperator
        if needs_order:
            ordered = self._group_ordered(op, group_exprs)
            if ordered is None:
                op = Sort(
                    op,
                    group_fns,
                    [False] * len(group_fns),
                    label="for ordered UDA",
                )
                # recompile group fns against same columns (unchanged)
            else:
                op = ordered
            result = StreamAggregate(op, group_fns, group_names, specs, agg_names)
        elif (
            all_parallel_safe
            and dop > 1
            and go_parallel
            and group_fns  # scalar aggregates stay serial; cheap anyway
        ):
            pool = getattr(self.database, "worker_pool", None)
            self._note_exchange_tier(pool, op, specs, group_indexes)
            result = ParallelHashAggregate(
                op,
                group_fns,
                group_names,
                specs,
                agg_names,
                dop=dop,
                group_indexes=group_indexes,
                pool=pool,
            )
        elif not group_fns:
            # scalar aggregate: Stream Aggregate emits exactly one row,
            # with NULL/0 results on empty input (SQL semantics)
            result = StreamAggregate(op, [], [], specs, agg_names)
        else:
            ordered = self._group_ordered(op, group_exprs)
            if ordered is not None:
                result = StreamAggregate(
                    ordered, group_fns, group_names, specs, agg_names
                )
            elif encoded_eligible:
                result = EncodedAggregate(
                    op,
                    group_fns,
                    group_names,
                    specs,
                    agg_names,
                    group_indexes=group_indexes,
                )
            else:
                result = HashAggregate(
                    op,
                    group_fns,
                    group_names,
                    specs,
                    agg_names,
                    group_indexes=group_indexes,
                )
        result.est_rows = 1 if not group_fns else output_rows
        return result, subst

    def _group_ordered(
        self, op: PhysicalOperator, group_exprs: Sequence[Expr]
    ) -> Optional[PhysicalOperator]:
        """Is ``op`` (or a cheap upgrade of it) ordered by the group key?"""
        refs = [e for e in group_exprs if isinstance(e, ColumnRef)]
        if len(refs) != len(group_exprs) or not refs:
            return None
        return self._ordered_on(op, refs)

    # -- windows ---------------------------------------------------------------------

    def _apply_windows(
        self,
        op: PhysicalOperator,
        node: LogicalWindow,
        agg_subst: Dict[str, BoundRef],
    ) -> Tuple[PhysicalOperator, Dict[str, BoundRef]]:
        subst: Dict[str, BoundRef] = {}
        library = self.database.catalog.functions
        for text, window in node.windows.items():
            if window.name.lower() != "row_number":
                raise BindError(
                    f"unsupported window function {window.name!r}"
                )
            # substitute aggregate results into the OVER clause first; the
            # substitution key must be this *rebuilt* form, because that
            # is what projection expressions contain after their own
            # (bottom-up) aggregate substitution
            rebuilt = self._substitute(window, agg_subst)
            binder = make_binder(op)
            compiler = ExpressionCompiler(binder, library)
            order_fns = []
            descending = []
            for order_expr, desc in rebuilt.order_by:
                order_fns.append(compiler.compile(order_expr))
                descending.append(desc)
            op = RowNumberWindow(op, order_fns, descending)
            bound = BoundRef(len(op.columns) - 1, label="row_number")
            subst[expression_to_sql(rebuilt).lower()] = bound
            subst[text] = bound
        return op, subst

    # -- HAVING ----------------------------------------------------------------------

    def _lower_having(
        self,
        op: PhysicalOperator,
        node: LogicalFilter,
        ctx: _LowerContext,
    ) -> PhysicalOperator:
        library = self.database.catalog.functions
        having = self._substitute(
            bind_udas(_conjoin(node.conjuncts), library), ctx.subst
        )
        compiler = ExpressionCompiler(make_binder(op), library)
        filtered = Filter(
            op,
            compiler.compile(having),
            label="HAVING",
            batch_predicate=compiler.compile_batch(having),
        )
        if op.est_rows is not None:
            filtered.est_rows = self.cost.filter_output(
                op.est_rows, node.conjuncts
            )
        return filtered

    # -- projection / order / top ---------------------------------------------------------

    def _substitute(self, expr: Expr, subst: Dict[str, BoundRef]) -> Expr:
        if not subst:
            return expr

        def transform(node: Expr) -> Optional[Expr]:
            # any expression matching a computed value (group-by
            # expression, aggregate, window) is replaced by a reference
            # to the aggregate/window operator's output — this is what
            # lets GROUP BY CASE ... / SELECT CASE ... line up
            return subst.get(expression_to_sql(node).lower())

        return rewrite(expr, transform)

    def _apply_order_project_top(
        self,
        op: PhysicalOperator,
        stmt: ast.SelectStmt,
        subst: Dict[str, BoundRef],
    ) -> PhysicalOperator:
        library = self.database.catalog.functions
        binder = make_binder(op)
        compiler = ExpressionCompiler(binder, library)

        # Resolve select items against the current (pre-projection) op.
        fns: List[Callable] = []
        batch_fns: List[Callable] = []
        names: List[str] = []
        alias_exprs: Dict[str, Expr] = {}
        for item in stmt.items:
            if item.star:
                if stmt.group_by:
                    raise BindError("SELECT * is invalid with GROUP BY")
                for i, col in enumerate(op.columns):
                    if item.star_qualifier and not col.lower().startswith(
                        item.star_qualifier.lower() + "."
                    ):
                        continue
                    index = i
                    fns.append(lambda row, j=index: row[j])
                    batch_fns.append(
                        lambda batch, j=index: [row[j] for row in batch]
                    )
                    names.append(col.rsplit(".", 1)[-1])
                continue
            expr = self._substitute(bind_udas(item.expr, library), subst)
            fns.append(compiler.compile(expr))
            batch_fns.append(compiler.compile_batch(expr))
            if item.alias:
                name = item.alias
                alias_exprs[item.alias.lower()] = expr
            elif isinstance(item.expr, ColumnRef):
                name = item.expr.name
            else:
                name = expression_to_sql(item.expr)
            names.append(name)

        # ORDER BY runs before projection (it may use non-projected values);
        # aliases resolve to their defining expressions.
        if stmt.order_by:
            order_fns = []
            descending = []
            for order_expr, desc in stmt.order_by:
                if (
                    isinstance(order_expr, ColumnRef)
                    and order_expr.qualifier is None
                    and order_expr.name.lower() in alias_exprs
                ):
                    bound = alias_exprs[order_expr.name.lower()]
                else:
                    bound = self._substitute(
                        bind_udas(order_expr, library), subst
                    )
                order_fns.append(compiler.compile(bound))
                descending.append(desc)
            op = Sort(op, order_fns, descending, label="ORDER BY")
        if (
            not stmt.order_by
            and isinstance(op, Filter)
            and op.batch_predicate is not None
            and getattr(self.database, "execution_mode", "auto") != "row"
        ):
            # fuse the WHERE filter with the projection so batch mode
            # runs a single operator over each batch (fns bind against
            # the filter's child: a Filter never changes columns)
            fused = FusedFilterProject(
                op.child,
                op.predicate,
                op.batch_predicate,
                fns,
                batch_fns,
                names,
                label=op.label,
            )
            fused.est_rows = op.est_rows
            op = fused
        else:
            op = Project(op, fns, names, batch_fns=batch_fns)
        if stmt.distinct:
            op = Distinct(op)
        if stmt.top is not None:
            op = Top(op, stmt.top)
        return op
