"""The database facade.

:class:`Database` ties the pieces together: catalog, FileStream store,
SQL front end, planner, and executor. It is the object applications and
the genomics warehouse layer talk to::

    db = Database(data_dir="./mydb")
    db.execute("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(50))")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    result = db.execute("SELECT name FROM t WHERE id = 1")
    result.rows            # [('x',)]
    print(db.explain("SELECT COUNT(*), name FROM t GROUP BY name"))
"""

from __future__ import annotations

import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Type

from .catalog import Catalog
from .errors import BindError, ConstraintViolation, EngineError
from .executor import MaterializedResult, PhysicalOperator, collect_rows
from .expressions import ColumnRef, ExpressionCompiler
from .filestream import FileStreamStore
from .metrics import Counters, MetricsRegistry, make_system_views
from .optimizer.statistics import SelectivityMemory
from .plancache import PlanCache
from .planner import Planner, make_binder
from .querystore import QueryStore
from .tracing import (
    StatementTrace,
    Tracer,
    chrome_trace_payload,
    current_trace,
    record_operator_spans,
    write_chrome_trace,
)
from .schema import Column, ForeignKey, TableSchema
from .sql import ast
from .sql.parser import parse_sql
from .table import Table
from .types import (
    MAX,
    SqlType,
    UdtCodec,
    bigint_type,
    binary_type,
    bit_type,
    char_type,
    datetime_type,
    float_type,
    guid_type,
    int_type,
    smallint_type,
    tinyint_type,
    udt_type,
    varbinary_type,
    varchar_type,
)
from .udf import TableValuedFunction, UserDefinedAggregate

_TYPE_FACTORIES = {
    "int": lambda n: int_type(),
    "bigint": lambda n: bigint_type(),
    "smallint": lambda n: smallint_type(),
    "tinyint": lambda n: tinyint_type(),
    "bit": lambda n: bit_type(),
    "float": lambda n: float_type(),
    "real": lambda n: float_type(),
    "char": lambda n: char_type(n or 1),
    "nchar": lambda n: char_type(n or 1),
    "varchar": lambda n: varchar_type(n if n is not None else MAX),
    "nvarchar": lambda n: varchar_type(n if n is not None else MAX),
    "binary": lambda n: binary_type(n or 1),
    "varbinary": lambda n: varbinary_type(n if n is not None else MAX),
    "uniqueidentifier": lambda n: guid_type(),
    "datetime": lambda n: datetime_type(),
}


class Database:
    """One database instance: catalog + storage + query processing.

    Parameters
    ----------
    data_dir:
        Directory owning the FILESTREAM filegroup (a temp directory is
        created when omitted).
    default_dop:
        Degree of parallelism the planner assumes when a query carries no
        ``OPTION (MAXDOP n)`` hint. The paper's testbed had 4 cores.

    Parallel plans execute on a per-database
    :class:`~repro.engine.workers.WorkerPool` of OS processes, spawned
    lazily on the first offloadable exchange and reused across queries.
    ``SET MAX_DOP n`` caps the session's effective DOP (hints included);
    ``SET MAX_DOP 0`` removes the cap.
    """

    def __init__(
        self,
        data_dir: Optional[os.PathLike | str] = None,
        default_dop: int = 4,
    ):
        if data_dir is None:
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-db-")
            data_dir = self._tempdir.name
        else:
            self._tempdir = None
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.filestream = FileStreamStore(self.data_dir / "filestream")
        self.catalog = Catalog(filestream_store=self.filestream)
        self.default_dop = default_dop
        #: session cap on the degree of parallelism (SET MAX_DOP n);
        #: None = no cap
        self.max_dop: Optional[int] = None
        #: lazily created process pool for parallel exchanges
        self._worker_pool = None
        #: DOP of the most recently planned statement (for query stats)
        self._last_plan_dop = 1
        #: execution-mode knob: "auto" lets the planner pick batch mode
        #: per operator, "row" forces the row-at-a-time interpreter
        self.execution_mode = "auto"
        self._planner = Planner(self)
        self._enforce_foreign_keys = True
        self._procedures = None
        #: per-query execution stats, queryable via the sys_dm_* views
        self.metrics = MetricsRegistry()
        #: per-statement trace recording + engine-lifetime wait stats
        self.tracer = Tracer()
        #: the persistent query store (normalised queries, interned
        #: plans, per-interval runtime stats); reloaded from
        #: ``querystore.json`` when the data directory already has one
        self.query_store = QueryStore()
        self._querystore_path = self.data_dir / "querystore.json"
        if self._querystore_path.exists():
            try:
                self.query_store.load(self._querystore_path)
            except Exception:  # noqa: BLE001 - corrupt store: start fresh
                self.query_store = QueryStore()
        #: SET SLOW_QUERY_THRESHOLD ms (None = logging off)
        self.slow_query_threshold_ms: Optional[float] = None
        #: retained slow-query log entries (sys_dm_exec_slow_queries)
        self._slow_queries: List[Tuple[Any, ...]] = []
        #: the physical plan of the most recent SELECT/EXPLAIN ANALYZE
        #: (what the query store interns)
        self._last_select_plan: Optional[PhysicalOperator] = None
        #: SET STATISTICS TIME/IO session knobs
        self.statistics_time = False
        self.statistics_io = False
        #: per-execute() informational messages (the "Messages" tab)
        self.messages: List[str] = []
        #: plan-time lint findings, newest last (sys_dm_verify_results)
        self._lint_log: List[Tuple[str, str, str, str, str, str]] = []
        #: SET PLAN_VERIFY ON — run the plan sanitizer over every
        #: planned statement (also honoured by EXPLAIN and check());
        #: initialised from the REPRO_PLAN_VERIFY environment variable
        #: so test suites can arm it globally
        self.plan_verify = os.environ.get(
            "REPRO_PLAN_VERIFY", ""
        ).strip().lower() in ("1", "on", "true", "yes")
        #: statistics epoch: bumped by every UPDATE STATISTICS (manual
        #: or automatic) — part of the plan cache's invalidation key
        self.stats_epoch = 0
        #: runtime selectivity feedback consulted by the cost model
        #: when it has no statistics for a predicate (SET PLAN_CACHE
        #: does not gate this: the memory is optimizer state)
        self.selectivity_memory = SelectivityMemory()
        self._planner.cost.selectivity_memory = self.selectivity_memory
        #: compiled-plan cache keyed by normalized SQL + cache epoch
        #: (SET PLAN_CACHE ON/OFF; sys_dm_exec_cached_plans)
        self.plan_cache = PlanCache(self)
        for view_name, view in make_system_views(self).items():
            self.catalog.register_view(view_name, view)
        self._register_builtin_overrides()

    def close(self) -> None:
        if self._worker_pool is not None:
            self._worker_pool.close()
            self._worker_pool = None
        # persist the query store beside the FILESTREAM filegroup so
        # history survives a restart (skipped for throwaway temp dirs)
        if self.query_store.dirty and self._tempdir is None:
            try:
                self.query_store.save(self._querystore_path)
            except OSError:
                pass
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    # -- parallel worker pool -------------------------------------------------------------

    @property
    def worker_pool(self):
        """The database's process pool (created on first access; worker
        processes themselves spawn lazily on the first offloaded task)."""
        if self._worker_pool is None:
            from .workers import WorkerPool

            self._worker_pool = WorkerPool(
                max_workers=max(self.default_dop, 8)
            )
        return self._worker_pool

    def worker_pool_rows(self) -> List[Tuple[Any, ...]]:
        """Rows for ``sys_dm_os_workers`` (empty until workers spawn)."""
        if self._worker_pool is None:
            return []
        return self._worker_pool.stats_rows()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- built-in FILESTREAM-aware functions --------------------------------------------

    def _register_builtin_overrides(self) -> None:
        store = self.filestream

        def pathname(value: Any) -> Any:
            if value is None:
                return None
            if isinstance(value, uuid.UUID):
                return store.path_name(value)
            raise BindError("PathName() expects a FILESTREAM column")

        def datalength(value: Any) -> Any:
            if isinstance(value, uuid.UUID) and store.exists(value):
                return store.data_length(value)
            from .expressions import _datalength

            return _datalength(value)

        # both reach FileStream storage: EXTERNAL_ACCESS, DataAccessKind.Read
        self.catalog.functions.register_scalar(
            "PathName",
            pathname,
            permission_set="EXTERNAL_ACCESS",
            data_access="READ",
        )
        self.catalog.functions.register_scalar(
            "DATALENGTH",
            datalength,
            permission_set="EXTERNAL_ACCESS",
            data_access="READ",
        )

    # -- extension registration -----------------------------------------------------------

    def register_scalar(
        self, name: str, func: Callable[..., Any], **kwargs
    ) -> None:
        self.catalog.functions.register_scalar(name, func, **kwargs)

    def register_tvf(self, tvf: TableValuedFunction) -> None:
        self.catalog.functions.register_tvf(tvf)

    def register_uda(self, uda_class: Type[UserDefinedAggregate]) -> None:
        self.catalog.functions.register_uda(uda_class)

    def register_udt(self, codec: UdtCodec) -> None:
        self.catalog.functions.register_udt(codec)

    # -- plan-time lint -------------------------------------------------------------------

    #: retained lint findings (oldest dropped beyond this)
    _LINT_LOG_LIMIT = 500

    def record_lint(self, diagnostics, source: str = "") -> None:
        """Record plan-time lint findings: one message per finding plus
        a row in ``sys_dm_verify_results``. ``source`` names the
        originating statement or object path (a normalised SQL prefix,
        a file:line, …) so a DMV row can be traced back to what was
        being planned."""
        for d in diagnostics:
            self.messages.append(str(d))
            self._lint_log.append(
                ("plan", d.obj, d.rule, d.severity, d.message, source)
            )
        if len(self._lint_log) > self._LINT_LOG_LIMIT:
            del self._lint_log[: -self._LINT_LOG_LIMIT]

    def lint_rows(self) -> List[Tuple[str, str, str, str, str, str]]:
        return list(self._lint_log)

    @property
    def procedures(self):
        """The stored-procedure registry (interpreted + compiled)."""
        if self._procedures is None:
            from .procedural import ProcedureRegistry

            self._procedures = ProcedureRegistry(self)
        return self._procedures

    def call_procedure(self, name: str, *args: Any) -> Any:
        return self.procedures.call(name, *args)

    # -- SQL execution ---------------------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Execute a SQL script; returns the last statement's result.

        SELECT → :class:`MaterializedResult`; EXPLAIN → plan text;
        DML/DDL → affected row count. Per-statement summaries requested
        via ``SET STATISTICS TIME/IO ON`` land in :attr:`messages`.
        """
        self.messages = []
        # parse-free hit path: when the raw text matches a registered
        # cached statement shape, the plan cache rebinds and returns
        # the compiled plan before the parser ever runs
        fast = self.plan_cache.fetch_text(sql)
        if fast is not None:
            return self._execute_tracked(None, fast_plan=fast.plan, sql_text=sql)
        result: Any = None
        for stmt in parse_sql(sql):
            result = self._execute_tracked(stmt)
        return result

    def _execute_tracked(
        self, stmt, fast_plan=None, sql_text: Optional[str] = None
    ) -> Any:
        """Execute one statement, recording wall-clock time and the IO
        it caused into the metrics registry (and, when the session knobs
        are on, into :attr:`messages`).

        ``fast_plan`` carries a plan the cache resolved straight from
        raw text (``stmt`` is None then): execution skips the parser
        and statement dispatch but keeps every recording side effect
        identical to the parsed path."""
        if fast_plan is None and isinstance(
            stmt, (ast.SetStatisticsStmt, ast.SetOptionStmt)
        ):
            return self._execute_statement(stmt)
        per_table_before = (
            {t.schema.name: t.io_report() for t in self.catalog.tables()}
            if self.statistics_io
            else None
        )
        if fast_plan is None:
            sql_text = getattr(stmt, "source_sql", None) or type(stmt).__name__
            kind = type(stmt).__name__.removesuffix("Stmt").upper()
        else:
            kind = "SELECT"
        io_before = self._io_totals()
        start = time.perf_counter()
        with self.tracer.statement(sql_text, kind):
            if fast_plan is None:
                result = self._execute_statement(stmt)
            else:
                result = self._run_select_plan(fast_plan)
        elapsed = time.perf_counter() - start
        io_delta = Counters.delta(self._io_totals(), io_before)
        if isinstance(result, MaterializedResult):
            rows = len(result)
        elif isinstance(result, int):
            rows = result
        else:
            rows = 0
        # normalize once through the query store's memo: the plan cache
        # key, this metrics record, and query-store capture all reuse it
        normalized = self.query_store.normalize(sql_text)
        self.metrics.record_statement(
            sql_text,
            kind,
            elapsed,
            rows,
            io_delta,
            dop=self._last_plan_dop,
            normalized=normalized,
        )
        # bare EXPLAIN never executes the query: recording it would make
        # no-execute plan inspection indistinguishable from a real run in
        # the query store's runtime stats (EXPLAIN ANALYZE does execute
        # and keeps flowing through)
        is_bare_explain = (
            fast_plan is None
            and isinstance(stmt, ast.ExplainStmt)
            and not stmt.analyze
        )
        if not is_bare_explain:
            self.query_store.record(
                sql_text,
                kind,
                elapsed,
                rows,
                io=io_delta,
                dop=self._last_plan_dop,
                plan=self._last_select_plan,
            )
            self._harvest_selectivities(self._last_select_plan)
            # crash-safety checkpoint: persist the store every N recorded
            # statements instead of only at close() (throwaway temp-dir
            # databases skip persistence entirely)
            if self._tempdir is None:
                try:
                    self.query_store.maybe_checkpoint(self._querystore_path)
                except OSError:
                    pass
        threshold = self.slow_query_threshold_ms
        if threshold is not None and elapsed * 1000.0 >= threshold:
            self._slow_queries.append(
                (
                    sql_text,
                    kind,
                    round(elapsed * 1000.0, 3),
                    threshold,
                    rows,
                    self._last_plan_dop,
                    time.strftime("%Y-%m-%dT%H:%M:%S", time.gmtime()),
                )
            )
            if len(self._slow_queries) > self._SLOW_QUERY_LOG_LIMIT:
                del self._slow_queries[: -self._SLOW_QUERY_LOG_LIMIT]
            self.messages.append(
                f"Slow query ({elapsed * 1000.0:.3f} ms >= "
                f"{threshold:g} ms): {sql_text}"
            )
        if per_table_before is not None:
            for table in self.catalog.tables():
                delta = Counters.delta(
                    table.io_report(),
                    per_table_before.get(table.schema.name, {}),
                )
                if delta:
                    logical = delta.get("pages_read", 0) + delta.get(
                        "index_node_visits", 0
                    )
                    message = (
                        f"Table {table.schema.name!r}. "
                        f"Scan count {delta.get('scans', 0)}, "
                        f"logical reads {logical}, "
                        f"page cache misses "
                        f"{delta.get('page_cache_misses', 0)}, "
                        f"batch reads {delta.get('batch_reads', 0)}."
                    )
                    # columnstore tables add a segment clause (SQL Server
                    # prints "segment reads N, segment skipped M"); heap
                    # tables keep the exact historical line
                    if delta.get("segments_read", 0) or delta.get(
                        "segments_skipped", 0
                    ):
                        message += (
                            f" Segment reads "
                            f"{delta.get('segments_read', 0)}, "
                            f"segments skipped "
                            f"{delta.get('segments_skipped', 0)}."
                        )
                    self.messages.append(message)
        if self.statistics_time:
            self.messages.append(
                f"Execution Times: elapsed time = {elapsed * 1000.0:.3f} ms."
            )
        return result

    def _io_totals(self) -> Counters:
        """Database-wide IO counters: every table's heap + indexes, plus
        the FILESTREAM store (prefixed). Feeds sys_dm_io_stats and the
        per-statement deltas the metrics registry records."""
        totals = Counters()
        for table in self.catalog.tables():
            totals.merge(table.io_report())
        totals.merge(self.filestream.io, prefix="filestream_")
        return totals

    #: retained slow-query log entries (oldest dropped beyond this)
    _SLOW_QUERY_LOG_LIMIT = 200

    def slow_query_rows(self) -> List[Tuple[Any, ...]]:
        """Rows for ``sys_dm_exec_slow_queries``."""
        return list(self._slow_queries)

    def metrics_prometheus(self) -> str:
        """The registry + IO totals as Prometheus exposition text, plus
        worker-pool and wait-stats gauges."""
        return self.metrics.prometheus_text(
            self._io_totals(),
            workers=self.worker_pool_rows(),
            waits=self.tracer.wait_stats.rows(),
            plan_cache=self.plan_cache.stats_dict(),
        )

    # -- tracing ---------------------------------------------------------------------------

    def last_trace(self) -> Optional[StatementTrace]:
        """The most recently completed statement trace (None when
        tracing is disabled or nothing has run)."""
        return self.tracer.last

    def trace_payload(self, last_only: bool = False) -> dict:
        """Retained statement traces as a Chrome trace-event JSON object
        (``chrome://tracing`` / Perfetto)."""
        traces = self.tracer.traces
        if last_only and traces:
            traces = traces[-1:]
        return chrome_trace_payload(traces)

    def write_trace(self, path: os.PathLike | str, last_only: bool = False) -> None:
        """Export retained traces as a Chrome trace-event JSON file."""
        write_chrome_trace(path, self.trace_payload(last_only=last_only))

    def query(self, sql: str) -> List[Tuple[Any, ...]]:
        """Execute a single SELECT and return its rows."""
        result = self.execute(sql)
        if not isinstance(result, MaterializedResult):
            raise EngineError("query() requires a SELECT statement")
        return result.rows

    def scalar(self, sql: str) -> Any:
        """First column of the first row of a SELECT."""
        rows = self.query(sql)
        if not rows:
            return None
        return rows[0][0]

    def explain(self, sql: str) -> str:
        """Render the physical plan for a SELECT statement."""
        statements = parse_sql(sql)
        if len(statements) != 1:
            raise EngineError("explain() takes exactly one statement")
        stmt = statements[0]
        if isinstance(stmt, ast.ExplainStmt):
            if stmt.analyze:
                return self._explain_analyze(stmt.select)
            stmt = stmt.select
        if not isinstance(stmt, ast.SelectStmt):
            raise EngineError("explain() requires a SELECT statement")
        return self._planner.explain_select(stmt)

    def _explain_analyze(self, select: ast.SelectStmt) -> str:
        """EXPLAIN ANALYZE: execute the plan to completion, then render
        it with estimated *and* actual row counts per operator."""
        op = self._planner.plan_select(select)
        self._last_plan_dop = self._plan_dop(op)
        self._last_select_plan = op
        op.enable_timing()
        collect_rows(op)
        trace = current_trace()
        if trace is not None:
            # timing armed every operator's span endpoints; graft them
            # under the statement span structurally (operators are
            # interleaved generators — a live span stack would mis-nest)
            record_operator_spans(trace, op)
        return op.explain(analyze=True)

    def plan(self, sql: str) -> PhysicalOperator:
        """Return the physical operator tree for a SELECT (not executed)."""
        statements = parse_sql(sql)
        stmt = statements[0]
        if not isinstance(stmt, ast.SelectStmt):
            raise EngineError("plan() requires a SELECT statement")
        return self._planner.plan_select(stmt)

    def check(self, sql: str) -> int:
        """Statically check a SQL script without running it (the path
        ``repro-genomics lint`` takes): SELECT and EXPLAIN statements
        are planned — so the plan-time lint fires — but never executed;
        INSERT/UPDATE/DELETE are bound against the catalog (table,
        column, and expression binding, VALUES arity) without touching
        a row; only schema and session statements (CREATE/DROP/
        TRUNCATE/SET) apply, so later statements bind against the
        schema the script builds. Returns the number of statements
        checked. The plan sanitizer is force-armed for the duration so
        ``repro-genomics lint``/``sanitize`` always get PLAN-* coverage
        regardless of the session knob."""
        self.messages = []
        statements = parse_sql(sql)
        was_verifying = self.plan_verify
        self.plan_verify = True
        try:
            for stmt in statements:
                self._check_statement(stmt)
        finally:
            self.plan_verify = was_verifying
        return len(statements)

    def _check_statement(self, stmt) -> None:
        if isinstance(stmt, ast.SelectStmt):
            self._planner.plan_select(stmt)
            return
        if isinstance(stmt, ast.ExplainStmt):
            self._planner.plan_select(stmt.select)
            return
        if isinstance(stmt, ast.InsertStmt):
            table = self.catalog.table(stmt.table)
            if stmt.values is not None:

                def constants_only(ref: ColumnRef) -> int:
                    raise BindError(
                        f"INSERT VALUES must be constant expressions, "
                        f"found {ref}"
                    )

                compiler = ExpressionCompiler(
                    constants_only, self.catalog.functions
                )
                value_rows = [
                    [compiler.compile(expr)(()) for expr in row]
                    for row in stmt.values
                ]
                for _ in self._full_rows(table, stmt.columns, value_rows):
                    pass  # arity / column binding only; nothing inserted
            else:
                self._planner.plan_select(stmt.select)
            return
        if isinstance(stmt, (ast.UpdateStmt, ast.DeleteStmt)):
            from .executor import TableScan

            table = self.catalog.table(stmt.table)
            compiler = ExpressionCompiler(
                make_binder(TableScan(table)), self.catalog.functions
            )
            if isinstance(stmt, ast.UpdateStmt):
                for col, expr in stmt.assignments:
                    table.schema.column_index(col)
                    compiler.compile(expr)
            if stmt.where is not None:
                compiler.compile(stmt.where)
            return
        # schema / session statements must apply for later binding
        self._execute_statement(stmt)

    @staticmethod
    def _plan_dop(op) -> int:
        """Highest exchange-operator DOP in a plan tree (1 = serial)."""
        dop = getattr(op, "dop", 1) if getattr(op, "stats", None) else 1
        for child in op.children():
            dop = max(dop, Database._plan_dop(child))
        return dop

    def _run_select_plan(self, op) -> MaterializedResult:
        """Materialize a resolved physical plan — the shared tail of
        the parsed SELECT branch and the plan cache's raw-text path."""
        self._last_plan_dop = self._plan_dop(op)
        self._last_select_plan = op
        columns = [c.rsplit(".", 1)[-1] for c in op.columns]
        return MaterializedResult(columns, collect_rows(op))

    def _execute_statement(self, stmt) -> Any:
        self._last_plan_dop = 1
        self._last_select_plan = None
        if isinstance(stmt, ast.SelectStmt):
            return self._run_select_plan(self.plan_cache.fetch(stmt).plan)
        if isinstance(stmt, ast.ExplainStmt):
            if stmt.analyze:
                # EXPLAIN ANALYZE arms per-operator timing, which must
                # not persist on a cached plan — always plan fresh
                return self._explain_analyze(stmt.select)
            text = self._planner.explain_select(stmt.select)
            # peek only: report what the cache *would* do without
            # bumping counters or caching the inspected plan
            cache_note = self.plan_cache.peek(stmt.select)
            if cache_note is not None:
                text += f"\nnote: {cache_note}"
            return text
        if isinstance(stmt, ast.UpdateStatisticsStmt):
            self.analyze_table(stmt.table)
            return 0
        if isinstance(stmt, ast.SetStatisticsStmt):
            if stmt.option == "TIME":
                self.statistics_time = stmt.enabled
            else:
                self.statistics_io = stmt.enabled
            return 0
        if isinstance(stmt, ast.SetOptionStmt):
            if stmt.option == "MAX_DOP":
                if stmt.value < 0:
                    raise EngineError("SET MAX_DOP expects n >= 0")
                # SQL Server semantics: 0 means "let the server decide"
                self.max_dop = stmt.value or None
            elif stmt.option == "PLAN_VERIFY":
                self.plan_verify = bool(stmt.value)
            elif stmt.option == "PLAN_CACHE":
                enabled = bool(stmt.value)
                if self.plan_cache.enabled and not enabled:
                    self.plan_cache.clear(reason="disabled")
                self.plan_cache.enabled = enabled
            elif stmt.option == "SLOW_QUERY_THRESHOLD":
                if stmt.value < 0:
                    raise EngineError(
                        "SET SLOW_QUERY_THRESHOLD expects ms >= 0"
                    )
                # 0 logs every statement
                self.slow_query_threshold_ms = float(stmt.value)
            return 0
        if isinstance(stmt, ast.InsertStmt):
            count = self._execute_insert(stmt)
            self._maybe_auto_update_statistics(stmt.table)
            return count
        if isinstance(stmt, ast.DeleteStmt):
            count = self._execute_delete(stmt)
            self._maybe_auto_update_statistics(stmt.table)
            return count
        if isinstance(stmt, ast.UpdateStmt):
            count = self._execute_update(stmt)
            self._maybe_auto_update_statistics(stmt.table)
            return count
        if isinstance(stmt, ast.CreateTableStmt):
            self._execute_create_table(stmt)
            return 0
        if isinstance(stmt, ast.CreateIndexStmt):
            self.catalog.table(stmt.table).create_index(stmt.name, stmt.columns)
            # create_index is a Table method, so the catalog never sees
            # it — bump the DDL epoch here so cached plans notice
            self.catalog.bump_schema_version()
            return 0
        if isinstance(stmt, ast.DropTableStmt):
            self.catalog.drop_table(stmt.name)
            return 0
        if isinstance(stmt, ast.TruncateStmt):
            table = self.catalog.table(stmt.name)
            schema = table.schema
            self.catalog.drop_table(stmt.name)
            self.catalog.create_table(schema)
            return 0
        raise EngineError(f"unsupported statement {type(stmt).__name__}")

    # -- DDL ---------------------------------------------------------------------------------

    def _resolve_type(self, col: ast.ColumnDef) -> SqlType:
        factory = _TYPE_FACTORIES.get(col.type_name.lower())
        if factory is None:
            if self.catalog.functions.has_udt(col.type_name):
                return udt_type(col.type_name)
            raise BindError(f"unknown type {col.type_name!r}")
        sql_type = factory(col.length)
        if col.filestream:
            if not (sql_type.kind == "VARBINARY" and sql_type.length == MAX):
                raise BindError(
                    "FILESTREAM requires VARBINARY(MAX) "
                    f"(column {col.name!r})"
                )
            sql_type = varbinary_type(MAX, filestream=True)
        return sql_type

    def _execute_create_table(self, stmt: ast.CreateTableStmt) -> Table:
        columns = []
        for col in stmt.columns:
            columns.append(
                Column(
                    name=col.name,
                    sql_type=self._resolve_type(col),
                    nullable=col.nullable and col.name not in stmt.primary_key,
                    identity=col.identity,
                    rowguidcol=col.rowguidcol,
                )
            )
        foreign_keys = [
            ForeignKey(tuple(fk.columns), fk.parent_table, tuple(fk.parent_columns))
            for fk in stmt.foreign_keys
        ]
        schema = TableSchema(
            name=stmt.name,
            columns=columns,
            primary_key=stmt.primary_key,
            foreign_keys=foreign_keys,
            compression=stmt.compression,
            filestream_group=stmt.filestream_group,
            storage=stmt.storage,
            segment_rows=stmt.segment_rows,
        )
        return self.catalog.create_table(schema)

    def create_table(self, schema: TableSchema) -> Table:
        """Programmatic CREATE TABLE."""
        return self.catalog.create_table(schema)

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # -- DML ---------------------------------------------------------------------------------

    def _full_rows(
        self,
        table: Table,
        columns: Sequence[str],
        value_rows: Iterable[Sequence[Any]],
    ):
        schema = table.schema
        if not columns:
            for row in value_rows:
                yield row
            return
        indexes = [schema.column_index(c) for c in columns]
        width = len(schema.columns)
        for row in value_rows:
            if len(row) != len(indexes):
                raise ConstraintViolation(
                    f"INSERT supplies {len(row)} values for {len(indexes)} columns"
                )
            full: List[Any] = [None] * width
            for index, value in zip(indexes, row):
                full[index] = value
            yield full

    def _execute_insert(self, stmt: ast.InsertStmt) -> int:
        table = self.catalog.table(stmt.table)
        if stmt.values is not None:

            def constants_only(ref: ColumnRef) -> int:
                raise BindError(
                    f"INSERT VALUES must be constant expressions, found {ref}"
                )

            compiler = ExpressionCompiler(constants_only, self.catalog.functions)
            value_rows = [
                [compiler.compile(expr)(()) for expr in row]
                for row in stmt.values
            ]
        else:
            op = self._planner.plan_select(stmt.select)
            value_rows = list(op)
        count = 0
        for full in self._full_rows(table, stmt.columns, value_rows):
            self._check_foreign_keys(table, full)
            table.insert(full)
            count += 1
        table.finish_bulk_load(force=False)
        return count

    def insert_row(self, table_name: str, row: Sequence[Any]):
        """Programmatic single-row insert with FK enforcement (the path
        SQL INSERT takes, minus parsing)."""
        table = self.catalog.table(table_name)
        self._check_foreign_keys(table, row)
        return table.insert(row)

    def _check_foreign_keys(self, table: Table, row: Sequence[Any]) -> None:
        if not self._enforce_foreign_keys:
            return
        schema = table.schema
        for fk in schema.foreign_keys:
            values = tuple(
                row[schema.column_index(c)] for c in fk.columns
            )
            if any(v is None for v in values):
                continue
            parent = self.catalog.table(fk.parent_table)
            if tuple(parent.schema.primary_key) == fk.parent_columns:
                if parent.get(values) is None:
                    raise ConstraintViolation(
                        f"FK violation: {schema.name}{fk.columns} -> "
                        f"{fk.parent_table}{fk.parent_columns} "
                        f"missing parent {values!r}"
                    )
            # FKs onto non-PK parent keys are not enforced (documented)

    def set_foreign_key_enforcement(self, enabled: bool) -> None:
        """Bulk loads may disable FK checks, as ``ALTER TABLE ... NOCHECK
        CONSTRAINT`` would."""
        self._enforce_foreign_keys = enabled

    def _execute_update(self, stmt: ast.UpdateStmt) -> int:
        table = self.catalog.table(stmt.table)
        from .executor import TableScan

        scan = TableScan(table)
        compiler = ExpressionCompiler(
            make_binder(scan), self.catalog.functions
        )
        assignments = [
            (table.schema.column_index(col), compiler.compile(expr))
            for col, expr in stmt.assignments
        ]
        if stmt.where is None:
            predicate = lambda row: True
        else:
            where_fn = compiler.compile(stmt.where)
            predicate = lambda row: where_fn(row) is True

        def updater(row):
            updated = list(row)
            for index, fn in assignments:
                updated[index] = fn(row)  # RHS sees the *old* row
            return updated

        count = table.update_where(predicate, updater)
        table.finish_bulk_load(force=False)
        return count

    def _execute_delete(self, stmt: ast.DeleteStmt) -> int:
        table = self.catalog.table(stmt.table)
        if stmt.where is None:
            return table.delete_where(lambda row: True)
        from .executor import TableScan

        scan = TableScan(table)
        compiler = ExpressionCompiler(
            make_binder(scan), self.catalog.functions
        )
        predicate = compiler.compile(stmt.where)
        return table.delete_where(lambda row: predicate(row) is True)

    # -- bulk import --------------------------------------------------------------------------

    def read_bulk_file(self, path: str) -> bytes:
        """Read a file for ``OPENROWSET(BULK ..., SINGLE_BLOB)``."""
        return Path(path).read_bytes()

    def bulk_insert_filestream(
        self,
        table_name: str,
        column_values: dict,
        filestream_column: str,
        source_path: os.PathLike | str,
    ) -> uuid.UUID:
        """Import a file straight into a FILESTREAM column without loading
        it into memory (the fast path behind the paper's bulk import)."""
        table = self.catalog.table(table_name)
        schema = table.schema
        guid = self.filestream.create_from_file(source_path)
        row: List[Any] = [None] * len(schema.columns)
        for name, value in column_values.items():
            row[schema.column_index(name)] = value
        row[schema.column_index(filestream_column)] = guid
        table.insert(row)
        return guid

    # -- administration --------------------------------------------------------------------------

    def analyze_table(self, name: str):
        """Collect optimizer statistics for one table (the implementation
        behind ``UPDATE STATISTICS`` / ``ANALYZE``)."""
        result = self.catalog.table(name).analyze()
        # new statistics can change every cached plan's cost basis
        self.stats_epoch += 1
        return result

    def _maybe_auto_update_statistics(self, table_name: str) -> None:
        """SQL Server's auto-stats loop: when a table's modification
        counter crosses the staleness threshold (500 + 20% of the rows
        the statistics were built over), refresh its statistics and
        bump the stats epoch so cached plans recompile against the new
        distribution."""
        try:
            table = self.catalog.table(table_name)
        except BindError:
            return
        if not getattr(table, "statistics_stale", lambda: False)():
            return
        modifications = table.modification_counter
        table.analyze()
        self.stats_epoch += 1
        self.messages.append(
            f"Auto UPDATE STATISTICS on {table.schema.name!r} "
            f"({modifications} modifications since last collection)."
        )

    def _harvest_selectivities(self, plan: Optional[PhysicalOperator]) -> None:
        """Feed actual filter selectivities back into the optimizer.

        Walks the last executed plan for Filter / FusedFilterProject
        operators sitting directly on a base-table access and records
        (rows in → rows out) of the *most recent* execution loop into
        the selectivity memory, which the cost model consults the next
        time it has no statistics for a matching predicate."""
        if plan is None:
            return
        from .executor.operators import Filter, FusedFilterProject

        for _path, op in plan.walk():
            if not isinstance(op, (Filter, FusedFilterProject)):
                continue
            label = getattr(op, "label", "")
            if not label:
                continue
            child = op.child
            table = getattr(child, "table", None)
            if table is None or getattr(table, "schema", None) is None:
                continue
            if not child.loop_rows or not op.loop_rows:
                continue
            rows_in = child.loop_rows[-1]
            rows_out = op.loop_rows[-1]
            self.selectivity_memory.observe(
                table.schema.name, label, rows_in, rows_out
            )

    def storage_report(self) -> List[dict]:
        """Per-table storage statistics (the raw material of Tables 1/2)."""
        report = []
        for table in self.catalog.tables():
            report.append(
                {
                    "table": table.schema.name,
                    "rows": table.row_count,
                    "compression": table.schema.compression,
                    "data_bytes": table.stored_bytes(),
                    "uncompressed_bytes": table.uncompressed_bytes(),
                    "filestream_bytes": table.filestream_bytes(),
                }
            )
        return report

    def checkdb(self) -> List[str]:
        """DBCC CHECKDB-style consistency pass over FILESTREAM storage."""
        return self.filestream.consistency_check()
