"""The system catalog: tables, extensions, and FILESTREAM filegroups."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from .errors import BindError
from .filestream import FileStreamStore
from .schema import TableSchema
from .table import Table
from .udf import FunctionLibrary


class Catalog:
    """Name → object resolution for one database.

    All lookups are case-insensitive (T-SQL identifier semantics);
    original casing is preserved for display.
    """

    def __init__(self, filestream_store: Optional[FileStreamStore] = None):
        self._tables: Dict[str, Table] = {}
        #: read-only virtual tables (system views); resolved by table()
        #: after real tables, never listed by tables()/table_names()
        self._views: Dict[str, object] = {}
        self.functions = FunctionLibrary()
        self.filestream_store = filestream_store
        #: monotone counter bumped by every DDL change (create/drop
        #: table, create index) — part of the plan cache's epoch, so
        #: cached plans never outlive the schema they compiled against
        self.schema_version = 0

    # -- tables -----------------------------------------------------------------------

    def bump_schema_version(self) -> None:
        self.schema_version += 1

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.lower()
        if key in self._tables:
            raise BindError(f"table {schema.name!r} already exists")
        table = Table(
            schema,
            filestream_store=self.filestream_store,
            udt_codec_lookup=self.functions.udt,
        )
        self._tables[key] = table
        self.bump_schema_version()
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise BindError(f"unknown table {name!r}")
        del self._tables[key]
        self.bump_schema_version()

    def table(self, name: str) -> Table:
        key = name.lower()
        try:
            return self._tables[key]
        except KeyError:
            pass
        try:
            return self._views[key]
        except KeyError:
            raise BindError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        key = name.lower()
        return key in self._tables or key in self._views

    # -- system views -----------------------------------------------------------------

    def register_view(self, name: str, view: object) -> None:
        """Register a read-only virtual table (DMV-style system view).

        A real table with the same name shadows the view, so user schemas
        never break when new system views appear."""
        self._views[name.lower()] = view

    def tables(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> list[str]:
        return [t.schema.name for t in self._tables.values()]
