"""Columnar segment store: the second access method.

Rows are accumulated into an open row-wise *tail*; every
``segment_rows`` inserts the tail is sealed into a :class:`RowSegment`
holding one encoded :class:`ColumnSegment` per column. Each column
segment carries:

- an **encoding** — ``dict`` (dictionary + per-row codes), ``rle``
  (run/length pairs), ``bitpack`` (minimal-width integer array), or
  ``plain`` — chosen at seal time by estimated encoded size;
- a **zone map** — min/max over the segment's non-NULL values, which
  lets scans skip whole segments whose range cannot satisfy a pushed
  predicate;
- a **null bitmap** and null count, so ``IS [NOT] NULL`` predicates
  prune on metadata alone.

Record ids are ``(segment_index, offset)``; the open tail addresses as
segment ``len(segments)``, which the seal it eventually gets preserves,
so B+tree indexes keep working across seals. Deletes are tombstones
(sealed segments are immutable), exactly like the heap's slot
tombstones — space is reclaimed only by a rebuild.

Predicate evaluation happens *on the encoded vectors*: a dictionary
segment evaluates the predicate once per distinct value and then tests
codes for membership; an RLE segment evaluates once per run and emits
whole runs; only then are the surviving positions of the *referenced*
columns materialised (late materialization).

IO counters live in a namespace disjoint from the heap's
(``segments_read`` / ``segments_skipped`` / ``segment_fetches`` /
``columns_read`` / ``segment_cache_misses`` vs ``pages_read`` /
``page_cache_misses``), so merging both engines' reports into
``sys_dm_io_stats`` never sums incomparable units; see
:mod:`repro.engine.storage.base`.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..metrics import Counters
from ..schema import COMPRESSION_NONE, TableSchema, TableStatistics
from ..types import SqlType
from .base import AccessMethod, Rid, STORAGE_COLUMN, register_access_method
from .serializer import RowSerializer

#: rows per sealed segment (SQL Server columnstore uses ~1M; the
#: simulator default keeps segments meaningful at benchmark scale).
#: Override per table with ``WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = n)``.
DEFAULT_SEGMENT_ROWS = 65536

#: per-column-segment metadata overhead charged by the byte accounting
#: (encoding tag, zone map, null count, offsets)
SEGMENT_HEADER_SIZE = 64

ENC_PLAIN = "plain"
ENC_DICT = "dict"
ENC_RLE = "rle"
ENC_BITPACK = "bitpack"


# ---------------------------------------------------------------------------
# pushed predicates
# ---------------------------------------------------------------------------


def _is_param(value: Any) -> bool:
    # duck-typed so storage never imports the expression layer: a plan
    # cache parameter slot carries ``is_parameter`` and a live ``value``
    return getattr(value, "is_parameter", False)


class PushedPredicate:
    """One conjunct the planner pushed into a column scan.

    ``op`` is one of ``= <> < <= > >= in between isnull notnull``;
    ``value`` is the literal (a frozenset for ``in``, a ``(lo, hi)``
    pair for ``between``, ``None`` for the null tests). Semantics match
    the compiled row predicate: comparisons against NULL never match.

    Any literal position may instead hold a plan-cache parameter slot
    (for ``in``, a tuple mixing slots and plain values); ``value`` then
    resolves the current slot contents on every read, so a cached plan
    template evaluates fresh parameters without being re-planned. Slots
    survive pickling to exchange workers — the worker's copy freezes the
    values that were current at ship time, which is exactly the
    execution being shipped.
    """

    __slots__ = ("col_index", "op", "_value", "_dynamic", "label")

    def __init__(self, col_index: int, op: str, value: Any, label: str = ""):
        self.col_index = col_index
        self.op = op
        self._value = value
        if op in ("in", "between"):
            self._dynamic = any(_is_param(v) for v in value)
        else:
            self._dynamic = _is_param(value)
        self.label = label

    @property
    def value(self) -> Any:
        if not self._dynamic:
            return self._value
        if self.op == "in":
            return frozenset(
                v.value if _is_param(v) else v for v in self._value
            )
        if self.op == "between":
            lo, hi = self._value
            return (
                lo.value if _is_param(lo) else lo,
                hi.value if _is_param(hi) else hi,
            )
        return self._value.value

    @value.setter
    def value(self, new_value: Any) -> None:
        self._value = new_value
        if self.op in ("in", "between"):
            try:
                self._dynamic = any(_is_param(v) for v in new_value)
            except TypeError:
                self._dynamic = False
        else:
            self._dynamic = _is_param(new_value)

    def matcher(self) -> Callable[[Any], bool]:
        op, arg = self.op, self.value
        if op == "=":
            return lambda v: v is not None and v == arg
        if op == "<>":
            return lambda v: v is not None and v != arg
        if op == "<":
            return lambda v: v is not None and v < arg
        if op == "<=":
            return lambda v: v is not None and v <= arg
        if op == ">":
            return lambda v: v is not None and v > arg
        if op == ">=":
            return lambda v: v is not None and v >= arg
        if op == "in":
            return lambda v: v is not None and v in arg
        if op == "between":
            lo, hi = arg
            return lambda v: v is not None and lo <= v <= hi
        if op == "isnull":
            return lambda v: v is None
        if op == "notnull":
            return lambda v: v is not None
        raise StorageError(f"unknown pushed predicate op {op!r}")


# ---------------------------------------------------------------------------
# column segments
# ---------------------------------------------------------------------------


def _value_bytes(value: Any, sql_type: Optional[SqlType]) -> int:
    """Approximate stored width of one value, for encoding selection."""
    if value is None:
        return 0
    if sql_type is not None and sql_type.fixed_width is not None:
        return sql_type.fixed_width
    if isinstance(value, (str, bytes, bytearray)):
        return len(value) + 1
    return 8


def _int_typecode(lo: int, hi: int) -> Optional[str]:
    """Smallest array typecode holding [lo, hi], or None when > 64 bit."""
    for code, bits in (("b", 7), ("h", 15), ("l", 31), ("q", 63)):
        if -(1 << bits) <= lo and hi < (1 << bits):
            return code
    return None


def _same_value(a: Any, b: Any) -> bool:
    """Equality strict enough for lossless encoding: runs and dictionary
    entries may only collapse values whose round-trip is byte-identical.
    Plain ``==`` would merge ``0.0`` with ``-0.0`` (and a hypothetical
    mixed-type ``1``/``1.0``), silently rewriting stored values."""
    if a is b:
        return True
    if a is None or b is None or type(a) is not type(b) or a != b:
        return False
    if isinstance(a, float) and a == 0.0:
        return str(a) == str(b)  # separates -0.0 from 0.0
    return True


def _dict_key(value: Any) -> Any:
    """Hash key under which values may share a dictionary entry."""
    if isinstance(value, float) and value == 0.0:
        return (float, str(value))
    return value


def _null_bitmap(values: Sequence[Any]) -> Optional[bytes]:
    """Little-endian bitmap with bit i set when values[i] IS NULL."""
    bitmap = bytearray((len(values) + 7) // 8)
    any_null = False
    for i, v in enumerate(values):
        if v is None:
            bitmap[i >> 3] |= 1 << (i & 7)
            any_null = True
    return bytes(bitmap) if any_null else None


class ColumnSegment:
    """One column's encoded vector for one row segment."""

    __slots__ = (
        "encoding",
        "payload",
        "rows",
        "null_count",
        "nulls",
        "min_value",
        "max_value",
        "has_zone",
        "encoded_bytes",
        "ndv",
    )

    def __init__(self, values: Sequence[Any], sql_type: Optional[SqlType]):
        n = len(values)
        self.rows = n
        self.nulls = _null_bitmap(values)
        self.null_count = sum(1 for v in values if v is None)
        non_null = [v for v in values if v is not None]
        try:
            self.min_value = min(non_null) if non_null else None
            self.max_value = max(non_null) if non_null else None
            self.has_zone = bool(non_null)
        except TypeError:
            # mixed / unorderable values (UDTs): no zone map
            self.min_value = self.max_value = None
            self.has_zone = False
        self.encoding, self.payload, self.encoded_bytes = self._encode(
            values, sql_type
        )

    # -- encoding selection -----------------------------------------------------

    def _encode(self, values: Sequence[Any], sql_type):
        n = len(values)
        if n == 0:
            self.ndv = 0
            return ENC_PLAIN, tuple(), SEGMENT_HEADER_SIZE
        plain_bytes = sum(_value_bytes(v, sql_type) for v in values)
        null_overhead = (n + 7) // 8 if self.nulls is not None else 0
        candidates = [(plain_bytes + null_overhead, 0, ENC_PLAIN)]

        runs: List[Tuple[Any, int]] = []
        last = values[0]
        count = 1
        for v in values[1:]:
            if _same_value(v, last):
                count += 1
            else:
                runs.append((last, count))
                last, count = v, 1
        runs.append((last, count))
        rle_bytes = sum(
            _value_bytes(v, sql_type) + 2 for v, _cnt in runs
        )
        candidates.append((rle_bytes, 1, ENC_RLE))

        distinct: Optional[Dict[Any, int]] = {}
        dictionary_values: List[Any] = []
        try:
            for v in values:
                key = _dict_key(v)
                if key not in distinct:
                    distinct[key] = len(dictionary_values)
                    dictionary_values.append(v)
        except TypeError:  # unhashable values: dictionary impossible
            distinct = None
        # distinct-count hint, free at seal time; harvested by the
        # optimizer's zero-scan statistics (non-NULL values only)
        if distinct is None:
            self.ndv = None
        else:
            self.ndv = len(distinct) - (
                1 if self.null_count and None in distinct else 0
            )
        if distinct is not None and len(distinct) < n:
            ndv = len(distinct)
            code_width = 1 if ndv <= 256 else (2 if ndv <= 65536 else 4)
            dict_bytes = (
                sum(_value_bytes(v, sql_type) for v in dictionary_values)
                + n * code_width
            )
            candidates.append((dict_bytes, 2, ENC_DICT))

        pack_code = None
        if (
            self.null_count == 0
            and sql_type is not None
            and sql_type.is_integer
            and self.has_zone
        ):
            pack_code = _int_typecode(self.min_value, self.max_value)
            if pack_code is not None:
                candidates.append(
                    (n * array(pack_code).itemsize, 3, ENC_BITPACK)
                )

        best_bytes, _tie, encoding = min(candidates)
        if encoding == ENC_RLE:
            payload: Any = runs
        elif encoding == ENC_DICT:
            dictionary = tuple(dictionary_values)
            code_tc = "H" if len(dictionary) <= 65536 else "L"
            codes = array(code_tc, (distinct[_dict_key(v)] for v in values))
            payload = (dictionary, codes)
        elif encoding == ENC_BITPACK:
            payload = array(pack_code, values)
        else:
            payload = tuple(values)
        return encoding, payload, best_bytes + SEGMENT_HEADER_SIZE

    # -- decode -------------------------------------------------------------------

    def decode(self) -> List[Any]:
        """Materialise the full value vector (row order)."""
        if self.encoding == ENC_PLAIN:
            return list(self.payload)
        if self.encoding == ENC_DICT:
            dictionary, codes = self.payload
            return [dictionary[c] for c in codes]
        if self.encoding == ENC_RLE:
            out: List[Any] = []
            for value, count in self.payload:
                out.extend([value] * count)
            return out
        return list(self.payload)  # bitpack

    # -- zone map ------------------------------------------------------------------

    def zone_admits(self, pred: PushedPredicate) -> bool:
        """May any row of this segment satisfy ``pred``? (metadata only)"""
        op = pred.op
        if op == "isnull":
            return self.null_count > 0
        if op == "notnull":
            return self.null_count < self.rows
        if self.null_count == self.rows:
            return False  # all NULL: no comparison can match
        if not self.has_zone:
            return True  # no zone map: stay conservative
        lo, hi = self.min_value, self.max_value
        value = pred.value
        try:
            if op == "=":
                return lo <= value <= hi
            if op == "<>":
                return not (lo == hi == value)
            if op == "<":
                return lo < value
            if op == "<=":
                return lo <= value
            if op == ">":
                return hi > value
            if op == ">=":
                return hi >= value
            if op == "in":
                return any(lo <= v <= hi for v in value)
            if op == "between":
                between_lo, between_hi = value
                return not (between_hi < lo or between_lo > hi)
        except TypeError:
            return True  # literal/zone types don't compare: no pruning
        return True

    # -- encoded selection ------------------------------------------------------------

    def select(self, pred: PushedPredicate) -> Optional[List[int]]:
        """Positions matching ``pred``, in row order; None = all match.

        Dictionary segments evaluate the predicate once per distinct
        value; RLE segments once per run (whole runs are kept or
        dropped); plain/bitpack segments test each value."""
        match = pred.matcher()
        if self.encoding == ENC_DICT:
            dictionary, codes = self.payload
            matching = {
                code for code, v in enumerate(dictionary) if match(v)
            }
            if len(matching) == len(dictionary):
                return None
            if not matching:
                return []
            return [i for i, c in enumerate(codes) if c in matching]
        if self.encoding == ENC_RLE:
            positions: List[int] = []
            offset = 0
            all_match = True
            for value, count in self.payload:
                if match(value):
                    positions.extend(range(offset, offset + count))
                else:
                    all_match = False
                offset += count
            return None if all_match else positions
        values = self.decode()
        positions = [i for i, v in enumerate(values) if match(v)]
        return None if len(positions) == self.rows else positions


class RowSegment:
    """A sealed group of rows: one :class:`ColumnSegment` per column."""

    __slots__ = ("columns", "rows", "deleted", "_cache")

    def __init__(self, columns: Sequence[ColumnSegment], rows: int):
        self.columns = tuple(columns)
        self.rows = rows
        self.deleted: set = set()
        #: warm-buffer-pool analogue: decoded vectors per column index
        self._cache: Dict[int, List[Any]] = {}

    @property
    def live_rows(self) -> int:
        return self.rows - len(self.deleted)

    def values(self, col_index: int, io: Optional[Counters] = None) -> List[Any]:
        """Decoded vector for one column, through the decode cache."""
        cached = self._cache.get(col_index)
        if cached is None:
            if io is not None:
                io.incr("segment_cache_misses")
            cached = self.columns[col_index].decode()
            self._cache[col_index] = cached
        if io is not None:
            io.incr("columns_read")
        return cached

    def gather(
        self,
        col_index: int,
        positions: Optional[Sequence[int]],
        io: Optional[Counters] = None,
    ) -> List[Any]:
        """Late materialization: only the surviving positions."""
        values = self.values(col_index, io)
        if positions is None:
            return values
        return [values[p] for p in positions]

    def live_positions(self) -> Optional[List[int]]:
        """None when no tombstones, else the surviving positions."""
        if not self.deleted:
            return None
        deleted = self.deleted
        return [i for i in range(self.rows) if i not in deleted]

    def selection(
        self,
        predicates: Sequence[PushedPredicate],
        io: Optional[Counters] = None,
    ) -> Optional[List[int]]:
        """Surviving positions under tombstones + all predicates;
        None = every row survives. The first predicate runs on the
        encoded vector; later ones test only prior survivors."""
        sel = self.live_positions()
        for pred in predicates:
            column = self.columns[pred.col_index]
            if sel is None:
                sel = column.select(pred)
            else:
                match = pred.matcher()
                values = self.gather(pred.col_index, sel, io)
                sel = [p for p, v in zip(sel, values) if match(v)]
            if sel is not None and not sel:
                return []
        return sel


# ---------------------------------------------------------------------------
# the access method
# ---------------------------------------------------------------------------


class ColumnStore(AccessMethod):
    """Columnar segment storage for one table."""

    engine_name = STORAGE_COLUMN

    def __init__(
        self,
        schema: TableSchema,
        compression: str = COMPRESSION_NONE,
        udt_codec_lookup=None,
        segment_rows: Optional[int] = None,
    ):
        self.schema = schema
        # DATA_COMPRESSION is a row-format knob; column encodings are
        # intrinsic, so the setting is accepted and ignored
        self.compression = compression
        self.serializer = RowSerializer(
            schema, row_compression=False, udt_codec_lookup=udt_codec_lookup
        )
        self.segment_rows = int(
            segment_rows
            or getattr(schema, "segment_rows", None)
            or DEFAULT_SEGMENT_ROWS
        )
        if self.segment_rows < 2:
            raise StorageError("SEGMENT_ROWS must be at least 2")
        self.segments: List[RowSegment] = []
        self.tail: List[Tuple[Any, ...]] = []
        self.tail_deleted: set = set()
        self._tail_bytes = 0
        self.stats = TableStatistics()
        self.io = Counters()

    # -- write path ----------------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> Rid:
        row = tuple(row)
        size = len(self.serializer.serialize(row))
        rid = (len(self.segments), len(self.tail))
        self.tail.append(row)
        self._bump_data_version()
        self._tail_bytes += size
        self.stats.on_insert(size, size)
        self.io.incr("rows_inserted")
        self.io.incr("bytes_written", size)
        self.io.incr("bytes_uncompressed", size)
        if len(self.tail) >= self.segment_rows:
            self._seal_tail()
        return rid

    def _seal_tail(self) -> None:
        if not self.tail:
            return
        schema_columns = self.schema.columns
        columns = [
            ColumnSegment(
                [row[i] for row in self.tail], schema_columns[i].sql_type
            )
            for i in range(len(schema_columns))
        ]
        segment = RowSegment(columns, len(self.tail))
        segment.deleted = self.tail_deleted
        self.segments.append(segment)
        encoded = sum(c.encoded_bytes for c in columns)
        # re-state the sealed rows at their encoded size
        self.stats.data_bytes += encoded - self._tail_bytes
        self.stats.page_count += 1
        self.io.incr("segments_written")
        # namespaced distinctly from the heap's PAGE-compression
        # ``compression_bytes_*`` so mixed-engine databases stay summable
        # per counter in ``sys_dm_io_stats`` (one ratio per engine)
        self.io.incr("segment_bytes_in", self._tail_bytes)
        self.io.incr("segment_bytes_out", encoded)
        self.tail = []
        self.tail_deleted = set()
        self._tail_bytes = 0

    def seal_all(self, force: bool = True) -> None:
        """Seal the open tail.

        With ``force`` (the end of an explicit bulk load) any non-empty
        tail is encoded, so zone maps and encodings cover every row.
        Without it the tail acts as a delta store: per-statement
        finalisation after row-at-a-time ``INSERT``s leaves it row-wise
        until it accumulates a full segment's worth of rows —
        ``insert()`` already seals on that boundary — instead of
        degenerating into one-row segments per statement. The tail is
        always scanned, so deferring the seal never loses rows.
        """
        if force or len(self.tail) >= self.segment_rows:
            self._seal_tail()

    def delete(self, rid: Rid) -> Tuple[Any, ...]:
        row = self.fetch(rid)
        segment_index, offset = rid
        if segment_index == len(self.segments):
            self.tail_deleted.add(offset)
        else:
            self.segments[segment_index].deleted.add(offset)
        self._bump_data_version()
        # tombstones do not reclaim encoded space (only a rebuild would),
        # so only the row count and uncompressed accounting move
        size = len(self.serializer.serialize(row))
        self.stats.on_delete(0, size)
        return row

    # -- read path -----------------------------------------------------------------

    def fetch(self, rid: Rid) -> Tuple[Any, ...]:
        segment_index, offset = rid
        if segment_index == len(self.segments):
            if offset < 0 or offset >= len(self.tail):
                raise StorageError(f"bad tail offset {offset}")
            if offset in self.tail_deleted:
                raise StorageError(f"tail row {offset} is deleted")
            return self.tail[offset]
        if segment_index < 0 or segment_index > len(self.segments):
            raise StorageError(f"bad segment number {segment_index}")
        segment = self.segments[segment_index]
        if offset < 0 or offset >= segment.rows:
            raise StorageError(
                f"bad offset {offset} in segment {segment_index}"
            )
        if offset in segment.deleted:
            raise StorageError(
                f"row {offset} in segment {segment_index} is deleted"
            )
        self.io.incr("segment_fetches")
        return tuple(
            segment.values(i)[offset] for i in range(len(segment.columns))
        )

    def _segment_rows_out(self, segment: RowSegment) -> List[Tuple[Any, ...]]:
        io = self.io
        io.incr("segments_read")
        vectors = [
            segment.values(i, io) for i in range(len(segment.columns))
        ]
        rows = list(zip(*vectors))
        if segment.deleted:
            deleted = segment.deleted
            return [r for i, r in enumerate(rows) if i not in deleted]
        return rows

    def tail_rows(self) -> List[Tuple[Any, ...]]:
        """Live rows of the open tail, in insertion order."""
        if not self.tail_deleted:
            return list(self.tail)
        deleted = self.tail_deleted
        return [r for i, r in enumerate(self.tail) if i not in deleted]

    def partition_payloads(self, parts: int):
        """Segment-range partitions for worker-process scans.

        Sealed segments ship still-encoded (the worker runs zone-map
        pruning, encoded selection, and late materialization on its own
        range); the delta-store tail rides with the last partition so
        concatenating partitions in order reproduces ``scan()``'s row
        order. Decode caches never ship — transport pays for encoded
        bytes only."""
        segments = self.segments
        tail = self.tail_rows()
        live = [segment.live_rows for segment in segments]
        total = sum(live) + len(tail)
        if total == 0:
            return []
        units = len(segments) + (1 if tail else 0)
        parts = max(min(parts, units), 1)
        io = self.io
        io.incr("scans")
        cookie = self.data_cookie()
        payloads = []
        index = 0
        remaining = total
        for slices_left in range(parts, 0, -1):
            goal = remaining / slices_left
            shipped = []
            count = 0
            while index < len(segments) and (count < goal or not shipped):
                segment = segments[index]
                shipped.append(
                    (
                        segment.columns,
                        segment.rows,
                        tuple(segment.deleted),
                    )
                )
                count += live[index]
                io.incr("segments_shipped")
                index += 1
            payload = {
                "segments": shipped,
                "rows": count,
                "cache_key": cookie + (parts, len(payloads)),
            }
            if slices_left == 1 and tail:
                payload["tail"] = tail
                payload["rows"] += len(tail)
                count += len(tail)
            remaining -= count
            if payload["segments"] or payload.get("tail"):
                payloads.append(payload)
            if index >= len(segments) and not (slices_left > 1 and tail):
                break
        return payloads

    def scan(self) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        self.io.incr("scans")
        for segment_index, segment in enumerate(self.segments):
            self.io.incr("segments_read")
            vectors = [
                segment.values(i, self.io)
                for i in range(len(segment.columns))
            ]
            deleted = segment.deleted
            for offset, row in enumerate(zip(*vectors)):
                if offset not in deleted:
                    yield (segment_index, offset), row
        tail_index = len(self.segments)
        for offset, row in enumerate(self.tail):
            if offset not in self.tail_deleted:
                yield (tail_index, offset), row

    def scan_batches(self) -> Iterator[list]:
        """One batch of live rows per sealed segment, then the tail."""
        self.io.incr("scans")
        for segment in self.segments:
            batch = self._segment_rows_out(segment)
            if batch:
                self.io.incr("batch_reads")
                yield batch
        tail = self.tail_rows()
        if tail:
            self.io.incr("batch_reads")
            yield tail

    # -- metadata ---------------------------------------------------------------------

    def prune_estimate(
        self, predicates: Sequence[PushedPredicate]
    ) -> Tuple[int, int]:
        """(segments read, segments skipped) under the zone maps —
        metadata only, used by the cost model; counts the open tail as
        one always-read segment when non-empty."""
        read = skipped = 0
        for segment in self.segments:
            if all(
                segment.columns[p.col_index].zone_admits(p)
                for p in predicates
            ):
                read += 1
            else:
                skipped += 1
        if self.tail:
            read += 1
        return read, skipped

    def segment_report(self) -> List[dict]:
        report = []
        column_names = self.schema.column_names
        for segment_index, segment in enumerate(self.segments):
            for col_index, column in enumerate(segment.columns):
                report.append(
                    {
                        "column_name": column_names[col_index],
                        "segment_id": segment_index,
                        "encoding": column.encoding,
                        "rows": segment.live_rows,
                        "null_count": column.null_count,
                        "n_distinct": column.ndv,
                        "min_value": column.min_value,
                        "max_value": column.max_value,
                        "encoded_bytes": column.encoded_bytes,
                    }
                )
        return report

    def encoding_summary(self) -> Dict[str, str]:
        """column name -> most frequent encoding over sealed segments."""
        tallies: Dict[str, Dict[str, int]] = {}
        for name in self.schema.column_names:
            tallies[name] = {}
        for segment in self.segments:
            for name, column in zip(self.schema.column_names, segment.columns):
                tally = tallies[name]
                tally[column.encoding] = tally.get(column.encoding, 0) + 1
        return {
            name: max(tally, key=tally.get)
            for name, tally in tallies.items()
            if tally
        }

    # -- accounting ---------------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.stats.row_count

    def stored_bytes(self, include_page_overhead: bool = True) -> int:
        total = self.stats.data_bytes
        if not include_page_overhead:
            total -= SEGMENT_HEADER_SIZE * sum(
                len(s.columns) for s in self.segments
            )
        return total

    def uncompressed_bytes(self) -> int:
        return self.stats.uncompressed_bytes


def _make_columnstore(schema: TableSchema, udt_codec_lookup=None) -> ColumnStore:
    return ColumnStore(
        schema,
        compression=schema.compression,
        udt_codec_lookup=udt_codec_lookup,
        segment_rows=getattr(schema, "segment_rows", None),
    )


register_access_method(STORAGE_COLUMN, _make_columnstore)
