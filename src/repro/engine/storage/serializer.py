"""Row (de)serialisation.

Two on-page record formats are implemented, mirroring SQL Server 2008:

**Uncompressed** — a null bitmap followed by the fixed-width encoding of
every non-NULL column. Fixed-width kinds (INT, FLOAT, GUID, CHAR(n), ...)
occupy their declared width; variable kinds (VARCHAR, VARBINARY, UDT)
are stored with a 4-byte length prefix.

**ROW-compressed** — a null bitmap followed by a varint-length-prefixed
*minimal* encoding of every non-NULL column: integers are stored in the
fewest bytes that hold their value, CHAR loses trailing pad spaces, and
variable kinds lose the fixed 4-byte prefix in favour of a varint. This is
the "variable-length storage format for numeric types and fixed-length
character strings" the paper cites from [11].

PAGE compression builds on the ROW format and lives in
:mod:`repro.engine.storage.compression`.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..errors import StorageError
from ..schema import TableSchema
from ..types import SqlType, UdtCodec

# ---------------------------------------------------------------------------
# varint helpers (unsigned LEB128)
# ---------------------------------------------------------------------------


def write_varint(value: int, out: bytearray) -> None:
    """Append an unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise StorageError(f"varint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(buf: bytes, pos: int) -> Tuple[int, int]:
    """Read an unsigned LEB128 varint; returns ``(value, new_pos)``."""
    result = 0
    shift = 0
    while True:
        byte = buf[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_varint(value: int) -> bytes:
    out = bytearray()
    write_varint(value, out)
    return bytes(out)


# ---------------------------------------------------------------------------
# minimal integer encoding (ROW compression of exact numerics)
# ---------------------------------------------------------------------------


def pack_int_minimal(value: int) -> bytes:
    """Encode a signed integer in the fewest little-endian bytes."""
    if value == 0:
        return b""
    length = (value.bit_length() + 8) // 8  # +1 sign bit, rounded up
    return value.to_bytes(length, "little", signed=True)


def unpack_int_minimal(raw: bytes) -> int:
    if not raw:
        return 0
    return int.from_bytes(raw, "little", signed=True)


# ---------------------------------------------------------------------------
# RowSerializer
# ---------------------------------------------------------------------------


class RowSerializer:
    """Serialises rows of one table schema into record bytes.

    Parameters
    ----------
    schema:
        The table schema (column order defines field order).
    row_compression:
        Use the ROW-compressed record format.
    udt_codec_lookup:
        Callable resolving a UDT name to its :class:`UdtCodec`; required
        only when the schema contains UDT columns.
    """

    def __init__(
        self,
        schema: TableSchema,
        row_compression: bool = False,
        udt_codec_lookup: Optional[Callable[[str], UdtCodec]] = None,
    ):
        self.schema = schema
        self.row_compression = row_compression
        self._ncols = len(schema.columns)
        self._bitmap_len = (self._ncols + 7) // 8
        self._types: List[SqlType] = [c.sql_type for c in schema.columns]
        self._codecs: List[Optional[UdtCodec]] = []
        for sql_type in self._types:
            if sql_type.kind == "UDT":
                if udt_codec_lookup is None:
                    raise StorageError(
                        f"schema {schema.name!r} has UDT column but no codec lookup"
                    )
                self._codecs.append(udt_codec_lookup(sql_type.udt_name))
            else:
                self._codecs.append(None)

    # -- encode ---------------------------------------------------------------

    def serialize(self, row: Sequence[Any]) -> bytes:
        if self.row_compression:
            return self._serialize_compressed(row)
        return self._serialize_plain(row)

    def _null_bitmap(self, row: Sequence[Any]) -> bytearray:
        bitmap = bytearray(self._bitmap_len)
        for i, value in enumerate(row):
            if value is None:
                bitmap[i >> 3] |= 1 << (i & 7)
        return bitmap

    def _serialize_plain(self, row: Sequence[Any]) -> bytes:
        out = bytearray(self._null_bitmap(row))
        for i, value in enumerate(row):
            if value is None:
                continue
            sql_type = self._types[i]
            raw = sql_type.encode(value, self._codecs[i])
            if sql_type.fixed_width is not None:
                if len(raw) != sql_type.fixed_width:
                    # CHAR(n) already padded by validate(); defensive check
                    raw = raw.ljust(sql_type.fixed_width)[: sql_type.fixed_width]
                out += raw
            else:
                out += struct.pack("<I", len(raw))
                out += raw
        return bytes(out)

    def _serialize_compressed(self, row: Sequence[Any]) -> bytes:
        out = bytearray(self._null_bitmap(row))
        for i, value in enumerate(row):
            if value is None:
                continue
            raw = self.encode_field_compressed(i, value)
            write_varint(len(raw), out)
            out += raw
        return bytes(out)

    def encode_field_compressed(self, col_index: int, value: Any) -> bytes:
        """ROW-compressed bytes of one non-NULL column value."""
        sql_type = self._types[col_index]
        if sql_type.is_integer:
            return pack_int_minimal(int(value))
        if sql_type.kind == "CHAR":
            return value.rstrip(" ").encode("utf-8")
        return sql_type.encode(value, self._codecs[col_index])

    def decode_field_compressed(self, col_index: int, raw: bytes) -> Any:
        """Inverse of :meth:`encode_field_compressed`."""
        sql_type = self._types[col_index]
        if sql_type.is_integer:
            return unpack_int_minimal(raw)
        if sql_type.kind == "CHAR":
            text = raw.decode("utf-8")
            if sql_type.length not in (0, -1):
                text = text.ljust(sql_type.length)
            return text
        return sql_type.decode(raw, self._codecs[col_index])

    # -- decode ---------------------------------------------------------------

    def deserialize(self, record: bytes) -> Tuple[Any, ...]:
        if self.row_compression:
            return self._deserialize_compressed(record)
        return self._deserialize_plain(record)

    def _nulls(self, record: bytes) -> List[bool]:
        return [
            bool(record[i >> 3] & (1 << (i & 7))) for i in range(self._ncols)
        ]

    def _deserialize_plain(self, record: bytes) -> Tuple[Any, ...]:
        nulls = self._nulls(record)
        pos = self._bitmap_len
        values: List[Any] = []
        for i in range(self._ncols):
            if nulls[i]:
                values.append(None)
                continue
            sql_type = self._types[i]
            width = sql_type.fixed_width
            if width is not None:
                raw = record[pos : pos + width]
                pos += width
            else:
                (length,) = struct.unpack_from("<I", record, pos)
                pos += 4
                raw = record[pos : pos + length]
                pos += length
            values.append(sql_type.decode(raw, self._codecs[i]))
        return tuple(values)

    def _deserialize_compressed(self, record: bytes) -> Tuple[Any, ...]:
        nulls = self._nulls(record)
        pos = self._bitmap_len
        values: List[Any] = []
        for i in range(self._ncols):
            if nulls[i]:
                values.append(None)
                continue
            length, pos = read_varint(record, pos)
            raw = record[pos : pos + length]
            pos += length
            values.append(self.decode_field_compressed(i, raw))
        return tuple(values)

    # -- field split (used by page compression) --------------------------------

    def split_compressed(self, record: bytes) -> Tuple[List[bool], List[bytes]]:
        """Split a ROW-compressed record into its null flags and the raw
        per-column field bytes (empty bytes for NULL columns)."""
        nulls = self._nulls(record)
        pos = self._bitmap_len
        fields: List[bytes] = []
        for i in range(self._ncols):
            if nulls[i]:
                fields.append(b"")
                continue
            length, pos = read_varint(record, pos)
            fields.append(record[pos : pos + length])
            pos += length
        return nulls, fields

    def join_compressed(self, nulls: Sequence[bool], fields: Sequence[bytes]) -> bytes:
        """Inverse of :meth:`split_compressed`."""
        out = bytearray(self._bitmap_len)
        for i, is_null in enumerate(nulls):
            if is_null:
                out[i >> 3] |= 1 << (i & 7)
        for i, field in enumerate(fields):
            if nulls[i]:
                continue
            write_varint(len(field), out)
            out += field
        return bytes(out)

    def uncompressed_size(self, row: Sequence[Any]) -> int:
        """Byte size the row would occupy in the uncompressed format."""
        return len(self._serialize_plain(row))
