"""The pluggable access-method layer.

A table's rows live behind an :class:`AccessMethod`: the contract the
:class:`~repro.engine.table.Table` facade, the executor's scans, and the
observability layer (SET STATISTICS IO, ``sys_dm_io_stats``) program
against. Two implementations ship:

- ``heap`` — :class:`~repro.engine.storage.heap.HeapFile`, slotted
  pages in insertion order (the default, and the paper's row store);
- ``column`` — :class:`~repro.engine.storage.columnstore.ColumnStore`,
  per-column encoded segments with zone maps.

Records are addressed by a ``rid`` — an opaque ``(major, minor)`` pair
whose meaning belongs to the access method (page/slot for the heap,
segment/offset for the column store). Indexes store rids and hand them
back to :meth:`AccessMethod.fetch` without interpreting them, which is
what lets a B+tree index sit on either engine unchanged.

Counter namespaces are part of the contract: each access method reports
its IO under counter names that do not collide with the other engines'
(``pages_read`` vs ``segments_read``), so a database mixing storage
engines can merge every table's :meth:`io_report` into one
``sys_dm_io_stats`` view without cross-engine sums becoming meaningless.
Only counters with shared semantics (``rows_inserted``, ``scans``,
``batch_reads``, ``bytes_written``, ``bytes_uncompressed``) are shared.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, Iterator, List, Sequence, Tuple

from ..errors import BindError
from ..metrics import Counters
from ..schema import TableSchema

Rid = Tuple[int, int]

#: schema.storage values
STORAGE_HEAP = "heap"
STORAGE_COLUMN = "column"

#: never-reused store identities for data_cookie()
_STORE_GENERATION = itertools.count(1)


class AccessMethod:
    """Base class / protocol for table storage engines."""

    #: short engine tag printed by EXPLAIN scan nodes and the storage
    #: report ("heap" / "column")
    engine_name: str = "?"

    schema: TableSchema
    #: always-on IO counters (SET STATISTICS IO / sys_dm_io_stats);
    #: counter names must follow the namespace contract above
    io: Counters

    # -- write path ----------------------------------------------------------

    def insert(self, row: Sequence[Any]) -> Rid:
        raise NotImplementedError

    def delete(self, rid: Rid) -> Tuple[Any, ...]:
        raise NotImplementedError

    def seal_all(self, force: bool = True) -> None:
        """Finish a bulk load: seal open pages / encode the open segment.

        ``force=False`` marks a per-statement boundary rather than an
        explicit bulk-load end; engines with expensive seals (the column
        store) may keep a small tail open as a delta store."""
        raise NotImplementedError

    # -- read path -----------------------------------------------------------

    def fetch(self, rid: Rid) -> Tuple[Any, ...]:
        raise NotImplementedError

    def scan(self) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        raise NotImplementedError

    def scan_batches(self) -> Iterator[list]:
        raise NotImplementedError

    def partition_payloads(self, parts: int):
        """Split the stored data into up to ``parts`` contiguous,
        disjoint, *picklable* slices for worker-process scans (the real
        parallel exchange). Heap files split by page range, column
        stores by segment range — so each worker reads rows no other
        worker touches, in physical order.

        Returns a list of payload dicts (``rows`` estimates the live
        rows per slice, for LPT scheduling), an empty list when nothing
        is stored, or None when the engine cannot ship slices and the
        exchange must fall back to coordinator execution."""
        return None

    def data_cookie(self) -> Tuple[int, int]:
        """``(identity, version)`` for the store's current row contents.

        The identity is process-unique and never reused; the version
        moves on every row mutation (engines call
        :meth:`_bump_data_version` from their write paths). Worker
        processes key their decoded-slice caches — the worker-side
        analogue of a warm buffer pool — on this cookie plus the
        partition coordinates, so a stale entry can never be served."""
        gen = self.__dict__.get("_store_generation")
        if gen is None:
            gen = self.__dict__["_store_generation"] = next(_STORE_GENERATION)
        return (gen, self.__dict__.get("_data_version", 0))

    def _bump_data_version(self) -> None:
        self.__dict__["_data_version"] = (
            self.__dict__.get("_data_version", 0) + 1
        )

    # -- accounting / stats hooks ---------------------------------------------

    @property
    def row_count(self) -> int:
        raise NotImplementedError

    def stored_bytes(self, include_page_overhead: bool = True) -> int:
        raise NotImplementedError

    def uncompressed_bytes(self) -> int:
        raise NotImplementedError

    def io_report(self) -> Counters:
        """Engine counters, already in this engine's namespace."""
        return self.io.snapshot()

    def segment_report(self) -> List[dict]:
        """Per-segment metadata rows for ``sys_dm_db_segment_stats``
        and the optimizer's statistics harvest. Row stores have none."""
        return []

    def encoding_summary(self) -> Dict[str, str]:
        """column name -> dominant encoding, for the storage report."""
        return {}


#: registry: schema.storage value -> AccessMethod factory
_ACCESS_METHODS: Dict[str, Callable[..., AccessMethod]] = {}


def register_access_method(
    name: str, factory: Callable[..., AccessMethod]
) -> None:
    _ACCESS_METHODS[name.lower()] = factory


def create_access_method(
    schema: TableSchema, udt_codec_lookup=None
) -> AccessMethod:
    """Instantiate the access method a schema asks for (default heap)."""
    name = getattr(schema, "storage", STORAGE_HEAP) or STORAGE_HEAP
    try:
        factory = _ACCESS_METHODS[name.lower()]
    except KeyError:
        raise BindError(
            f"unknown storage engine {name!r} for table {schema.name!r}"
        ) from None
    return factory(schema, udt_codec_lookup=udt_codec_lookup)
