"""Slotted data pages.

Pages are the unit of storage and of PAGE compression. A page holds a
bounded number of record payloads plus a slot directory; the byte
accounting mirrors the SQL Server 8 KiB page layout (96-byte header,
2-byte slot entry per record) so that the storage-efficiency experiments
measure realistic sizes. Records live in a Python list for fast access —
the *sizes* are what the layout dictates, the *bytes* are the real encoded
records.

A page is *open* while the heap file appends to it and *sealed* once full.
PAGE compression is applied at seal time (SQL Server likewise compresses a
page when it fills), via :class:`PageCompressor`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import StorageError
from .compression import PageCompressor
from .serializer import RowSerializer

PAGE_SIZE = 8192
PAGE_HEADER_SIZE = 96
SLOT_ENTRY_SIZE = 2


class Page:
    """One slotted page of records."""

    __slots__ = (
        "page_id",
        "records",
        "tombstones",
        "used_bytes",
        "sealed",
        "compressor",
        "decoded",
        "decodes",
        "_ncols",
    )

    def __init__(self, page_id: int):
        self.page_id = page_id
        self.records: List[bytes] = []
        self.tombstones: List[bool] = []
        self.used_bytes = PAGE_HEADER_SIZE
        self.sealed = False
        self.compressor: Optional[PageCompressor] = None
        #: lifetime count of record decodes this page has paid (cold
        #: reads); stays flat while the row cache is warm
        self.decodes = 0
        #: buffer-pool row cache: decoded tuples per slot (None = not
        #: built / deleted slot). Built lazily on first scan, dropped on
        #: any mutation — the "warm buffer pool" the paper measures with.
        self.decoded: Optional[List] = None
        self._ncols = 0

    # -- write path --------------------------------------------------------------

    def fits(self, record: bytes) -> bool:
        return self.used_bytes + len(record) + SLOT_ENTRY_SIZE <= PAGE_SIZE

    def append(self, record: bytes) -> int:
        """Append a record; returns its slot number."""
        if self.sealed:
            raise StorageError(f"page {self.page_id} is sealed")
        if not self.fits(record) and self.records:
            raise StorageError(f"page {self.page_id} is full")
        self.records.append(record)
        self.tombstones.append(False)
        self.used_bytes += len(record) + SLOT_ENTRY_SIZE
        self.decoded = None
        return len(self.records) - 1

    def seal(self, serializer: Optional[RowSerializer] = None,
             page_compress: bool = False) -> None:
        """Freeze the page; optionally re-encode it with PAGE compression.

        ``serializer`` must be the table's ROW-compressed serialiser when
        ``page_compress`` is requested (PAGE compression layers on top of
        the ROW format).
        """
        if self.sealed:
            return
        self.sealed = True
        if not page_compress or not self.records:
            return
        if serializer is None or not serializer.row_compression:
            raise StorageError("PAGE compression requires a ROW serializer")
        split = [serializer.split_compressed(r) for r in self.records]
        self._ncols = len(serializer.schema.columns)
        compressor = PageCompressor(split)
        encoded = compressor.encode_records()
        new_size = (
            PAGE_HEADER_SIZE
            + compressor.overhead_bytes()
            + sum(len(r) + SLOT_ENTRY_SIZE for r in encoded)
        )
        # Keep the compressed form only when it actually wins, as SQL
        # Server does (a page that does not benefit stays row-compressed).
        if new_size < self.used_bytes:
            self.records = encoded
            self.compressor = compressor
            self.used_bytes = new_size

    # -- read path ----------------------------------------------------------------

    def get(self, slot: int, serializer: RowSerializer) -> bytes:
        """Return the ROW-format record bytes stored in ``slot``."""
        if slot < 0 or slot >= len(self.records):
            raise StorageError(f"bad slot {slot} on page {self.page_id}")
        if self.tombstones[slot]:
            raise StorageError(f"slot {slot} on page {self.page_id} is deleted")
        record = self.records[slot]
        if self.compressor is None:
            return record
        nulls, fields = self.compressor.decode_record(record, self._ncols)
        return serializer.join_compressed(nulls, fields)

    def iter_records(self, serializer: RowSerializer):
        """Yield ``(slot, record_bytes)`` for every live record."""
        if self.compressor is None:
            for slot, record in enumerate(self.records):
                if not self.tombstones[slot]:
                    yield slot, record
        else:
            for slot, record in enumerate(self.records):
                if self.tombstones[slot]:
                    continue
                nulls, fields = self.compressor.decode_record(record, self._ncols)
                yield slot, serializer.join_compressed(nulls, fields)

    def delete(self, slot: int) -> int:
        """Tombstone a slot; returns the bytes logically freed."""
        if slot < 0 or slot >= len(self.records):
            raise StorageError(f"bad slot {slot} on page {self.page_id}")
        if self.tombstones[slot]:
            raise StorageError(f"slot {slot} already deleted")
        self.tombstones[slot] = True
        if self.decoded is not None:
            self.decoded[slot] = None
        return len(self.records[slot]) + SLOT_ENTRY_SIZE

    def row_cache(self, serializer: RowSerializer) -> List:
        """Per-slot decoded rows (None for deleted slots), built on first
        use. This is the engine's buffer-pool analogue: repeated scans of
        a warm page skip record decoding entirely."""
        if self.decoded is None:
            cache: List = [None] * len(self.records)
            deserialize = serializer.deserialize
            for slot, record in self.iter_records(serializer):
                cache[slot] = deserialize(record)
                self.decodes += 1
            self.decoded = cache
        return self.decoded

    @property
    def live_count(self) -> int:
        return sum(1 for dead in self.tombstones if not dead)
