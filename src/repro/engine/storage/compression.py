"""PAGE compression: per-column prefix compression plus a page dictionary.

SQL Server 2008 page compression (the paper's reference [11]) layers three
techniques: row compression, column-prefix compression, and dictionary
compression, all scoped to a single page. This module implements the page
scope: it takes the ROW-compressed field bytes of the records on one page
and produces

1. an *anchor record* — for every column, the prefix byte string shared by
   many values of that column on the page;
2. a *dictionary* — frequently repeated post-prefix suffixes stored once;
3. re-encoded records whose fields reference the anchor prefix and the
   dictionary.

The encoding of one non-NULL field is::

    0x01 varint(prefix_len) varint(len(suffix)) suffix     # literal
    0x02 varint(prefix_len) varint(dict_index)             # dictionary hit

where ``prefix_len`` is how many bytes of the column's anchor prefix the
value starts with and ``suffix`` is the remainder.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

from ..errors import StorageError
from .serializer import encode_varint, read_varint, write_varint

_LITERAL = 0x01
_DICT = 0x02

#: suffixes shorter than this never enter the dictionary (a reference
#: costs ~3 bytes, so tiny strings are not worth deduplicating)
_MIN_DICT_LEN = 3


def _common_prefix_len(a: bytes, b: bytes) -> int:
    limit = min(len(a), len(b))
    i = 0
    while i < limit and a[i] == b[i]:
        i += 1
    return i


def _choose_anchor(values: Sequence[bytes]) -> bytes:
    """Pick the anchor prefix for one column.

    Heuristic (close to SQL Server's): take the longest value and trim it
    to the point where keeping more prefix stops paying off across the
    other values on the page.
    """
    non_empty = [v for v in values if v]
    if len(non_empty) < 2:
        return b""
    candidate = max(non_empty, key=len)
    # Savings per kept prefix byte = how many values share that byte.
    best_len, best_gain = 0, 0
    prefix_counts: List[int] = []
    for depth in range(len(candidate)):
        count = sum(
            1 for v in non_empty if len(v) > depth and v[depth] == candidate[depth]
        )
        prefix_counts.append(count)
    gain = 0
    for depth, count in enumerate(prefix_counts):
        gain += count - 2  # each matched byte saves ~1B for `count` rows,
        # minus the anchor storage itself and varint overhead (approx.)
        if gain > best_gain:
            best_gain = gain
            best_len = depth + 1
    return candidate[:best_len] if best_gain > 0 else b""


class PageCompressor:
    """Compresses the set of records destined for one page.

    Input records are the ``(nulls, fields)`` pairs produced by
    :meth:`RowSerializer.split_compressed`. The compressor is built once
    per page at *seal* time (pages are write-once in this engine's bulk
    paths, matching how SQL Server compresses a page when it fills up).
    """

    def __init__(self, records: Sequence[Tuple[Sequence[bool], Sequence[bytes]]]):
        if not records:
            raise StorageError("cannot page-compress zero records")
        ncols = len(records[0][1])
        #: ROW-format field bytes fed in / page-compressed bytes produced
        self.bytes_in = sum(
            len(field) for _nulls, fields in records for field in fields
        )
        self.bytes_out = 0
        self.anchors: List[bytes] = []
        for col in range(ncols):
            column_values = [
                fields[col]
                for nulls, fields in records
                if not nulls[col]
            ]
            self.anchors.append(_choose_anchor(column_values))

        # First pass: strip prefixes, count suffix popularity.
        stripped: List[Tuple[Sequence[bool], List[Tuple[int, bytes]]]] = []
        suffix_counts: Counter = Counter()
        for nulls, fields in records:
            row_fields: List[Tuple[int, bytes]] = []
            for col, field in enumerate(fields):
                if nulls[col]:
                    row_fields.append((0, b""))
                    continue
                k = _common_prefix_len(field, self.anchors[col])
                suffix = field[k:]
                row_fields.append((k, suffix))
                if len(suffix) >= _MIN_DICT_LEN:
                    suffix_counts[suffix] += 1
            stripped.append((nulls, row_fields))

        # Dictionary: suffixes repeated on this page. Storing an entry
        # costs len+varint; each reference saves len(suffix) - ~2 bytes.
        self.dictionary: List[bytes] = [
            suffix
            for suffix, count in suffix_counts.items()
            if count >= 2 and (count - 1) * (len(suffix) - 2) > len(suffix)
        ]
        self._dict_index: Dict[bytes, int] = {
            suffix: i for i, suffix in enumerate(self.dictionary)
        }
        self._stripped = stripped

    # -- encoding ---------------------------------------------------------------

    def encode_records(self) -> List[bytes]:
        """Encode every input record against the anchors/dictionary."""
        out: List[bytes] = []
        for nulls, row_fields in self._stripped:
            buf = bytearray()
            bitmap_len = (len(nulls) + 7) // 8
            bitmap = bytearray(bitmap_len)
            for i, is_null in enumerate(nulls):
                if is_null:
                    bitmap[i >> 3] |= 1 << (i & 7)
            buf += bitmap
            for col, (k, suffix) in enumerate(row_fields):
                if nulls[col]:
                    continue
                dict_idx = self._dict_index.get(suffix)
                if dict_idx is not None:
                    buf.append(_DICT)
                    write_varint(k, buf)
                    write_varint(dict_idx, buf)
                else:
                    buf.append(_LITERAL)
                    write_varint(k, buf)
                    write_varint(len(suffix), buf)
                    buf += suffix
            out.append(bytes(buf))
        self.bytes_out = self.overhead_bytes() + sum(len(r) for r in out)
        return out

    def decode_record(self, record: bytes, ncols: int) -> Tuple[List[bool], List[bytes]]:
        """Decode one page-compressed record back to (nulls, fields)."""
        bitmap_len = (ncols + 7) // 8
        nulls = [
            bool(record[i >> 3] & (1 << (i & 7))) for i in range(ncols)
        ]
        pos = bitmap_len
        fields: List[bytes] = []
        for col in range(ncols):
            if nulls[col]:
                fields.append(b"")
                continue
            tag = record[pos]
            pos += 1
            k, pos = read_varint(record, pos)
            prefix = self.anchors[col][:k]
            if tag == _DICT:
                idx, pos = read_varint(record, pos)
                suffix = self.dictionary[idx]
            elif tag == _LITERAL:
                length, pos = read_varint(record, pos)
                suffix = record[pos : pos + length]
                pos += length
            else:  # pragma: no cover - corruption guard
                raise StorageError(f"bad page-compression tag {tag:#x}")
            fields.append(prefix + suffix)
        return nulls, fields

    # -- size accounting ----------------------------------------------------------

    def overhead_bytes(self) -> int:
        """Bytes spent on the anchor record and the dictionary."""
        total = 0
        for anchor in self.anchors:
            total += len(encode_varint(len(anchor))) + len(anchor)
        for entry in self.dictionary:
            total += len(encode_varint(len(entry))) + len(entry)
        return total
