"""Storage layer: the pluggable access methods (row heap, columnar
segment store) plus row serialisation, slotted pages, and compression."""

from .base import (
    AccessMethod,
    Rid,
    STORAGE_COLUMN,
    STORAGE_HEAP,
    create_access_method,
    register_access_method,
)
from .columnstore import (
    ColumnStore,
    DEFAULT_SEGMENT_ROWS,
    PushedPredicate,
)
from .heap import HeapFile
from .page import PAGE_SIZE, Page
from .serializer import RowSerializer

__all__ = [
    "AccessMethod",
    "ColumnStore",
    "DEFAULT_SEGMENT_ROWS",
    "HeapFile",
    "PAGE_SIZE",
    "Page",
    "PushedPredicate",
    "Rid",
    "RowSerializer",
    "STORAGE_COLUMN",
    "STORAGE_HEAP",
    "create_access_method",
    "register_access_method",
]
