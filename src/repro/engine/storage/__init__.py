"""Storage layer: row serialisation, slotted pages, compression, heaps."""

from .heap import HeapFile
from .page import PAGE_SIZE, Page
from .serializer import RowSerializer

__all__ = ["HeapFile", "PAGE_SIZE", "Page", "RowSerializer"]
