"""Heap files: an append-oriented collection of slotted pages.

A heap file stores the records of one table. Records are addressed by a
*record id* ``rid = (page_no, slot_no)``. Inserts go to the tail page;
when a record does not fit the tail page is sealed (triggering PAGE
compression when the table is configured for it) and a fresh page opened.

The heap file also keeps the byte accounting the storage experiments
(Tables 1 and 2 of the paper) report: stored bytes vs. the bytes the same
rows would occupy uncompressed.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Sequence, Tuple

from ..errors import StorageError
from ..metrics import Counters
from ..schema import (
    COMPRESSION_NONE,
    COMPRESSION_PAGE,
    COMPRESSION_ROW,
    TableSchema,
    TableStatistics,
)
from .base import AccessMethod, Rid, STORAGE_HEAP, register_access_method
from .page import PAGE_HEADER_SIZE, Page
from .serializer import RowSerializer


class HeapFile(AccessMethod):
    """Page-based record store for one table."""

    engine_name = STORAGE_HEAP

    def __init__(
        self,
        schema: TableSchema,
        compression: str = COMPRESSION_NONE,
        udt_codec_lookup=None,
    ):
        self.schema = schema
        self.compression = compression
        row_compressed = compression in (COMPRESSION_ROW, COMPRESSION_PAGE)
        self.serializer = RowSerializer(
            schema,
            row_compression=row_compressed,
            udt_codec_lookup=udt_codec_lookup,
        )
        self.pages: list[Page] = []
        self.stats = TableStatistics()
        #: always-on IO counters (SET STATISTICS IO / sys_dm_io_stats)
        self.io = Counters()

    # -- write path --------------------------------------------------------------

    def _tail_page(self, record: bytes) -> Page:
        if self.pages and not self.pages[-1].sealed and self.pages[-1].fits(record):
            return self.pages[-1]
        if self.pages and not self.pages[-1].sealed:
            self._seal(self.pages[-1])
        page = Page(len(self.pages))
        self.pages.append(page)
        self.stats.page_count += 1
        self.io.incr("pages_written")
        return page

    def _seal(self, page: Page) -> None:
        before = page.used_bytes
        page.seal(
            self.serializer,
            page_compress=self.compression == COMPRESSION_PAGE,
        )
        self.stats.data_bytes += page.used_bytes - before
        if page.compressor is not None:
            self.io.incr("compression_bytes_in", page.compressor.bytes_in)
            self.io.incr("compression_bytes_out", page.compressor.bytes_out)

    def insert(self, row: Sequence[Any]) -> Rid:
        """Serialise and store one validated row; returns its rid."""
        record = self.serializer.serialize(row)
        uncompressed = (
            len(record)
            if not self.serializer.row_compression
            else self.serializer.uncompressed_size(row)
        )
        page = self._tail_page(record)
        slot = page.append(record)
        self._bump_data_version()
        self.stats.on_insert(len(record), uncompressed)
        self.io.incr("rows_inserted")
        self.io.incr("bytes_written", len(record))
        self.io.incr("bytes_uncompressed", uncompressed)
        return (page.page_id, slot)

    def seal_all(self, force: bool = True) -> None:
        """Seal the tail page (e.g. at the end of a bulk load) so PAGE
        compression covers every page.  Heap pages are cheap to seal, so
        ``force`` is irrelevant here — every statement boundary seals."""
        if self.pages and not self.pages[-1].sealed:
            self._seal(self.pages[-1])

    def delete(self, rid: Rid) -> Tuple[Any, ...]:
        """Tombstone the record at ``rid``; returns the deleted row."""
        row = self.fetch(rid)
        page_no, slot = rid
        freed = self.pages[page_no].delete(slot)
        self._bump_data_version()
        record_len = freed - 2  # minus the slot entry
        uncompressed = (
            record_len
            if not self.serializer.row_compression
            else self.serializer.uncompressed_size(row)
        )
        self.stats.on_delete(record_len, uncompressed)
        return row

    # -- read path ----------------------------------------------------------------

    def fetch(self, rid: Rid) -> Tuple[Any, ...]:
        page_no, slot = rid
        if page_no < 0 or page_no >= len(self.pages):
            raise StorageError(f"bad page number {page_no}")
        page = self.pages[page_no]
        # pages_read - page_cache_misses = warm buffer-pool hits
        self.io.incr("pages_read")
        if page.decoded is None:
            self.io.incr("page_cache_misses")
        cache = page.row_cache(self.serializer)
        if slot < 0 or slot >= len(cache):
            raise StorageError(f"bad slot {slot} on page {page_no}")
        row = cache[slot]
        if row is None:
            raise StorageError(f"slot {slot} on page {page_no} is deleted")
        return row

    def scan(self) -> Iterator[Tuple[Rid, Tuple[Any, ...]]]:
        """Yield ``(rid, row)`` for every live record, in physical order.

        Scans go through the per-page row cache, so a second scan of an
        unchanged table pays no decoding cost (warm buffer pool)."""
        serializer = self.serializer
        io = self.io
        io.incr("scans")
        for page in self.pages:
            page_id = page.page_id
            io.incr("pages_read")
            if page.decoded is None:
                io.incr("page_cache_misses")
            cache = page.row_cache(serializer)
            for slot, row in enumerate(cache):
                if row is not None:
                    yield (page_id, slot), row

    def scan_batches(self) -> Iterator[list]:
        """Yield one list of live rows per page, in physical order.

        The batch-mode table scan: each page's row cache is filtered for
        tombstones in a single comprehension and handed to the executor
        as a page-aligned batch, so the per-row iterator handshake of
        :meth:`scan` disappears.  IO accounting matches ``scan`` exactly
        (one ``pages_read`` per page, cold pages count a cache miss) plus
        a ``batch_reads`` counter per emitted batch."""
        serializer = self.serializer
        io = self.io
        io.incr("scans")
        for page in self.pages:
            io.incr("pages_read")
            if page.decoded is None:
                io.incr("page_cache_misses")
            cache = page.row_cache(serializer)
            batch = [row for row in cache if row is not None]
            if batch:
                io.incr("batch_reads")
                yield batch

    def partition_payloads(self, parts: int):
        """Page-range partitions for worker-process scans.

        Each payload carries raw record bytes (plus the page compressor
        where PAGE compression engaged), the schema, and the serializer
        configuration — the worker pays the decode, so partitioned scans
        parallelise decoding too, not just aggregation. Ranges are
        contiguous page runs balanced by live-row count; concatenating
        them in order reproduces ``scan()``'s physical row order."""
        pages = self.pages
        live = [page.live_count for page in pages]
        total = sum(live)
        if total == 0:
            return []
        parts = max(min(parts, len(pages)), 1)
        io = self.io
        io.incr("scans")
        cookie = self.data_cookie()
        payloads = []
        index = 0
        remaining = total
        for slices_left in range(parts, 0, -1):
            goal = remaining / slices_left
            shipped = []
            count = 0
            while index < len(pages) and (count < goal or not shipped):
                page = pages[index]
                shipped.append(
                    (
                        page.records,
                        page.tombstones,
                        page.compressor,
                        page._ncols,
                    )
                )
                count += live[index]
                io.incr("pages_read")
                io.incr("pages_shipped")
                index += 1
            remaining -= count
            if shipped:
                payloads.append(
                    {
                        "schema": self.schema,
                        "row_compression": self.serializer.row_compression,
                        "pages": shipped,
                        "rows": count,
                        "cache_key": cookie + (parts, len(payloads)),
                    }
                )
            if index >= len(pages):
                break
        return payloads

    # -- accounting -----------------------------------------------------------------

    @property
    def row_count(self) -> int:
        return self.stats.row_count

    def stored_bytes(self, include_page_overhead: bool = True) -> int:
        """Bytes used by this heap, as the storage report counts them."""
        total = sum(page.used_bytes for page in self.pages)
        if not include_page_overhead:
            total -= PAGE_HEADER_SIZE * len(self.pages)
        return total

    def uncompressed_bytes(self) -> int:
        return self.stats.uncompressed_bytes + PAGE_HEADER_SIZE * len(self.pages)


def _make_heap(schema: TableSchema, udt_codec_lookup=None) -> HeapFile:
    return HeapFile(
        schema,
        compression=schema.compression,
        udt_codec_lookup=udt_codec_lookup,
    )


register_access_method(STORAGE_HEAP, _make_heap)
