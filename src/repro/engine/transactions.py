"""Lightweight transactions: undo-logged inserts and FILESTREAM writes.

The paper's hybrid design leans on one property of FILESTREAM storage:
BLOB creation and the owning row are under *one* transactional scope, so
an aborted import leaves neither an orphan file nor a dangling row. This
module provides exactly that scope:

    with Transaction(db) as txn:
        txn.insert("ShortReadFiles", row_with_blob_bytes)
        ...          # raising here rolls back rows AND blob files

Undo granularity is the logical operation (row insert / blob create /
row delete), not pages — sufficient for the single-writer import
pipelines of a sequencing lab, and honest about what it is.
"""

from __future__ import annotations

import uuid
from typing import Any, List, Optional, Sequence, Tuple

from .errors import TransactionError


class Transaction:
    """An explicit transaction over a :class:`~repro.engine.Database`."""

    def __init__(self, database):
        self.database = database
        self._undo: List[Tuple[str, Any]] = []
        self._active = False

    # -- lifecycle --------------------------------------------------------------

    def begin(self) -> "Transaction":
        if self._active:
            raise TransactionError("transaction already active")
        self._active = True
        self._undo.clear()
        return self

    def commit(self) -> None:
        self._require_active()
        self._undo.clear()
        self._active = False

    def rollback(self) -> None:
        self._require_active()
        for action, payload in reversed(self._undo):
            if action == "insert":
                table, rid, row = payload
                # the row may own FILESTREAM blobs; _delete_rid removes them
                table._delete_rid(rid, row)
            elif action == "blob":
                store, guid = payload
                if store.exists(guid):
                    store.delete(guid)
            elif action == "delete":
                table, row = payload
                table.insert(row)
        self._undo.clear()
        self._active = False

    def _require_active(self) -> None:
        if not self._active:
            raise TransactionError("no active transaction")

    def __enter__(self) -> "Transaction":
        return self.begin()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._active:
            return False
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    # -- logged operations ----------------------------------------------------------

    def insert(self, table_name: str, row: Sequence[Any]):
        """Insert one row with undo logging."""
        self._require_active()
        table = self.database.catalog.table(table_name)
        rid = table.insert(row)
        stored = table.heap.fetch(rid)
        self._undo.append(("insert", (table, rid, stored)))
        return rid

    def create_blob(self, data: bytes, guid: Optional[uuid.UUID] = None) -> uuid.UUID:
        """Store a FILESTREAM BLOB with undo logging."""
        self._require_active()
        store = self.database.filestream
        guid = store.create(data, guid)
        self._undo.append(("blob", (store, guid)))
        return guid

    def delete_where(self, table_name: str, predicate) -> int:
        """Delete matching rows with undo logging.

        Rows owning FILESTREAM blobs have their payloads captured before
        deletion so a rollback can re-create them (under fresh GUIDs).
        """
        self._require_active()
        table = self.database.catalog.table(table_name)
        store = self.database.filestream
        victims = [
            (rid, row) for rid, row in table.heap.scan() if predicate(row)
        ]
        fs_columns = table._fs_columns
        for rid, row in victims:
            undo_row = list(row)
            for i in fs_columns:
                if undo_row[i] is not None:
                    guid = uuid.UUID(bytes=undo_row[i])
                    undo_row[i] = store.read_all(guid)
            table._delete_rid(rid, row)
            self._undo.append(("delete", (table, tuple(undo_row))))
        return len(victims)
