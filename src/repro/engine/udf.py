"""Extensibility contracts: scalar UDFs, TVFs, UDAs, and UDTs.

These mirror the SQL Server 2008 CLR contracts the paper builds on
(Sections 2.3.2–2.3.4):

**Scalar UDF** — a registered function callable anywhere a scalar
expression is allowed.

**Table-valued function (TVF)** — the pull-model contract: the function's
*create* step returns an iterator over internal ("CLR") objects; the query
processor drives the iterator (``MoveNext``) and converts each object into
a SQL row through an explicit ``fill_row`` step. Keeping conversion as a
separate call is deliberate: the paper identifies the per-row
CLR-boundary conversion in ``FillRow`` as the dominant TVF cost, and the
benchmarks here measure exactly that seam.

**User-defined aggregate (UDA)** — init / accumulate / merge / terminate,
with a parallel-safety flag. A parallel-safe UDA can be split across
partitions and merged, which is what lets the exchange operator
parallelise it "just like built-in aggregates".

**User-defined type (UDT)** — a named scalar type with binary
serialisation, registered so it can appear in column definitions (used by
the bit-packed DNA sequence type of the future-work ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple, Type

from .errors import BindError, UdfError
from .schema import Column
from .types import SqlType, UdtCodec

# ---------------------------------------------------------------------------
# scalar UDFs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarUdf:
    """A scalar user-defined function."""

    name: str
    func: Callable[..., Any]
    #: None => NULL-in/NULL-out handled by the function itself; True =>
    #: the engine short-circuits to NULL when any argument is NULL
    #: (SQL Server's ``OnNullCall`` attribute).
    returns_null_on_null_input: bool = False
    #: CLR-host permission set the body was verified against
    #: (SAFE / EXTERNAL_ACCESS / UNSAFE).
    permission_set: str = "SAFE"
    #: verified ``IsDeterministic``: True lets the optimizer constant-fold
    #: and memoise calls; False blocks predicate pushdown past the call;
    #: None means the verifier could not see the source.
    is_deterministic: Optional[bool] = None
    #: verified ``DataAccessKind`` ("NONE" or "READ").
    data_access: str = "NONE"

    def __call__(self, *args: Any) -> Any:
        if self.returns_null_on_null_input and any(a is None for a in args):
            return None
        try:
            return self.func(*args)
        except Exception as exc:  # surface as a SQL-level error
            raise UdfError(f"scalar UDF {self.name!r} failed: {exc}") from exc


# ---------------------------------------------------------------------------
# table-valued functions
# ---------------------------------------------------------------------------


class TableValuedFunction:
    """Base class for TVFs.

    Subclasses define:

    - ``columns`` — the output schema as :class:`Column` objects;
    - :meth:`create` — bind the call arguments and return an iterator of
      internal objects (the CLR ``IEnumerator``);
    - :meth:`fill_row` — convert one internal object into a tuple of SQL
      values (the CLR ``FillRow`` conversion).

    The default ``fill_row`` assumes the iterator already yields tuples.
    """

    name: str = ""
    columns: Sequence[Column] = ()

    def create(self, *args: Any) -> Iterator[Any]:
        raise NotImplementedError

    def fill_row(self, obj: Any) -> Tuple[Any, ...]:
        return tuple(obj)

    def rows(self, *args: Any) -> Iterator[Tuple[Any, ...]]:
        """Drive the full pull-model loop (MoveNext + FillRow)."""
        iterator = self.create(*args)
        fill_row = self.fill_row
        for obj in iterator:
            yield fill_row(obj)


@dataclass(frozen=True)
class SimpleTvf(TableValuedFunction):
    """Wrap a plain generator function as a TVF."""

    name: str = ""
    columns: Tuple[Column, ...] = ()
    factory: Callable[..., Iterator[Any]] = None  # type: ignore[assignment]
    row_filler: Optional[Callable[[Any], Tuple[Any, ...]]] = None

    def create(self, *args: Any) -> Iterator[Any]:
        return self.factory(*args)

    def fill_row(self, obj: Any) -> Tuple[Any, ...]:
        if self.row_filler is not None:
            return self.row_filler(obj)
        return tuple(obj)


# ---------------------------------------------------------------------------
# user-defined aggregates
# ---------------------------------------------------------------------------


class UserDefinedAggregate:
    """Base class for UDAs (the SqlUserDefinedAggregate contract).

    Lifecycle: ``init()`` once per group, ``accumulate(*args)`` per input
    row, ``merge(other)`` to combine partial states (parallel plans),
    ``terminate()`` to produce the result. State may be arbitrarily large
    (SQL Server caps it at 2 GB; we only document the cap).
    """

    #: SQL name used in queries
    name: str = ""
    #: number of arguments accepted by accumulate
    arity: int = 1
    #: safe to evaluate as partial aggregates merged across partitions
    parallel_safe: bool = True
    #: input must arrive ordered by the group's natural order (disables
    #: hash aggregation; the sliding-window consensus UDA needs this)
    requires_ordered_input: bool = False

    def init(self) -> None:
        raise NotImplementedError

    def accumulate(self, *args: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "UserDefinedAggregate") -> None:
        raise NotImplementedError

    def terminate(self) -> Any:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


class FunctionLibrary:
    """The catalog of registered extensions (one per database).

    Lookup is case-insensitive, matching T-SQL identifier rules.
    """

    def __init__(self):
        self._scalars: Dict[str, ScalarUdf] = {}
        self._tvfs: Dict[str, TableValuedFunction] = {}
        self._udas: Dict[str, Type[UserDefinedAggregate]] = {}
        self._udts: Dict[str, UdtCodec] = {}
        #: (object_type, lowered name) -> diagnostics recorded by the
        #: static verifier at registration time (sys_dm_verify_results)
        self._verification: Dict[Tuple[str, str], list] = {}

    # -- registration -------------------------------------------------------------

    def _record_verification(self, kind: str, name: str, report) -> None:
        """Store the verifier's findings; reject the object when any
        finding is error severity (CREATE ASSEMBLY fails)."""
        from .verify.udx_verifier import VerificationError

        self._verification[(kind, name.lower())] = list(report.diagnostics)
        if any(d.is_error for d in report.diagnostics):
            raise VerificationError(report.diagnostics)

    def register_scalar(
        self,
        name: str,
        func: Callable[..., Any],
        returns_null_on_null_input: bool = False,
        permission_set: str = "SAFE",
        deterministic: Optional[bool] = None,
        data_access: Optional[str] = None,
    ) -> ScalarUdf:
        from .verify.contracts import verify_scalar

        report = verify_scalar(
            name, func, permission_set, deterministic, data_access
        )
        self._record_verification("scalar UDF", name, report)
        udf = ScalarUdf(
            name,
            func,
            returns_null_on_null_input,
            permission_set,
            report.is_deterministic,
            report.data_access or "NONE",
        )
        self._scalars[name.lower()] = udf
        return udf

    def register_tvf(self, tvf: TableValuedFunction) -> TableValuedFunction:
        if not tvf.name:
            raise BindError("TVF must have a name")
        if not tvf.columns:
            raise BindError(f"TVF {tvf.name!r} must declare output columns")
        from .verify.contracts import verify_tvf

        report = verify_tvf(tvf)
        self._record_verification("TVF", tvf.name, report)
        self._tvfs[tvf.name.lower()] = tvf
        return tvf

    def register_uda(self, uda_class: Type[UserDefinedAggregate]) -> None:
        if not uda_class.name:
            raise BindError("UDA class must set a name")
        from .verify.contracts import verify_uda

        report = verify_uda(uda_class)
        self._record_verification("UDA", uda_class.name, report)
        self._udas[uda_class.name.lower()] = uda_class

    def register_udt(self, codec: UdtCodec) -> None:
        from .verify.contracts import verify_udt

        report = verify_udt(codec)
        self._record_verification("UDT", codec.name, report)
        self._udts[codec.name.lower()] = codec

    # -- verification results -------------------------------------------------------

    def verification_rows(self) -> list:
        """Flattened verifier findings for ``sys_dm_verify_results``.

        The trailing ``source`` column names the registered object path
        (``KIND:name``) so UDx-level rows stay distinguishable from the
        plan-level rows the database appends (whose source is the
        originating statement's SQL)."""
        rows = []
        for (kind, key), diagnostics in self._verification.items():
            for d in diagnostics:
                rows.append(
                    (kind, d.obj, d.rule, d.severity, d.message,
                     f"{kind}:{key}")
                )
        return rows

    def diagnostics_for(self, name: str) -> list:
        """All recorded findings for one object name (any kind)."""
        found = []
        for (_kind, key), diagnostics in self._verification.items():
            if key == name.lower():
                found.extend(diagnostics)
        return found

    # -- lookup ---------------------------------------------------------------------

    def scalar(self, name: str) -> Optional[ScalarUdf]:
        return self._scalars.get(name.lower())

    def tvf(self, name: str) -> Optional[TableValuedFunction]:
        return self._tvfs.get(name.lower())

    def uda(self, name: str) -> Optional[Type[UserDefinedAggregate]]:
        return self._udas.get(name.lower())

    def udt(self, name: str) -> UdtCodec:
        try:
            return self._udts[name.lower()]
        except KeyError:
            raise BindError(f"unknown UDT {name!r}") from None

    def has_udt(self, name: str) -> bool:
        return name.lower() in self._udts
