"""Extensibility contracts: scalar UDFs, TVFs, UDAs, and UDTs.

These mirror the SQL Server 2008 CLR contracts the paper builds on
(Sections 2.3.2–2.3.4):

**Scalar UDF** — a registered function callable anywhere a scalar
expression is allowed.

**Table-valued function (TVF)** — the pull-model contract: the function's
*create* step returns an iterator over internal ("CLR") objects; the query
processor drives the iterator (``MoveNext``) and converts each object into
a SQL row through an explicit ``fill_row`` step. Keeping conversion as a
separate call is deliberate: the paper identifies the per-row
CLR-boundary conversion in ``FillRow`` as the dominant TVF cost, and the
benchmarks here measure exactly that seam.

**User-defined aggregate (UDA)** — init / accumulate / merge / terminate,
with a parallel-safety flag. A parallel-safe UDA can be split across
partitions and merged, which is what lets the exchange operator
parallelise it "just like built-in aggregates".

**User-defined type (UDT)** — a named scalar type with binary
serialisation, registered so it can appear in column definitions (used by
the bit-packed DNA sequence type of the future-work ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple, Type

from .errors import BindError, UdfError
from .schema import Column
from .types import SqlType, UdtCodec

# ---------------------------------------------------------------------------
# scalar UDFs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarUdf:
    """A scalar user-defined function."""

    name: str
    func: Callable[..., Any]
    #: None => NULL-in/NULL-out handled by the function itself; True =>
    #: the engine short-circuits to NULL when any argument is NULL
    #: (SQL Server's ``OnNullCall`` attribute).
    returns_null_on_null_input: bool = False

    def __call__(self, *args: Any) -> Any:
        if self.returns_null_on_null_input and any(a is None for a in args):
            return None
        try:
            return self.func(*args)
        except Exception as exc:  # surface as a SQL-level error
            raise UdfError(f"scalar UDF {self.name!r} failed: {exc}") from exc


# ---------------------------------------------------------------------------
# table-valued functions
# ---------------------------------------------------------------------------


class TableValuedFunction:
    """Base class for TVFs.

    Subclasses define:

    - ``columns`` — the output schema as :class:`Column` objects;
    - :meth:`create` — bind the call arguments and return an iterator of
      internal objects (the CLR ``IEnumerator``);
    - :meth:`fill_row` — convert one internal object into a tuple of SQL
      values (the CLR ``FillRow`` conversion).

    The default ``fill_row`` assumes the iterator already yields tuples.
    """

    name: str = ""
    columns: Sequence[Column] = ()

    def create(self, *args: Any) -> Iterator[Any]:
        raise NotImplementedError

    def fill_row(self, obj: Any) -> Tuple[Any, ...]:
        return tuple(obj)

    def rows(self, *args: Any) -> Iterator[Tuple[Any, ...]]:
        """Drive the full pull-model loop (MoveNext + FillRow)."""
        iterator = self.create(*args)
        fill_row = self.fill_row
        for obj in iterator:
            yield fill_row(obj)


@dataclass(frozen=True)
class SimpleTvf(TableValuedFunction):
    """Wrap a plain generator function as a TVF."""

    name: str = ""
    columns: Tuple[Column, ...] = ()
    factory: Callable[..., Iterator[Any]] = None  # type: ignore[assignment]
    row_filler: Optional[Callable[[Any], Tuple[Any, ...]]] = None

    def create(self, *args: Any) -> Iterator[Any]:
        return self.factory(*args)

    def fill_row(self, obj: Any) -> Tuple[Any, ...]:
        if self.row_filler is not None:
            return self.row_filler(obj)
        return tuple(obj)


# ---------------------------------------------------------------------------
# user-defined aggregates
# ---------------------------------------------------------------------------


class UserDefinedAggregate:
    """Base class for UDAs (the SqlUserDefinedAggregate contract).

    Lifecycle: ``init()`` once per group, ``accumulate(*args)`` per input
    row, ``merge(other)`` to combine partial states (parallel plans),
    ``terminate()`` to produce the result. State may be arbitrarily large
    (SQL Server caps it at 2 GB; we only document the cap).
    """

    #: SQL name used in queries
    name: str = ""
    #: number of arguments accepted by accumulate
    arity: int = 1
    #: safe to evaluate as partial aggregates merged across partitions
    parallel_safe: bool = True
    #: input must arrive ordered by the group's natural order (disables
    #: hash aggregation; the sliding-window consensus UDA needs this)
    requires_ordered_input: bool = False

    def init(self) -> None:
        raise NotImplementedError

    def accumulate(self, *args: Any) -> None:
        raise NotImplementedError

    def merge(self, other: "UserDefinedAggregate") -> None:
        raise NotImplementedError

    def terminate(self) -> Any:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# registries
# ---------------------------------------------------------------------------


class FunctionLibrary:
    """The catalog of registered extensions (one per database).

    Lookup is case-insensitive, matching T-SQL identifier rules.
    """

    def __init__(self):
        self._scalars: Dict[str, ScalarUdf] = {}
        self._tvfs: Dict[str, TableValuedFunction] = {}
        self._udas: Dict[str, Type[UserDefinedAggregate]] = {}
        self._udts: Dict[str, UdtCodec] = {}

    # -- registration -------------------------------------------------------------

    def register_scalar(
        self,
        name: str,
        func: Callable[..., Any],
        returns_null_on_null_input: bool = False,
    ) -> ScalarUdf:
        udf = ScalarUdf(name, func, returns_null_on_null_input)
        self._scalars[name.lower()] = udf
        return udf

    def register_tvf(self, tvf: TableValuedFunction) -> TableValuedFunction:
        if not tvf.name:
            raise BindError("TVF must have a name")
        if not tvf.columns:
            raise BindError(f"TVF {tvf.name!r} must declare output columns")
        self._tvfs[tvf.name.lower()] = tvf
        return tvf

    def register_uda(self, uda_class: Type[UserDefinedAggregate]) -> None:
        if not uda_class.name:
            raise BindError("UDA class must set a name")
        self._udas[uda_class.name.lower()] = uda_class

    def register_udt(self, codec: UdtCodec) -> None:
        self._udts[codec.name.lower()] = codec

    # -- lookup ---------------------------------------------------------------------

    def scalar(self, name: str) -> Optional[ScalarUdf]:
        return self._scalars.get(name.lower())

    def tvf(self, name: str) -> Optional[TableValuedFunction]:
        return self._tvfs.get(name.lower())

    def uda(self, name: str) -> Optional[Type[UserDefinedAggregate]]:
        return self._udas.get(name.lower())

    def udt(self, name: str) -> UdtCodec:
        try:
            return self._udts[name.lower()]
        except KeyError:
            raise BindError(f"unknown UDT {name!r}") from None

    def has_udt(self, name: str) -> bool:
        return name.lower() in self._udts
