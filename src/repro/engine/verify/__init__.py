"""Static verification of registered extensions (the CLR-host analogue).

SQL Server only admits a CLR assembly after the hosted verifier checks
it against its declared permission set (``SAFE`` / ``EXTERNAL_ACCESS`` /
``UNSAFE``) and its attributes (``IsDeterministic``, ``DataAccessKind``,
``OnNullCall``) — and the optimizer then *relies* on those verified
properties to fold, push down, and parallelise UDx calls (paper
Sections 2.3.2–2.3.4). This package is our equivalent, run at
registration time and at plan time:

- :mod:`.udx_verifier` — Python-``ast`` analysis of every registered
  scalar UDF / TVF / UDA / UDT body against its permission set, plus
  inference of ``is_deterministic`` and ``data_access``;
- :mod:`.contracts` — structural contract checking (UDA lifecycle and
  arity, streaming TVF ``create``, ``fill_row``/schema arity, UDT
  round-trip probes);
- :mod:`.sql_lint` — semantic lint over the logical plan IR (static
  type checks, SARGability, cartesian products, unused projections),
  with stable ``LINT-*`` rule IDs and suppression pragmas;
- :mod:`.plan_sanitizer` — the typed physical-plan verifier: walks a
  finished physical operator tree and proves, per operator, the
  invariants the executor assumes (``PLAN-*`` rules);
- :mod:`.parallel_safety` — fork/pickle-safety static analysis of the
  parallel engine's own source (``FORK-*`` rules);
- :mod:`.plan_corpus` — the golden plan corpus the sanitizer must pass
  with zero diagnostics (Figure 9/10 shapes + the differential-suite
  shapes across storage × mode × DOP).

Diagnostics surface through ``db.messages``, the
``sys_dm_verify_results`` system view, EXPLAIN plan notes, and the
``repro-genomics lint`` / ``repro-genomics sanitize`` CLI commands.
"""

from __future__ import annotations

from .udx_verifier import (
    PERMISSION_SETS,
    AnalysisReport,
    Diagnostic,
    VerificationError,
    analyze_callable,
    analyze_class_methods,
)
from .contracts import (
    verify_scalar,
    verify_tvf,
    verify_uda,
    verify_udt,
)
from .sql_lint import RULES as LINT_RULES, lint_plan, parse_suppressions
from .plan_sanitizer import RULES as PLAN_RULES, sanitize_plan
from .parallel_safety import (
    RULES as FORK_RULES,
    analyze_fork_safety,
    analyze_path,
    analyze_source,
)

__all__ = [
    "PERMISSION_SETS",
    "AnalysisReport",
    "Diagnostic",
    "VerificationError",
    "analyze_callable",
    "analyze_class_methods",
    "verify_scalar",
    "verify_tvf",
    "verify_uda",
    "verify_udt",
    "lint_plan",
    "parse_suppressions",
    "sanitize_plan",
    "analyze_fork_safety",
    "analyze_path",
    "analyze_source",
    "LINT_RULES",
    "PLAN_RULES",
    "FORK_RULES",
]
