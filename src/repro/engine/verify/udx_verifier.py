"""AST-based verification of extension bodies against permission sets.

The CLR host admits an assembly only after verifying its IL against the
declared permission set; here the "IL" is the Python source of each
registered callable, recovered with :func:`inspect.getsource` and
analysed with :mod:`ast`:

- ``SAFE`` forbids importing or calling anything that reaches I/O, the
  network, ``os``/``subprocess``, or that mutates closed-over / global
  state — computation only, like SAFE CLR code;
- ``EXTERNAL_ACCESS`` additionally admits file/stream/table access (the
  FileStream wrapper TVFs live here);
- ``UNSAFE`` switches verification off (everything is admitted, and the
  optimizer trusts nothing it did not infer).

Beyond admission, the verifier *infers* two optimizer-facing
properties, mirroring ``IsDeterministic`` and ``DataAccessKind``:

- ``is_deterministic`` — ``False`` when the body (or an analysed
  same-module callee, to a bounded depth) reaches ``random``,
  ``secrets``, ``uuid.uuid4``, ``time.*``, ``datetime.now``, or
  ``os.urandom``; ``True`` only when the source was fully analysed, no
  marker was found, and *every* reachable call target was accounted
  for — plain-name callees must resolve to analysed same-module
  functions or known-pure builtins, and module-qualified calls must
  target audited stdlib modules; ``None`` in every other case — source
  unavailable (lambdas defined inline, builtins, C extensions),
  cross-module or unresolvable callees, recursion depth exhausted —
  unknown, so never folded or memoised. Method calls on local values
  (``seq.upper()``) are assumed to be pure data transformations;
- ``data_access`` — ``"READ"`` when the body calls into a database /
  FileStream handle it closed over (``self._db.table(...)``,
  ``store.get_bytes(...)``), else ``"NONE"``.

Verification never hard-fails on *unverifiable* source — an inline
lambda registers fine, it just stays unverified (and therefore
unfoldable). Violations of the declared permission set are errors.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Set, Tuple

from ..errors import BindError

#: the three CLR permission buckets
PERMISSION_SETS = ("SAFE", "EXTERNAL_ACCESS", "UNSAFE")

#: top-level modules SAFE code must not import or touch (I/O, network,
#: process control) — EXTERNAL_ACCESS admits them
_SAFE_FORBIDDEN_MODULES = {
    "os",
    "sys",
    "subprocess",
    "socket",
    "shutil",
    "pathlib",
    "io",
    "urllib",
    "http",
    "requests",
    "ftplib",
    "tempfile",
    "ctypes",
    "glob",
    "fileinput",
    "multiprocessing",
    "signal",
}

#: modules no permission set short of UNSAFE admits (process spawning,
#: raw memory) — the CLR host's "host protection" categories
_UNSAFE_ONLY_MODULES = {"subprocess", "ctypes", "signal", "multiprocessing"}

#: builtins SAFE code must not call
_SAFE_FORBIDDEN_CALLS = {
    "open",
    "exec",
    "eval",
    "compile",
    "__import__",
    "input",
    "breakpoint",
}

#: module → attribute names that mark non-determinism; "*" = any use of
#: the module marks it (mirrors SQL Server's IsDeterministic inference)
_NONDETERMINISTIC = {
    "random": {"*"},
    "secrets": {"*"},
    "uuid": {"uuid1", "uuid4"},
    "time": {"*"},
    "datetime": {"now", "utcnow", "today"},
    "os": {"urandom", "getrandom"},
}

#: builtins a SAFE deterministic body may call without losing its
#: verified ``IsDeterministic`` (pure computation and constructors;
#: exception types cover ``raise`` statements)
_DETERMINISTIC_BUILTINS = {
    "abs", "all", "any", "ascii", "bin", "bool", "bytearray", "bytes",
    "callable", "chr", "complex", "dict", "divmod", "enumerate",
    "filter", "float", "format", "frozenset", "getattr", "hasattr",
    "hash", "hex", "int", "isinstance", "issubclass", "iter", "len",
    "list", "map", "max", "min", "next", "oct", "ord", "pow", "range",
    "repr", "reversed", "round", "set", "slice", "sorted", "str",
    "sum", "tuple", "type", "zip",
    "ArithmeticError", "AssertionError", "AttributeError", "Exception",
    "IndexError", "KeyError", "LookupError", "NotImplementedError",
    "OverflowError", "RuntimeError", "StopIteration", "TypeError",
    "ValueError", "ZeroDivisionError",
}

#: stdlib modules audited as deterministic: a call into one of these
#: (``math.sqrt``, ``re.match``) keeps the verdict; a module-qualified
#: call anywhere else leaves ``IsDeterministic`` unverified. Modules
#: listed in ``_NONDETERMINISTIC`` with *specific* markers are audited
#: too — their other attributes (``datetime.date``, ``os.path.join``)
#: count as deterministic.
_DETERMINISTIC_MODULES = {
    "abc", "array", "base64", "binascii", "bisect", "cmath",
    "collections", "copy", "dataclasses", "decimal", "enum",
    "fractions", "functools", "hashlib", "heapq", "itertools", "json",
    "math", "numbers", "operator", "re", "statistics", "string",
    "struct", "textwrap", "typing", "unicodedata", "zlib",
}

#: closed-over variable names that look like database / storage handles
_DATA_ACCESS_ROOTS = {
    "db",
    "_db",
    "database",
    "_database",
    "store",
    "_store",
    "filestream",
    "_filestream",
    "catalog",
    "_catalog",
}

#: method names on those handles that constitute data access
_DATA_ACCESS_CALLS = {
    "scan",
    "seek",
    "query",
    "execute",
    "scalar",
    "table",
    "get",
    "get_bytes",
    "open_stream",
    "path_name",
    "data_length",
    "exists",
    "read_bytes",
    "create_from_file",
}

#: recursion bound for same-module callee analysis
_MAX_DEPTH = 3


@dataclass
class Diagnostic:
    """One verifier / linter finding.

    ``rule`` is a stable machine-readable identifier (``UDX-*`` for
    registration-time checks, ``LINT-*`` for plan-time lint); ``obj``
    names the offending function, aggregate, type, or query.
    """

    rule: str
    severity: str  # "error" | "warning" | "info"
    obj: str
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.obj}: [{self.rule}] {self.message}"

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


class VerificationError(BindError):
    """Registration was refused: the extension failed verification.

    Carries the full diagnostic list so callers (tests, the lint CLI)
    can inspect individual rules.
    """

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = list(diagnostics)
        errors = [d for d in diagnostics if d.is_error]
        super().__init__(
            "; ".join(str(d) for d in errors)
            or "; ".join(str(d) for d in diagnostics)
        )


@dataclass
class AnalysisReport:
    """Outcome of analysing one callable (or class-method family)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: None => source unavailable, property unknown
    is_deterministic: Optional[bool] = None
    data_access: str = "NONE"
    #: True when at least one body was parsed and walked
    analyzed: bool = False

    def merge(self, other: "AnalysisReport") -> None:
        """Fold a callee / sibling-method report into this one.

        Determinism combines as a three-valued AND: ``False``
        dominates, and an unverifiable callee (``None`` — source
        unavailable, not analysed) taints an otherwise-``True`` parent
        down to ``None``, so it is never folded or memoised.
        """
        self.diagnostics.extend(other.diagnostics)
        self.analyzed = self.analyzed or other.analyzed
        if other.data_access == "READ":
            self.data_access = "READ"
        if self.is_deterministic is False or other.is_deterministic is False:
            self.is_deterministic = False
        elif self.is_deterministic is None or other.is_deterministic is None:
            self.is_deterministic = None
        else:
            self.is_deterministic = True


def _underlying_function(func: Callable) -> Optional[types.FunctionType]:
    """Unwrap methods/partials down to a plain Python function."""
    seen = 0
    while seen < 8:
        seen += 1
        if isinstance(func, (staticmethod, classmethod)):
            func = func.__func__
            continue
        if inspect.ismethod(func):
            func = func.__func__
            continue
        wrapped = getattr(func, "__wrapped__", None)
        if wrapped is not None:
            func = wrapped
            continue
        break
    return func if isinstance(func, types.FunctionType) else None


def _parse_source(func: types.FunctionType) -> Optional[ast.AST]:
    """Parse the function's source to its def/lambda AST node."""
    try:
        source = textwrap.dedent(inspect.getsource(func))
    except (OSError, TypeError):
        return None
    try:
        tree = ast.parse(source)
    except SyntaxError:
        # a lambda (or decorated def) embedded mid-expression: getsource
        # returns the enclosing statement, which may not parse alone
        return None
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name == func.__name__:
                return node
        if isinstance(node, ast.Lambda) and func.__name__ == "<lambda>":
            return node
    return None


class _BodyWalker(ast.NodeVisitor):
    """One pass over a function body collecting verifier findings."""

    def __init__(
        self,
        owner: str,
        permission_set: str,
        func_globals: dict,
        is_method: bool,
    ):
        self.owner = owner
        self.permission_set = permission_set
        self.globals = func_globals
        self.is_method = is_method
        self.diagnostics: List[Diagnostic] = []
        self.nondeterministic: List[str] = []
        self.data_access = False
        #: plain-name calls that might be same-module helpers
        self.callee_names: Set[str] = set()
        #: module-qualified calls whose determinism cannot be vouched
        #: for (the target module is neither audited nor marked)
        self.unverified_calls: Set[str] = set()
        #: local aliases introduced by imports inside the body
        self._local_modules: dict = {}

    # -- helpers ------------------------------------------------------------

    def _module_of(self, root: Optional[str]) -> Optional[str]:
        """Resolve a root name to a top-level module name, via local
        imports first, then the function's globals."""
        if root is None:
            return None
        if root in self._local_modules:
            return self._local_modules[root]
        value = self.globals.get(root)
        if isinstance(value, types.ModuleType):
            return value.__name__.split(".")[0]
        return None

    def _diag(self, rule: str, severity: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(rule, severity, self.owner, message)
        )

    def _check_module(self, module: str, how: str) -> None:
        top = module.split(".")[0]
        if top in _UNSAFE_ONLY_MODULES and self.permission_set != "UNSAFE":
            self._diag(
                "UDX-UNSAFE-MODULE",
                "error",
                f"{how} {top!r} requires the UNSAFE permission set "
                f"(declared {self.permission_set})",
            )
        elif top in _SAFE_FORBIDDEN_MODULES and self.permission_set == "SAFE":
            self._diag(
                "UDX-SAFE-IMPORT",
                "error",
                f"SAFE code must not {how} {top!r} (I/O / process access "
                "needs EXTERNAL_ACCESS)",
            )

    # -- visitors -----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._local_modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )
            self._check_module(alias.name, "import")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            self._check_module(node.module, "import from")
            top = node.module.split(".")[0]
            markers = _NONDETERMINISTIC.get(top)
            if markers:
                for alias in node.names:
                    if "*" in markers or alias.name in markers:
                        self.nondeterministic.append(
                            f"{top}.{alias.name}"
                        )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._diag(
            "UDX-SAFE-GLOBAL-WRITE",
            "error" if self.permission_set == "SAFE" else "warning",
            f"declares global {', '.join(node.names)} — mutation of "
            "global state is forbidden for SAFE extensions",
        )
        self.generic_visit(node)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._diag(
            "UDX-SAFE-CLOSURE-WRITE",
            "error" if self.permission_set == "SAFE" else "warning",
            f"declares nonlocal {', '.join(node.names)} — mutation of "
            "closed-over state is forbidden for SAFE extensions",
        )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
            if name in _SAFE_FORBIDDEN_CALLS:
                if self.permission_set == "SAFE":
                    self._diag(
                        "UDX-SAFE-CALL",
                        "error",
                        f"SAFE code must not call {name}() "
                        "(needs EXTERNAL_ACCESS)",
                    )
                elif name in ("exec", "eval", "compile", "__import__"):
                    if self.permission_set != "UNSAFE":
                        self._diag(
                            "UDX-UNSAFE-CALL",
                            "error",
                            f"calling {name}() requires the UNSAFE "
                            "permission set",
                        )
            else:
                self.callee_names.add(name)
        elif isinstance(func, ast.Attribute):
            root_node = func.value
            parts = [func.attr]
            while isinstance(root_node, ast.Attribute):
                parts.append(root_node.attr)
                root_node = root_node.value
            parts.reverse()
            root = root_node.id if isinstance(root_node, ast.Name) else None
            method = parts[-1]
            chain = parts[:-1]

            # module-qualified calls: random.random(), datetime.now(), ...
            module = self._module_of(root)
            if module is not None:
                self._check_module(module, "call into")
                markers = _NONDETERMINISTIC.get(module)
                target = parts[0] if chain else method
                if markers and ("*" in markers or target in markers
                                or method in markers):
                    self.nondeterministic.append(f"{module}.{method}")
                elif markers is None and module not in _DETERMINISTIC_MODULES:
                    self.unverified_calls.add(f"{module}.{method}")
            # data access through a closed-over db / store handle
            handle_names = set(chain)
            if root is not None and root != "self":
                handle_names.add(root)
            if (
                handle_names & _DATA_ACCESS_ROOTS
                and method in _DATA_ACCESS_CALLS
            ):
                self.data_access = True
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # non-call uses of nondeterministic attributes (rare) still count
        root, parts = None, []
        cursor: ast.AST = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        parts.reverse()
        if isinstance(cursor, ast.Name):
            root = cursor.id
        module = self._module_of(root)
        if module in _NONDETERMINISTIC and parts:
            markers = _NONDETERMINISTIC[module]
            if "*" in markers or parts[0] in markers:
                self.nondeterministic.append(f"{module}.{parts[0]}")
        self.generic_visit(node)


def analyze_callable(
    func: Callable,
    owner: str,
    permission_set: str = "SAFE",
    depth: int = _MAX_DEPTH,
    _seen: Optional[Set[int]] = None,
) -> AnalysisReport:
    """Analyse one callable's body against ``permission_set``.

    Recurses (bounded) into plain-name callees defined in the same
    module, so a UDF delegating to a module-level helper is still
    verified end to end.
    """
    report = AnalysisReport()
    if permission_set not in PERMISSION_SETS:
        report.diagnostics.append(
            Diagnostic(
                "UDX-PERMISSION-SET",
                "error",
                owner,
                f"unknown permission set {permission_set!r} "
                f"(expected one of {', '.join(PERMISSION_SETS)})",
            )
        )
        return report
    if permission_set == "UNSAFE":
        report.diagnostics.append(
            Diagnostic(
                "UDX-UNSAFE",
                "warning",
                owner,
                "UNSAFE permission set: verification skipped, the "
                "optimizer will trust no inferred properties",
            )
        )
        return report

    plain = _underlying_function(func)
    if plain is None:
        report.diagnostics.append(
            Diagnostic(
                "UDX-NO-SOURCE",
                "info",
                owner,
                "not a plain Python function — properties declared, "
                "not verified",
            )
        )
        return report
    node = _parse_source(plain)
    if node is None:
        report.diagnostics.append(
            Diagnostic(
                "UDX-NO-SOURCE",
                "info",
                owner,
                "source unavailable or unparsable (inline lambda?) — "
                "properties declared, not verified",
            )
        )
        return report

    seen = _seen if _seen is not None else set()
    if id(plain) in seen:
        # recursion cycle: this body is already being analysed further
        # up the stack, so return the neutral element for merge() —
        # its findings are accounted for there, and an empty unanalysed
        # report must not taint the caller's verdict
        report.analyzed = True
        report.is_deterministic = True
        return report
    seen.add(id(plain))

    is_method = bool(plain.__code__.co_varnames[:1] == ("self",))
    walker = _BodyWalker(
        owner, permission_set, plain.__globals__, is_method
    )
    walker.visit(node)
    report.analyzed = True
    report.diagnostics.extend(walker.diagnostics)
    if walker.data_access:
        report.data_access = "READ"
        if permission_set == "SAFE":
            report.diagnostics.append(
                Diagnostic(
                    "UDX-SAFE-DATA-ACCESS",
                    "error",
                    owner,
                    "SAFE code must not reach database / FileStream "
                    "storage (DataAccessKind.Read needs EXTERNAL_ACCESS)",
                )
            )
    if walker.nondeterministic:
        report.is_deterministic = False
        unique = sorted(set(walker.nondeterministic))
        report.diagnostics.append(
            Diagnostic(
                "UDX-NONDETERMINISTIC",
                "info",
                owner,
                "inferred IsDeterministic=false (uses "
                + ", ".join(unique)
                + ")",
            )
        )
    else:
        report.is_deterministic = True

    # Transitive analysis of callees. IsDeterministic=true is only kept
    # when *every* plain-name call target is accounted for: analysed
    # same-module helpers (bounded depth), known-pure builtins, or
    # callables from audited stdlib modules. Anything else — a helper
    # imported from another module, an unresolvable name, a class, a
    # callee past the depth bound — leaves the verdict unknown (None),
    # so the optimizer neither folds nor memoises the call.
    unverified = set(walker.unverified_calls)
    module_name = plain.__module__
    for name in sorted(walker.callee_names):
        callee = plain.__globals__.get(name)
        if callee is None:
            if name not in _DETERMINISTIC_BUILTINS:
                unverified.add(name)
            continue
        target = _underlying_function(callee)
        if target is not None and target.__module__ == module_name:
            if depth > 0:
                sub = analyze_callable(
                    target, owner, permission_set, depth - 1, seen
                )
                report.merge(sub)
            else:
                unverified.add(name)
            continue
        callee_module = (getattr(callee, "__module__", "") or "").split(
            "."
        )[0]
        if callee_module not in _DETERMINISTIC_MODULES:
            unverified.add(name)
    if unverified and report.is_deterministic is True:
        report.is_deterministic = None
        listed = sorted(unverified)
        shown = ", ".join(listed[:5]) + (", ..." if len(listed) > 5 else "")
        report.diagnostics.append(
            Diagnostic(
                "UDX-UNVERIFIED-CALL",
                "info",
                owner,
                "IsDeterministic left unverified — calls that could "
                f"not be statically analysed: {shown}",
            )
        )
    return report


def analyze_class_methods(
    cls: type,
    owner: str,
    method_names: Tuple[str, ...],
    permission_set: str = "SAFE",
) -> AnalysisReport:
    """Analyse the listed methods of ``cls`` as one extension body."""
    report = AnalysisReport()
    # start from the merge() neutral element; any unverifiable method
    # taints the verdict down to None, any marker use down to False
    report.is_deterministic = True
    any_analyzed = False
    for method_name in method_names:
        method = getattr(cls, method_name, None)
        if method is None:
            continue
        sub = analyze_callable(method, f"{owner}.{method_name}",
                               permission_set)
        any_analyzed = any_analyzed or sub.analyzed
        report.merge(sub)
    report.analyzed = any_analyzed
    if not any_analyzed:
        report.is_deterministic = None
    if permission_set == "UNSAFE":
        # one warning, not one per method
        unsafe = [
            d for d in report.diagnostics if d.rule == "UDX-UNSAFE"
        ]
        report.diagnostics = [
            d for d in report.diagnostics if d.rule != "UDX-UNSAFE"
        ]
        if unsafe:
            first = unsafe[0]
            report.diagnostics.append(
                Diagnostic(first.rule, first.severity, owner, first.message)
            )
    return report
