"""The golden plan corpus: shipped plan shapes the sanitizer must pass.

One canonical set of schemas and queries — the paper's Figure 9/10 plan
shapes plus the differential suite's scan/filter/join/aggregate shapes —
planned under every storage engine (heap / columnstore), execution mode
(row / auto-batch), and DOP in {1, 2, 4}, then pushed through
:func:`~.plan_sanitizer.sanitize_plan`. Zero diagnostics over this
corpus is the sanitizer's own regression bar: it gates CI via
``repro-genomics sanitize --self`` and is asserted by
``tests/engine/test_plan_sanitizer.py``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .udx_verifier import Diagnostic

#: Figure 9/10 schema (the engine-level reduction used by the golden
#: plan-shape tests) — always heap, it exercises index seeks and joins
FIGURE_DDL = (
    """
    CREATE TABLE [Read] (
        r_e_id INT, r_sg_id INT, r_s_id INT, r_id INT,
        short_read_seq VARCHAR(20),
        PRIMARY KEY (r_e_id, r_sg_id, r_s_id, r_id)
    )
    """,
    """
    CREATE TABLE Alignment (
        a_e_id INT, a_sg_id INT, a_s_id INT, a_id INT,
        a_pos INT,
        PRIMARY KEY (a_e_id, a_sg_id, a_s_id, a_id)
    )
    """,
)

FIGURE_QUERIES = (
    # Figure 9: parallel tag-frequency aggregation
    """
    SELECT short_read_seq, COUNT(*) AS frequency FROM [Read]
    WHERE r_e_id = 1 AND r_sg_id = 1 AND r_s_id = 1
    GROUP BY short_read_seq
    """,
    # Figure 10: co-clustered merge join
    """
    SELECT a_id, short_read_seq FROM Alignment
    JOIN [Read] ON (a_e_id = r_e_id AND a_sg_id = r_sg_id
                    AND a_s_id = r_s_id AND a_id = r_id)
    WHERE a_e_id = 1 AND a_sg_id = 1 AND a_s_id = 1
    """,
)

#: the differential-suite shapes: scan/filter/project, aggregation,
#: joins, sort/top/distinct — planned per storage engine below
SALES_QUERIES = (
    "SELECT region, COUNT(*), SUM(amount) FROM sales "
    "WHERE amount > 10 GROUP BY region",
    "SELECT id, amount FROM sales WHERE amount > 25 AND region = 'north'",
    "SELECT id FROM sales WHERE amount > 10 OR price > 20.0",
    "SELECT id FROM sales WHERE amount IS NULL",
    "SELECT COUNT(*), COUNT(amount), SUM(amount), AVG(price), "
    "MIN(amount), MAX(amount) FROM sales",
    "SELECT region, AVG(price), SUM(price) FROM sales GROUP BY region",
    "SELECT region, COUNT(DISTINCT product) FROM sales GROUP BY region",
    "SELECT id FROM sales WHERE amount BETWEEN 5 AND 15",
    "SELECT id FROM sales WHERE region IN ('north', 'east') AND amount > 30",
    "SELECT id FROM sales WHERE product LIKE 'wid%' AND amount > 40",
    "SELECT s.id, r.zone FROM sales AS s JOIN regions AS r "
    "ON s.region = r.name WHERE s.amount > 45",
    "SELECT region, SUM(amount) FROM sales GROUP BY region "
    "HAVING SUM(amount) > 100",
    "SELECT DISTINCT region FROM sales WHERE amount > 10",
    "SELECT id, amount FROM sales WHERE amount > 10 ORDER BY amount DESC, id",
    "SELECT TOP 7 id FROM sales WHERE amount > 20",
    "SELECT id, amount * 2 + 1, -amount FROM sales WHERE id < 50",
    "SELECT region, product, COUNT(*), MIN(amount), MAX(amount) "
    "FROM sales GROUP BY region, product",
)

DOPS = (1, 2, 4)


def _build_figure_db(database) -> None:
    for ddl in FIGURE_DDL:
        database.execute(ddl)
    for i in range(12):
        database.execute(
            f"INSERT INTO [Read] VALUES (1, 1, 1, {i}, 'ACGT{i % 3}')"
        )
        database.execute(
            f"INSERT INTO Alignment VALUES (1, 1, 1, {i}, {i * 7})"
        )


def _build_sales_db(database, storage: str) -> None:
    with_clause = (
        " WITH (STORAGE = 'COLUMN', SEGMENT_ROWS = 128)"
        if storage == "column"
        else ""
    )
    database.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, region VARCHAR(10), "
        f"product VARCHAR(10), amount INT, price FLOAT){with_clause}"
    )
    regions = ["north", "south", "east", "west"]
    products = ["widget", "gadget", "gizmo"]
    values = []
    for i in range(600):
        region = regions[i % 4]
        product = products[i % 3]
        amount = (i * 7) % 50 if i % 11 else "NULL"
        price = f"{(i % 13) * 2.5}" if i % 17 else "NULL"
        values.append(f"({i}, '{region}', '{product}', {amount}, {price})")
    database.execute("INSERT INTO sales VALUES " + ",".join(values))
    database.execute(
        "CREATE TABLE regions (name VARCHAR(10) PRIMARY KEY, zone INT)"
    )
    database.execute(
        "INSERT INTO regions VALUES ('north', 1), ('south', 1), "
        "('east', 2), ('west', 2)"
    )
    database.execute("UPDATE STATISTICS sales")
    database.execute("UPDATE STATISTICS regions")


def corpus_plans():
    """Yield ``(description, plan, database)`` for every corpus entry.

    Spans every (schema, storage engine, execution mode, DOP)
    combination; each yielded plan is live against its database, which
    is closed once iteration advances past its group.
    """
    from ..database import Database

    for mode in ("auto", "row"):
        with Database() as database:
            database.execution_mode = mode
            _build_figure_db(database)
            for sql in FIGURE_QUERIES:
                for dop in DOPS:
                    hinted = f"{sql} OPTION (MAXDOP {dop})"
                    yield (
                        f"figure/{mode}/dop={dop}: {' '.join(sql.split())}",
                        database.plan(hinted),
                        database,
                    )
        for storage in ("heap", "column"):
            with Database() as database:
                database.execution_mode = mode
                _build_sales_db(database, storage)
                for sql in SALES_QUERIES:
                    for dop in DOPS:
                        hinted = f"{sql} OPTION (MAXDOP {dop})"
                        yield (
                            f"sales/{storage}/{mode}/dop={dop}: {sql}",
                            database.plan(hinted),
                            database,
                        )


def sanitize_corpus() -> List[Tuple[str, Diagnostic]]:
    """Sanitize every corpus plan; returns (description, finding) pairs.

    An empty list is the pass verdict — every shipped plan shape proves
    every executor invariant.
    """
    from .plan_sanitizer import sanitize_plan

    failures: List[Tuple[str, Diagnostic]] = []
    for description, plan, database in corpus_plans():
        for finding in sanitize_plan(plan, database):
            failures.append((description, finding))
    return failures
