"""Static sanitizer for physical plans: prove what the executor assumes.

The executor trusts every plan the planner hands it — schema flow
through bridges, positional key indexes, exchange-offload eligibility,
columnstore pushdown shapes. Each of those is an *invariant the planner
is supposed to establish*, silently assumed downstream. This module
re-proves them over a finished physical operator tree, independently of
the code that established them, and reports violations as structured
diagnostics with stable ``PLAN-*`` rule IDs and the operator path the
finding anchors to.

Invariant catalog (the rule IDs are stable; tests and CI grep them):

- **PLAN-ARITY** — a node's output arity disagrees with its own
  projection/aggregate descriptors or with what its parent consumes
  (``Project`` fns vs columns, join output vs left+right, aggregate
  output vs groups+aggregates).
- **PLAN-SCHEMA** — output column *names* break the flow invariant:
  pass-through operators must preserve the child's schema, scans must
  agree with the table schema through their projection/position maps.
- **PLAN-MODE** — row↔batch mode-transition legality: ``batch``
  execution mode on a non-batch-capable operator, an unknown mode tag,
  or a batch-mode node inside a session forced to row mode.
- **PLAN-FUSION** — a ``FusedFilterProject`` where the planner may not
  fuse: no batch predicate, or fusion under a forced-row session.
- **PLAN-KEY-RANGE** — positional key/argument indexes out of range:
  hash-join key indexes vs child arity, aggregate ``group_indexes`` and
  ``arg_index`` vs input arity, scan projections vs table schema.
- **PLAN-EXCHANGE-MERGE** — a non-merge-safe aggregate (UDA without a
  verified ``merge``) inside a parallel exchange.
- **PLAN-EXCHANGE-DOP** — a parallel exchange with a nonsensical
  degree of parallelism.
- **PLAN-EXCHANGE-FLOAT-SUM** — the float-reassociation gate defeated:
  a SUM/AVG over a non-integer column would take the range-partitioned
  scan tier (whose coordinator merge re-adds partial sums).
- **PLAN-EXCHANGE-SILENT** — a parallel exchange that cannot offload
  (unshippable descriptors or a scan blocker) with no ``note:`` line
  explaining the fallback: a serial fallback must never be silent.
- **PLAN-PUSHDOWN-OP** — a pushed predicate whose comparison operator
  the segment evaluator does not implement.
- **PLAN-PUSHDOWN-RANGE** — a pushed predicate addressing a column
  position outside the table schema.
- **PLAN-PUSHDOWN-SHAPE** — a pushed predicate whose literal payload
  has the wrong shape for its operator (``BETWEEN`` without a
  ``(lo, hi)`` pair, ``IN`` without a container, null tests with a
  value).
- **PLAN-PUSHDOWN-ENC** — a pushed predicate over a sealed segment
  whose encoding the encoded-vector evaluator cannot decode.

Run it directly via :func:`sanitize_plan`, per-statement via
``SET PLAN_VERIFY ON`` (or ``REPRO_PLAN_VERIFY=1``), or over the golden
corpus via ``repro-genomics sanitize``.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from .udx_verifier import Diagnostic

#: stable rule catalog: rule id -> (default severity, summary)
RULES = {
    "PLAN-ARITY": ("error", "output arity disagrees with descriptors"),
    "PLAN-SCHEMA": ("error", "column names break the schema-flow invariant"),
    "PLAN-MODE": ("error", "illegal row/batch execution-mode transition"),
    "PLAN-FUSION": ("error", "filter/project fusion where fusing is illegal"),
    "PLAN-KEY-RANGE": ("error", "positional key/argument index out of range"),
    "PLAN-EXCHANGE-MERGE": (
        "error",
        "non-merge-safe aggregate inside a parallel exchange",
    ),
    "PLAN-EXCHANGE-DOP": ("error", "parallel exchange with invalid DOP"),
    "PLAN-EXCHANGE-FLOAT-SUM": (
        "error",
        "float SUM/AVG admitted to the reassociating scan tier",
    ),
    "PLAN-EXCHANGE-SILENT": (
        "warning",
        "exchange fallback carries no explanatory plan note",
    ),
    "PLAN-PUSHDOWN-OP": ("error", "pushed predicate with unsupported op"),
    "PLAN-PUSHDOWN-RANGE": (
        "error",
        "pushed predicate column position out of schema range",
    ),
    "PLAN-PUSHDOWN-SHAPE": (
        "error",
        "pushed predicate literal shape wrong for its op",
    ),
    "PLAN-PUSHDOWN-ENC": (
        "error",
        "pushed predicate over an undecodable segment encoding",
    ),
}

#: operators evaluable on encoded vectors / zone maps (mirrors
#: ``PushedPredicate.matcher``; kept literal so a drifting matcher is a
#: *sanitizer* test failure, not a silent widening)
_PUSHDOWN_OPS = frozenset(
    ("=", "<>", "<", "<=", ">", ">=", "in", "between", "isnull", "notnull")
)

#: segment encodings the encoded evaluator can decode
_KNOWN_ENCODINGS = frozenset(("plain", "dict", "rle", "bitpack"))


def _bare(name: str) -> str:
    """Strip an alias qualifier off an output column name."""
    return name.rsplit(".", 1)[-1].lower()


def _node_label(op) -> str:
    label = getattr(op, "node_label", None)
    if isinstance(label, str) and label:
        return label
    return type(op).__name__


def walk_plan(op, path: str = "") -> Iterator[Tuple[str, Any]]:
    """Yield ``(operator path, node)`` pairs, root first (delegates to
    :meth:`PhysicalOperator.walk` when the node provides it)."""
    walk = getattr(op, "walk", None)
    if walk is not None:
        yield from walk(path)
        return
    here = f"{path}/{_node_label(op)}" if path else _node_label(op)
    yield here, op
    for child in op.children():
        yield from walk_plan(child, here)


class _Findings:
    """Diagnostic accumulator bound to one plan walk."""

    def __init__(self) -> None:
        self.diagnostics: List[Diagnostic] = []

    def add(self, rule: str, path: str, message: str,
            severity: Optional[str] = None) -> None:
        default_severity, _summary = RULES[rule]
        self.diagnostics.append(
            Diagnostic(rule, severity or default_severity, path, message)
        )


# ---------------------------------------------------------------------------
# per-family checks
# ---------------------------------------------------------------------------


def _check_mode(node, path: str, out: _Findings, forced_row: bool) -> None:
    mode = getattr(node, "execution_mode", "row")
    if mode not in ("row", "batch"):
        out.add(
            "PLAN-MODE", path, f"unknown execution mode {mode!r}"
        )
        return
    if mode == "batch" and not getattr(node, "batch_capable", False):
        out.add(
            "PLAN-MODE",
            path,
            "batch execution mode on a row-only operator — the iterator "
            "bridge cannot drive execute_batch() here",
        )
    if mode == "batch" and forced_row:
        out.add(
            "PLAN-MODE",
            path,
            "batch-mode node under a session forced to row mode",
        )


def _check_projection_ops(node, path: str, out: _Findings,
                          forced_row: bool = False) -> None:
    from ..executor.operators import FusedFilterProject, Project

    if isinstance(node, (Project, FusedFilterProject)):
        if len(node.fns) != len(node.columns):
            out.add(
                "PLAN-ARITY",
                path,
                f"projection computes {len(node.fns)} expressions but "
                f"outputs {len(node.columns)} columns",
            )
        batch_fns = getattr(node, "batch_fns", None)
        if batch_fns and len(batch_fns) != len(node.fns):
            out.add(
                "PLAN-ARITY",
                path,
                f"projection has {len(node.fns)} row compilations but "
                f"{len(batch_fns)} batch compilations",
            )
    if isinstance(node, FusedFilterProject):
        if node.batch_predicate is None:
            out.add(
                "PLAN-FUSION",
                path,
                "fused filter/project without a batch predicate — fusion "
                "exists only to serve the batch pipeline",
            )
        if forced_row:
            out.add(
                "PLAN-FUSION",
                path,
                "fused filter/project planned under a session forced to "
                "row mode — the planner may only fuse for batch pipelines",
            )


def _check_passthrough(node, path: str, out: _Findings) -> None:
    """Pass-through operators must preserve the child schema exactly."""
    from ..executor.operators import Distinct, Filter, Sort, Top

    if isinstance(node, (Filter, Sort, Top, Distinct)):
        child = node.child
        if list(node.columns) != list(child.columns):
            out.add(
                "PLAN-SCHEMA",
                path,
                f"{type(node).__name__} outputs {node.columns} but its "
                f"child produces {child.columns} — pass-through operators "
                "must not reshape the row",
            )


def _check_joins(node, path: str, out: _Findings) -> None:
    from ..executor.joins import HashJoin, MergeJoin, NestedLoopJoin

    if not isinstance(node, (HashJoin, MergeJoin, NestedLoopJoin)):
        return
    left, right = node.left, node.right
    expected = len(left.columns) + len(right.columns)
    if len(node.columns) != expected:
        out.add(
            "PLAN-ARITY",
            path,
            f"join outputs {len(node.columns)} columns but its inputs "
            f"produce {expected}",
        )
    elif list(node.columns) != list(left.columns) + list(right.columns):
        out.add(
            "PLAN-SCHEMA",
            path,
            "join output is not the concatenation of its input schemas",
        )
    if isinstance(node, HashJoin):
        for side, indexes, child in (
            ("left", node.left_key_indexes, left),
            ("right", node.right_key_indexes, right),
        ):
            if indexes is None:
                continue
            for index in indexes:
                if not 0 <= index < len(child.columns):
                    out.add(
                        "PLAN-KEY-RANGE",
                        path,
                        f"{side} join key index {index} outside the "
                        f"{side} input's {len(child.columns)} columns",
                    )


def _check_aggregates(node, path: str, out: _Findings) -> None:
    from ..executor.operators import HashAggregate, StreamAggregate
    from ..executor.parallel import ParallelHashAggregate, ParallelMergeUda

    if isinstance(node, (HashAggregate, ParallelHashAggregate)):
        group_count = len(node.group_fns)
        agg_count = len(node.aggregates)
        specs = node.aggregates
        group_indexes = node.group_indexes
    elif isinstance(node, StreamAggregate):
        group_count = len(node.group_fns)
        agg_count = len(node.aggregates)
        specs = node.aggregates
        group_indexes = None
    elif isinstance(node, ParallelMergeUda):
        group_count = len(node.group_fns)
        agg_count = 1
        specs = [node.spec]
        group_indexes = None
    else:
        return
    child = node.child
    if len(node.columns) != group_count + agg_count:
        out.add(
            "PLAN-ARITY",
            path,
            f"aggregate outputs {len(node.columns)} columns for "
            f"{group_count} group keys + {agg_count} aggregates",
        )
    if group_indexes is not None:
        if len(group_indexes) != group_count:
            out.add(
                "PLAN-KEY-RANGE",
                path,
                f"{len(group_indexes)} positional group keys for "
                f"{group_count} group expressions",
            )
        for index in group_indexes:
            if not 0 <= index < len(child.columns):
                out.add(
                    "PLAN-KEY-RANGE",
                    path,
                    f"group key index {index} outside the input's "
                    f"{len(child.columns)} columns",
                )
    for spec in specs:
        arg_index = getattr(spec, "arg_index", None)
        if arg_index is not None and not 0 <= arg_index < len(child.columns):
            out.add(
                "PLAN-KEY-RANGE",
                path,
                f"{spec.describe()} argument index {arg_index} outside "
                f"the input's {len(child.columns)} columns",
            )


def _scan_schema_type(scan, output_index: int):
    """Independently resolve a scan output position to its schema type —
    *by name*, not through the scan's own position maps, so a corrupted
    map is caught rather than trusted. None when the node is not a
    table-backed scan or the position is out of range (those are other
    rules' findings)."""
    table = getattr(scan, "table", None)
    columns = getattr(scan, "columns", ())
    if table is None or not 0 <= output_index < len(columns):
        return None
    name = _bare(columns[output_index])
    for column in table.schema.columns:
        if column.name.lower() == name:
            return column.sql_type
    return None


def _check_exchange(node, path: str, out: _Findings,
                    plan_notes: Sequence[str]) -> None:
    from ..executor.exchange import (
        rebuild_shippable_specs,
        rows_offload_blocker,
        scan_offload_blocker,
    )
    from ..executor.parallel import ParallelHashAggregate

    if not isinstance(node, ParallelHashAggregate):
        return
    if not isinstance(node.dop, int) or node.dop < 1:
        out.add(
            "PLAN-EXCHANGE-DOP", path, f"degree of parallelism {node.dop!r}"
        )
    for spec in node.aggregates:
        if not spec.parallel_safe:
            out.add(
                "PLAN-EXCHANGE-MERGE",
                path,
                f"{spec.describe()} has no verified merge — its partial "
                "states cannot be recombined by the gather",
            )
    if node.dop <= 1:
        return
    ship = rebuild_shippable_specs(node.aggregates)
    scan_blocker = (
        scan_offload_blocker(node.child, node.aggregates, node.group_indexes)
        if ship is not None
        else "descriptors cannot ship"
    )
    if scan_blocker is None:
        # the runtime gate would admit this plan to the range-partitioned
        # scan tier; re-prove the float-reassociation gate independently
        for spec in node.aggregates:
            if spec.uda_class is not None or spec.distinct or spec.star:
                continue
            if spec.name not in ("sum", "avg") or spec.arg_index is None:
                continue
            sql_type = _scan_schema_type(node.child, spec.arg_index)
            if sql_type is not None and not sql_type.is_integer:
                out.add(
                    "PLAN-EXCHANGE-FLOAT-SUM",
                    path,
                    f"{spec.describe()} over non-integer column "
                    f"{node.child.columns[spec.arg_index]!r} would merge "
                    "range-partition partials (float addition "
                    "reassociates) — the offload gate has been defeated",
                )
    else:
        rows_blocker = (
            rows_offload_blocker(node.aggregates, node.group_indexes)
            if ship is not None
            else "descriptors cannot ship"
        )
        if rows_blocker is not None and not any(
            "exchange will" in note for note in plan_notes
        ):
            out.add(
                "PLAN-EXCHANGE-SILENT",
                path,
                f"exchange cannot offload ({rows_blocker}) and the plan "
                "carries no note: line saying so — a serial fallback "
                "must never be silent",
            )


def _check_scans(node, path: str, out: _Findings) -> None:
    from ..executor.operators import ColumnStoreScan, TableScan

    if isinstance(node, TableScan):
        schema_columns = node.table.schema.columns
        projection = node.projection
        if projection is not None:
            if len(projection) != len(node.columns):
                out.add(
                    "PLAN-ARITY",
                    path,
                    f"scan projects {len(projection)} schema positions "
                    f"into {len(node.columns)} output columns",
                )
                return
            for out_index, schema_index in enumerate(projection):
                if not 0 <= schema_index < len(schema_columns):
                    out.add(
                        "PLAN-KEY-RANGE",
                        path,
                        f"projection position {schema_index} outside the "
                        f"table's {len(schema_columns)} columns",
                    )
                elif (
                    _bare(node.columns[out_index])
                    != schema_columns[schema_index].name.lower()
                ):
                    out.add(
                        "PLAN-SCHEMA",
                        path,
                        f"output column {node.columns[out_index]!r} maps "
                        f"to schema position {schema_index} "
                        f"({schema_columns[schema_index].name!r})",
                    )
        return
    if isinstance(node, ColumnStoreScan):
        schema_columns = node.table.schema.columns
        positions = node.out_positions
        if len(positions) != len(node.columns):
            out.add(
                "PLAN-ARITY",
                path,
                f"column scan reads {len(positions)} positions into "
                f"{len(node.columns)} output columns",
            )
            return
        for out_index, schema_index in enumerate(positions):
            if not 0 <= schema_index < len(schema_columns):
                out.add(
                    "PLAN-KEY-RANGE",
                    path,
                    f"segment position {schema_index} outside the "
                    f"table's {len(schema_columns)} columns",
                )
            elif (
                _bare(node.columns[out_index])
                != schema_columns[schema_index].name.lower()
            ):
                out.add(
                    "PLAN-SCHEMA",
                    path,
                    f"output column {node.columns[out_index]!r} maps to "
                    f"segment position {schema_index} "
                    f"({schema_columns[schema_index].name!r})",
                )
        _check_pushdown(node, path, out)


def _check_pushdown(scan, path: str, out: _Findings) -> None:
    """Pushed predicates must be evaluable against the segments that
    actually exist — op, position, literal shape, and encoding."""
    schema_columns = scan.table.schema.columns
    predicates = list(getattr(scan, "predicates", ()))
    for pred in predicates:
        label = pred.label or f"{pred.op} predicate"
        if pred.op not in _PUSHDOWN_OPS:
            out.add(
                "PLAN-PUSHDOWN-OP",
                path,
                f"pushed predicate {label!r} uses op {pred.op!r} which "
                "the segment evaluator does not implement",
            )
            continue
        if not 0 <= pred.col_index < len(schema_columns):
            out.add(
                "PLAN-PUSHDOWN-RANGE",
                path,
                f"pushed predicate {label!r} addresses column position "
                f"{pred.col_index} outside the table's "
                f"{len(schema_columns)} columns",
            )
            continue
        if pred.op == "between":
            if not (
                isinstance(pred.value, (tuple, list)) and len(pred.value) == 2
            ):
                out.add(
                    "PLAN-PUSHDOWN-SHAPE",
                    path,
                    f"BETWEEN predicate {label!r} needs a (lo, hi) pair, "
                    f"got {pred.value!r}",
                )
        elif pred.op == "in":
            if not hasattr(pred.value, "__contains__"):
                out.add(
                    "PLAN-PUSHDOWN-SHAPE",
                    path,
                    f"IN predicate {label!r} needs a container, got "
                    f"{pred.value!r}",
                )
        elif pred.op in ("isnull", "notnull"):
            if pred.value is not None:
                out.add(
                    "PLAN-PUSHDOWN-SHAPE",
                    path,
                    f"null-test predicate {label!r} carries a literal "
                    f"{pred.value!r}",
                )
    store = getattr(scan.table, "store", None)
    segments = getattr(store, "segments", None)
    if not predicates or not segments:
        return
    for segment_id, segment in enumerate(segments):
        for pred in predicates:
            if not 0 <= pred.col_index < len(segment.columns):
                continue  # reported above against the schema
            encoding = segment.columns[pred.col_index].encoding
            if encoding not in _KNOWN_ENCODINGS:
                out.add(
                    "PLAN-PUSHDOWN-ENC",
                    path,
                    f"segment {segment_id} column {pred.col_index} holds "
                    f"encoding {encoding!r} which the encoded evaluator "
                    "cannot decode",
                )


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def sanitize_plan(root, database=None) -> List[Diagnostic]:
    """Walk one physical plan and prove every executor invariant.

    Returns structured diagnostics (stable ``PLAN-*`` rule IDs, operator
    path as the object); an empty list is the proof that the plan is
    clean. Never raises for a malformed plan — a verifier that crashes
    on the input it exists to reject is useless.
    """
    out = _Findings()
    forced_row = (
        getattr(database, "execution_mode", "auto") == "row"
        if database is not None
        else False
    )
    plan_notes = list(getattr(root, "plan_notes", ()) or ())
    for path, node in walk_plan(root):
        _check_mode(node, path, out, forced_row)
        _check_projection_ops(node, path, out, forced_row)
        _check_passthrough(node, path, out)
        _check_joins(node, path, out)
        _check_aggregates(node, path, out)
        _check_exchange(node, path, out, plan_notes)
        _check_scans(node, path, out)
    return out.diagnostics
