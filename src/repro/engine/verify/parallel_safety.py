"""Static fork/pickle-safety analysis of the parallel engine's source.

The worker pool's correctness rests on source-level conventions that no
runtime check enforces:

- task handlers are dispatched **by name** (``_TASK_KINDS``), so the
  child process resolves them by importing the module — never by
  unpickling a code object. A handler that is not a module-level
  function of the same module breaks resolution in the child.
- task payloads must survive :func:`pickle.dumps` on the coordinator;
  a lambda or nested closure embedded by a payload builder fails at
  runtime, on the first parallel query, in production.
- module-level mutable state is **duplicated** by ``fork`` — mutations
  in a worker are invisible to the coordinator and to sibling workers.
  That is exactly right for worker-local caches and exactly wrong for
  anything meant to be shared, so every mutated module-level container
  must be *declared* worker-local (``WORKER_LOCAL_STATE``).
- span/phase timing must use the monotonic ``time.perf_counter`` —
  it shares one clock across forked children, which is what lets worker
  spans graft onto the coordinator's trace without translation.
  ``time.time`` / ``datetime.now`` are wall clocks that NTP can step.

This module proves those conventions with a Python-``ast`` pass (the
same approach as :mod:`.udx_verifier`), reported under stable
``FORK-*`` rule IDs:

- **FORK-HANDLER-TOPLEVEL** — a ``_TASK_KINDS`` entry that is not a
  module-level function of the analysed module.
- **FORK-PICKLE-CLOSURE** — a lambda or nested function inside a task
  payload builder (functions matching ``build*task*`` /
  ``rebuild*spec*``): the payload would embed an unpicklable closure.
- **FORK-SHARED-STATE** — a module-level mutable container mutated
  from function scope without a ``WORKER_LOCAL_STATE`` declaration:
  state that silently diverges across the fork boundary.
- **FORK-CLOCK** — a non-monotonic clock call (``time.time``,
  ``datetime.now`` / ``utcnow``) in a module whose spans are timed.

Run it over the engine's own parallel modules with
:func:`analyze_fork_safety` (the ``repro-genomics sanitize --self``
pass), or over arbitrary files by passing paths.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .udx_verifier import Diagnostic

#: stable rule catalog: rule id -> (default severity, summary)
RULES = {
    "FORK-HANDLER-TOPLEVEL": (
        "error",
        "task handler not resolvable by name in a forked child",
    ),
    "FORK-PICKLE-CLOSURE": (
        "error",
        "unpicklable closure embedded in a task payload builder",
    ),
    "FORK-SHARED-STATE": (
        "error",
        "undeclared module-level mutable state mutated across fork",
    ),
    "FORK-CLOCK": (
        "error",
        "non-monotonic clock in span/phase timing code",
    ),
    "FORK-PARSE": ("error", "module source failed to parse"),
}

#: engine modules whose fork-boundary conventions the --self pass proves
DEFAULT_MODULES = (
    "workers.py",
    "executor/exchange.py",
    "executor/parallel.py",
)

#: constructors whose results are module-level mutable containers
_MUTABLE_FACTORIES = frozenset(
    ("dict", "list", "set", "OrderedDict", "defaultdict", "Counter", "deque")
)

#: method calls that mutate a container in place
_MUTATORS = frozenset(
    (
        "append",
        "add",
        "update",
        "pop",
        "popitem",
        "setdefault",
        "move_to_end",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
    )
)

#: functions that assemble worker task payloads (checked for closures)
_PAYLOAD_BUILDER = re.compile(r"(?:^|_)(?:re)?build\w*(?:task|spec)")


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node,
        (ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp),
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
        return name in _MUTABLE_FACTORIES
    return False


def _string_elements(node: ast.expr) -> Set[str]:
    """Constant strings inside a set/list/tuple (or frozenset(...) of one)."""
    if isinstance(node, ast.Call) and node.args:
        return _string_elements(node.args[0])
    names: Set[str] = set()
    for element in getattr(node, "elts", ()):
        if isinstance(element, ast.Constant) and isinstance(element.value, str):
            names.add(element.value)
    return names


def _local_bindings(func: ast.AST) -> Set[str]:
    """Names bound in a function's own scope (params + assignments)."""
    bound: Set[str] = set()
    args = func.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name) and not isinstance(
                        name_node.ctx, ast.Load
                    ):
                        bound.add(name_node.id)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    bound.add(name_node.id)
    return bound


class _ModuleAnalysis:
    def __init__(self, tree: ast.Module, name: str,
                 worker_local: Set[str]) -> None:
        self.tree = tree
        self.name = name
        self.diagnostics: List[Diagnostic] = []
        self.toplevel_functions = {
            node.name
            for node in tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self.mutable_globals: Set[str] = set()
        self.worker_local = set(worker_local)
        for node in tree.body:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "WORKER_LOCAL_STATE":
                    self.worker_local |= _string_elements(value)
                elif _is_mutable_literal(value):
                    self.mutable_globals.add(target.id)

    def add(self, rule: str, line: int, message: str) -> None:
        severity, _summary = RULES[rule]
        self.diagnostics.append(
            Diagnostic(rule, severity, f"{self.name}:{line}", message)
        )

    # -- rules ---------------------------------------------------------------

    def check_task_kinds(self) -> None:
        for node in self.tree.body:
            if not (
                isinstance(node, ast.Assign)
                and any(
                    isinstance(t, ast.Name) and t.id == "_TASK_KINDS"
                    for t in node.targets
                )
                and isinstance(node.value, ast.Dict)
            ):
                continue
            for value in node.value.values:
                if not isinstance(value, ast.Name):
                    self.add(
                        "FORK-HANDLER-TOPLEVEL",
                        value.lineno,
                        "task handler is not a plain module-level name — "
                        "a forked child resolves handlers by importing "
                        "this module",
                    )
                elif value.id not in self.toplevel_functions:
                    self.add(
                        "FORK-HANDLER-TOPLEVEL",
                        value.lineno,
                        f"task handler {value.id!r} is not a module-level "
                        "function of this module",
                    )

    def check_payload_closures(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _PAYLOAD_BUILDER.search(node.name.lower()):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.Lambda):
                    self.add(
                        "FORK-PICKLE-CLOSURE",
                        inner.lineno,
                        f"lambda inside payload builder {node.name!r} — "
                        "closures do not pickle; rebuild accessors as "
                        "operator.itemgetter",
                    )
                elif (
                    isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and inner is not node
                ):
                    self.add(
                        "FORK-PICKLE-CLOSURE",
                        inner.lineno,
                        f"nested function {inner.name!r} inside payload "
                        f"builder {node.name!r} — a payload referencing it "
                        "cannot be unpickled by a worker",
                    )

    def check_shared_state(self) -> None:
        suspects = self.mutable_globals - self.worker_local
        if not suspects:
            return
        for func in ast.walk(self.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            locals_ = _local_bindings(func)
            for node in ast.walk(func):
                if isinstance(node, ast.Global):
                    for name in node.names:
                        if name in suspects:
                            self.add(
                                "FORK-SHARED-STATE",
                                node.lineno,
                                f"function {func.name!r} rebinds module "
                                f"global {name!r} — state diverges across "
                                "the fork boundary; declare it in "
                                "WORKER_LOCAL_STATE if that is intended",
                            )
                    continue
                target_name: Optional[str] = None
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Name
                        ):
                            target_name = target.value.id
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in _MUTATORS
                ):
                    target_name = node.func.value.id
                if (
                    target_name is not None
                    and target_name in suspects
                    and target_name not in locals_
                ):
                    self.add(
                        "FORK-SHARED-STATE",
                        node.lineno,
                        f"function {func.name!r} mutates module-level "
                        f"container {target_name!r} — after fork each "
                        "process sees its own copy; declare it in "
                        "WORKER_LOCAL_STATE if worker-local is intended",
                    )

    def check_clocks(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            if (
                isinstance(value, ast.Name)
                and value.id == "time"
                and func.attr in ("time", "clock")
            ):
                self.add(
                    "FORK-CLOCK",
                    node.lineno,
                    f"time.{func.attr}() is a steppable wall clock — span "
                    "and phase timing must use time.perf_counter so worker "
                    "spans graft onto the coordinator trace",
                )
            elif func.attr in ("now", "utcnow") and (
                (isinstance(value, ast.Name) and value.id == "datetime")
                or (
                    isinstance(value, ast.Attribute)
                    and value.attr == "datetime"
                )
            ):
                self.add(
                    "FORK-CLOCK",
                    node.lineno,
                    f"datetime.{func.attr}() is a wall clock — span and "
                    "phase timing must use time.perf_counter",
                )

    def run(self) -> List[Diagnostic]:
        self.check_task_kinds()
        self.check_payload_closures()
        self.check_shared_state()
        self.check_clocks()
        return self.diagnostics


def analyze_source(
    source: str,
    name: str,
    worker_local: Iterable[str] = (),
) -> List[Diagnostic]:
    """Run the fork-safety pass over one module's source text."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        severity, _summary = RULES["FORK-PARSE"]
        return [
            Diagnostic(
                "FORK-PARSE",
                severity,
                f"{name}:{exc.lineno or 0}",
                f"source failed to parse: {exc.msg}",
            )
        ]
    return _ModuleAnalysis(tree, name, set(worker_local)).run()


def analyze_path(path: Path, worker_local: Iterable[str] = ()) -> List[Diagnostic]:
    return analyze_source(
        path.read_text(encoding="utf-8"), path.name, worker_local
    )


def analyze_fork_safety(
    paths: Optional[Sequence[Path]] = None,
) -> List[Diagnostic]:
    """Fork-safety pass over the engine's parallel modules (or ``paths``).

    The allowlist for worker-local caches is *not* passed in: each
    module must carry its own ``WORKER_LOCAL_STATE`` declaration, so the
    exemption is visible in the source the rule fires on.
    """
    if paths is None:
        engine_dir = Path(__file__).resolve().parent.parent
        paths = [engine_dir / relative for relative in DEFAULT_MODULES]
    diagnostics: List[Diagnostic] = []
    for path in paths:
        diagnostics.extend(analyze_path(Path(path)))
    return diagnostics
