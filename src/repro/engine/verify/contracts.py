"""Structural contract checking at ``FunctionLibrary.register_*`` time.

The CLR contracts the paper's extensions build on are structural:
``SqlUserDefinedAggregate`` requires ``Init/Accumulate/Merge/Terminate``
with specific shapes, a streaming TVF must hand the query processor an
``IEnumerator`` (never a materialised collection), and ``FillRow`` must
produce exactly the declared output columns. SQL Server checks these at
``CREATE ASSEMBLY`` time; we check them at registration:

- **UDA** — ``init``/``accumulate``/``terminate`` must be implemented,
  ``accumulate`` arity must match the declared ``arity``, and ``merge``
  must be provided iff the class claims ``parallel_safe``. A
  parallel-safe UDA *without* a merge is the silent-wrong-answer hazard
  the paper's exchange operator depends on avoiding: registration
  records ``_merge_verified = False`` and the planner then refuses the
  parallel plan (with a lint warning) instead of trusting the flag.
- **TVF** — ``create`` must return a generator/iterator. A ``create``
  whose ``return`` materialises a list (``return [ ... ]``,
  ``return list(...)``/``sorted(...)``) defeats the pull model and is
  rejected. ``fill_row`` return arity is checked statically against the
  declared ``columns`` when determinable.
- **UDT** — codecs declaring a ``probe`` value must round-trip it
  (serialize → deserialize → serialize, byte-identical); codecs without
  a probe register with a warning that the round-trip is unverified.

Each checker returns the diagnostics *and* the permission/determinism
analysis of :mod:`.udx_verifier`, so registration records everything in
one pass.
"""

from __future__ import annotations

import ast
import inspect
from typing import Any, List, Optional, Tuple

from .udx_verifier import (
    AnalysisReport,
    Diagnostic,
    analyze_callable,
    analyze_class_methods,
    _parse_source,
    _underlying_function,
)

#: call names whose return from ``create`` means a materialised
#: collection rather than a streaming iterator
_MATERIALIZING_CALLS = {"list", "sorted", "tuple"}


# ---------------------------------------------------------------------------
# scalar UDFs
# ---------------------------------------------------------------------------


def verify_scalar(
    name: str,
    func: Any,
    permission_set: str,
    declared_deterministic: Optional[bool],
    declared_data_access: Optional[str],
) -> AnalysisReport:
    """Verify one scalar UDF body; resolve declared vs inferred
    ``IsDeterministic`` / ``DataAccessKind``."""
    report = analyze_callable(func, name, permission_set)
    if declared_data_access is not None:
        if (
            report.analyzed
            and report.data_access == "READ"
            and declared_data_access == "NONE"
        ):
            report.diagnostics.append(
                Diagnostic(
                    "UDX-DATA-ACCESS-MISMATCH",
                    "error",
                    name,
                    "declared DataAccessKind.None but the body reaches "
                    "database / FileStream storage",
                )
            )
        else:
            report.data_access = declared_data_access
    if declared_deterministic is not None:
        if report.is_deterministic is False and declared_deterministic:
            report.diagnostics.append(
                Diagnostic(
                    "UDX-DETERMINISM-MISMATCH",
                    "warning",
                    name,
                    "declared IsDeterministic=true but the body uses "
                    "non-deterministic calls; treating as "
                    "non-deterministic",
                )
            )
        else:
            report.is_deterministic = declared_deterministic
    return report


# ---------------------------------------------------------------------------
# UDAs
# ---------------------------------------------------------------------------


def _overrides(uda_class: type, method: str) -> bool:
    """Does ``uda_class`` provide its own ``method`` (vs. the abstract
    base)? Classes not derived from the engine base count as providing
    whatever callables they expose."""
    from ..udf import UserDefinedAggregate

    impl = getattr(uda_class, method, None)
    if impl is None:
        return False
    base = getattr(UserDefinedAggregate, method, None)
    return impl is not base


def _accumulate_arity(uda_class: type) -> Optional[int]:
    """Positional arity of ``accumulate`` (excluding self); None when
    it takes ``*args`` or the signature is unavailable."""
    try:
        signature = inspect.signature(uda_class.accumulate)
    except (TypeError, ValueError):
        return None
    count = 0
    params = list(signature.parameters.values())
    if params and params[0].name == "self":
        params = params[1:]
    for param in params:
        if param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            return None
        if param.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            count += 1
    return count


def verify_uda(uda_class: type) -> AnalysisReport:
    """Contract + permission verification of one UDA class.

    Side effect: records ``_merge_verified`` on the class — the flag the
    planner and :class:`AggregateSpec` consult before trusting
    ``parallel_safe``.
    """
    name = getattr(uda_class, "name", "") or uda_class.__name__
    permission_set = getattr(uda_class, "permission_set", "SAFE")
    report = analyze_class_methods(
        uda_class,
        name,
        ("init", "accumulate", "merge", "terminate"),
        permission_set,
    )

    for required in ("init", "accumulate", "terminate"):
        if not _overrides(uda_class, required):
            report.diagnostics.append(
                Diagnostic(
                    "UDX-UDA-LIFECYCLE",
                    "error",
                    name,
                    f"UDA must implement {required}() "
                    "(SqlUserDefinedAggregate contract)",
                )
            )

    declared = getattr(uda_class, "arity", None)
    actual = _accumulate_arity(uda_class)
    if (
        declared is not None
        and actual is not None
        and _overrides(uda_class, "accumulate")
        and actual != declared
    ):
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDA-ARITY",
                "error",
                name,
                f"accumulate() takes {actual} argument(s) but the UDA "
                f"declares arity {declared}",
            )
        )

    has_merge = _overrides(uda_class, "merge")
    parallel_safe = bool(getattr(uda_class, "parallel_safe", False))
    if parallel_safe and not has_merge:
        uda_class._merge_verified = False
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDA-NO-MERGE",
                "warning",
                name,
                "declared parallel-safe but implements no merge(); the "
                "planner will force a serial aggregate instead of the "
                "parallel exchange",
            )
        )
    else:
        uda_class._merge_verified = True
        if has_merge and not parallel_safe:
            report.diagnostics.append(
                Diagnostic(
                    "UDX-UDA-MERGE-UNUSED",
                    "info",
                    name,
                    "implements merge() but is declared parallel-unsafe; "
                    "merge will never run",
                )
            )
    return report


# ---------------------------------------------------------------------------
# TVFs
# ---------------------------------------------------------------------------


def _returned_tuple_arities(func: Any) -> List[int]:
    """Arities of tuple-display ``return`` statements in ``func``
    (empty when none are statically determinable)."""
    plain = _underlying_function(func)
    if plain is None:
        return []
    node = _parse_source(plain)
    if node is None:
        return []
    arities: List[int] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Return) and isinstance(
            child.value, ast.Tuple
        ):
            if not any(
                isinstance(el, ast.Starred) for el in child.value.elts
            ):
                arities.append(len(child.value.elts))
    return arities


def _materializing_returns(func: Any) -> List[str]:
    """Descriptions of ``return`` statements in ``func`` that hand back
    a materialised collection instead of an iterator."""
    plain = _underlying_function(func)
    if plain is None:
        return []
    if inspect.isgeneratorfunction(plain):
        return []
    node = _parse_source(plain)
    if node is None:
        return []
    findings: List[str] = []
    body_walk = (
        n
        for n in ast.walk(node)
        # don't descend into nested generator helpers: ast.walk does
        # visit them, but a `return [...]` inside a nested *generator*
        # cannot occur (SyntaxError), so plain walk is safe here
        if isinstance(n, ast.Return) and n.value is not None
    )
    for ret in body_walk:
        value = ret.value
        if isinstance(value, (ast.List, ast.ListComp)):
            findings.append("returns a list display")
        elif isinstance(value, ast.Call) and isinstance(
            value.func, ast.Name
        ):
            if value.func.id in _MATERIALIZING_CALLS:
                findings.append(f"returns {value.func.id}(...)")
    return findings


def verify_tvf(tvf: Any) -> AnalysisReport:
    """Contract + permission verification of one TVF instance."""
    name = getattr(tvf, "name", "") or type(tvf).__name__
    permission_set = getattr(tvf, "permission_set", "SAFE")
    cls = type(tvf)
    report = analyze_class_methods(
        cls, name, ("create", "fill_row"), permission_set
    )

    for finding in _materializing_returns(cls.create):
        report.diagnostics.append(
            Diagnostic(
                "UDX-TVF-MATERIALIZED",
                "error",
                name,
                f"create() {finding} — a TVF must stream through a "
                "generator/iterator (the CLR pull model), never a "
                "materialised collection",
            )
        )

    columns = tuple(getattr(tvf, "columns", ()) or ())
    if columns:
        for arity in _returned_tuple_arities(cls.fill_row):
            if arity != len(columns):
                report.diagnostics.append(
                    Diagnostic(
                        "UDX-TVF-FILLROW-ARITY",
                        "error",
                        name,
                        f"fill_row() returns {arity}-tuples but the TVF "
                        f"declares {len(columns)} output column(s)",
                    )
                )
                break
    return report


# ---------------------------------------------------------------------------
# UDTs
# ---------------------------------------------------------------------------


def verify_udt(codec: Any) -> AnalysisReport:
    """Round-trip verification of one UDT codec against its probe."""
    name = getattr(codec, "name", "") or type(codec).__name__
    report = AnalysisReport()
    probe = getattr(codec, "probe", None)
    if probe is None:
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDT-NO-PROBE",
                "warning",
                name,
                "no probe value declared — serialize/deserialize "
                "round-trip is unverified",
            )
        )
        return report
    try:
        raw = codec.serialize(probe)
        value = codec.deserialize(raw)
        again = codec.serialize(value)
    except Exception as exc:
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDT-ROUNDTRIP",
                "error",
                name,
                f"probe round-trip raised {type(exc).__name__}: {exc}",
            )
        )
        return report
    if bytes(raw) != bytes(again):
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDT-ROUNDTRIP",
                "error",
                name,
                "probe round-trip is not byte-stable: "
                f"serialize(deserialize(x)) != x for probe {probe!r}",
            )
        )
    else:
        report.analyzed = True
        report.diagnostics.append(
            Diagnostic(
                "UDX-UDT-VERIFIED",
                "info",
                name,
                f"probe {probe!r} round-trips "
                f"({len(bytes(raw))} bytes, byte-stable)",
            )
        )
    return report
