"""Semantic lint over the logical plan IR.

Runs at plan time, after the rewrite rules, over the tree of
:mod:`repro.engine.optimizer.logical` — before any physical operator is
built, so every finding is static. Four rule families:

- **LINT-TYPE** — comparisons between a base-table column and a literal
  of an incompatible kind (``int_col = 'x'``). The engine's runtime
  comparison would raise (or worse, silently compare cross-type), so
  the lint surfaces it as the plan is built.
- **LINT-SARG** — a function call wrapping an *indexed* column inside a
  filter conjunct. The predicate cannot drive a seek (it is not
  SARGable), and when the wrapped function is non-deterministic or
  data-accessing, the optimizer additionally refuses to push it down;
  the warning names the function and why.
- **LINT-CARTESIAN** — a join with no equality conjunct between its
  sides: a cartesian product. (The planner later refuses to lower it;
  the lint reports it without executing anything.)
- **LINT-UNUSED-COLUMN** — a derived table computing columns the outer
  query never references: wasted work below the plan's pipeline.

Findings are :class:`~.udx_verifier.Diagnostic` objects; the planner
attaches them to the physical plan (EXPLAIN notes), the database
records them (``db.messages`` + ``sys_dm_verify_results``), and the
``repro-genomics lint`` CLI prints them.

Every rule has a stable ID and severity in :data:`RULES` (the same
``FAMILY-NAME`` shape as the plan sanitizer's ``PLAN-*`` and the fork
analyzer's ``FORK-*`` catalogs), and any rule can be suppressed for one
statement — or a whole script — with a pragma comment::

    -- lint: ignore LINT-SARG
    -- lint: ignore LINT-TYPE, LINT-CARTESIAN

The planner parses pragmas out of each statement's raw SQL (comments
survive in ``source_sql``); the CLI additionally honours file-level
pragmas anywhere in a ``.sql`` script.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set

from ..expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    column_refs,
    expression_to_sql,
    walk as walk_expr,
)
from ..optimizer.logical import (
    LogicalFilter,
    LogicalGet,
    LogicalJoin,
    LogicalNode,
    LogicalPlan,
)
from .udx_verifier import Diagnostic

#: the lint rule catalog: stable rule ID → (severity, summary).
#: IDs never change meaning once shipped; suppression pragmas and the
#: DMV key on them.
RULES: Dict[str, tuple] = {
    "LINT-TYPE": (
        "warning",
        "column/literal comparison mixes incompatible kinds",
    ),
    "LINT-SARG": (
        "warning",
        "function-wrapped indexed column defeats a seek",
    ),
    "LINT-CARTESIAN": (
        "warning",
        "join without an equality predicate (cartesian product)",
    ),
    "LINT-UNUSED-COLUMN": (
        "warning",
        "derived table computes columns the outer query never reads",
    ),
    # emitted by the planner when a UDA without a verified merge forces
    # the aggregate serial despite a MAXDOP hint
    "LINT-SERIAL-AGG": (
        "warning",
        "unverified UDA merge forces a serial aggregate",
    ),
    # emitted by the CLI lint driver, not the plan-time linter
    "LINT-LOAD": ("error", "extension module failed to import"),
    "LINT-SQL": ("error", "statement failed to parse or bind"),
}

_SUPPRESS_PRAGMA = re.compile(
    r"--\s*lint:\s*ignore\s+([A-Z][A-Z0-9-]*(?:\s*,\s*[A-Z][A-Z0-9-]*)*)",
    re.IGNORECASE,
)


def parse_suppressions(sql: str) -> frozenset:
    """Rule IDs named by ``-- lint: ignore RULE[, RULE…]`` pragmas in a
    SQL text (a single statement's ``source_sql`` or a whole script).
    Unknown rule IDs are kept — suppressing a rule that does not exist
    yet is harmless and keeps pragmas forward-compatible."""
    suppressed: Set[str] = set()
    for match in _SUPPRESS_PRAGMA.finditer(sql or ""):
        for rule in match.group(1).split(","):
            rule = rule.strip().upper()
            if rule:
                suppressed.add(rule)
    return frozenset(suppressed)


#: SqlType.kind buckets for the static comparison check
_NUMERIC_KINDS = {"INT", "BIGINT", "SMALLINT", "TINYINT", "BIT", "FLOAT"}
_TEXT_KINDS = {"CHAR", "VARCHAR"}


def _walk_nodes(node: LogicalNode):
    yield node
    if isinstance(node, LogicalGet) and node.inner is not None:
        yield from _walk_nodes(node.inner.root)
    for child in node.children():
        yield from _walk_nodes(child)


def _column_types(plan: LogicalPlan) -> Dict[str, object]:
    """qualified-column-name (lowered) → SqlType for every base-table
    Get at this query level."""
    types: Dict[str, object] = {}
    for node in _walk_nodes(plan.root):
        if not isinstance(node, LogicalGet) or node.table is None:
            continue
        binding = (node.binding or "").lower()
        for column in node.table.schema.columns:
            types[f"{binding}.{column.name.lower()}"] = column.sql_type
            types.setdefault(column.name.lower(), column.sql_type)
    return types


def _indexed_columns(plan: LogicalPlan) -> Dict[str, str]:
    """qualified-column-name (lowered) → index description, for columns
    leading a clustered key or secondary index (seekable columns)."""
    indexed: Dict[str, str] = {}
    for node in _walk_nodes(plan.root):
        if not isinstance(node, LogicalGet) or node.table is None:
            continue
        table = node.table
        binding = (node.binding or "").lower()
        schema = table.schema
        if not schema.heap and schema.primary_key:
            lead = schema.primary_key[0].lower()
            indexed[f"{binding}.{lead}"] = "clustered key"
            indexed.setdefault(lead, "clustered key")
        secondary = {}
        try:
            secondary = table.secondary_indexes()
        except Exception:  # virtual tables etc.
            secondary = {}
        for index_name, col_idxs in secondary.items():
            if not col_idxs:
                continue
            lead = schema.columns[col_idxs[0]].name.lower()
            indexed[f"{binding}.{lead}"] = f"index {index_name}"
            indexed.setdefault(lead, f"index {index_name}")
    return indexed


def _literal_kind(value) -> Optional[str]:
    if isinstance(value, bool):
        return "numeric"
    if isinstance(value, (int, float)):
        return "numeric"
    if isinstance(value, str):
        return "text"
    return None


def _column_kind(sql_type) -> Optional[str]:
    kind = getattr(sql_type, "kind", None)
    if kind in _NUMERIC_KINDS:
        return "numeric"
    if kind in _TEXT_KINDS:
        return "text"
    return None


def _qualified(ref: ColumnRef) -> str:
    if ref.qualifier:
        return f"{ref.qualifier.lower()}.{ref.name.lower()}"
    return ref.name.lower()


def _check_types(
    conjunct: Expr,
    types: Dict[str, object],
    diagnostics: List[Diagnostic],
) -> None:
    for node in walk_expr(conjunct):
        if not (
            isinstance(node, BinaryOp)
            and node.op in ("=", "<>", "!=", "<", "<=", ">", ">=")
        ):
            continue
        ref, lit = node.left, node.right
        if isinstance(ref, Literal) and isinstance(lit, ColumnRef):
            ref, lit = lit, ref
        if not (isinstance(ref, ColumnRef) and isinstance(lit, Literal)):
            continue
        sql_type = types.get(_qualified(ref))
        if sql_type is None:
            continue
        column_kind = _column_kind(sql_type)
        literal_kind = _literal_kind(lit.value)
        if (
            column_kind is not None
            and literal_kind is not None
            and column_kind != literal_kind
        ):
            diagnostics.append(
                Diagnostic(
                    "LINT-TYPE",
                    "warning",
                    str(ref),
                    f"comparison {expression_to_sql(node)} mixes "
                    f"{column_kind} column {ref} ({sql_type}) with a "
                    f"{literal_kind} literal",
                )
            )


def _check_sargability(
    conjunct: Expr,
    indexed: Dict[str, str],
    library,
    diagnostics: List[Diagnostic],
) -> None:
    for node in walk_expr(conjunct):
        if not isinstance(node, FuncCall):
            continue
        wrapped = [
            ref
            for arg in node.args
            for ref in column_refs(arg)
            if _qualified(ref) in indexed
        ]
        if not wrapped:
            continue
        ref = wrapped[0]
        udf = library.scalar(node.name) if library is not None else None
        reason = f"wrapped by {node.name!r}"
        if udf is not None:
            if getattr(udf, "is_deterministic", None) is False:
                reason = f"udf {node.name!r} is non-deterministic"
            elif getattr(udf, "data_access", "NONE") != "NONE":
                reason = f"udf {node.name!r} accesses data"
        diagnostics.append(
            Diagnostic(
                "LINT-SARG",
                "warning",
                node.name,
                f"predicate on {ref} not SARGable — {reason}; the "
                f"{indexed[_qualified(ref)]} on {ref} cannot be used "
                "for a seek",
            )
        )


def _is_equi_conjunct(conjunct: Expr, left: LogicalNode,
                      right: LogicalNode) -> bool:
    from ..optimizer.logical import binds_names

    if not (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return False
    a, b = conjunct.left, conjunct.right
    return (
        binds_names(left.columns, a) and binds_names(right.columns, b)
    ) or (
        binds_names(left.columns, b) and binds_names(right.columns, a)
    )


def _check_cartesian(
    plan: LogicalPlan, diagnostics: List[Diagnostic]
) -> None:
    for node in _walk_nodes(plan.root):
        if not isinstance(node, LogicalJoin):
            continue
        if not any(
            _is_equi_conjunct(c, node.left, node.right)
            for c in node.conjuncts
        ):
            left = ", ".join(node.left.columns[:2]) or "(left)"
            right = ", ".join(node.right.columns[:2]) or "(right)"
            diagnostics.append(
                Diagnostic(
                    "LINT-CARTESIAN",
                    "warning",
                    "JOIN",
                    "join has no equality predicate between its inputs "
                    f"({left} × {right}) — cartesian product",
                )
            )


def _referenced_names(plan: LogicalPlan) -> Set[str]:
    """Every column name (bare and qualified, lowered) referenced
    anywhere at this query level."""
    from ..optimizer.rules import _collect_refs

    refs, stars = _collect_refs(plan)
    names: Set[str] = set()
    for ref in refs:
        names.add(ref.name.lower())
        if ref.qualifier:
            names.add(f"{ref.qualifier.lower()}.{ref.name.lower()}")
    for qualifier in stars:
        names.add(f"{(qualifier or '*').lower()}.*")
    return names


def _check_unused_projection(
    plan: LogicalPlan, diagnostics: List[Diagnostic]
) -> None:
    referenced = None
    for node in _walk_nodes(plan.root):
        if not isinstance(node, LogicalGet) or node.inner is None:
            continue
        if referenced is None:
            referenced = _referenced_names(plan)
        binding = (node.binding or "").lower()
        if "*.*" in referenced or f"{binding}.*" in referenced:
            continue
        unused = []
        for column in node.columns:
            bare = column.lower().rsplit(".", 1)[-1]
            if (
                bare not in referenced
                and column.lower() not in referenced
            ):
                unused.append(bare)
        if unused and len(unused) < len(node.columns):
            diagnostics.append(
                Diagnostic(
                    "LINT-UNUSED-COLUMN",
                    "warning",
                    node.binding or "(derived)",
                    f"derived table computes {', '.join(unused)} but the "
                    "outer query never references "
                    + ("it" if len(unused) == 1 else "them"),
                )
            )


def lint_plan(plan: LogicalPlan, catalog) -> List[Diagnostic]:
    """Run every lint rule over one (rewritten) logical plan."""
    diagnostics: List[Diagnostic] = []
    library = getattr(catalog, "functions", None)
    types = _column_types(plan)
    indexed = _indexed_columns(plan)
    for node in _walk_nodes(plan.root):
        if isinstance(node, (LogicalFilter, LogicalJoin)):
            for conjunct in node.conjuncts:
                _check_types(conjunct, types, diagnostics)
                _check_sargability(
                    conjunct, indexed, library, diagnostics
                )
    _check_cartesian(plan, diagnostics)
    _check_unused_projection(plan, diagnostics)
    return diagnostics
